//! Differential tests of the incremental scheduler hot paths against the
//! original full-scan implementations (the `naive` feature).
//!
//! The incremental DARTS/Ready state is only correct if it changes *no
//! scheduling decision*: for any task set, platform shape and seed, the
//! naive and incremental configurations must produce byte-identical
//! engine traces — same loads, same eviction victims, same task order,
//! same timestamps, and (for DARTS) the same RNG draw sequence, since a
//! diverging candidate count would shift every later tie-break.

use memsched::hypergraph::{bisect, bisect_naive, partition, Hypergraph, PartitionConfig};
use memsched::platform::{run_with_config, RunConfig, Scheduler, TraceEvent};
use memsched::prelude::*;
use memsched::schedulers::{
    hfp_pack_with, DartsConfig, DartsScheduler, DmdaScheduler, NamedScheduler, PackConfig,
};
use proptest::prelude::*;

/// Strategy: a random task set with up to `max_data` unit-size data items
/// and up to `max_tasks` tasks with 1–3 inputs each (the same shape the
/// engine property tests use).
fn arb_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs = proptest::collection::vec(
                proptest::collection::vec(0..nd as u32, 1..=3),
                mt,
            );
            (Just(nd), inputs)
        })
        .prop_map(|(nd, task_inputs)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
        })
}

/// Strategy: like [`arb_taskset`] but with non-uniform data sizes, so the
/// offline differentials exercise byte-weighted affinity ties, not just
/// counts.
fn arb_sized_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let sizes = proptest::collection::vec(1u64..=4, nd);
            let inputs = proptest::collection::vec(
                proptest::collection::vec(0..nd as u32, 1..=3),
                mt,
            );
            (sizes, inputs)
        })
        .prop_map(|(sizes, task_inputs)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = sizes.iter().map(|&s| b.add_data(s)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
        })
}

/// Strategy: a random weighted hypergraph (vertex/net weights 1–3, nets of
/// 2–4 pins that may collapse to singletons after dedup — both bisection
/// implementations must treat those identically).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..=28, 2usize..=28)
        .prop_flat_map(|(nv, nn)| {
            let nets = proptest::collection::vec(
                proptest::collection::vec(0..nv as u32, 2..=4),
                nn,
            );
            let vweights = proptest::collection::vec(1u64..=3, nv);
            let nweights = proptest::collection::vec(1u64..=3, nn);
            (Just(nv), nets, vweights, nweights)
        })
        .prop_map(|(nv, nets, vweights, nweights)| Hypergraph::new(nv, nets, vweights, nweights))
}

fn small_spec(gpus: usize, mem: u64) -> PlatformSpec {
    PlatformSpec {
        num_gpus: gpus,
        memory_bytes: mem, // unit-size items: capacity in items
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-3,
        pipeline_depth: 2,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    }
}

fn trace_of(
    ts: &TaskSet,
    spec: &PlatformSpec,
    sched: &mut dyn Scheduler,
) -> (RunReport, Vec<TraceEvent>) {
    let config = RunConfig {
        trace: TraceMode::Full,
        ..RunConfig::default()
    };
    run_with_config(ts, spec, sched, &config).expect("differential run")
}

/// Assert the two configurations of one scheduler produce byte-identical
/// decision streams on `ts`.
fn assert_equivalent(
    ts: &TaskSet,
    spec: &PlatformSpec,
    label: &str,
    naive: &mut dyn Scheduler,
    incremental: &mut dyn Scheduler,
) {
    let (naive_report, naive_trace) = trace_of(ts, spec, naive);
    let (incr_report, incr_trace) = trace_of(ts, spec, incremental);
    // The scheduler name must not encode the mode: the golden snapshots
    // embed it, so a differing header would make them mode-dependent.
    assert_eq!(
        naive_report.scheduler, incr_report.scheduler,
        "{label}: name must not leak the implementation mode"
    );
    if naive_trace != incr_trace {
        // Locate the first diverging event for a readable failure.
        let i = naive_trace
            .iter()
            .zip(&incr_trace)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| naive_trace.len().min(incr_trace.len()));
        panic!(
            "{label}: decision streams diverge at event {i}:\n  naive:       {:?}\n  incremental: {:?}",
            naive_trace.get(i),
            incr_trace.get(i),
        );
    }
    assert_eq!(naive_report.makespan, incr_report.makespan, "{label}");
    assert_eq!(naive_report.total_loads, incr_report.total_loads, "{label}");
    assert_eq!(
        naive_report.total_evictions, incr_report.total_evictions,
        "{label}"
    );
    let naive_tasks: Vec<usize> = naive_report.per_gpu.iter().map(|g| g.tasks).collect();
    let incr_tasks: Vec<usize> = incr_report.per_gpu.iter().map(|g| g.tasks).collect();
    assert_eq!(naive_tasks, incr_tasks, "{label}");
}

/// The scheduler families the engine-core differential sweeps: one
/// representative per family of the paper's evaluation.
const ENGINE_FAMILIES: &[NamedScheduler] = &[
    NamedScheduler::Eager,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
    NamedScheduler::DartsLuf,
    NamedScheduler::Router,
];

/// Run `named` once on the pre-refactor engine core (`naive_core`: binary
/// heap, per-event full progress scan) and once on the flat core
/// (calendar queue, dirty-GPU worklist), under the same fault plan, and
/// assert the event streams are byte-identical. On success, additionally
/// run the flat core in [`TraceMode::Checksum`] and assert the streaming
/// checksum folds to exactly `trace_checksum` of the materialized trace.
fn engine_cores_equivalent(
    ts: &TaskSet,
    spec: &PlatformSpec,
    faults: &FaultPlan,
    named: &NamedScheduler,
) {
    // hMETIS+R's partitioner requires at least one task per part; the
    // degenerate fewer-tasks-than-GPUs shape is not an engine-core case.
    if *named == NamedScheduler::HmetisR && ts.num_tasks() < spec.num_gpus {
        return;
    }
    let label = named.label();
    let heap_config = RunConfig {
        trace: TraceMode::Full,
        naive_core: true,
        faults: faults.clone(),
        ..RunConfig::default()
    };
    let calendar_config = RunConfig {
        trace: TraceMode::Full,
        faults: faults.clone(),
        ..RunConfig::default()
    };
    let heap = run_with_config(ts, spec, named.build().as_mut(), &heap_config);
    let calendar = run_with_config(ts, spec, named.build().as_mut(), &calendar_config);
    match (heap, calendar) {
        (Ok((heap_report, heap_trace)), Ok((cal_report, cal_trace))) => {
            if heap_trace != cal_trace {
                let i = heap_trace
                    .iter()
                    .zip(&cal_trace)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| heap_trace.len().min(cal_trace.len()));
                panic!(
                    "{label}: event streams diverge at event {i}:\n  heap:     {:?}\n  calendar: {:?}",
                    heap_trace.get(i),
                    cal_trace.get(i),
                );
            }
            assert_eq!(heap_report.makespan, cal_report.makespan, "{label}");
            assert_eq!(heap_report.total_loads, cal_report.total_loads, "{label}");
            assert_eq!(
                heap_report.total_evictions, cal_report.total_evictions,
                "{label}"
            );
            assert_eq!(heap_report.gpu_failures, cal_report.gpu_failures, "{label}");
            let heap_tasks: Vec<usize> = heap_report.per_gpu.iter().map(|g| g.tasks).collect();
            let cal_tasks: Vec<usize> = cal_report.per_gpu.iter().map(|g| g.tasks).collect();
            assert_eq!(heap_tasks, cal_tasks, "{label}");

            let checksum_config = RunConfig {
                trace: TraceMode::Checksum,
                faults: faults.clone(),
                ..RunConfig::default()
            };
            let (ck_report, ck_trace) =
                run_with_config(ts, spec, named.build().as_mut(), &checksum_config)
                    .expect("checksum rerun of a successful run");
            assert!(ck_trace.is_empty(), "{label}: checksum mode materialized events");
            assert_eq!(
                ck_report.trace_checksum,
                Some(trace_checksum(&cal_trace)),
                "{label}: streaming checksum disagrees with the materialized trace"
            );
        }
        // Both cores may legitimately abort (e.g. transfer retries
        // exhausted) — but they must abort identically.
        (Err(heap_err), Err(cal_err)) => {
            assert_eq!(
                format!("{heap_err:?}"),
                format!("{cal_err:?}"),
                "{label}: cores abort differently"
            );
        }
        (heap, calendar) => panic!(
            "{label}: cores disagree on the outcome:\n  heap:     {:?}\n  calendar: {:?}",
            heap.as_ref().map(|(r, _)| r.makespan),
            calendar.as_ref().map(|(r, _)| r.makespan),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every DARTS variant: plain LRU-evicting, LUF, LUF+3inputs,
    /// LUF+OPTI, LUF+threshold — the incremental candidate index, missing
    /// caches, planned-use counters and Fenwick draw must reproduce the
    /// full-scan run event for event.
    #[test]
    fn darts_incremental_matches_naive(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
        seed in 0u64..1000,
    ) {
        let spec = small_spec(gpus, mem);
        let variants: Vec<(&str, DartsConfig)> = vec![
            ("darts-lru", DartsConfig::lru()),
            ("darts-luf", DartsConfig::luf()),
            ("darts-luf-3inputs", DartsConfig::luf().with_three_inputs()),
            ("darts-luf-opti", DartsConfig::luf().with_opti()),
            ("darts-luf-threshold", DartsConfig::luf().with_threshold(3)),
            (
                "darts-luf-opti-3inputs",
                DartsConfig::luf().with_opti().with_three_inputs(),
            ),
        ];
        for (label, cfg) in variants {
            let cfg = cfg.with_seed(seed);
            let mut naive = DartsScheduler::new(cfg.clone().with_naive());
            let mut incremental = DartsScheduler::new(cfg);
            assert_equivalent(&ts, &spec, label, &mut naive, &mut incremental);
        }
    }

    /// DMDAR's Ready window pick: the hoisted fast path must select the
    /// same task as the reference `missing_bytes` scan on every pop.
    #[test]
    fn dmdar_ready_matches_naive(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let spec = small_spec(gpus, mem);
        let mut naive = DmdaScheduler::dmdar().with_naive_ready();
        let mut incremental = DmdaScheduler::dmdar();
        assert_equivalent(&ts, &spec, "dmdar", &mut naive, &mut incremental);
    }

    /// mHFP offline packing: the index-accelerated `pack` must emit the
    /// same `k` task lists — same packages, same task order inside each,
    /// same list order — as the paper's quadratic greedy, across memory
    /// bounds tight enough to freeze packages and loose enough to skip
    /// phase 1 entirely.
    #[test]
    fn hfp_pack_indexed_matches_naive(
        ts in arb_sized_taskset(12, 24),
        mem in 1u64..48,
        k in 1usize..5,
    ) {
        let fast = hfp_pack_with(&ts, &PackConfig::new(mem, k));
        let naive = hfp_pack_with(&ts, &PackConfig::new(mem, k).with_naive());
        prop_assert_eq!(&fast, &naive, "package lists diverge (mem={}, k={})", mem, k);
    }

    /// Multilevel bisection: the incremental FM (persistent side counts,
    /// delta rollback, changed-gain pushes) and the in-place greedy seed
    /// pool must reproduce the original bisection's part vector and cost
    /// for every seed.
    #[test]
    fn bisect_incremental_matches_naive(
        hg in arb_hypergraph(),
        seed in 0u64..1000,
        eps_idx in 0usize..3,
    ) {
        let eps = [0.01f64, 0.05, 0.2][eps_idx];
        let total = hg.total_vweight();
        let w0 = total / 2;
        let w1 = total - w0;
        let fast = bisect(&hg, w0, w1, eps, seed);
        let naive = bisect_naive(&hg, w0, w1, eps, seed);
        prop_assert_eq!(fast, naive, "seed {}", seed);
    }

    /// Full K-way partitioning (recursive bisection + restarts): identical
    /// part vectors with and without the naive bisection.
    #[test]
    fn partition_incremental_matches_naive(
        hg in arb_hypergraph(),
        k in 2usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(hg.num_vertices() >= k);
        let cfg = PartitionConfig::for_parts(k)
            .with_nruns(3)
            .with_seed(seed)
            .with_threads(1);
        let fast = partition(&hg, &cfg);
        let naive = partition(&hg, &cfg.clone().with_naive());
        prop_assert_eq!(fast.parts, naive.parts, "seed {}", seed);
    }

    /// Engine core: the calendar event queue plus dirty-GPU worklist must
    /// reproduce the binary-heap core's trace byte for byte across every
    /// scheduler family on fault-free runs, and the streaming checksum
    /// must fold the same stream.
    #[test]
    fn engine_calendar_matches_heap(
        ts in arb_taskset(10, 24),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let spec = small_spec(gpus, mem);
        for named in ENGINE_FAMILIES {
            engine_cores_equivalent(&ts, &spec, &FaultPlan::none(), named);
        }
    }

    /// Engine core under faults: GPU fail-stop, seeded transient transfer
    /// faults, and straggler-plus-capacity-shrink plans must replay
    /// identically on both cores — fault events go through the same
    /// `(time, seq)` ordering contract as everything else.
    #[test]
    fn engine_calendar_matches_heap_under_faults(
        ts in arb_taskset(10, 24),
        gpus in 1usize..4,
        mem in 3u64..8,
        fault_kind in 0usize..3,
        seed in 0u64..1000,
    ) {
        let spec = small_spec(gpus, mem);
        let faults = match fault_kind {
            // Fail-stop of the last GPU mid-run (tasks run ~1e6 ns under
            // `small_spec`); with one GPU the plan stays empty — killing
            // the only worker is covered by the error-equality arm anyway.
            0 if gpus >= 2 => FaultPlan::none().with_gpu_failure(gpus - 1, 1_500_000),
            1 => FaultPlan::none().with_transfer_faults(TransferFaultSpec {
                seed,
                fault_ppm: 200_000,
                max_attempts: 6,
                backoff_base: 500,
            }),
            2 => FaultPlan::none()
                .with_straggler(0, 500_000, 0.5)
                .with_capacity_shrink(0, 800_000, mem.saturating_sub(1).max(3)),
            _ => FaultPlan::none(),
        };
        for named in ENGINE_FAMILIES {
            engine_cores_equivalent(&ts, &spec, &faults, named);
        }
    }
}
