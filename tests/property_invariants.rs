//! Property-based tests (proptest) over random task sets: invariants of
//! the model, the replay, the partitioner and the runtime engine.

use memsched::platform::{RuntimeView, Scheduler, TraceEvent};
use memsched::prelude::*;
use proptest::prelude::*;
use std::collections::VecDeque;

/// One runtime notification observed by [`RecordingScheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HookEvent {
    LoadIssued { gpu: usize, data: usize },
    Loaded { gpu: usize, data: usize },
    Evicted { gpu: usize, data: usize },
    Completed { gpu: usize, task: usize },
}

/// A minimal FIFO scheduler that records every runtime notification it
/// receives together with the simulated time it observed, so the hook
/// protocol itself can be checked against the engine's event log.
#[derive(Default)]
struct RecordingScheduler {
    queue: VecDeque<TaskId>,
    hooks: Vec<(u64, HookEvent)>,
}

impl Scheduler for RecordingScheduler {
    fn name(&self) -> String {
        "recording-mock".into()
    }

    fn prepare(&mut self, ts: &TaskSet, _spec: &PlatformSpec) {
        self.queue = ts.tasks().collect();
        self.hooks.clear();
    }

    fn pop_task(&mut self, _gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn on_task_complete(&mut self, gpu: GpuId, task: TaskId, view: &RuntimeView<'_>) {
        let ev = HookEvent::Completed {
            gpu: gpu.index(),
            task: task.index(),
        };
        self.hooks.push((view.now(), ev));
    }

    fn on_load_issued(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let ev = HookEvent::LoadIssued {
            gpu: gpu.index(),
            data: data.index(),
        };
        self.hooks.push((view.now(), ev));
    }

    fn on_data_loaded(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let ev = HookEvent::Loaded {
            gpu: gpu.index(),
            data: data.index(),
        };
        self.hooks.push((view.now(), ev));
    }

    fn on_data_evicted(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let ev = HookEvent::Evicted {
            gpu: gpu.index(),
            data: data.index(),
        };
        self.hooks.push((view.now(), ev));
    }
}

/// Strategy: a random task set with `n_data` data items of unit size and
/// up to `m` tasks with 1–3 inputs each.
fn arb_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs = proptest::collection::vec(
                proptest::collection::vec(0..nd as u32, 1..=3),
                mt,
            );
            (Just(nd), inputs)
        })
        .prop_map(|(nd, task_inputs)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay respects the memory bound and never loads less than the
    /// compulsory bound, under both eviction policies.
    #[test]
    fn replay_invariants(ts in arb_taskset(12, 24), cap in 3u64..10) {
        let order: Vec<TaskId> = ts.tasks().collect();
        let schedule = Schedule::from_lists(vec![order]);
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Belady] {
            let r = replay(&ts, &schedule, cap, policy).unwrap();
            prop_assert!(r.per_gpu[0].max_live_bytes <= cap);
            prop_assert!(r.total_loads() >= memsched::model::bounds::min_total_loads(&ts));
        }
    }

    /// Belady never loses to LRU on the same order (§III optimality).
    #[test]
    fn belady_leq_lru(ts in arb_taskset(12, 24), cap in 3u64..10) {
        let ids: Vec<TaskId> = ts.tasks().collect();
        let schedule = Schedule::from_lists(vec![ids]);
        let lru = replay(&ts, &schedule, cap, EvictionPolicy::Lru).unwrap();
        let belady = replay(&ts, &schedule, cap, EvictionPolicy::Belady).unwrap();
        prop_assert!(belady.total_loads() <= lru.total_loads());
    }

    /// Any order of the same tasks is a valid schedule, and replaying it
    /// under Belady stays within the memory bound.
    #[test]
    fn shuffled_schedules_validate(ts in arb_taskset(10, 16), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut ids: Vec<TaskId> = ts.tasks().collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        let schedule = Schedule::from_lists(vec![ids]);
        prop_assert!(schedule.validate(&ts).is_ok());
        let r = replay(&ts, &schedule, 4, EvictionPolicy::Belady).unwrap();
        prop_assert!(r.per_gpu[0].max_live_bytes <= 4);
    }

    /// The runtime engine runs every task exactly once for the dynamic
    /// schedulers, for any random task set.
    #[test]
    fn engine_completes_random_tasksets(ts in arb_taskset(10, 20), gpus in 1usize..4) {
        let spec = PlatformSpec {
            num_gpus: gpus,
            memory_bytes: 4, // four unit-size items
            bus_bandwidth: 1e9,
            transfer_latency: 10,
            gpu_gflops: 1e-3,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        for named in [NamedScheduler::Eager, NamedScheduler::DartsLuf, NamedScheduler::Dmdar] {
            let mut sched = named.build();
            let report = memsched::platform::run(&ts, &spec, sched.as_mut()).unwrap();
            let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
            prop_assert_eq!(total, ts.num_tasks());
            // Loads at least cover every consumed data item once.
            prop_assert!(
                report.total_loads >= memsched::model::bounds::min_total_loads(&ts)
            );
        }
    }

    /// Partitioner invariants: every vertex gets a part in 0..k, parts are
    /// reasonably balanced, and connectivity-1 is consistent with a
    /// direct evaluation.
    #[test]
    fn partitioner_invariants(ts in arb_taskset(10, 24), k in 2usize..4) {
        prop_assume!(ts.num_tasks() >= k);
        let hg = memsched::schedulers::HmetisRScheduler::build_hypergraph(&ts);
        let cfg = memsched::hypergraph::PartitionConfig::for_parts(k)
            .with_nruns(2)
            .with_threads(1);
        let p = memsched::hypergraph::partition(&hg, &cfg);
        prop_assert_eq!(p.parts.len(), ts.num_tasks());
        prop_assert!(p.parts.iter().all(|&x| (x as usize) < k));
        let q = memsched::hypergraph::evaluate(&hg, &p.parts, k);
        prop_assert_eq!(q.connectivity_minus_one, p.quality.connectivity_minus_one);
        // Balance: no part exceeds total (trivial) and max is bounded by
        // total - (k-1) (each part non-empty is not guaranteed for tiny
        // degenerate inputs, so keep the check loose).
        prop_assert!(q.max_part_weight <= hg.total_vweight());
    }

    /// HFP packing is a permutation of the task set.
    #[test]
    fn hfp_pack_is_permutation(ts in arb_taskset(8, 16), k in 1usize..4) {
        let lists = memsched::schedulers::hfp_pack(&ts, 6, k);
        let mut all: Vec<TaskId> = lists.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<TaskId> = ts.tasks().collect();
        prop_assert_eq!(all, expect);
    }

    /// Engine trace invariants under random task sets: replay the
    /// collected `TraceEvent` log and check that (a) per-GPU occupancy
    /// (resident + in-flight loads) never exceeds the memory bound M,
    /// (b) a data item is never evicted while a task reading it is
    /// executing on that GPU (pinning), and (c) every task starts and
    /// finishes exactly once.
    #[test]
    fn engine_trace_invariants(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let spec = PlatformSpec {
            num_gpus: gpus,
            memory_bytes: mem, // unit-size items: capacity in items
            bus_bandwidth: 1e9,
            transfer_latency: 10,
            gpu_gflops: 1e-3,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        let config = RunConfig {
            trace: TraceMode::Full,
            ..RunConfig::default()
        };
        for named in [
            NamedScheduler::Eager,
            NamedScheduler::Dmdar,
            NamedScheduler::Mhfp,
            NamedScheduler::DartsLuf,
        ] {
            let mut sched = named.build();
            let (report, trace) =
                memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config)
                    .unwrap();

            // Walk the trace in engine order.
            let mut occupied = vec![0u64; gpus]; // bytes reserved per GPU
            let mut running: Vec<Vec<usize>> = vec![Vec::new(); gpus];
            let mut started = vec![0u32; ts.num_tasks()];
            let mut finished = vec![0u32; ts.num_tasks()];
            for ev in &trace {
                match *ev {
                    TraceEvent::LoadIssued { gpu, data, .. } => {
                        occupied[gpu] += ts.data_size(DataId(data as u32));
                        prop_assert!(
                            occupied[gpu] <= spec.memory_bytes,
                            "{named:?}: GPU {gpu} occupancy {} exceeds M {}",
                            occupied[gpu], spec.memory_bytes
                        );
                    }
                    TraceEvent::Evicted { gpu, data, .. } => {
                        let sz = ts.data_size(DataId(data as u32));
                        prop_assert!(occupied[gpu] >= sz, "evicting non-resident data");
                        occupied[gpu] -= sz;
                        for &t in &running[gpu] {
                            prop_assert!(
                                !ts.inputs(TaskId(t as u32)).contains(&(data as u32)),
                                "{named:?}: data {data} evicted from GPU {gpu} while \
                                 running task {t} reads it"
                            );
                        }
                    }
                    TraceEvent::TaskStarted { gpu, task, .. } => {
                        running[gpu].push(task);
                        started[task] += 1;
                    }
                    TraceEvent::TaskFinished { gpu, task, .. } => {
                        running[gpu].retain(|&t| t != task);
                        finished[task] += 1;
                    }
                    TraceEvent::LoadDone { .. } => {}
                    // Fault and admission events cannot appear in these
                    // fault-free batch runs.
                    TraceEvent::GpuFailed { .. }
                    | TraceEvent::TransferRetry { .. }
                    | TraceEvent::CapacityShrunk { .. }
                    | TraceEvent::GpuSlowed { .. }
                    | TraceEvent::TaskArrived { .. }
                    | TraceEvent::TaskAdmitted { .. }
                    | TraceEvent::TaskDeferred { .. }
                    | TraceEvent::TaskShed { .. }
                    | TraceEvent::DeadlineExpired { .. } => {
                        prop_assert!(false, "unexpected event in a batch run: {ev:?}");
                    }
                }
            }
            prop_assert!(
                started.iter().all(|&c| c == 1),
                "{named:?}: some task did not start exactly once: {started:?}"
            );
            prop_assert!(
                finished.iter().all(|&c| c == 1),
                "{named:?}: some task did not finish exactly once: {finished:?}"
            );
            let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
            prop_assert_eq!(total, ts.num_tasks());
        }
    }

    /// The runtime notifications are a faithful mirror of the engine's
    /// event log: every load issue, load completion, eviction and task
    /// completion fires the matching scheduler hook exactly once, at the
    /// simulated time of the event, in the engine's (timestamp-ordered)
    /// event order. Incremental policies (DARTS) rely on this protocol.
    #[test]
    fn scheduler_hooks_mirror_trace(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let spec = PlatformSpec {
            num_gpus: gpus,
            memory_bytes: mem, // unit-size items: capacity in items
            bus_bandwidth: 1e9,
            transfer_latency: 10,
            gpu_gflops: 1e-3,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        let config = RunConfig {
            trace: TraceMode::Full,
            ..RunConfig::default()
        };
        let mut sched = RecordingScheduler::default();
        let (_report, trace) =
            memsched::platform::run_with_config(&ts, &spec, &mut sched, &config).unwrap();
        let expected: Vec<(u64, HookEvent)> = trace
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::LoadIssued { at, gpu, data, .. } => {
                    Some((at, HookEvent::LoadIssued { gpu, data }))
                }
                TraceEvent::LoadDone { at, gpu, data } => {
                    Some((at, HookEvent::Loaded { gpu, data }))
                }
                TraceEvent::Evicted { at, gpu, data } => {
                    Some((at, HookEvent::Evicted { gpu, data }))
                }
                TraceEvent::TaskFinished { at, gpu, task } => {
                    Some((at, HookEvent::Completed { gpu, task }))
                }
                TraceEvent::TaskStarted { .. }
                | TraceEvent::GpuFailed { .. }
                | TraceEvent::TransferRetry { .. }
                | TraceEvent::CapacityShrunk { .. }
                | TraceEvent::GpuSlowed { .. }
                | TraceEvent::TaskArrived { .. }
                | TraceEvent::TaskAdmitted { .. }
                | TraceEvent::TaskDeferred { .. }
                | TraceEvent::TaskShed { .. }
                | TraceEvent::DeadlineExpired { .. } => None,
            })
            .collect();
        prop_assert!(!expected.is_empty(), "run produced no events");
        prop_assert!(
            expected.windows(2).all(|w| w[0].0 <= w[1].0),
            "event timestamps must be non-decreasing"
        );
        prop_assert_eq!(&sched.hooks, &expected);
    }

    /// Fault-injection invariants, all five scheduler families: under a
    /// combined fail-stop + capacity shrink + straggler + flaky-bus plan,
    /// (a) the same seed replays an identical event stream, (b) per-GPU
    /// occupancy never exceeds the *current* (possibly shrunk) capacity,
    /// (c) every task finishes exactly once and any extra start sits on
    /// the GPU that later died, and (d) no task is lost.
    #[test]
    fn fault_recovery_invariants(
        ts in arb_taskset(10, 20),
        gpus in 2usize..4,
        mem in 4u64..8,
        dead_gpu in 0usize..2,
        fail_at in 0u64..10_000_000,
        shrink_at in 0u64..10_000_000,
        shrink_to in 3u64..5,
        slow_at in 0u64..10_000_000,
        slow_pct in 25u32..100,
        flaky_seed in any::<u64>(),
    ) {
        // The hMETIS partitioner needs at least one task per part.
        prop_assume!(ts.num_tasks() >= gpus);
        let dead_gpu = dead_gpu % gpus;
        let shrunk_gpu = (dead_gpu + 1) % gpus; // always a survivor
        let spec = PlatformSpec {
            num_gpus: gpus,
            memory_bytes: mem, // unit-size items: capacity in items
            bus_bandwidth: 1e9,
            transfer_latency: 10,
            gpu_gflops: 1e-3,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        let plan = FaultPlan::none()
            .with_gpu_failure(dead_gpu, fail_at)
            .with_capacity_shrink(shrunk_gpu, shrink_at, shrink_to.min(mem))
            .with_straggler(shrunk_gpu, slow_at, f64::from(slow_pct) / 100.0)
            .with_transfer_faults(TransferFaultSpec {
                seed: flaky_seed,
                fault_ppm: 150_000,
                max_attempts: 16,
                backoff_base: 100,
            });
        let config = RunConfig {
            trace: TraceMode::Full,
            faults: plan,
            ..RunConfig::default()
        };
        for named in [
            NamedScheduler::Eager,
            NamedScheduler::Dmdar,
            NamedScheduler::HmetisR,
            NamedScheduler::Mhfp,
            NamedScheduler::DartsLuf,
        ] {
            let mut sched = named.build();
            let (report, trace) =
                memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config)
                    .unwrap();
            // (a) determinism: a second run replays the exact stream.
            let mut sched2 = named.build();
            let (report2, trace2) =
                memsched::platform::run_with_config(&ts, &spec, sched2.as_mut(), &config)
                    .unwrap();
            prop_assert_eq!(&trace, &trace2, "{:?}: non-deterministic replay", named);
            prop_assert_eq!(report.makespan, report2.makespan);

            // (b)+(c): walk the trace against the evolving capacity.
            let mut cap = vec![spec.memory_bytes; gpus];
            let mut occupied = vec![0u64; gpus];
            let mut started_on: Vec<Vec<usize>> = vec![Vec::new(); ts.num_tasks()];
            let mut finished = vec![0u32; ts.num_tasks()];
            for ev in &trace {
                match *ev {
                    TraceEvent::LoadIssued { gpu, data, .. } => {
                        occupied[gpu] += ts.data_size(DataId(data as u32));
                        prop_assert!(
                            occupied[gpu] <= cap[gpu],
                            "{named:?}: GPU {gpu} occupancy {} exceeds current capacity {}",
                            occupied[gpu], cap[gpu]
                        );
                    }
                    TraceEvent::Evicted { gpu, data, .. } => {
                        occupied[gpu] -= ts.data_size(DataId(data as u32));
                    }
                    TraceEvent::CapacityShrunk { gpu, capacity, .. } => {
                        prop_assert!(
                            occupied[gpu] <= capacity,
                            "{named:?}: shrink left occupancy {} above capacity {capacity}",
                            occupied[gpu]
                        );
                        cap[gpu] = capacity;
                    }
                    TraceEvent::TaskStarted { gpu, task, .. } => started_on[task].push(gpu),
                    TraceEvent::TaskFinished { task, .. } => finished[task] += 1,
                    _ => {}
                }
            }
            for t in 0..ts.num_tasks() {
                prop_assert_eq!(
                    finished[t], 1,
                    "{:?}: task {} finished {} times", named, t, finished[t]
                );
                let starts = &started_on[t];
                prop_assert!(!starts.is_empty());
                // Every start except the successful (last) one must have
                // been interrupted by the fail-stop of its GPU.
                for &g in &starts[..starts.len() - 1] {
                    prop_assert_eq!(
                        g, dead_gpu,
                        "{:?}: task {} restarted without its GPU dying", named, t
                    );
                }
            }
            // (d) zero lost tasks.
            let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
            prop_assert_eq!(total, ts.num_tasks());
            // A fail-stop scheduled past the end of the run never fires;
            // when it does fire, the report and trace must agree.
            let traced_failures = trace
                .iter()
                .filter(|e| matches!(e, TraceEvent::GpuFailed { .. }))
                .count() as u64;
            prop_assert!(report.gpu_failures <= 1);
            prop_assert_eq!(report.gpu_failures, traced_failures);
        }
    }

    /// A bus that faults every delivery attempt exhausts the retry budget
    /// with a structured error naming the configured attempt cap — and
    /// does so identically on every run.
    #[test]
    fn fault_transfer_exhaustion(
        ts in arb_taskset(8, 12),
        max_attempts in 1u32..4,
        seed in any::<u64>(),
    ) {
        let spec = PlatformSpec {
            num_gpus: 2,
            memory_bytes: 4,
            bus_bandwidth: 1e9,
            transfer_latency: 10,
            gpu_gflops: 1e-3,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        let config = RunConfig {
            faults: FaultPlan::none().with_transfer_faults(TransferFaultSpec {
                seed,
                fault_ppm: 1_000_000,
                max_attempts,
                backoff_base: 50,
            }),
            ..RunConfig::default()
        };
        let mut a = NamedScheduler::Eager.build();
        let err = memsched::platform::run_with_config(&ts, &spec, a.as_mut(), &config)
            .unwrap_err();
        match &err {
            memsched::platform::RunError::TransferFailed { attempts, .. } => {
                prop_assert_eq!(*attempts, max_attempts);
            }
            other => prop_assert!(false, "expected TransferFailed, got {other:?}"),
        }
        let mut b = NamedScheduler::Eager.build();
        let err2 = memsched::platform::run_with_config(&ts, &spec, b.as_mut(), &config)
            .unwrap_err();
        prop_assert_eq!(err, err2, "exhaustion must replay identically");
    }

    /// DMDA allocation covers every task exactly once.
    #[test]
    fn dmda_allocation_is_partition(ts in arb_taskset(8, 20), gpus in 1usize..4) {
        let spec = PlatformSpec {
            num_gpus: gpus,
            memory_bytes: 1000,
            bus_bandwidth: 1e9,
            transfer_latency: 10,
            gpu_gflops: 1e-3,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        let mut s = memsched::schedulers::DmdaScheduler::dmdar();
        use memsched::platform::Scheduler as _;
        s.prepare(&ts, &spec);
        let mut all: Vec<TaskId> = s.queues().iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<TaskId> = ts.tasks().collect();
        prop_assert_eq!(all, expect);
    }
}
