//! Differential tests of the sharded simulation tier (per-bus-group
//! conservative time-window parallel DES) against the serial flat core.
//!
//! Two properties pin the tier (DESIGN.md §12):
//!
//! 1. **Topology is opt-in**: `bus_groups: None` and an explicit
//!    single-bus grouping (`vec![0; k]`) are byte-identical for every
//!    scheduler family — the multi-bus machinery must not perturb the
//!    pre-topology platform.
//! 2. **Sharding is transparent**: for decomposable families
//!    (hMETIS+R, mHFP, static DMDA/DMDAR) on a two-bus platform, the
//!    sharded run returns the serial run's trace in canonical
//!    `(time, gpu)` order and an identical report (modulo wall-clock
//!    fields), for every worker count — `--shards 1/2/8` — and under
//!    fault plans. Serial errors reproduce exactly.

use memsched::platform::{
    canonicalize_trace, run_sharded, run_with_config, SchedulerFactory, ShardOptions,
};
use memsched::prelude::*;
use proptest::prelude::*;

/// Strategy: a random task set with up to `max_data` unit-size data items
/// and up to `max_tasks` tasks with 1–3 inputs each (the same shape the
/// engine differential tests use).
fn arb_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs = proptest::collection::vec(
                proptest::collection::vec(0..nd as u32, 1..=3),
                mt,
            );
            (Just(nd), inputs)
        })
        .prop_map(|(nd, task_inputs)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
        })
}

fn small_spec(gpus: usize, mem: u64) -> PlatformSpec {
    PlatformSpec {
        num_gpus: gpus,
        memory_bytes: mem, // unit-size items: capacity in items
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-3,
        pipeline_depth: 2,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    }
}

/// Two contiguous bus groups over `gpus` GPUs (the `v100_multibus`
/// block split, on the small differential platform).
fn two_bus_spec(gpus: usize, mem: u64) -> PlatformSpec {
    small_spec(gpus, mem).with_bus_groups((0..gpus).map(|g| g * 2 / gpus).collect())
}

/// Zero the wall-clock fields that legitimately differ between runs,
/// plus the sharding stats (compared separately).
fn strip_walls(mut r: RunReport) -> RunReport {
    r.prepare_wall = 0;
    r.sched_wall = 0;
    for g in &mut r.per_gpu {
        g.sched_wall = 0;
    }
    r.sharding = None;
    r
}

fn full_trace_config(faults: &FaultPlan) -> RunConfig {
    RunConfig {
        trace: TraceMode::Full,
        faults: faults.clone(),
        ..RunConfig::default()
    }
}

/// All five scheduler families of the paper's evaluation.
const ALL_FAMILIES: &[NamedScheduler] = &[
    NamedScheduler::Eager,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
    NamedScheduler::DartsLuf,
];

/// The families whose batch dispatch decomposes per bus group.
const DECOMPOSABLE_FAMILIES: &[NamedScheduler] = &[
    NamedScheduler::Dmda,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
];

/// hMETIS+R's partitioner requires at least one task per part; the
/// degenerate fewer-tasks-than-GPUs shape is not a differential case.
fn skip_degenerate(named: &NamedScheduler, ts: &TaskSet, gpus: usize) -> bool {
    *named == NamedScheduler::HmetisR && ts.num_tasks() < gpus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `bus_groups: None` and the explicit one-bus grouping must be
    /// byte-identical — same trace, same report — for every family: the
    /// per-bus engine state and the group-scoped stealing collapse to
    /// the historical single-bus behavior when every GPU shares bus 0.
    #[test]
    fn one_bus_grouping_is_byte_identical_to_ungrouped(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let flat = small_spec(gpus, mem);
        let grouped = small_spec(gpus, mem).with_bus_groups(vec![0; gpus]);
        let config = full_trace_config(&FaultPlan::none());
        for named in ALL_FAMILIES {
            if skip_degenerate(named, &ts, gpus) {
                continue;
            }
            let label = named.label();
            let (flat_report, flat_trace) =
                run_with_config(&ts, &flat, named.build().as_mut(), &config)
                    .unwrap_or_else(|e| panic!("{label}: flat run failed: {e}"));
            let (grp_report, grp_trace) =
                run_with_config(&ts, &grouped, named.build().as_mut(), &config)
                    .unwrap_or_else(|e| panic!("{label}: grouped run failed: {e}"));
            prop_assert_eq!(&flat_trace, &grp_trace, "{}: traces diverge", label);
            prop_assert_eq!(
                strip_walls(flat_report),
                strip_walls(grp_report),
                "{}: reports diverge",
                label
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a two-bus platform, the sharded tier must reproduce the serial
    /// run for every decomposable family, worker count, and fault plan:
    /// canonical traces equal, reports equal modulo wall clocks, serial
    /// errors replayed exactly. A non-fallback run's trace must already
    /// be in canonical `(time, gpu)` order.
    #[test]
    fn sharded_matches_serial_on_two_buses(
        ts in arb_taskset(10, 20),
        gpus in 2usize..5,
        mem in 3u64..8,
        fault_kind in 0usize..3,
    ) {
        let spec = two_bus_spec(gpus, mem);
        let faults = match fault_kind {
            // Fail-stop of the last GPU mid-run (tasks run ~1e6 ns on
            // the small spec); its bus group may lose its only GPU, in
            // which case serial and sharded must abort identically.
            1 => FaultPlan::none().with_gpu_failure(gpus - 1, 1_500_000),
            2 => FaultPlan::none()
                .with_straggler(0, 500_000, 0.5)
                .with_capacity_shrink(0, 800_000, mem.saturating_sub(1).max(3)),
            _ => FaultPlan::none(),
        };
        let config = full_trace_config(&faults);
        for named in DECOMPOSABLE_FAMILIES {
            if skip_degenerate(named, &ts, gpus) {
                continue;
            }
            let label = named.label();
            let serial = run_with_config(&ts, &spec, named.build().as_mut(), &config);
            let factory: SchedulerFactory<'_> = &|| named.build();
            for shards in [1usize, 2, 8] {
                let sharded = run_sharded(&ts, &spec, factory, &config, &ShardOptions { shards });
                match (&serial, &sharded) {
                    (Ok((serial_report, serial_trace)), Ok((report, trace))) => {
                        let canonical = canonicalize_trace(serial_trace);
                        let stats = report.sharding.clone().expect("sharded stats");
                        if stats.fallback_reason.is_none() {
                            prop_assert_eq!(stats.shards_used, 2, "{}", label);
                            // Non-fallback output is already canonical.
                            prop_assert_eq!(
                                trace,
                                &canonical,
                                "{} shards={}: trace not the canonical serial stream",
                                label,
                                shards
                            );
                        } else {
                            prop_assert_eq!(
                                &canonicalize_trace(trace),
                                &canonical,
                                "{} shards={} (fallback {:?}): traces diverge",
                                label,
                                shards,
                                stats.fallback_reason
                            );
                        }
                        prop_assert_eq!(
                            strip_walls(report.clone()),
                            strip_walls(serial_report.clone()),
                            "{} shards={}: reports diverge",
                            label,
                            shards
                        );
                    }
                    (Err(se), Err(he)) => {
                        prop_assert_eq!(
                            format!("{se:?}"),
                            format!("{he:?}"),
                            "{} shards={}: different errors",
                            label,
                            shards
                        );
                    }
                    (serial, sharded) => panic!(
                        "{label} shards={shards}: outcomes disagree:\n  serial:  {:?}\n  sharded: {:?}",
                        serial.as_ref().map(|(r, _)| r.makespan),
                        sharded.as_ref().map(|(r, _)| r.makespan),
                    ),
                }
            }
        }
    }
}
