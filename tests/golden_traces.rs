//! Golden-trace regression tests: one tiny fixed workload per scheduler
//! family, the full `TraceEvent` log rendered to a stable text form and
//! diffed against a snapshot under `tests/golden/`. Any change to engine
//! event ordering, bus modelling, eviction decisions or a scheduler's
//! policy shows up here as a readable diff.
//!
//! To regenerate the snapshots after an intentional change:
//! `MEMSCHED_UPDATE_GOLDEN=1 cargo test --test golden_traces`.

use memsched::platform::TraceEvent;
use memsched::prelude::*;
use memsched::workloads::constants::GEMM2D_DATA_BYTES;
use std::path::PathBuf;

/// Stable one-line rendering of an event. Field order and formatting are
/// part of the snapshot contract — do not reorder.
fn render_event(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::LoadIssued {
            at,
            gpu,
            data,
            done_at,
        } => format!("{at:>12} gpu{gpu} load-issued  data={data} done_at={done_at}"),
        TraceEvent::LoadDone { at, gpu, data } => {
            format!("{at:>12} gpu{gpu} load-done    data={data}")
        }
        TraceEvent::Evicted { at, gpu, data } => {
            format!("{at:>12} gpu{gpu} evicted      data={data}")
        }
        TraceEvent::TaskStarted { at, gpu, task } => {
            format!("{at:>12} gpu{gpu} task-started task={task}")
        }
        TraceEvent::TaskFinished { at, gpu, task } => {
            format!("{at:>12} gpu{gpu} task-finished task={task}")
        }
        // Fault events never appear in these fault-free golden runs, but
        // the match stays exhaustive so a new variant forces a decision.
        TraceEvent::GpuFailed { at, gpu } => {
            format!("{at:>12} gpu{gpu} gpu-failed")
        }
        TraceEvent::TransferRetry { at, gpu, data, attempt } => {
            format!("{at:>12} gpu{gpu} transfer-retry data={data} attempt={attempt}")
        }
        TraceEvent::CapacityShrunk { at, gpu, capacity } => {
            format!("{at:>12} gpu{gpu} capacity-shrunk capacity={capacity}")
        }
        TraceEvent::GpuSlowed { at, gpu, factor } => {
            format!("{at:>12} gpu{gpu} gpu-slowed factor={factor}")
        }
        // Admission events appear only in the stream snapshots
        // (golden_stream_traces.rs); batch goldens stay free of them.
        TraceEvent::TaskArrived { at, task } => {
            format!("{at:>12} adm  task-arrived  task={task}")
        }
        TraceEvent::TaskAdmitted { at, task } => {
            format!("{at:>12} adm  task-admitted task={task}")
        }
        TraceEvent::TaskDeferred { at, task } => {
            format!("{at:>12} adm  task-deferred task={task}")
        }
        // Shedding events require a non-default ShedPolicy, so they can
        // never appear in these DeferOnly-or-batch golden runs.
        TraceEvent::TaskShed { at, task } => {
            format!("{at:>12} adm  task-shed     task={task}")
        }
        TraceEvent::DeadlineExpired { at, task } => {
            format!("{at:>12} adm  deadline-expired task={task}")
        }
    }
}

fn render_trace(named: &NamedScheduler) -> String {
    // Tiny but non-trivial: 3x3 outer-product tiles under memory pressure
    // on 2 GPUs, so loads, evictions and both GPUs all appear.
    let ts = memsched::workloads::gemm_2d(3);
    let spec = PlatformSpec::v100(2).with_memory(4 * GEMM2D_DATA_BYTES);
    let config = RunConfig {
        trace: TraceMode::Full,
        ..RunConfig::default()
    };
    let mut sched = named.build();
    let (report, trace) =
        run_with_config(&ts, &spec, sched.as_mut(), &config).expect("golden run");
    let mut out = format!(
        "# scheduler: {}\n# workload: gemm_2d(3), 2x V100, M = 4 tiles\n",
        report.scheduler
    );
    for ev in &trace {
        out.push_str(&render_event(ev));
        out.push('\n');
    }
    out.push_str(&format!(
        "# makespan={} loads={} evictions={}\n",
        report.makespan, report.total_loads, report.total_evictions
    ));
    out
}

fn check_golden(name: &str, named: NamedScheduler) {
    let got = render_trace(&named);
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("MEMSCHED_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path:?} ({e}); run with MEMSCHED_UPDATE_GOLDEN=1 to create"));
    if got != want {
        // Show the first diverging line for a readable failure.
        let diverge = got
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        panic!(
            "golden trace {name} differs at line {}:\n  expected: {}\n  actual:   {}\n\
             (rerun with MEMSCHED_UPDATE_GOLDEN=1 if the change is intentional)",
            diverge + 1,
            want.lines().nth(diverge).unwrap_or("<eof>"),
            got.lines().nth(diverge).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn golden_trace_eager() {
    check_golden("eager.trace", NamedScheduler::Eager);
}

#[test]
fn golden_trace_dmdar() {
    check_golden("dmdar.trace", NamedScheduler::Dmdar);
}

#[test]
fn golden_trace_mhfp() {
    check_golden("mhfp.trace", NamedScheduler::Mhfp);
}

#[test]
fn golden_trace_darts_luf() {
    check_golden("darts_luf.trace", NamedScheduler::DartsLuf);
}
