//! Golden traces for the online serving mode: the same tiny workload as
//! `golden_traces.rs`, but fed through the admission loop on a fixed
//! seeded Poisson arrival trace. The snapshot pins the full event stream
//! — arrivals, admissions, defers, loads, evictions, task execution — so
//! any change to the admission loop, to a scheduler's horizon-limited
//! variant, or to stream event ordering shows up as a readable diff.
//!
//! To regenerate after an intentional change:
//! `MEMSCHED_UPDATE_GOLDEN=1 cargo test --test golden_stream_traces`.
//!
//! The last test is the zero-cost assertion: running the *batch* golden
//! workload online with every arrival at t = 0 must reproduce the batch
//! snapshot (`tests/golden/eager.trace`) exactly once the admission
//! bookkeeping lines are dropped — the serving mode costs nothing when
//! the horizon is full.

use memsched::platform::TraceEvent;
use memsched::prelude::*;
use memsched::workloads::constants::GEMM2D_DATA_BYTES;
use memsched::workloads::prefix::{prefix_tree, PrefixConfig};
use memsched::workloads::{gemm_2d, open_loop_arrivals, ArrivalPattern};
use std::path::PathBuf;

/// Stable one-line rendering, superset of the batch golden format: the
/// admission events render on the `adm` pseudo-track.
fn render_event(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::LoadIssued {
            at,
            gpu,
            data,
            done_at,
        } => format!("{at:>12} gpu{gpu} load-issued  data={data} done_at={done_at}"),
        TraceEvent::LoadDone { at, gpu, data } => {
            format!("{at:>12} gpu{gpu} load-done    data={data}")
        }
        TraceEvent::Evicted { at, gpu, data } => {
            format!("{at:>12} gpu{gpu} evicted      data={data}")
        }
        TraceEvent::TaskStarted { at, gpu, task } => {
            format!("{at:>12} gpu{gpu} task-started task={task}")
        }
        TraceEvent::TaskFinished { at, gpu, task } => {
            format!("{at:>12} gpu{gpu} task-finished task={task}")
        }
        TraceEvent::TaskArrived { at, task } => {
            format!("{at:>12} adm  task-arrived  task={task}")
        }
        TraceEvent::TaskAdmitted { at, task } => {
            format!("{at:>12} adm  task-admitted task={task}")
        }
        TraceEvent::TaskDeferred { at, task } => {
            format!("{at:>12} adm  task-deferred task={task}")
        }
        // Shedding events require a non-default ShedPolicy; these
        // DeferOnly snapshots can never contain them.
        TraceEvent::TaskShed { at, task } => {
            format!("{at:>12} adm  task-shed     task={task}")
        }
        TraceEvent::DeadlineExpired { at, task } => {
            format!("{at:>12} adm  deadline-expired task={task}")
        }
        // Fault events never appear in these fault-free stream runs.
        TraceEvent::GpuFailed { at, gpu } => {
            format!("{at:>12} gpu{gpu} gpu-failed")
        }
        TraceEvent::TransferRetry {
            at,
            gpu,
            data,
            attempt,
        } => format!("{at:>12} gpu{gpu} transfer-retry data={data} attempt={attempt}"),
        TraceEvent::CapacityShrunk { at, gpu, capacity } => {
            format!("{at:>12} gpu{gpu} capacity-shrunk capacity={capacity}")
        }
        TraceEvent::GpuSlowed { at, gpu, factor } => {
            format!("{at:>12} gpu{gpu} gpu-slowed factor={factor}")
        }
    }
}

/// The batch golden workload with a fixed Poisson stream stamped on it:
/// gemm_2d(3) on 2 V100s at M = 4 tiles, arrivals at 2000 req/s from
/// seed 42 — slow enough that the horizon is genuinely partial, fast
/// enough that queues form.
fn stream_workload() -> (TaskSet, PlatformSpec) {
    let base = gemm_2d(3);
    let arrivals = open_loop_arrivals(
        &ArrivalPattern::Poisson {
            rate_per_sec: 2000.0,
        },
        42,
        base.num_tasks(),
    );
    let ts = base.with_arrivals(arrivals);
    let spec = PlatformSpec::v100(2).with_memory(4 * GEMM2D_DATA_BYTES);
    (ts, spec)
}

/// The router golden rides its native workload: a tiny seeded prefix
/// tree (depth 3 × fanout 2 — 14 nodes, 8 leaves) streamed at the same
/// Poisson rate, with memory tight enough that evictions appear in the
/// snapshot and pin `choose_victim` alongside the routing decisions.
fn prefix_stream_workload() -> (TaskSet, PlatformSpec) {
    let cfg = PrefixConfig {
        depth: 3,
        fanout: 2,
        tasks: 16,
        item_bytes: 1 << 20,
        zipf_s: 1.1,
        seed: 42,
    };
    let base = prefix_tree(&cfg);
    let arrivals = open_loop_arrivals(
        &ArrivalPattern::Poisson {
            rate_per_sec: 2000.0,
        },
        42,
        base.num_tasks(),
    );
    let ts = base.with_arrivals(arrivals);
    let spec = PlatformSpec::v100(2).with_memory(5 * cfg.item_bytes);
    (ts, spec)
}

fn render_stream_trace_on(
    named: &NamedScheduler,
    (ts, spec): (TaskSet, PlatformSpec),
    workload_line: &str,
) -> String {
    let config = RunConfig {
        trace: TraceMode::Full,
        admission: Some(AdmissionConfig::default()),
        ..RunConfig::default()
    };
    let mut sched = named.build();
    let (report, trace) =
        run_with_config(&ts, &spec, sched.as_mut(), &config).expect("golden stream run");
    let mut out = format!(
        "# scheduler: {} (online)\n# workload: {workload_line}\n",
        report.scheduler
    );
    for ev in &trace {
        out.push_str(&render_event(ev));
        out.push('\n');
    }
    let stats = report.online.expect("stream run reports online stats");
    out.push_str(&format!(
        "# makespan={} loads={} evictions={} admitted={} deferred={} p50_latency={} p99_latency={}\n",
        report.makespan,
        report.total_loads,
        report.total_evictions,
        stats.tasks_admitted,
        stats.tasks_deferred,
        stats.p50_latency,
        stats.p99_latency,
    ));
    out
}

fn render_stream_trace(named: &NamedScheduler) -> String {
    render_stream_trace_on(
        named,
        stream_workload(),
        "gemm_2d(3) + poisson(2000/s, seed 42), 2x V100, M = 4 tiles",
    )
}

fn check_golden(name: &str, named: NamedScheduler) {
    check_golden_with(name, &named, render_stream_trace(&named));
}

fn check_golden_with(name: &str, _named: &NamedScheduler, got: String) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var("MEMSCHED_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {path:?} ({e}); run with MEMSCHED_UPDATE_GOLDEN=1 to create")
    });
    if got != want {
        let diverge = got
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        panic!(
            "golden stream trace {name} differs at line {}:\n  expected: {}\n  actual:   {}\n\
             (rerun with MEMSCHED_UPDATE_GOLDEN=1 if the change is intentional)",
            diverge + 1,
            want.lines().nth(diverge).unwrap_or("<eof>"),
            got.lines().nth(diverge).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn golden_stream_eager() {
    check_golden("eager.stream.trace", NamedScheduler::Eager);
}

#[test]
fn golden_stream_dmdar() {
    check_golden("dmdar.stream.trace", NamedScheduler::Dmdar);
}

#[test]
fn golden_stream_mhfp() {
    check_golden("mhfp.stream.trace", NamedScheduler::Mhfp);
}

#[test]
fn golden_stream_darts_luf() {
    check_golden("darts_luf.stream.trace", NamedScheduler::DartsLuf);
}

/// The router family, on its native workload: a seeded prefix-tree
/// stream under memory pressure. Pins the `recomp + α·load` routing
/// decisions, the LUF-or-LRU eviction choices and the admission
/// interleaving in one readable snapshot.
#[test]
fn golden_stream_router() {
    let named = NamedScheduler::Router;
    let got = render_stream_trace_on(
        &named,
        prefix_stream_workload(),
        "prefix(depth=3,fanout=2,tasks=16,seed=42) + poisson(2000/s, seed 42), \
         2x V100, M = 5 MiB",
    );
    check_golden_with("router.stream.trace", &named, got);
}

/// Zero-cost assertion: the batch golden snapshot is reproduced by an
/// online run whose arrivals are all at t = 0, admission lines aside.
/// This pins — in CI, against the checked-in batch snapshot — that
/// enabling the serving mode cannot perturb offline results.
#[test]
fn online_t0_reproduces_batch_golden() {
    let ts = gemm_2d(3).with_arrivals(vec![0; 9]);
    let spec = PlatformSpec::v100(2).with_memory(4 * GEMM2D_DATA_BYTES);
    let config = RunConfig {
        trace: TraceMode::Full,
        admission: Some(AdmissionConfig::default()),
        ..RunConfig::default()
    };
    let mut sched = NamedScheduler::Eager.build();
    let (report, trace) =
        run_with_config(&ts, &spec, sched.as_mut(), &config).expect("t=0 online run");
    let mut got = format!(
        "# scheduler: {}\n# workload: gemm_2d(3), 2x V100, M = 4 tiles\n",
        report.scheduler
    );
    for ev in trace.iter().filter(|ev| {
        !matches!(
            ev,
            TraceEvent::TaskArrived { .. }
                | TraceEvent::TaskAdmitted { .. }
                | TraceEvent::TaskDeferred { .. }
        )
    }) {
        got.push_str(&render_event(ev));
        got.push('\n');
    }
    got.push_str(&format!(
        "# makespan={} loads={} evictions={}\n",
        report.makespan, report.total_loads, report.total_evictions
    ));
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", "eager.trace"]
        .iter()
        .collect();
    let want = std::fs::read_to_string(&path).expect("batch golden snapshot");
    assert_eq!(
        got, want,
        "t=0 online EAGER run does not reproduce the batch golden trace"
    );
}
