//! Chaos/soak harness: randomized seeded fault plans × overload traffic
//! × every online scheduler family × every shed policy × 1/2/8 pool
//! workers. Each composition must uphold the hard serving invariants:
//!
//! 1. **Exactly-once outcomes** — every arrival is admitted and finished
//!    exactly once, or shed/expired exactly once, never both;
//! 2. **No shed task ever executes** — a `TaskShed`/`DeadlineExpired`
//!    task never has a `TaskStarted` (or any later) event;
//! 3. **Same-seed determinism** — the identical composition replays a
//!    byte-identical event stream, on 1, 2 and 8 pool workers alike;
//! 4. **`DeferOnly` is a conservative extension** — deadline and class
//!    metadata on the task set cannot perturb a `DeferOnly` stream by
//!    a single byte (the golden-trace-compatibility guarantee);
//! 5. **Bounded backlog under `PriorityShed`** — the deferred queue
//!    never holds more than `max_backlog` tasks at once, replayed from
//!    the trace.
//!
//! The default run is the quick CI tier (a few seeds). Set
//! `MEMSCHED_SOAK=N` to soak N seeds; `crates/experiments/src/bin/chaos.rs`
//! wraps the same matrix as a standalone driver with CSV output.

use memsched::experiments::chaos::{
    check_invariants, compose, config_for, digest, run_cell, FAMILIES, POLICIES,
};
use memsched::experiments::pool;
use memsched::prelude::*;

fn soak_seeds() -> Vec<u64> {
    let n = std::env::var("MEMSCHED_SOAK")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(4); // quick CI tier
    (1..=n).collect()
}

/// The full chaos matrix: invariants 1, 2 and 5 per cell, determinism
/// (invariant 3) per composition, across 1/2/8 pool workers.
#[test]
fn chaos_matrix_upholds_serving_invariants() {
    for seed in soak_seeds() {
        let chaos = compose(seed);
        let cells: Vec<(NamedScheduler, ShedPolicy)> = FAMILIES
            .iter()
            .flat_map(|f| POLICIES.iter().map(move |&p| (f.clone(), p)))
            .collect();
        // Invariant 3: the digest of every cell is identical on 1, 2 and
        // 8 workers — the pool can only change wall-clock, not decisions.
        let run_all = |jobs: usize| -> Vec<String> {
            pool::run_indexed(&cells, jobs, |_, (named, policy)| {
                digest(&chaos, named, *policy)
            })
        };
        let one = run_all(1);
        assert_eq!(one, run_all(2), "seed {seed}: 1 vs 2 workers diverge");
        assert_eq!(one, run_all(8), "seed {seed}: 1 vs 8 workers diverge");
        // Re-digest serially: same-seed reruns replay the same stream.
        for (i, (named, policy)) in cells.iter().enumerate() {
            assert_eq!(
                one[i],
                digest(&chaos, named, *policy),
                "seed {seed}: {named:?}/{policy:?} not reproducible"
            );
        }
        // Per-cell invariants on the actual traces.
        for (named, policy) in &cells {
            let policy = *policy;
            match run_cell(&chaos, named, policy) {
                Ok((report, trace)) => check_invariants(&chaos, named, policy, &trace, &report),
                Err(e) => {
                    // Only the legacy DeferOnly policy may wedge on a
                    // fault-stranded deferral; shedding must complete.
                    assert_eq!(
                        policy,
                        ShedPolicy::DeferOnly,
                        "seed {seed}: {named:?}/{policy:?} failed: {e:?}"
                    );
                    assert!(
                        matches!(e, RunError::SchedulerStuck { .. }),
                        "seed {seed}: {named:?}: unexpected error {e:?}"
                    );
                }
            }
        }
    }
}

/// Invariant 4: deadline and class metadata is invisible to `DeferOnly`.
/// The stamped and the plain task set replay byte-identical streams for
/// every family and every composition — the standing guarantee that the
/// checked-in golden traces never need regeneration for overload work.
#[test]
fn defer_only_ignores_overload_metadata() {
    for seed in soak_seeds() {
        let chaos = compose(seed);
        let config = config_for(&chaos, ShedPolicy::DeferOnly);
        for named in FAMILIES {
            let mut a = named.build();
            let ra = memsched::platform::run_with_config(
                &chaos.ts,
                &chaos.spec,
                a.as_mut(),
                &config,
            );
            let mut b = named.build();
            let rb = memsched::platform::run_with_config(
                &chaos.plain,
                &chaos.spec,
                b.as_mut(),
                &config,
            );
            match (ra, rb) {
                (Ok((_, ta)), Ok((_, tb))) => {
                    assert_eq!(
                        ta, tb,
                        "seed {seed}: {named:?}: DeferOnly perturbed by metadata"
                    );
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(format!("{ea:?}"), format!("{eb:?}"));
                }
                (a, b) => panic!(
                    "seed {seed}: {named:?}: outcome changed with metadata: \
                     {:?} vs {:?}",
                    a.map(|(r, _)| r.makespan),
                    b.map(|(r, _)| r.makespan)
                ),
            }
        }
    }
}
