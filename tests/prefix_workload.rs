//! Property and differential tests for the prefix-tree workload
//! generator (`workloads::prefix`) and the sweep built on it:
//!
//! 1. **Chain property** — every generated task's input set is exactly
//!    one root-to-leaf chain of the BFS tree: `depth` ascending node
//!    ids, each the parent of the next, starting at a parentless
//!    level-0 node.
//! 2. **Seeded determinism across workers** — the `prefix_route` sweep
//!    digests byte-identically on 1, 2 and 8 pool workers (`--jobs`
//!    can only change wall-clock, never decisions), and a same-seed
//!    rerun replays the same rows.
//! 3. **Zipf monotonicity** — the rank-0 leaf outdraws the coldest
//!    leaf, and raising the Zipf exponent never cools the head.
//! 4. **Depth-1 differential** — a 1-deep tree degenerates to the
//!    independent single-input-tasks shape: rebuilding the same tasks
//!    by hand through `TaskSetBuilder` yields a byte-identical engine
//!    trace under both a batch and a streaming run.

use memsched::experiments::pool;
use memsched::experiments::prefix_route::{
    run_cell, schedulers, sweep_spec, sweep_taskset, SweepConfig,
};
use memsched::platform::run_with_config;
use memsched::prelude::*;
use memsched::workloads::prefix::{
    leaf_count, node_count, parent_of, prefix_tree, task_leaf, PrefixConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: inputs are exactly a root-to-leaf parent chain.
    #[test]
    fn task_inputs_are_root_to_leaf_chains(
        depth in 1usize..=5,
        fanout in 1usize..=4,
        tasks in 1usize..=40,
        seed in 0u64..1000,
    ) {
        let cfg = PrefixConfig {
            depth,
            fanout,
            tasks,
            item_bytes: 1 << 12,
            zipf_s: 1.0,
            seed,
        };
        let ts = prefix_tree(&cfg);
        prop_assert_eq!(ts.num_data(), node_count(depth, fanout));
        for t in ts.tasks() {
            let path: Vec<usize> =
                ts.inputs(t).iter().map(|&d| d as usize).collect();
            prop_assert_eq!(path.len(), depth, "one node per level");
            prop_assert_eq!(
                parent_of(path[0], depth, fanout), None,
                "paths start at a level-0 node"
            );
            for w in path.windows(2) {
                prop_assert_eq!(
                    parent_of(w[1], depth, fanout),
                    Some(w[0]),
                    "consecutive inputs must be parent and child"
                );
            }
            // The deepest input is a leaf the popularity accounting
            // can name.
            let leaf = task_leaf(&ts, t, depth, fanout);
            prop_assert!(leaf < leaf_count(depth, fanout));
        }
    }

    /// Invariant 3 (head vs tail): under a hot Zipf head the rank-0
    /// leaf outdraws the coldest rank, for every seed.
    #[test]
    fn zipf_head_outdraws_tail(seed in 0u64..200) {
        let cfg = PrefixConfig {
            depth: 2,
            fanout: 4,
            tasks: 3000,
            item_bytes: 1 << 12,
            zipf_s: 1.2,
            seed,
        };
        let ts = prefix_tree(&cfg);
        let counts = leaf_counts(&ts, cfg.depth, cfg.fanout);
        prop_assert!(
            counts[0] > counts[counts.len() - 1],
            "rank 0 drew {} <= coldest {}",
            counts[0],
            counts[counts.len() - 1]
        );
    }

    /// Invariant 3 (monotonicity in the exponent): raising `zipf_s`
    /// never cools the head — the rank-0 share is non-decreasing across
    /// 0.0 (uniform), 0.6, 1.2 and 1.8.
    #[test]
    fn zipf_head_share_is_monotone_in_s(seed in 0u64..100) {
        let share = |s: f64| {
            let cfg = PrefixConfig {
                depth: 2,
                fanout: 4,
                tasks: 4000,
                item_bytes: 1 << 12,
                zipf_s: s,
                seed,
            };
            let ts = prefix_tree(&cfg);
            leaf_counts(&ts, cfg.depth, cfg.fanout)[0]
        };
        let shares: Vec<usize> =
            [0.0, 0.6, 1.2, 1.8].iter().map(|&s| share(s)).collect();
        for w in shares.windows(2) {
            prop_assert!(
                w[0] <= w[1],
                "hotter exponent cooled the head: {:?}",
                shares
            );
        }
    }
}

/// Per-leaf draw counts, hottest rank first.
fn leaf_counts(ts: &TaskSet, depth: usize, fanout: usize) -> Vec<usize> {
    let mut counts = vec![0usize; leaf_count(depth, fanout)];
    for t in ts.tasks() {
        counts[task_leaf(ts, t, depth, fanout)] += 1;
    }
    counts
}

/// Invariant 2: the `prefix_route` sweep digests identically on 1, 2
/// and 8 pool workers, and a same-seed rerun replays the same rows.
#[test]
fn sweep_rows_stable_across_jobs() {
    let cfg = SweepConfig {
        tasks: 60,
        rate_per_sec: 3000.0,
        seed: 11,
    };
    let ts = sweep_taskset(&cfg);
    let cells: Vec<(f64, memsched::schedulers::NamedScheduler)> = [0.5, 2.0]
        .iter()
        .flat_map(|&p| schedulers().into_iter().map(move |s| (p, s)))
        .collect();
    let digest_all = |jobs: usize| -> Vec<String> {
        pool::run_indexed(&cells, jobs, |_, (pressure, named)| {
            let spec = sweep_spec(&ts, *pressure);
            let report = run_cell(&ts, &spec, named).expect("cell runs");
            let o = report.online.expect("online run");
            format!(
                "{}@{pressure}: makespan={} moved={} p99={} evict={}",
                report.scheduler,
                report.makespan,
                report.total_load_bytes,
                o.p99_latency,
                report.total_evictions
            )
        })
    };
    let one = digest_all(1);
    assert_eq!(one, digest_all(2), "1 vs 2 workers diverge");
    assert_eq!(one, digest_all(8), "1 vs 8 workers diverge");
    assert_eq!(one, digest_all(1), "same-seed rerun diverges");
}

/// Invariant 4: a depth-1 tree is the independent single-input-tasks
/// shape. Rebuilding the same tasks by hand must give a byte-identical
/// engine trace, batch and streaming alike.
#[test]
fn depth_one_matches_independent_tasks() {
    let cfg = PrefixConfig {
        depth: 1,
        fanout: 12,
        tasks: 80,
        item_bytes: 1 << 16,
        zipf_s: 0.9,
        seed: 5,
    };
    let tree = prefix_tree(&cfg);

    // The independent-tasks reconstruction: one data item per node, one
    // single-input task per request — the shape the pre-prefix
    // generators produce.
    let mut b = TaskSetBuilder::new();
    let data: Vec<DataId> = tree.data().map(|d| b.add_data(tree.data_size(d))).collect();
    for t in tree.tasks() {
        let ins = tree.inputs(t);
        assert_eq!(ins.len(), 1, "virtual root must carry no data");
        b.add_task(&[data[ins[0] as usize]], tree.flops(t));
    }
    let flat = b.build();

    let spec = PlatformSpec::v100(2).with_memory(8 * cfg.item_bytes);
    for arrivals in [None, Some(3_000_000u64)] {
        let stamp = |ts: &TaskSet| match arrivals {
            None => ts.clone(),
            // A fixed-stride arrival ramp exercises the admission loop.
            Some(stride) => ts.clone().with_arrivals(
                (0..ts.num_tasks() as u64).map(|i| i * stride).collect(),
            ),
        };
        let config = RunConfig {
            admission: arrivals.map(|_| AdmissionConfig::default()),
            ..RunConfig::default()
        };
        let run_one = |ts: &TaskSet| {
            let mut sched = memsched::schedulers::NamedScheduler::Dmdar.build();
            run_with_config(&stamp(ts), &spec, sched.as_mut(), &config)
                .expect("run succeeds")
        };
        let (report_t, trace_t) = run_one(&tree);
        let (report_f, trace_f) = run_one(&flat);
        assert_eq!(trace_t, trace_f, "traces diverge (arrivals: {arrivals:?})");
        assert_eq!(report_t.makespan, report_f.makespan);
        assert_eq!(
            report_t.total_load_bytes,
            report_f.total_load_bytes
        );
    }
}
