//! Trace-level integration tests: fine-grained invariants of the engine
//! that hold for every scheduler, verified from the event log.

use memsched::platform::{analysis, run_with_config, RunConfig, TraceEvent};
use memsched::prelude::*;
use memsched::workloads::{self, constants::GEMM2D_DATA_BYTES};
use std::collections::HashSet;

fn traced(
    named: &NamedScheduler,
    ts: &TaskSet,
    spec: &PlatformSpec,
) -> (RunReport, Vec<TraceEvent>) {
    let mut sched = named.build();
    run_with_config(
        ts,
        spec,
        sched.as_mut(),
        &RunConfig {
            trace: TraceMode::Full,
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("{named:?}: {e}"))
}

fn all_schedulers() -> Vec<NamedScheduler> {
    vec![
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::HmetisR,
        NamedScheduler::Mhfp,
        NamedScheduler::Darts,
        NamedScheduler::DartsLuf,
        NamedScheduler::DartsLufOpti3,
        NamedScheduler::Router,
    ]
}

/// No task may start before every one of its inputs was loaded onto its
/// GPU (and not evicted since) — replayed directly from the trace.
#[test]
fn tasks_only_start_with_resident_inputs() {
    let ts = workloads::gemm_2d(8);
    let spec = PlatformSpec::v100(2).with_memory(5 * GEMM2D_DATA_BYTES);
    for named in all_schedulers() {
        let (_, trace) = traced(&named, &ts, &spec);
        let mut resident: Vec<HashSet<usize>> = vec![HashSet::new(); 2];
        for ev in &trace {
            match *ev {
                TraceEvent::LoadDone { gpu, data, .. } => {
                    resident[gpu].insert(data);
                }
                TraceEvent::Evicted { gpu, data, .. } => {
                    assert!(
                        resident[gpu].remove(&data),
                        "{named:?}: evicted non-resident D{data} on GPU{gpu}"
                    );
                }
                TraceEvent::TaskStarted { gpu, task, .. } => {
                    for &d in ts.inputs(TaskId(task as u32)) {
                        assert!(
                            resident[gpu].contains(&(d as usize)),
                            "{named:?}: T{task} started without D{d} on GPU{gpu}"
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Every task appears exactly once as Started and once as Finished, on
/// the same GPU, with start ≤ finish.
#[test]
fn every_task_runs_exactly_once() {
    let ts = workloads::gemm_2d(8);
    let spec = PlatformSpec::v100(2).with_memory(6 * GEMM2D_DATA_BYTES);
    for named in all_schedulers() {
        let (_, trace) = traced(&named, &ts, &spec);
        let mut started = vec![None; ts.num_tasks()];
        let mut finished = vec![false; ts.num_tasks()];
        for ev in &trace {
            match *ev {
                TraceEvent::TaskStarted { at, gpu, task } => {
                    assert!(started[task].is_none(), "{named:?}: T{task} started twice");
                    started[task] = Some((at, gpu));
                }
                TraceEvent::TaskFinished { at, gpu, task } => {
                    let (s, g) = started[task].expect("finish without start");
                    assert_eq!(g, gpu, "{named:?}: T{task} moved GPUs mid-flight");
                    assert!(s <= at);
                    assert!(!finished[task], "{named:?}: T{task} finished twice");
                    finished[task] = true;
                }
                _ => {}
            }
        }
        assert!(finished.iter().all(|&f| f), "{named:?}: lost tasks");
    }
}

/// Loads minus evictions equals the data still resident at the end — and
/// that never exceeds the memory capacity.
#[test]
fn load_evict_conservation() {
    let ts = workloads::gemm_2d(8);
    let cap_items = 5u64;
    let spec = PlatformSpec::v100(2).with_memory(cap_items * GEMM2D_DATA_BYTES);
    for named in all_schedulers() {
        let (report, trace) = traced(&named, &ts, &spec);
        for g in 0..2 {
            let loads = trace
                .iter()
                .filter(|e| matches!(e, TraceEvent::LoadDone { gpu, .. } if *gpu == g))
                .count() as u64;
            let evictions = trace
                .iter()
                .filter(|e| matches!(e, TraceEvent::Evicted { gpu, .. } if *gpu == g))
                .count() as u64;
            assert_eq!(loads, report.per_gpu[g].loads, "{named:?}");
            assert_eq!(evictions, report.per_gpu[g].evictions, "{named:?}");
            let final_resident = loads - evictions;
            assert!(
                final_resident <= cap_items,
                "{named:?}: GPU{g} ends with {final_resident} > {cap_items} items"
            );
        }
    }
}

/// The analysis module agrees with the report, and overlap ratios are
/// proper fractions.
#[test]
fn analysis_is_consistent_for_every_scheduler() {
    let ts = workloads::gemm_2d(10);
    let spec = PlatformSpec::v100(2).with_memory(6 * GEMM2D_DATA_BYTES);
    for named in all_schedulers() {
        let (report, trace) = traced(&named, &ts, &spec);
        let a = analysis::analyze_checked(&report, &trace);
        assert!(a.makespan <= report.makespan, "{named:?}");
        assert!(a.bus_utilization() <= 1.0, "{named:?}");
        assert!((0.0..=1.0).contains(&a.overlap_ratio()), "{named:?}");
        assert!(a.mean_gpu_occupancy() <= 1.0, "{named:?}");
        // A memory-feasible workload keeps GPUs mostly busy for the good
        // schedulers; at minimum, occupancy is non-zero.
        assert!(a.mean_gpu_occupancy() > 0.0, "{named:?}");
    }
}

/// NVLink recovers throughput for replication-heavy schedulers under
/// memory pressure, and the accounting splits PCI vs NVLink traffic.
#[test]
fn nvlink_reduces_pci_traffic() {
    let ts = workloads::gemm_2d(24);
    let mem = 8 * GEMM2D_DATA_BYTES;
    let pci = PlatformSpec::v100(4).with_memory(mem);
    let mut nvl = pci.clone();
    nvl.nvlink_bandwidth = Some(memsched::platform::NVLINK_BANDWIDTH);

    for named in [NamedScheduler::Eager, NamedScheduler::DartsLuf] {
        let mut s1 = named.build();
        let base = memsched::platform::run(&ts, &pci, s1.as_mut()).unwrap();
        let mut s2 = named.build();
        let linked = memsched::platform::run(&ts, &nvl, s2.as_mut()).unwrap();
        assert_eq!(base.nvlink_mb(), 0.0);
        assert!(
            linked.nvlink_mb() > 0.0,
            "{named:?}: expected some peer traffic"
        );
        assert!(
            linked.pci_transfers_mb() < base.transfers_mb(),
            "{named:?}: PCI traffic should shrink ({} vs {})",
            linked.pci_transfers_mb(),
            base.transfers_mb()
        );
        // Makespan should not regress (the fabric only adds capacity).
        assert!(
            linked.makespan <= base.makespan + base.makespan / 10,
            "{named:?}: NVLink regressed the makespan"
        );
    }
}

/// Deterministic replay: two traced runs of the same configuration are
/// identical event-for-event.
#[test]
fn traces_are_deterministic() {
    let ts = workloads::gemm_2d_random(10, 4);
    let spec = PlatformSpec::v100(2).with_memory(5 * GEMM2D_DATA_BYTES);
    for named in [NamedScheduler::DartsLuf, NamedScheduler::Dmdar] {
        let (r1, t1) = traced(&named, &ts, &spec);
        let (r2, t2) = traced(&named, &ts, &spec);
        assert_eq!(r1.makespan, r2.makespan, "{named:?}");
        assert_eq!(t1, t2, "{named:?}: traces differ between runs");
    }
}
