//! Cross-substrate consistency: the discrete-event engine and the offline
//! replay model of §III must agree on load counts when driven with the
//! same order, memory and eviction policy.

use memsched::prelude::*;
use memsched::workloads;

/// With a FIFO scheduler, pipeline depth 1 (no prefetch ahead) and LRU
/// eviction, the engine performs exactly the loads the offline replay
/// predicts — the simulator *is* the model plus time.
#[test]
fn engine_matches_offline_replay_under_lru() {
    for n in [6usize, 10, 14] {
        for cap_items in [3u64, 5, 8, 12] {
            let ts = workloads::gemm_2d(n);
            let item = ts.data_size(DataId(0));
            let spec = PlatformSpec::v100(1)
                .with_memory(cap_items * item)
                .with_pipeline_depth(1);
            let mut sched = EagerScheduler::new();
            let report = run(&ts, &spec, &mut sched).unwrap();

            let mut schedule = Schedule::new(1);
            for t in ts.tasks() {
                schedule.push(GpuId(0), t);
            }
            let rep = replay(&ts, &schedule, spec.memory_bytes, EvictionPolicy::Lru).unwrap();
            assert_eq!(
                report.total_loads,
                rep.total_loads(),
                "n={n} cap={cap_items}: engine and replay disagree"
            );
            assert_eq!(report.total_load_bytes, rep.total_load_bytes());
        }
    }
}

/// The same consistency holds on the randomized submission order.
#[test]
fn engine_matches_offline_replay_random_order() {
    let ts = workloads::gemm_2d_random(12, 8);
    let item = ts.data_size(DataId(0));
    for cap_items in [4u64, 7, 10] {
        let spec = PlatformSpec::v100(1)
            .with_memory(cap_items * item)
            .with_pipeline_depth(1);
        let mut sched = EagerScheduler::new();
        let report = run(&ts, &spec, &mut sched).unwrap();
        let mut schedule = Schedule::new(1);
        for t in ts.tasks() {
            schedule.push(GpuId(0), t);
        }
        let rep = replay(&ts, &schedule, spec.memory_bytes, EvictionPolicy::Lru).unwrap();
        assert_eq!(report.total_loads, rep.total_loads(), "cap={cap_items}");
    }
}

/// Belady on the same order is a lower bound for what the online engine
/// (which cannot see the future) achieves — and prefetch pipelining may
/// only change loads, never undercut the offline optimum.
#[test]
fn offline_belady_lower_bounds_online_engine() {
    let ts = workloads::gemm_2d(12);
    let item = ts.data_size(DataId(0));
    for depth in [1usize, 2, 4, 8] {
        for cap_items in [4u64, 6, 10] {
            let spec = PlatformSpec::v100(1)
                .with_memory(cap_items * item)
                .with_pipeline_depth(depth);
            let mut sched = EagerScheduler::new();
            let report = run(&ts, &spec, &mut sched).unwrap();
            let mut schedule = Schedule::new(1);
            for t in ts.tasks() {
                schedule.push(GpuId(0), t);
            }
            let belady =
                replay(&ts, &schedule, spec.memory_bytes, EvictionPolicy::Belady).unwrap();
            assert!(
                report.total_loads >= belady.total_loads(),
                "depth={depth} cap={cap_items}: engine {} beat Belady {}",
                report.total_loads,
                belady.total_loads()
            );
        }
    }
}
