//! Checksum-mode trace stability at the `scale_xl` tier.
//!
//! [`TraceMode::Checksum`] exists so million-task runs can prove trace
//! equality without materializing a million-event log. That only works if
//! the checksum is an *invariant* of the run: the same workload and
//! platform must fold to the same 64-bit value no matter how many harness
//! worker threads raced around the (single-threaded) engine. These tests
//! pin that contract:
//!
//! * the quick `scale_xl` preset is checksummed through the experiment
//!   pool at `--jobs` 1, 2 and 8 and all three sweeps must agree;
//! * the values are snapshotted in `tests/golden/engine_scale_xl.checksums`
//!   (regenerate with `MEMSCHED_UPDATE_GOLDEN=1 cargo test --test
//!   engine_scale_checksums`) — the same stream the engine-scale bench
//!   cross-checks against the naive core's materialized trace;
//! * an `#[ignore]`d million-task run (`gemm_3d(100)`, the full-tier
//!   member) pins its checksum as a source constant:
//!   `cargo test --release --test engine_scale_checksums -- --ignored`.

use memsched::experiments::pool::run_indexed;
use memsched::prelude::*;
use memsched::schedulers::EagerScheduler;
use memsched::workloads::{scale_xl_preset, Workload};
use std::path::PathBuf;

/// Run one workload end to end in checksum mode and render a stable
/// one-line summary: label, task count, checksum, makespan, loads.
fn checksum_line(w: &Workload) -> String {
    let ts = w.generate();
    let spec = PlatformSpec::v100(16).with_memory(ts.working_set_bytes());
    let config = RunConfig {
        trace: TraceMode::Checksum,
        ..RunConfig::default()
    };
    let mut sched = EagerScheduler::new();
    let (report, trace) =
        run_with_config(&ts, &spec, &mut sched, &config).expect("scale_xl run");
    assert!(trace.is_empty(), "checksum mode must not materialize events");
    format!(
        "{} tasks={} checksum={:016x} makespan={} loads={}",
        w.label(),
        ts.num_tasks(),
        report.trace_checksum.expect("checksum mode records a checksum"),
        report.makespan,
        report.total_loads,
    )
}

/// The quick-tier checksums must not depend on the harness's `--jobs`
/// level: the pool distributes whole runs, never splits one, so 1, 2 and
/// 8 workers must produce byte-identical summaries. The jobs=1 sweep is
/// then compared against the golden snapshot.
#[test]
fn scale_xl_checksums_stable_across_jobs() {
    let workloads = scale_xl_preset(true);
    let baseline = run_indexed(&workloads, 1, |_, w| checksum_line(w));
    for jobs in [2usize, 8] {
        let swept = run_indexed(&workloads, jobs, |_, w| checksum_line(w));
        assert_eq!(
            baseline, swept,
            "checksum summaries changed between --jobs 1 and --jobs {jobs}"
        );
    }

    let got = baseline.join("\n") + "\n";
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "golden",
        "engine_scale_xl.checksums",
    ]
    .iter()
    .collect();
    if std::env::var("MEMSCHED_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {path:?} ({e}); run with MEMSCHED_UPDATE_GOLDEN=1 to create")
    });
    assert_eq!(
        got, want,
        "scale_xl checksums drifted from the golden snapshot \
         (rerun with MEMSCHED_UPDATE_GOLDEN=1 if the change is intentional)"
    );
}

/// The full-tier million-task member. A bounded-memory checksum run must
/// complete and fold to exactly this value; any engine-core change that
/// reorders even one event at the million-task scale lands here.
///
/// Run with `cargo test --release --test engine_scale_checksums -- --ignored`.
#[test]
#[ignore = "million-task run; execute in release mode explicitly"]
fn million_task_checksum_is_pinned() {
    const PINNED: &str = "gemm3d(n=100) tasks=1000000 checksum=3749c1b16210bd45 makespan=102873084148 loads=319091";
    let line = checksum_line(&Workload::Gemm3d { n: 100 });
    assert_eq!(line, PINNED, "million-task trace stream changed");
}
