//! Differential tests pinning the online scheduler variants to their
//! batch counterparts: when every arrival is at t = 0 the admission loop
//! releases the whole task set before the first decision, so an online
//! run must make byte-identical scheduling decisions to the batch run —
//! same loads, same eviction victims, same task order, same timestamps.
//! Only the admission bookkeeping events (arrive/admit) may differ, and
//! they are filtered out before comparison.
//!
//! This is the zero-cost guarantee behind the serving mode: DARTS
//! re-scores its data-driven selection and mHFP re-packs incrementally,
//! yet with the full horizon visible both must collapse to the paper's
//! offline algorithms.

use memsched::platform::{run_with_config, RunConfig, Scheduler, TraceEvent};
use memsched::prelude::*;
use memsched::schedulers::{DartsConfig, DartsScheduler, DmdaScheduler};
use proptest::prelude::*;

/// Strategy: a random task set with unit-size data and 1–3 inputs per
/// task (the shape the other differential suites use).
fn arb_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs =
                proptest::collection::vec(proptest::collection::vec(0..nd as u32, 1..=3), mt);
            (Just(nd), inputs)
        })
        .prop_map(|(nd, task_inputs)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
        })
}

fn small_spec(gpus: usize, mem: u64) -> PlatformSpec {
    PlatformSpec {
        num_gpus: gpus,
        memory_bytes: mem, // unit-size items: capacity in items
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-3,
        pipeline_depth: 2,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    }
}

/// Engine trace minus the admission bookkeeping — what is left is pure
/// scheduling: loads, evictions, task starts/finishes.
fn decisions_of(trace: Vec<TraceEvent>) -> Vec<TraceEvent> {
    trace
        .into_iter()
        .filter(|ev| {
            !matches!(
                ev,
                TraceEvent::TaskArrived { .. }
                    | TraceEvent::TaskAdmitted { .. }
                    | TraceEvent::TaskDeferred { .. }
            )
        })
        .collect()
}

/// Run `batch` offline and `online` on the same task set with every
/// arrival at t = 0, and assert identical decision streams.
fn assert_online_matches_batch(
    ts: &TaskSet,
    spec: &PlatformSpec,
    label: &str,
    batch: &mut dyn Scheduler,
    online: &mut dyn Scheduler,
) {
    let batch_config = RunConfig {
        trace: TraceMode::Full,
        ..RunConfig::default()
    };
    let online_config = RunConfig {
        admission: Some(AdmissionConfig::default()),
        ..batch_config.clone()
    };
    // `with_arrivals` of all zeros flips the task set into stream mode
    // without moving any arrival off the origin.
    let streamed = ts.clone().with_arrivals(vec![0; ts.num_tasks()]);

    let (b_report, b_trace) =
        run_with_config(ts, spec, batch, &batch_config).expect("batch run");
    let (o_report, o_trace) =
        run_with_config(&streamed, spec, online, &online_config).expect("online run");
    let b_decisions = decisions_of(b_trace);
    let o_decisions = decisions_of(o_trace);
    if b_decisions != o_decisions {
        let i = b_decisions
            .iter()
            .zip(&o_decisions)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| b_decisions.len().min(o_decisions.len()));
        panic!(
            "{label}: online t=0 run diverges from batch at decision {i}:\n  \
             batch:  {:?}\n  online: {:?}",
            b_decisions.get(i),
            o_decisions.get(i),
        );
    }
    assert_eq!(b_report.makespan, o_report.makespan, "{label}");
    assert_eq!(b_report.total_loads, o_report.total_loads, "{label}");
    assert_eq!(
        b_report.total_evictions, o_report.total_evictions,
        "{label}"
    );
    let stats = o_report.online.expect("online run must report stats");
    assert_eq!(stats.tasks_admitted as usize, ts.num_tasks(), "{label}");
    assert_eq!(stats.tasks_deferred, 0, "{label}: t=0 defers nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every DARTS variant: the arrival-release path must rebuild exactly
    /// the state `prepare` computes, so the data-driven selection (and
    /// its RNG draw sequence) is unchanged when the horizon is full.
    #[test]
    fn online_darts_matches_batch_at_t0(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
        seed in 0u64..1000,
    ) {
        let spec = small_spec(gpus, mem);
        let variants: Vec<(&str, DartsConfig)> = vec![
            ("darts-lru", DartsConfig::lru()),
            ("darts-luf", DartsConfig::luf()),
            ("darts-luf-3inputs", DartsConfig::luf().with_three_inputs()),
            ("darts-luf-opti", DartsConfig::luf().with_opti()),
            ("darts-luf-threshold", DartsConfig::luf().with_threshold(3)),
        ];
        for (label, cfg) in variants {
            let cfg = cfg.with_seed(seed);
            let mut batch = DartsScheduler::new(cfg.clone());
            let mut online = DartsScheduler::new(cfg);
            assert_online_matches_batch(&ts, &spec, label, &mut batch, &mut online);
        }
    }

    /// mHFP: the lazy incremental re-pack over the visible horizon must
    /// reduce to the full offline packing when every task is visible at
    /// the first pop — same packages, same order, same steals.
    #[test]
    fn online_mhfp_matches_batch_at_t0(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let spec = small_spec(gpus, mem);
        let mut batch = NamedScheduler::Mhfp.build();
        let mut online = NamedScheduler::Mhfp.build();
        assert_online_matches_batch(&ts, &spec, "mhfp", batch.as_mut(), online.as_mut());
    }

    /// EAGER and DMDA(R) requeue naturally: arrival order is task order
    /// at t = 0, so the queues and the Eq. (1) completion estimates are
    /// identical to the batch `prepare`.
    #[test]
    fn online_eager_and_dmda_match_batch_at_t0(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        let spec = small_spec(gpus, mem);
        let mut batch = EagerScheduler::new();
        let mut online = EagerScheduler::new();
        assert_online_matches_batch(&ts, &spec, "eager", &mut batch, &mut online);
        let mut batch = DmdaScheduler::dmda();
        let mut online = DmdaScheduler::dmda();
        assert_online_matches_batch(&ts, &spec, "dmda", &mut batch, &mut online);
        let mut batch = DmdaScheduler::dmdar();
        let mut online = DmdaScheduler::dmdar();
        assert_online_matches_batch(&ts, &spec, "dmdar", &mut batch, &mut online);
    }
}
