//! Property tests of the observability subsystem over random workloads:
//! every recorded trace is well-formed, the Chrome export is valid JSON
//! that round-trips through `serde_json`, event counts agree with the
//! engine's own report and trace, the derived per-GPU breakdown sums to
//! the makespan, and attaching a probe never changes a decision (the
//! golden-trace guarantee, checked here as trace equality between the
//! observed and unobserved runs).

use memsched::obs::{
    check_well_formed, chrome_trace_json, gpu_breakdowns, Counter, Metrics, ObsEvent, SpanKind,
};
use memsched::prelude::*;
use proptest::prelude::*;

/// Random task set: `nd` unit-size data items, tasks with 1–3 inputs.
fn arb_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs =
                proptest::collection::vec(proptest::collection::vec(0..nd as u32, 1..=3), mt);
            (Just(nd), inputs)
        })
        .prop_map(|(nd, task_inputs)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
        })
}

fn tiny_spec(gpus: usize, mem: u64) -> PlatformSpec {
    PlatformSpec {
        num_gpus: gpus,
        memory_bytes: mem,
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-3,
        pipeline_depth: 2,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    }
}

fn schedulers() -> Vec<NamedScheduler> {
    vec![
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::DartsLuf,
        NamedScheduler::HmetisR,
        NamedScheduler::Mhfp,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free observed runs: well-formed trace, counts matching the
    /// report, exact breakdown agreement, decision identity.
    #[test]
    fn observed_runs_are_well_formed_and_decision_identical(
        ts in arb_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
        sched_idx in 0usize..5,
    ) {
        let spec = tiny_spec(gpus, mem);
        let named = &schedulers()[sched_idx];
        let config = RunConfig::default();

        // Baseline, no probe anywhere near it.
        let mut plain = named.build();
        let (plain_report, plain_trace) =
            run_with_config(&ts, &spec, plain.as_mut(), &config).unwrap();

        let mut sched = named.build();
        let probe = Probe::unbounded();
        let (report, trace) =
            run_observed(&ts, &spec, sched.as_mut(), &config, &probe).unwrap();
        let events = probe.events();

        // Observation changes no decision: identical engine traces.
        prop_assert_eq!(&plain_trace, &trace, "{}", named.build().name());
        prop_assert_eq!(plain_report.makespan, report.makespan);

        // Well-formed: spans nested per track, timestamps monotone,
        // every begin matched.
        let timeline = check_well_formed(&events).unwrap();

        // Counts line up with the engine's own accounting.
        let mut computes = 0usize;
        let mut delivered = 0usize;
        for s in &timeline.spans {
            match &s.kind {
                SpanKind::Compute { interrupted, .. } => {
                    prop_assert!(!interrupted, "no faults injected");
                    computes += 1;
                }
                SpanKind::Transfer { delivered: d, .. } => delivered += usize::from(*d),
            }
        }
        prop_assert_eq!(computes, ts.num_tasks());
        prop_assert_eq!(delivered as u64, report.total_loads);
        let evictions = events
            .iter()
            .filter(|e| matches!(e, ObsEvent::Eviction { .. }))
            .count() as u64;
        prop_assert_eq!(evictions, report.total_evictions);

        // The metrics registry sees the same totals.
        let mut metrics = Metrics::new();
        metrics.ingest(&events);
        prop_assert_eq!(metrics.counter(Counter::Loads), report.total_loads);
        prop_assert_eq!(metrics.counter(Counter::Tasks), ts.num_tasks() as u64);
        prop_assert_eq!(metrics.counter(Counter::Evictions), report.total_evictions);

        // Per-GPU: the engine's online split sums to the makespan and
        // matches the split derived offline from the spans.
        let derived = gpu_breakdowns(&events, gpus, report.makespan).unwrap();
        for (g, st) in report.per_gpu.iter().enumerate() {
            prop_assert_eq!(
                st.busy + st.stall + st.idle,
                report.makespan,
                "gpu {} split does not cover the run",
                g
            );
            prop_assert_eq!(st.busy, derived[g].busy, "gpu {} busy", g);
            prop_assert_eq!(st.stall, derived[g].stall, "gpu {} stall", g);
            prop_assert_eq!(st.idle, derived[g].idle, "gpu {} idle", g);
        }

        // Chrome export: valid JSON, round-trippable, span count right.
        let text = chrome_trace_json(&events).unwrap();
        let doc = serde_json::parse_value(&text).unwrap();
        let lint = memsched::experiments::obs::lint_chrome(&doc).unwrap();
        prop_assert_eq!(lint.spans, timeline.spans.len());
        let re_rendered = serde_json::to_string(&doc).unwrap();
        let re_parsed = serde_json::parse_value(&re_rendered).unwrap();
        prop_assert_eq!(
            memsched::experiments::obs::lint_chrome(&re_parsed).unwrap(),
            lint
        );
    }

    /// With transient transfer faults injected, the trace stays
    /// well-formed and retry instants match the report.
    #[test]
    fn faulted_observed_runs_keep_their_books(
        ts in arb_taskset(8, 14),
        gpus in 1usize..3,
        fault_ppm in 50_000u32..500_000,
    ) {
        let spec = tiny_spec(gpus, 4);
        let config = RunConfig {
            faults: FaultPlan::none().with_transfer_faults(TransferFaultSpec {
                seed: 11,
                fault_ppm,
                max_attempts: 10,
                backoff_base: 100,
            }),
            ..RunConfig::default()
        };
        let mut sched = NamedScheduler::Eager.build();
        let probe = Probe::unbounded();
        let (report, _) = run_observed(&ts, &spec, sched.as_mut(), &config, &probe).unwrap();
        let events = probe.events();
        check_well_formed(&events).unwrap();
        let retries = events
            .iter()
            .filter(|e| matches!(e, ObsEvent::TransferRetry { .. }))
            .count() as u64;
        prop_assert_eq!(retries, report.transfer_retries);
        let undelivered = events
            .iter()
            .filter(
                |e| matches!(e, ObsEvent::TransferEnd { delivered: false, .. }),
            )
            .count() as u64;
        prop_assert!(undelivered >= report.transfer_retries, "every retry closes a span");
    }
}
