//! Fault-recovery property tests for the *online* serving mode: the
//! stream-side mirror of `fault_recovery_invariants` in
//! `property_invariants.rs`. Random arrival streams (with random
//! deadlines and tenant classes) meet a composed fault plan — one
//! fail-stop, one capacity shrink, one straggler, flaky transfers —
//! under every shed policy and all five scheduler families.
//!
//! Invariants checked per (family × policy):
//!
//! * determinism — the same seed replays a byte-identical event stream;
//! * an exactly-once outcome ledger — every arrival is either admitted
//!   and finished exactly once, or shed/expired exactly once, never
//!   both;
//! * no shed or expired task ever starts;
//! * restarts only follow the fail-stop of the GPU that held the task;
//! * per-GPU occupancy respects the evolving (shrunk) capacity;
//! * the `OnlineStats` ledger agrees with the trace.
//!
//! Under the default `DeferOnly` policy a fault can strand a deferred
//! task forever; the run is then required to surface the legacy
//! `SchedulerStuck` error rather than hang or miscount. Shedding
//! policies must always complete.

use memsched::platform::TraceEvent;
use memsched::prelude::*;
use proptest::prelude::*;

const FAMILIES: [NamedScheduler; 6] = [
    NamedScheduler::Eager,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
    NamedScheduler::DartsLuf,
    NamedScheduler::Router,
];

const POLICIES: [ShedPolicy; 3] = [
    ShedPolicy::DeferOnly,
    ShedPolicy::DeadlineShed,
    ShedPolicy::PriorityShed,
];

/// A random task stream: unit data, 1–3 inputs per task, a random
/// arrival stamp, an optional completion deadline and a tenant class on
/// every task.
fn arb_overload_stream(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs =
                proptest::collection::vec(proptest::collection::vec(0..nd as u32, 1..=3), mt);
            let arrivals = proptest::collection::vec(0u64..20_000_000, mt);
            // Raw deadline draws; every fourth value maps to "no deadline"
            // below (the shim has no `prop_oneof`).
            let deadlines = proptest::collection::vec(0u64..20_000_000, mt);
            let classes = proptest::collection::vec(0u32..3, mt);
            (Just(nd), inputs, arrivals, deadlines, classes)
        })
        .prop_map(|(nd, task_inputs, arrivals, raw_deadlines, classes)| {
            let deadlines: Vec<u64> = raw_deadlines
                .into_iter()
                .map(|d| if d % 4 == 0 { 0 } else { d.max(50_000) })
                .collect();
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build()
                .with_arrivals(arrivals)
                .with_deadlines(deadlines)
                .with_classes(classes)
        })
}

fn small_spec(gpus: usize, mem: u64) -> PlatformSpec {
    PlatformSpec {
        num_gpus: gpus,
        memory_bytes: mem, // unit-size items: capacity in items
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-3,
        pipeline_depth: 2,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    }
}

/// Walk one fault-injected stream trace and enforce the exactly-once
/// ledger, the no-start-after-drop rule, the restart rule and the
/// occupancy bound; then reconcile with the run's `OnlineStats`.
fn check_stream(
    named: NamedScheduler,
    policy: ShedPolicy,
    ts: &TaskSet,
    spec: &PlatformSpec,
    dead_gpu: usize,
    trace: &[TraceEvent],
    report: &RunReport,
) -> Result<(), String> {
    let n = ts.num_tasks();
    let mut arrived = vec![0u32; n];
    let mut admitted = vec![0u32; n];
    let mut dropped = vec![0u32; n];
    let mut started_on: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut finished = vec![0u32; n];
    let mut cap = vec![spec.memory_bytes; spec.num_gpus];
    let mut occupied = vec![0u64; spec.num_gpus];
    for ev in trace {
        match *ev {
            TraceEvent::TaskArrived { task, .. } => arrived[task] += 1,
            TraceEvent::TaskAdmitted { task, .. } => {
                admitted[task] += 1;
                prop_assert_eq!(
                    dropped[task], 0,
                    "{:?}/{:?}: task {} admitted after being dropped", named, policy, task
                );
            }
            TraceEvent::TaskShed { task, .. } | TraceEvent::DeadlineExpired { task, .. } => {
                dropped[task] += 1;
                prop_assert_eq!(
                    admitted[task], 0,
                    "{:?}/{:?}: task {} dropped after being admitted", named, policy, task
                );
            }
            TraceEvent::TaskStarted { gpu, task, .. } => {
                started_on[task].push(gpu);
                prop_assert_eq!(
                    dropped[task], 0,
                    "{:?}/{:?}: dropped task {} started", named, policy, task
                );
            }
            TraceEvent::TaskFinished { task, .. } => finished[task] += 1,
            TraceEvent::LoadIssued { gpu, data, .. } => {
                occupied[gpu] += ts.data_size(DataId(data as u32));
                prop_assert!(
                    occupied[gpu] <= cap[gpu],
                    "{named:?}/{policy:?}: GPU {gpu} occupancy {} exceeds capacity {}",
                    occupied[gpu],
                    cap[gpu]
                );
            }
            TraceEvent::Evicted { gpu, data, .. } => {
                occupied[gpu] -= ts.data_size(DataId(data as u32));
            }
            TraceEvent::CapacityShrunk { gpu, capacity, .. } => {
                prop_assert!(occupied[gpu] <= capacity);
                cap[gpu] = capacity;
            }
            _ => {}
        }
    }
    for t in 0..n {
        prop_assert_eq!(arrived[t], 1, "{:?}/{:?}: task {} arrivals", named, policy, t);
        prop_assert_eq!(
            admitted[t] + dropped[t], 1,
            "{:?}/{:?}: task {} outcomes (admitted {}, dropped {})",
            named, policy, t, admitted[t], dropped[t]
        );
        if dropped[t] == 1 {
            prop_assert!(started_on[t].is_empty());
            prop_assert_eq!(finished[t], 0);
        } else {
            prop_assert_eq!(
                finished[t], 1,
                "{:?}/{:?}: task {} finished {} times", named, policy, t, finished[t]
            );
            // Every start except the successful last one must have been
            // interrupted by the fail-stop of its GPU.
            let starts = &started_on[t];
            prop_assert!(!starts.is_empty());
            for &g in &starts[..starts.len() - 1] {
                prop_assert_eq!(
                    g, dead_gpu,
                    "{:?}/{:?}: task {} restarted without its GPU dying", named, policy, t
                );
            }
        }
    }
    let stats = report.online.as_ref().expect("online stats");
    let total_dropped: u32 = dropped.iter().sum();
    prop_assert_eq!(stats.tasks_admitted + stats.tasks_shed + stats.deadline_expired, n as u64);
    prop_assert_eq!(stats.tasks_shed + stats.deadline_expired, u64::from(total_dropped));
    prop_assert!(stats.deadline_violations <= stats.tasks_admitted);
    prop_assert!(
        stats.goodput_tps <= stats.throughput_tps + 1e-9,
        "{named:?}/{policy:?}: goodput {} above throughput {}",
        stats.goodput_tps,
        stats.throughput_tps
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Faults × admission × shed policies × the five online families.
    #[test]
    fn online_fault_recovery_invariants(
        ts in arb_overload_stream(8, 14),
        gpus in 2usize..4,
        mem in 4u64..8,
        dead_gpu in 0usize..2,
        fail_at in 0u64..10_000_000,
        shrink_at in 0u64..10_000_000,
        shrink_to in 3u64..5,
        slow_at in 0u64..10_000_000,
        slow_pct in 25u32..100,
        flaky_seed in any::<u64>(),
        backlog in 1usize..6,
    ) {
        prop_assume!(ts.num_tasks() >= gpus);
        let dead_gpu = dead_gpu % gpus;
        let shrunk_gpu = (dead_gpu + 1) % gpus; // always a survivor
        let spec = small_spec(gpus, mem);
        let plan = FaultPlan::none()
            .with_gpu_failure(dead_gpu, fail_at)
            .with_capacity_shrink(shrunk_gpu, shrink_at, shrink_to.min(mem))
            .with_straggler(shrunk_gpu, slow_at, f64::from(slow_pct) / 100.0)
            .with_transfer_faults(TransferFaultSpec {
                seed: flaky_seed,
                fault_ppm: 150_000,
                max_attempts: 16,
                backoff_base: 100,
            });
        for policy in POLICIES {
            let config = RunConfig {
                trace: TraceMode::Full,
                faults: plan.clone(),
                admission: Some(AdmissionConfig {
                    max_backlog: Some(backlog),
                    policy,
                }),
                ..RunConfig::default()
            };
            for named in FAMILIES {
                let mut sched = named.build();
                let first =
                    memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config);
                let mut sched2 = named.build();
                let second =
                    memsched::platform::run_with_config(&ts, &spec, sched2.as_mut(), &config);
                match (first, second) {
                    (Ok((report, trace)), Ok((report2, trace2))) => {
                        prop_assert_eq!(
                            &trace, &trace2,
                            "{:?}/{:?}: non-deterministic replay", named, policy
                        );
                        prop_assert_eq!(report.makespan, report2.makespan);
                        check_stream(named, policy, &ts, &spec, dead_gpu, &trace, &report)?;
                    }
                    (Err(e), Err(e2)) => {
                        // Only the legacy DeferOnly policy may strand a
                        // deferral; it must do so deterministically and
                        // with the structured stuck error.
                        prop_assert_eq!(
                            policy, ShedPolicy::DeferOnly,
                            "{:?}: shedding policy failed: {:?}", named, e
                        );
                        prop_assert!(
                            matches!(e, RunError::SchedulerStuck { .. }),
                            "{named:?}/{policy:?}: unexpected error {e:?}"
                        );
                        prop_assert_eq!(format!("{e:?}"), format!("{e2:?}"));
                    }
                    (a, b) => {
                        return Err(format!(
                            "{named:?}/{policy:?}: non-deterministic outcome: \
                             {:?} vs {:?}",
                            a.map(|(r, _)| r.makespan),
                            b.map(|(r, _)| r.makespan)
                        ));
                    }
                }
            }
        }
    }
}
