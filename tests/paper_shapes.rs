//! Integration tests asserting the *qualitative shapes* of the paper's
//! findings at miniature scale: who wins, where the crossovers are, and
//! the invariants every strategy must respect.

use memsched::prelude::*;
use memsched::workloads::{self, constants::GEMM2D_DATA_BYTES};

fn loads_of(named: NamedScheduler, ts: &TaskSet, spec: &PlatformSpec) -> u64 {
    let mut sched = named.build();
    run(ts, spec, sched.as_mut())
        .unwrap_or_else(|e| panic!("{named:?}: {e}"))
        .total_loads
}

fn gflops_of(named: NamedScheduler, ts: &TaskSet, spec: &PlatformSpec) -> f64 {
    let mut sched = named.build();
    run(ts, spec, sched.as_mut())
        .unwrap_or_else(|e| panic!("{named:?}: {e}"))
        .gflops()
}

/// §V-B: when everything fits in memory, every scheduler is near the
/// roofline and performs the compulsory loads only.
#[test]
fn unconstrained_memory_everyone_near_roofline() {
    let ts = workloads::gemm_2d(12);
    let spec = PlatformSpec::v100(1); // 500 MB > 338 MB working set
    for named in [
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::Darts,
        NamedScheduler::DartsLuf,
        NamedScheduler::Mhfp,
    ] {
        let loads = loads_of(named.clone(), &ts, &spec);
        assert_eq!(loads, 24, "{named:?} must only do compulsory loads");
        let gf = gflops_of(named, &ts, &spec);
        assert!(gf > 0.7 * 13_253.0, "expected near roofline, got {gf:.0}");
    }
}

/// §V-B: the EAGER pathology — under memory pressure EAGER reloads the
/// whole B matrix per row while DARTS+LUF stays near the compulsory
/// bound. This is the headline crossover of Figures 3–4.
#[test]
fn eager_pathology_vs_darts_luf() {
    let n = 16;
    let ts = workloads::gemm_2d(n);
    // Memory for half of one input matrix.
    let spec = PlatformSpec::v100(1).with_memory((n as u64 / 2) * GEMM2D_DATA_BYTES);
    let eager = loads_of(NamedScheduler::Eager, &ts, &spec);
    let darts = loads_of(NamedScheduler::DartsLuf, &ts, &spec);
    assert!(
        eager as f64 >= 2.0 * darts as f64,
        "EAGER {eager} should at least double DARTS+LUF {darts}"
    );
    // DARTS+LUF stays within a small factor of the compulsory bound.
    assert!(
        darts <= 4 * 2 * n as u64,
        "DARTS+LUF loads {darts} vs compulsory {}",
        2 * n
    );
}

/// §V-D (Figure 9): randomizing the submission order hurts the
/// order-following schedulers, while DARTS — which derives its own order
/// from the data — keeps its transfer advantage over DMDAR on every
/// shuffled order. The paper's claim is about behavior averaged over
/// randomized orders, so this test averages over several shuffle seeds
/// instead of pinning one specific permutation (which would couple the
/// test to the RNG's exact stream).
#[test]
fn randomized_order_hurts_dmdar_more_than_darts() {
    let n = 14;
    let natural = workloads::gemm_2d(n);
    let spec = PlatformSpec::v100(2).with_memory(5 * GEMM2D_DATA_BYTES);

    let dmdar_nat = loads_of(NamedScheduler::Dmdar, &natural, &spec);
    let darts_nat = loads_of(NamedScheduler::DartsLuf, &natural, &spec);
    // DARTS beats DMDAR on the natural order to begin with.
    assert!(
        darts_nat < dmdar_nat,
        "DARTS {darts_nat} vs DMDAR {dmdar_nat} on natural order"
    );

    const SEEDS: std::ops::RangeInclusive<u64> = 1..=8;
    let mut dmdar_ratio_sum = 0.0;
    for seed in SEEDS {
        let randomized = workloads::gemm_2d_random(n, seed);
        let dmdar_rnd = loads_of(NamedScheduler::Dmdar, &randomized, &spec);
        let darts_rnd = loads_of(NamedScheduler::DartsLuf, &randomized, &spec);
        // On every shuffled order DARTS still transfers less than DMDAR.
        assert!(
            darts_rnd <= dmdar_rnd,
            "seed {seed}: DARTS {darts_rnd} vs DMDAR {dmdar_rnd} on random order"
        );
        dmdar_ratio_sum += dmdar_rnd as f64 / dmdar_nat as f64;
    }
    // DMDAR degrades measurably on average when the order is shuffled.
    let dmdar_mean_ratio = dmdar_ratio_sum / SEEDS.count() as f64;
    assert!(
        dmdar_mean_ratio > 1.0,
        "DMDAR mean randomized/natural ratio {dmdar_mean_ratio:.3} should exceed 1"
    );
}

/// Objective 1: every strategy keeps the load roughly balanced across
/// GPUs on a uniform workload.
#[test]
fn load_balance_is_respected() {
    let ts = workloads::gemm_2d(12);
    let spec = PlatformSpec::v100(4);
    for named in [
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::HmetisR,
        NamedScheduler::DartsLuf,
    ] {
        let mut sched = named.build();
        let report = run(&ts, &spec, sched.as_mut()).unwrap();
        let max = report.max_load();
        // 144 tasks on 4 GPUs: perfect is 36. Dynamic effects allow slack.
        assert!(max <= 60, "{named:?}: max load {max} too imbalanced");
        assert_eq!(
            report.per_gpu.iter().map(|g| g.tasks).sum::<usize>(),
            144,
            "{named:?} lost tasks"
        );
    }
}

/// The simulator's conservation laws hold for every scheduler.
#[test]
fn conservation_laws() {
    let ts = workloads::gemm_2d(10);
    let spec = PlatformSpec::v100(2).with_memory(6 * GEMM2D_DATA_BYTES);
    for named in [
        NamedScheduler::Eager,
        NamedScheduler::Dmdar,
        NamedScheduler::HmetisR,
        NamedScheduler::Mhfp,
        NamedScheduler::Darts,
        NamedScheduler::DartsLuf,
    ] {
        let mut sched = named.build();
        let report = run(&ts, &spec, sched.as_mut()).unwrap();
        // Bytes are loads × item size (uniform workload).
        assert_eq!(
            report.total_load_bytes,
            report.total_loads * GEMM2D_DATA_BYTES,
            "{named:?}"
        );
        // At least the compulsory loads happened.
        assert!(report.total_loads >= 20, "{named:?}");
        // Makespan is at least the compute roofline.
        let roofline_ns =
            memsched::model::bounds::compute_roofline_seconds(&ts, 2, 13_253.0) * 1e9;
        assert!(
            report.makespan as f64 >= roofline_ns * 0.99,
            "{named:?}: makespan below roofline"
        );
    }
}

/// §V-E/G: on 3D products and sparse workloads, DARTS+LUF (with the
/// appropriate variant) transfers no more than DMDAR.
#[test]
fn darts_variants_hold_on_irregular_workloads() {
    let spec4 = PlatformSpec::v100(4).with_memory(8 * workloads::constants::TILE_BYTES);
    let ts3d = workloads::gemm_3d(6);
    let darts = loads_of(NamedScheduler::DartsLuf3, &ts3d, &spec4);
    let dmdar = loads_of(NamedScheduler::Dmdar, &ts3d, &spec4);
    assert!(
        darts <= dmdar + dmdar / 4,
        "3D: DARTS-3inputs {darts} vs DMDAR {dmdar}"
    );

    let sparse = workloads::sparse_2d(60, 0.05, 3);
    let spec = PlatformSpec::v100(4).with_memory(6 * GEMM2D_DATA_BYTES);
    let darts = loads_of(NamedScheduler::DartsLufOpti, &sparse, &spec);
    let eager = loads_of(NamedScheduler::Eager, &sparse, &spec);
    assert!(
        darts <= eager,
        "sparse: DARTS {darts} vs EAGER {eager}"
    );
}

/// Offline model consistency: replaying the engine's LRU behaviour can
/// never beat Belady's rule on the same order (the optimality argument
/// of §III).
#[test]
fn belady_dominates_lru_for_any_schedule() {
    let ts = workloads::gemm_2d(10);
    for cap_items in [4u64, 6, 10, 20] {
        let cap = cap_items * GEMM2D_DATA_BYTES;
        let mut schedule = Schedule::new(1);
        for t in ts.tasks() {
            schedule.push(GpuId(0), t);
        }
        let lru = replay(&ts, &schedule, cap, EvictionPolicy::Lru).unwrap();
        let belady = replay(&ts, &schedule, cap, EvictionPolicy::Belady).unwrap();
        assert!(
            belady.total_loads() <= lru.total_loads(),
            "cap {cap_items}: Belady {} vs LRU {}",
            belady.total_loads(),
            lru.total_loads()
        );
    }
}

/// The Figure 1 worked example end-to-end through the real engine.
#[test]
fn figure1_example_runs_on_the_engine() {
    let ts = memsched::model::figure1_example();
    let spec = PlatformSpec {
        num_gpus: 2,
        memory_bytes: 2,
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-6, // flops are tiny in this example
        pipeline_depth: 1,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    };
    for named in [NamedScheduler::Eager, NamedScheduler::DartsLuf] {
        let mut sched = named.build();
        let report = run(&ts, &spec, sched.as_mut()).unwrap();
        assert_eq!(
            report.per_gpu.iter().map(|g| g.tasks).sum::<usize>(),
            9,
            "{named:?}"
        );
        // With M = 2 unit-size slots, at least one data must be loaded per
        // task's missing input; the paper's example achieves 11 overall.
        assert!(report.total_loads >= 6, "{named:?}");
    }
}
