//! Stream-invariant property tests for the online serving mode, across
//! all five scheduler families:
//!
//! * no task starts before its arrival time, and the admission track is
//!   causally ordered (arrive ≤ admit ≤ start);
//! * every task completes exactly once, whatever the arrival pattern;
//! * per-GPU occupancy stays under the *current* capacity when a
//!   `CapacityShrink` fault lands mid-stream;
//! * the same seed replays a byte-identical event stream, including when
//!   the runs are distributed over 1, 2 or 8 pool workers.

use memsched::experiments::pool;
use memsched::platform::obs::{Counter, Metrics};
use memsched::platform::{RunConfig, TraceEvent};
use memsched::prelude::*;
use memsched::workloads::{gemm_2d, open_loop_arrivals, ArrivalPattern};
use proptest::prelude::*;

const FAMILIES: [NamedScheduler; 5] = [
    NamedScheduler::Eager,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
    NamedScheduler::DartsLuf,
];

/// Strategy: a random task set (unit data, 1–3 inputs per task) with a
/// random arrival stamp on every task.
fn arb_stream_taskset(max_data: usize, max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    (2usize..=max_data, 1usize..=max_tasks)
        .prop_flat_map(|(nd, mt)| {
            let inputs =
                proptest::collection::vec(proptest::collection::vec(0..nd as u32, 1..=3), mt);
            let arrivals = proptest::collection::vec(0u64..20_000_000, mt);
            (Just(nd), inputs, arrivals)
        })
        .prop_map(|(nd, task_inputs, arrivals)| {
            let mut b = TaskSetBuilder::new();
            let data: Vec<DataId> = (0..nd).map(|_| b.add_data(1)).collect();
            for ins in task_inputs {
                let ids: Vec<DataId> = ins.iter().map(|&i| data[i as usize]).collect();
                b.add_task(&ids, 1000.0);
            }
            b.build().with_arrivals(arrivals)
        })
}

fn small_spec(gpus: usize, mem: u64) -> PlatformSpec {
    PlatformSpec {
        num_gpus: gpus,
        memory_bytes: mem, // unit-size items: capacity in items
        bus_bandwidth: 1e9,
        transfer_latency: 10,
        gpu_gflops: 1e-3,
        pipeline_depth: 2,
        gpu_gflops_override: None,
        nvlink_bandwidth: None,
        bus_groups: None,
    }
}

fn online_config() -> RunConfig {
    RunConfig {
        trace: TraceMode::Full,
        admission: Some(AdmissionConfig::default()),
        ..RunConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Causality and exactly-once completion on random streams: arrivals
    /// are time-ordered, no admit/start precedes the task's arrival, and
    /// every task is admitted once, started and finished exactly once.
    /// The same seed replays the identical stream.
    #[test]
    fn online_stream_causality(
        ts in arb_stream_taskset(10, 20),
        gpus in 1usize..4,
        mem in 3u64..8,
    ) {
        prop_assume!(ts.num_tasks() >= gpus);
        let spec = small_spec(gpus, mem);
        let config = online_config();
        for named in FAMILIES {
            let mut sched = named.build();
            let (report, trace) =
                memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config)
                    .unwrap();
            let mut sched2 = named.build();
            let (_r2, trace2) =
                memsched::platform::run_with_config(&ts, &spec, sched2.as_mut(), &config)
                    .unwrap();
            prop_assert_eq!(&trace, &trace2, "{:?}: non-deterministic stream", named);

            let n = ts.num_tasks();
            let mut arrived = vec![0u32; n];
            let mut admitted_at = vec![None::<u64>; n];
            let mut started = vec![0u32; n];
            let mut finished = vec![0u32; n];
            let mut last_arrival = 0u64;
            for ev in &trace {
                match *ev {
                    TraceEvent::TaskArrived { at, task } => {
                        arrived[task] += 1;
                        prop_assert!(
                            at >= last_arrival,
                            "{named:?}: arrivals out of order at t={at}"
                        );
                        last_arrival = at;
                        prop_assert_eq!(
                            at, ts.arrival(TaskId(task as u32)),
                            "{:?}: task {} arrived at the wrong time", named, task
                        );
                    }
                    TraceEvent::TaskAdmitted { at, task } => {
                        prop_assert!(
                            at >= ts.arrival(TaskId(task as u32)),
                            "{named:?}: task {task} admitted before its arrival"
                        );
                        prop_assert!(admitted_at[task].is_none(), "double admission");
                        admitted_at[task] = Some(at);
                    }
                    TraceEvent::TaskDeferred { at, task } => {
                        prop_assert!(
                            at >= ts.arrival(TaskId(task as u32)),
                            "{named:?}: task {task} deferred before its arrival"
                        );
                    }
                    TraceEvent::TaskStarted { at, task, .. } => {
                        started[task] += 1;
                        prop_assert!(
                            at >= ts.arrival(TaskId(task as u32)),
                            "{named:?}: task {task} started at {at} before its arrival"
                        );
                        let adm = admitted_at[task];
                        prop_assert!(
                            adm.is_some_and(|a| at >= a),
                            "{named:?}: task {task} started before admission"
                        );
                    }
                    TraceEvent::TaskFinished { task, .. } => finished[task] += 1,
                    _ => {}
                }
            }
            prop_assert!(arrived.iter().all(|&c| c == 1), "{named:?}: {arrived:?}");
            prop_assert!(started.iter().all(|&c| c == 1), "{named:?}: {started:?}");
            prop_assert!(finished.iter().all(|&c| c == 1), "{named:?}: {finished:?}");
            let stats = report.online.as_ref().expect("online run must report stats");
            prop_assert_eq!(stats.tasks_admitted as usize, n);
            prop_assert!(stats.p50_latency <= stats.p99_latency);
            prop_assert!(stats.p50_queueing <= stats.p99_queueing);
        }
    }

    /// Mid-stream capacity shrink: occupancy (resident + in-flight) never
    /// exceeds the evolving per-GPU capacity while tasks are still
    /// arriving, and the stream still completes exactly once per task.
    #[test]
    fn online_occupancy_respects_midstream_shrink(
        ts in arb_stream_taskset(10, 20),
        gpus in 2usize..4,
        mem in 4u64..8,
        shrink_gpu in 0usize..2,
        shrink_at in 0u64..20_000_000,
        shrink_to in 3u64..5,
    ) {
        prop_assume!(ts.num_tasks() >= gpus);
        let spec = small_spec(gpus, mem);
        let shrink_gpu = shrink_gpu % gpus;
        let config = RunConfig {
            faults: FaultPlan::none().with_capacity_shrink(
                shrink_gpu,
                shrink_at,
                shrink_to.min(mem),
            ),
            ..online_config()
        };
        for named in FAMILIES {
            let mut sched = named.build();
            let (_report, trace) =
                memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config)
                    .unwrap();
            let mut cap = vec![spec.memory_bytes; gpus];
            let mut occupied = vec![0u64; gpus];
            let mut finished = vec![0u32; ts.num_tasks()];
            for ev in &trace {
                match *ev {
                    TraceEvent::LoadIssued { gpu, data, .. } => {
                        occupied[gpu] += ts.data_size(DataId(data as u32));
                        prop_assert!(
                            occupied[gpu] <= cap[gpu],
                            "{named:?}: GPU {gpu} occupancy {} exceeds capacity {}",
                            occupied[gpu], cap[gpu]
                        );
                    }
                    TraceEvent::Evicted { gpu, data, .. } => {
                        occupied[gpu] -= ts.data_size(DataId(data as u32));
                    }
                    TraceEvent::CapacityShrunk { gpu, capacity, .. } => {
                        prop_assert!(occupied[gpu] <= capacity);
                        cap[gpu] = capacity;
                    }
                    TraceEvent::TaskFinished { task, .. } => finished[task] += 1,
                    _ => {}
                }
            }
            prop_assert!(
                finished.iter().all(|&c| c == 1),
                "{named:?}: completion counts {finished:?}"
            );
        }
    }
}

/// The pool must not influence results: the same seeded Poisson stream
/// dispatched over 1, 2 and 8 workers yields byte-identical traces per
/// family (the worker count only changes wall-clock, never decisions).
#[test]
fn same_seed_streams_identical_across_worker_counts() {
    let ts = {
        let base = gemm_2d(5);
        let arrivals = open_loop_arrivals(
            &ArrivalPattern::Poisson { rate_per_sec: 800.0 },
            42,
            base.num_tasks(),
        );
        base.with_arrivals(arrivals)
    };
    let tile = ts.data_size(DataId(0));
    let spec = PlatformSpec::v100(2).with_memory(4 * tile);
    let config = online_config();
    let run_all = |jobs: usize| -> Vec<String> {
        pool::run_indexed(&FAMILIES, jobs, |_, named| {
            let mut sched = named.build();
            let (report, trace) =
                memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config)
                    .expect("stream run");
            format!("{}:{:?}", report.makespan, trace)
        })
    };
    let one = run_all(1);
    let two = run_all(2);
    let eight = run_all(8);
    assert_eq!(one, two, "streams diverge between 1 and 2 workers");
    assert_eq!(one, eight, "streams diverge between 1 and 8 workers");
}

/// Regression for the `serve --faults` composition gap: a mid-stream
/// fail-stop under the admission loop. Every task — including tasks
/// admitted to (or already running on) the failed GPU — completes
/// exactly once on the survivor, every post-failure start lands on an
/// alive GPU, and nothing is shed under the default `DeferOnly` policy.
#[test]
fn midstream_failstop_with_admission_completes_exactly_once() {
    let ts = {
        let base = gemm_2d(4); // 16 tasks
        let arrivals = open_loop_arrivals(
            &ArrivalPattern::Poisson { rate_per_sec: 2000.0 },
            7,
            base.num_tasks(),
        );
        base.with_arrivals(arrivals)
    };
    let n = ts.num_tasks();
    let tile = ts.data_size(DataId(0));
    let spec = PlatformSpec::v100(2).with_memory(4 * tile);
    let fail_at = 2_000_000; // mid-stream: ~4 of 16 mean inter-arrivals in
    let config = RunConfig {
        faults: FaultPlan::none().with_gpu_failure(1, fail_at),
        ..online_config()
    };
    for named in FAMILIES {
        let mut sched = named.build();
        let (report, trace) =
            memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config)
                .expect("fail-stop stream run");
        let mut finished = vec![0u32; n];
        for ev in &trace {
            match *ev {
                TraceEvent::TaskStarted { at, gpu, task } => {
                    assert!(
                        gpu != 1 || at < fail_at,
                        "{named:?}: task {task} started on dead GPU 1 at t={at}"
                    );
                }
                TraceEvent::TaskFinished { at, gpu, task } => {
                    finished[task] += 1;
                    assert!(
                        gpu != 1 || at < fail_at,
                        "{named:?}: task {task} finished on dead GPU 1 at t={at}"
                    );
                }
                _ => {}
            }
        }
        assert!(
            finished.iter().all(|&c| c == 1),
            "{named:?}: completion counts {finished:?}"
        );
        let stats = report.online.expect("online stats");
        assert_eq!(stats.tasks_admitted as usize, n, "{named:?}");
        assert_eq!(stats.tasks_shed, 0, "{named:?}: DeferOnly must not shed");
        assert_eq!(stats.deadline_expired, 0, "{named:?}");
    }
}

/// Regression for `recheck_deferred_after_fault` + `shed_unfit_deferred`:
/// a capacity shrink strands a deferred task whose footprint no longer
/// fits any GPU. Under a shedding policy the task is shed and the run
/// completes gracefully with an exactly-once outcome ledger; under the
/// default `DeferOnly` the same run reports `SchedulerStuck` — the
/// pre-overload-control behaviour, pinned here on purpose.
#[test]
fn fault_stranded_deferred_task_shed_under_policy_stuck_under_defer_only() {
    let mut b = TaskSetBuilder::new();
    let data: Vec<DataId> = (0..4).map(|_| b.add_data(1)).collect();
    b.add_task(&data[..1], 1000.0); // task 0: 1 item, ~1 ms of compute
    b.add_task(&data[1..4], 1000.0); // task 1: 3 items — unfit after shrink
    let ts = b.build().with_arrivals(vec![0, 100]);
    let spec = small_spec(2, 4);
    // Backlog bound 1 keeps task 1 deferred behind task 0; at t = 0.2 ms
    // both GPUs shrink to 2 items, stranding its 3-item footprint.
    let config_for = |policy: ShedPolicy| RunConfig {
        trace: TraceMode::Full,
        admission: Some(AdmissionConfig {
            max_backlog: Some(1),
            policy,
        }),
        faults: FaultPlan::none()
            .with_capacity_shrink(0, 200_000, 2)
            .with_capacity_shrink(1, 200_000, 2),
        ..RunConfig::default()
    };

    for policy in [ShedPolicy::DeadlineShed, ShedPolicy::PriorityShed] {
        let mut sched = NamedScheduler::Eager.build();
        let (report, trace) =
            memsched::platform::run_with_config(&ts, &spec, sched.as_mut(), &config_for(policy))
                .expect("shedding run completes despite the stranded deferral");
        let stats = report.online.expect("online stats");
        assert_eq!(stats.tasks_admitted, 1, "{policy:?}");
        assert_eq!(stats.tasks_shed, 1, "{policy:?}");
        assert!(
            trace
                .iter()
                .any(|ev| matches!(ev, TraceEvent::TaskShed { task: 1, .. })),
            "{policy:?}: stranded deferral must surface as TaskShed"
        );
        assert!(
            !trace
                .iter()
                .any(|ev| matches!(ev, TraceEvent::TaskStarted { task: 1, .. })),
            "{policy:?}: a shed task must never start"
        );
    }

    let mut sched = NamedScheduler::Eager.build();
    let err = memsched::platform::run_with_config(
        &ts,
        &spec,
        sched.as_mut(),
        &config_for(ShedPolicy::DeferOnly),
    )
    .expect_err("DeferOnly has no way out of a stranded deferral");
    assert!(
        matches!(err, RunError::SchedulerStuck { completed: 1, total: 2 }),
        "unexpected error: {err:?}"
    );
}

/// Acceptance sweep: every family digests a 1k-task Poisson stream and
/// the serving histograms land in the metrics registry (one latency and
/// one queueing-delay sample per completed task).
#[test]
fn all_families_complete_1k_task_poisson_stream() {
    let ts = {
        let base = gemm_2d(32); // 1024 tasks
        let arrivals = open_loop_arrivals(
            &ArrivalPattern::Poisson { rate_per_sec: 4000.0 },
            7,
            base.num_tasks(),
        );
        base.with_arrivals(arrivals)
    };
    let n = ts.num_tasks() as u64;
    let tile = ts.data_size(DataId(0));
    let spec = PlatformSpec::v100(2).with_memory(16 * tile);
    let config = online_config();
    for named in FAMILIES {
        let mut sched = named.build();
        let probe = Probe::unbounded();
        let (report, _trace) =
            run_observed(&ts, &spec, sched.as_mut(), &config, &probe).expect("1k stream");
        let stats = report.online.expect("online stats");
        assert_eq!(stats.tasks_admitted, n, "{named:?}");
        assert!(stats.p50_latency > 0, "{named:?}: empty latency histogram");
        assert!(stats.p50_latency <= stats.p99_latency, "{named:?}");
        assert!(stats.throughput_tps > 0.0, "{named:?}");

        let mut metrics = Metrics::new();
        metrics.ingest(&probe.events());
        assert_eq!(metrics.counter(Counter::TasksArrived), n, "{named:?}");
        assert_eq!(metrics.counter(Counter::TasksAdmitted), n, "{named:?}");
        assert_eq!(metrics.task_latency().count(), n, "{named:?}");
        assert_eq!(metrics.queueing_delay().count(), n, "{named:?}");
    }
}
