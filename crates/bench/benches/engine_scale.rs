//! Engine-core scale tier: the pre-refactor core (binary-heap event
//! queue, per-event full progress scan, materialized trace) against the
//! flat core (calendar queue, dirty-GPU worklist, streaming checksum
//! sink) on the `scale_xl` workload preset — 10⁵ and 10⁶ tasks where the
//! engine loop itself, not the scheduler, dominates wall time.
//!
//! Records to `results/BENCH_engine_scale.json`:
//!
//! * per-tier engine wall time and tasks/sec for both cores, with the
//!   speedup and a ≥ 3× floor asserted at the 10⁵ tier (the baseline is
//!   measured in the same process, so the floor tracks this machine);
//! * the run's trace checksum (hex string — the JSON shim's numbers are
//!   f64-backed and would round a u64), cross-checked three ways: the
//!   naive core's materialized trace folded through
//!   [`memsched_platform::trace_checksum`] must equal the flat core's
//!   streaming [`TraceMode::Checksum`] report — proving the two cores
//!   pop byte-identical event streams end to end;
//! * allocation count and peak heap bytes of each measured run from the
//!   counting global allocator below.
//!
//! The 10⁶-task tier runs the flat core only (the point of the tier is
//! that `TraceMode::Checksum` completes it in bounded memory); its
//! checksum is pinned by `tests/engine_scale_checksums.rs`.
//!
//! Quick mode (`--quick` or `MEMSCHED_BENCH_QUICK=1`) shrinks the preset
//! to 10⁴/10⁵ for CI.

use memsched_platform::{
    run_with_config, trace_checksum, PlatformSpec, RunConfig, RunReport, TraceMode,
};
use memsched_schedulers::EagerScheduler;
use memsched_workloads::scale_xl_preset;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Allocation-counting wrapper around the system allocator. Benches are
/// standalone binaries, so installing it here affects nothing else.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed)
            + layout.size() as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocator deltas across one measured region.
#[derive(Serialize, Clone, Copy)]
struct AllocStats {
    allocations: u64,
    peak_bytes: u64,
}

fn measured<R>(f: impl FnOnce() -> R) -> (R, u64, AllocStats) {
    let count0 = ALLOC_COUNT.load(Ordering::Relaxed);
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    let started = Instant::now();
    let r = f();
    let wall = started.elapsed().as_nanos() as u64;
    let stats = AllocStats {
        allocations: ALLOC_COUNT.load(Ordering::Relaxed) - count0,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    };
    (r, wall, stats)
}

#[derive(Serialize)]
struct CoreRun {
    wall_ns: u64,
    tasks_per_sec: f64,
    alloc: AllocStats,
}

#[derive(Serialize)]
struct Entry {
    workload: String,
    tasks: usize,
    /// FNV-1a checksum of the trace-event stream, hex.
    trace_checksum: String,
    /// Flat core (calendar queue + `TraceMode::Checksum`).
    flat: CoreRun,
    /// Pre-refactor core (`naive_core` + `TraceMode::Full`); absent at
    /// the 10⁶ tier, which runs the flat core only.
    naive: Option<CoreRun>,
    speedup: Option<f64>,
    makespan_ns: u64,
    total_loads: u64,
}

#[derive(Serialize)]
struct Output {
    preset: String,
    quick: bool,
    reps: usize,
    entries: Vec<Entry>,
    /// Smallest flat-vs-naive speedup at the 10⁵ tier — the acceptance
    /// number (must stay ≥ 3).
    min_xl_speedup: f64,
}

fn core_run(wall_ns: u64, alloc: AllocStats, tasks: usize) -> CoreRun {
    CoreRun {
        wall_ns,
        tasks_per_sec: tasks as f64 / (wall_ns as f64 / 1e9),
        alloc,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 1 } else { 2 };
    // Comparison tiers: everything below this runs both cores; at or
    // above it (the 10⁶ tier) only the flat core.
    const COMPARE_BELOW: usize = 500_000;

    let mut entries = Vec::new();
    let mut min_xl_speedup = f64::INFINITY;
    for workload in scale_xl_preset(quick) {
        let ts = workload.generate();
        let tasks = ts.num_tasks();
        // 8 GPUs under memory pressure: eviction and transfer events stay
        // hot, and the pre-refactor per-event full progress scan pays for
        // every one of the 8 workers on every event.
        let spec = PlatformSpec::v100(16).with_memory(ts.working_set_bytes());

        let mut flat_best: Option<(RunReport, u64, AllocStats)> = None;
        for _ in 0..reps {
            let config = RunConfig {
                trace: TraceMode::Checksum,
                ..RunConfig::default()
            };
            let ((report, _), wall, alloc) = measured(|| {
                let mut sched = EagerScheduler::new();
                run_with_config(&ts, &spec, &mut sched, &config).expect("flat run")
            });
            if let Some((prev, _, _)) = &flat_best {
                assert_eq!(prev.trace_checksum, report.trace_checksum, "nondeterministic rep");
            }
            if flat_best.as_ref().is_none_or(|&(_, w, _)| wall < w) {
                flat_best = Some((report, wall, alloc));
            }
        }
        let (flat_report, flat_wall, flat_alloc) = flat_best.expect("reps >= 1");
        let checksum = flat_report
            .trace_checksum
            .expect("checksum mode records a checksum");

        let mut naive_entry = None;
        let mut speedup = None;
        if tasks < COMPARE_BELOW {
            let mut naive_best: Option<(RunReport, Vec<_>, u64, AllocStats)> = None;
            for _ in 0..reps {
                let config = RunConfig {
                    trace: TraceMode::Full,
                    naive_core: true,
                    ..RunConfig::default()
                };
                let ((report, trace), wall, alloc) = measured(|| {
                    let mut sched = EagerScheduler::new();
                    run_with_config(&ts, &spec, &mut sched, &config).expect("naive run")
                });
                if naive_best.as_ref().is_none_or(|&(_, _, w, _)| wall < w) {
                    naive_best = Some((report, trace, wall, alloc));
                }
            }
            let (naive_report, naive_trace, naive_wall, naive_alloc) =
                naive_best.expect("reps >= 1");

            // The two cores must agree on the simulated outcome AND on the
            // byte-exact event stream (checksum of the materialized trace
            // vs the streaming sink).
            assert_eq!(naive_report.makespan, flat_report.makespan);
            assert_eq!(naive_report.total_loads, flat_report.total_loads);
            let naive_tasks: Vec<usize> = naive_report.per_gpu.iter().map(|g| g.tasks).collect();
            let flat_tasks: Vec<usize> = flat_report.per_gpu.iter().map(|g| g.tasks).collect();
            assert_eq!(naive_tasks, flat_tasks);
            assert_eq!(
                trace_checksum(&naive_trace),
                checksum,
                "event streams diverged between heap and calendar cores"
            );

            let s = naive_wall as f64 / flat_wall.max(1) as f64;
            if tasks >= 100_000 {
                min_xl_speedup = min_xl_speedup.min(s);
            }
            naive_entry = Some(core_run(naive_wall, naive_alloc, tasks));
            speedup = Some(s);
        }

        println!(
            "{:<18} {:>9} tasks  flat {:>12} ns ({:>12.0} tasks/s, {} allocs){}",
            workload.label(),
            tasks,
            flat_wall,
            tasks as f64 / (flat_wall as f64 / 1e9),
            flat_alloc.allocations,
            speedup.map_or(String::new(), |s| format!("  speedup {s:.1}x")),
        );
        entries.push(Entry {
            workload: workload.label(),
            tasks,
            trace_checksum: format!("{checksum:016x}"),
            flat: core_run(flat_wall, flat_alloc, tasks),
            naive: naive_entry,
            speedup,
            makespan_ns: flat_report.makespan,
            total_loads: flat_report.total_loads,
        });
    }

    assert!(
        min_xl_speedup >= 3.0,
        "engine-loop speedup floor violated at the 10^5 tier: {min_xl_speedup:.2}x < 3x"
    );

    let output = Output {
        preset: "scale_xl".into(),
        quick,
        reps,
        entries,
        min_xl_speedup,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_engine_scale.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("min scale_xl speedup: {min_xl_speedup:.1}x -> {path}");
}
