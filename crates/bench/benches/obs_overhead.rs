//! Observability overhead tier: the same simulation with and without a
//! trace probe attached, on the `scale` workload preset.
//!
//! Two numbers matter. **Disabled** is `run()` — the engine contains the
//! emission branches but no probe is attached, so every emission guard
//! is a cold `Option::is_some` check; this path must stay within noise
//! of the pre-observability engine (the golden-trace tests pin its
//! decisions byte-for-byte, this bench pins its wall time). **Enabled**
//! is `run_observed()` with an unbounded in-memory recorder — the
//! realistic worst case, every event materialized.
//!
//! Both runs must produce the identical simulated outcome (observation
//! never changes decisions); the bench asserts makespan, loads and
//! per-GPU task counts match before reporting. Results land in
//! `results/BENCH_obs_overhead.json`. Quick mode (`--quick` or
//! `MEMSCHED_BENCH_QUICK=1`) shrinks the preset and repetitions for CI.

use memsched_platform::{run, run_observed, PlatformSpec, Probe, RunConfig, RunReport, Scheduler};
use memsched_schedulers::{DartsConfig, DartsScheduler, DmdaScheduler, EagerScheduler};
use memsched_workloads::scale_preset;
use serde::Serialize;
use std::time::Instant;

/// One measured (workload, scheduler) pair.
#[derive(Serialize)]
struct Entry {
    workload: String,
    scheduler: String,
    tasks: usize,
    /// Fastest end-to-end wall time without a probe, ns.
    disabled_ns: u64,
    /// Fastest end-to-end wall time with an unbounded recorder, ns.
    enabled_ns: u64,
    /// `enabled / disabled` (1.0 = free).
    enabled_over_disabled: f64,
    /// Events recorded by the enabled run.
    events: usize,
    /// Simulated outcome, identical across both runs by construction.
    makespan_ns: u64,
    total_loads: u64,
}

#[derive(Serialize)]
struct Output {
    preset: String,
    quick: bool,
    reps: usize,
    entries: Vec<Entry>,
    /// Largest enabled/disabled ratio over all pairs.
    max_enabled_overhead: f64,
}

fn fingerprint(r: &RunReport) -> (u64, u64, Vec<usize>) {
    (
        r.makespan,
        r.total_loads,
        r.per_gpu.iter().map(|g| g.tasks).collect(),
    )
}

/// Fastest-of-`reps` wall time; every rep must reproduce the same
/// simulated outcome.
fn measure<R>(reps: usize, mut once: impl FnMut() -> (RunReport, R)) -> (RunReport, R, u64) {
    let mut best: Option<(RunReport, R, u64)> = None;
    for _ in 0..reps {
        let started = Instant::now();
        let (report, extra) = once();
        let wall = started.elapsed().as_nanos() as u64;
        if let Some((prev, _, _)) = &best {
            assert_eq!(fingerprint(prev), fingerprint(&report), "nondeterministic rep");
        }
        if best.as_ref().is_none_or(|&(_, _, w)| wall < w) {
            best = Some((report, extra, wall));
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 1 } else { 3 };

    let mut entries = Vec::new();
    let mut max_enabled_overhead: f64 = 0.0;
    for workload in scale_preset(quick) {
        let ts = workload.generate();
        let spec = PlatformSpec::v100(2).with_memory(ts.working_set_bytes() / 4);

        type Build = Box<dyn Fn() -> Box<dyn Scheduler + Send>>;
        let builders: Vec<(&str, Build)> = vec![
            ("EAGER", Box::new(|| Box::new(EagerScheduler::new()))),
            ("DMDAR", Box::new(|| Box::new(DmdaScheduler::dmdar()))),
            (
                "DARTS+LUF",
                Box::new(|| Box::new(DartsScheduler::new(DartsConfig::luf()))),
            ),
        ];

        for (name, build) in builders {
            let (off_report, (), off_ns) = measure(reps, || {
                let mut sched = build();
                (run(&ts, &spec, sched.as_mut()).expect("bench run"), ())
            });
            let config = RunConfig::default();
            let (on_report, events, on_ns) = measure(reps, || {
                let mut sched = build();
                let probe = Probe::unbounded();
                let (report, _) = run_observed(&ts, &spec, sched.as_mut(), &config, &probe)
                    .expect("observed bench run");
                (report, probe.len())
            });

            // Observation must not change a single decision.
            assert_eq!(fingerprint(&off_report), fingerprint(&on_report), "{name}");

            let ratio = on_ns as f64 / off_ns.max(1) as f64;
            max_enabled_overhead = max_enabled_overhead.max(ratio);
            println!(
                "{:<22} {:<12} disabled {:>12} ns, enabled {:>12} ns ({:.2}x, {} events)",
                workload.label(),
                name,
                off_ns,
                on_ns,
                ratio,
                events
            );
            entries.push(Entry {
                workload: workload.label(),
                scheduler: name.to_string(),
                tasks: ts.num_tasks(),
                disabled_ns: off_ns,
                enabled_ns: on_ns,
                enabled_over_disabled: ratio,
                events,
                makespan_ns: on_report.makespan,
                total_loads: on_report.total_loads,
            });
        }
    }

    let output = Output {
        preset: "scale".into(),
        quick,
        reps,
        entries,
        max_enabled_overhead,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_obs_overhead.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("max enabled overhead: {max_enabled_overhead:.2}x -> {path}");
}
