//! Sharded-tier scale bench: the conservative time-window parallel DES
//! (`run_sharded`) against the serial flat core on a multi-bus platform
//! with a decomposable scheduler (static DMDA), plus the cost of the
//! serial fallback path (EAGER routed through the sharded entry point).
//!
//! Records to `results/BENCH_shard_scale.json`:
//!
//! * serial wall time and event throughput (events counted once from a
//!   materialized trace, wall measured trace-off);
//! * per worker count (`--shards 1/2/4`): wall time, per-shard event
//!   throughput, window-barrier count, and speedup over serial — the
//!   makespan is asserted identical to the serial run every time;
//! * the serial-fallback overhead: `run_sharded` with a globally-coupled
//!   scheduler must cost at most **1.15×** the direct serial run
//!   (asserted — the entry point may build throwaway scheduler
//!   instances and run eligibility gates, nothing more).
//!
//! Quick mode (`--quick` or `MEMSCHED_BENCH_QUICK=1`) shrinks the grid
//! for CI.

use memsched_platform::{
    run_sharded, run_with_config, PlatformSpec, RunConfig, Scheduler, ShardOptions, TraceMode,
};
use memsched_schedulers::{DmdaScheduler, EagerScheduler};
use memsched_workloads::gemm_2d;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ShardedRun {
    shards: usize,
    wall_ns: u64,
    /// Events per second per shard (the tier's scaling unit).
    events_per_sec_per_shard: f64,
    windows: u64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct Output {
    quick: bool,
    reps: usize,
    /// Host cores available to the bench — with fewer cores than
    /// shards, multi-worker rows measure barrier overhead, not scaling.
    cores: usize,
    workload: String,
    tasks: usize,
    gpus: usize,
    buses: usize,
    /// Trace events of one run (identical serial and sharded).
    events: usize,
    serial_wall_ns: u64,
    serial_events_per_sec: f64,
    sharded: Vec<ShardedRun>,
    /// EAGER through the sharded entry point vs the direct serial run.
    fallback_overhead: f64,
    fallback_overhead_max: f64,
}

fn timed<R>(reps: usize, f: impl Fn() -> R) -> (R, u64) {
    let mut best: Option<(R, u64)> = None;
    for _ in 0..reps {
        let started = Instant::now();
        let r = f();
        let wall = started.elapsed().as_nanos() as u64;
        if best.as_ref().is_none_or(|&(_, w)| wall < w) {
            best = Some((r, wall));
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 2 } else { 3 };
    let n = if quick { 24 } else { 48 };
    let (gpus, buses) = (8, 4);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let ts = gemm_2d(n);
    let tile = ts.data_size(memsched_model::DataId(0));
    // Memory pressure: a third of each GPU's slice of the working set
    // keeps eviction and transfer events hot.
    let spec = PlatformSpec::v100_multibus(gpus, buses)
        .with_memory((ts.working_set_bytes() / gpus as u64 / 3).max(4 * tile));
    let off = RunConfig::default();

    // Event count (serial == sharded, pinned by tests/sharded_differential.rs).
    let full = RunConfig {
        trace: TraceMode::Full,
        ..RunConfig::default()
    };
    let (_, events) = {
        let mut sched = DmdaScheduler::dmda();
        let (_, trace) = run_with_config(&ts, &spec, &mut sched, &full).expect("trace run");
        ((), trace.len())
    };

    let ((serial_makespan,), serial_wall) = timed(reps, || {
        let mut sched = DmdaScheduler::dmda();
        let (report, _) = run_with_config(&ts, &spec, &mut sched, &off).expect("serial run");
        (report.makespan,)
    });
    let serial_eps = events as f64 / (serial_wall as f64 / 1e9);
    println!(
        "serial: {} tasks, {events} events, {serial_wall} ns ({serial_eps:.0} events/s)",
        ts.num_tasks()
    );

    let factory = || -> Box<dyn Scheduler + Send> { Box::new(DmdaScheduler::dmda()) };
    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4] {
        let ((makespan, windows, shards_used), wall) = timed(reps, || {
            let (report, _) =
                run_sharded(&ts, &spec, &factory, &off, &ShardOptions { shards })
                    .expect("sharded run");
            let stats = report.sharding.expect("sharding stats");
            assert_eq!(
                stats.fallback_reason, None,
                "decomposable run unexpectedly fell back"
            );
            (report.makespan, stats.windows, stats.shards_used)
        });
        assert_eq!(makespan, serial_makespan, "sharded makespan diverged");
        let eps_per_shard = events as f64 / (wall as f64 / 1e9) / shards_used as f64;
        let speedup = serial_wall as f64 / wall.max(1) as f64;
        let note = if shards > cores {
            " (oversubscribed: shards > host cores)"
        } else {
            ""
        };
        println!(
            "sharded --shards {shards}: {wall} ns, {windows} windows, \
             {eps_per_shard:.0} events/s/shard, speedup {speedup:.2}x{note}"
        );
        sharded.push(ShardedRun {
            shards,
            wall_ns: wall,
            events_per_sec_per_shard: eps_per_shard,
            windows,
            speedup_vs_serial: speedup,
        });
    }

    // Fallback overhead: a globally-coupled scheduler through the sharded
    // entry must cost (almost) exactly the serial run.
    let ((eager_serial_makespan,), eager_serial_wall) = timed(reps, || {
        let mut sched = EagerScheduler::new();
        let (report, _) = run_with_config(&ts, &spec, &mut sched, &off).expect("eager serial");
        (report.makespan,)
    });
    let eager_factory = || -> Box<dyn Scheduler + Send> { Box::new(EagerScheduler::new()) };
    let ((entry_makespan, reason), entry_wall) = timed(reps, || {
        let (report, _) = run_sharded(
            &ts,
            &spec,
            &eager_factory,
            &off,
            &ShardOptions::default(),
        )
        .expect("eager through sharded entry");
        let stats = report.sharding.expect("sharding stats");
        (report.makespan, stats.fallback_reason)
    });
    assert_eq!(entry_makespan, eager_serial_makespan, "fallback diverged");
    assert_eq!(reason.as_deref(), Some("scheduler is globally coupled"));
    let overhead = entry_wall as f64 / eager_serial_wall.max(1) as f64;
    const OVERHEAD_MAX: f64 = 1.15;
    println!("fallback overhead: {overhead:.3}x (max {OVERHEAD_MAX}x)");
    assert!(
        overhead <= OVERHEAD_MAX,
        "serial-fallback overhead {overhead:.3}x exceeds {OVERHEAD_MAX}x"
    );

    let output = Output {
        quick,
        reps,
        cores,
        workload: format!("gemm_2d({n})"),
        tasks: ts.num_tasks(),
        gpus,
        buses,
        events,
        serial_wall_ns: serial_wall,
        serial_events_per_sec: serial_eps,
        sharded,
        fallback_overhead: overhead,
        fallback_overhead_max: OVERHEAD_MAX,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_shard_scale.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("wrote {path}");
}
