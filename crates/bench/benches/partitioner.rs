//! Benchmarks of the hMETIS-substitute hypergraph partitioner: scaling
//! with task-grid size, restart count (Nruns), and thread count — the
//! "partitioning time" that Figures 6, 8 and 13 show dominating
//! hMETIS+R's end-to-end performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsched_hypergraph::{partition, PartitionConfig};
use memsched_schedulers::HmetisRScheduler;
use memsched_workloads::gemm_2d;
use std::hint::black_box;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for n in [10usize, 20, 40] {
        let ts = gemm_2d(n);
        let hg = HmetisRScheduler::build_hypergraph(&ts);
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &hg, |b, hg| {
            let cfg = PartitionConfig::for_parts(4).with_nruns(4).with_threads(1);
            b.iter(|| black_box(partition(hg, &cfg)));
        });
    }
    group.finish();
}

fn bench_nruns(c: &mut Criterion) {
    let ts = gemm_2d(24);
    let hg = HmetisRScheduler::build_hypergraph(&ts);
    let mut group = c.benchmark_group("partitioner_nruns");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for nruns in [1usize, 5, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(nruns), &nruns, |b, &nruns| {
            let cfg = PartitionConfig::for_parts(2)
                .with_nruns(nruns)
                .with_threads(1);
            b.iter(|| black_box(partition(&hg, &cfg)));
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let ts = gemm_2d(30);
    let hg = HmetisRScheduler::build_hypergraph(&ts);
    let mut group = c.benchmark_group("partitioner_threads");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = PartitionConfig::for_parts(4)
                    .with_nruns(8)
                    .with_threads(threads);
                b.iter(|| black_box(partition(&hg, &cfg)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_nruns, bench_threads);
criterion_main!(benches);
