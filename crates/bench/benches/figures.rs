//! One benchmark group per paper figure: a reduced working-set point of
//! the exact configuration the figure binary sweeps, for every scheduler
//! series in that figure. Regenerating the full curves is the job of the
//! `memsched-experiments` binaries; these benches track the cost of each
//! (scheduler × workload × platform) cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsched_bench::run_named;
use memsched_platform::PlatformSpec;
use memsched_schedulers::NamedScheduler as S;
use memsched_workloads::Workload;
use std::hint::black_box;
use std::time::Duration;

struct FigureBench {
    id: &'static str,
    spec: PlatformSpec,
    workload: Workload,
    schedulers: Vec<S>,
}

fn figure_benches() -> Vec<FigureBench> {
    vec![
        FigureBench {
            id: "fig03_gemm2d_1gpu",
            spec: PlatformSpec::v100(1),
            workload: Workload::Gemm2d { n: 20 },
            schedulers: vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf, S::Mhfp],
        },
        FigureBench {
            id: "fig04_transfers_1gpu",
            spec: PlatformSpec::v100(1),
            workload: Workload::Gemm2d { n: 24 },
            schedulers: vec![S::Eager, S::Dmdar, S::DartsLuf],
        },
        FigureBench {
            id: "fig05_gemm2d_2gpu",
            spec: PlatformSpec::v100(2),
            workload: Workload::Gemm2d { n: 24 },
            schedulers: vec![S::Eager, S::Dmdar, S::DartsLuf, S::HmetisR, S::Mhfp],
        },
        FigureBench {
            id: "fig06_gemm2d_2gpu_sched_time",
            spec: PlatformSpec::v100(2),
            workload: Workload::Gemm2d { n: 28 },
            schedulers: vec![S::Dmdar, S::DartsLuf, S::HmetisR],
        },
        FigureBench {
            id: "fig07_transfers_2gpu",
            spec: PlatformSpec::v100(2),
            workload: Workload::Gemm2d { n: 28 },
            schedulers: vec![S::Eager, S::Dmdar, S::DartsLuf, S::HmetisR],
        },
        FigureBench {
            id: "fig08_gemm2d_4gpu",
            spec: PlatformSpec::v100(4),
            workload: Workload::Gemm2d { n: 32 },
            schedulers: vec![S::Dmdar, S::DartsLuf, S::DartsLufThreshold(32), S::HmetisR],
        },
        FigureBench {
            id: "fig09_random_order_2gpu",
            spec: PlatformSpec::v100(2),
            workload: Workload::Gemm2dRandom { n: 20, seed: 42 },
            schedulers: vec![S::Eager, S::Dmdar, S::DartsLuf, S::HmetisR],
        },
        FigureBench {
            id: "fig10_gemm3d_4gpu",
            spec: PlatformSpec::v100(4),
            workload: Workload::Gemm3d { n: 10 },
            schedulers: vec![S::Dmdar, S::DartsLuf, S::DartsLuf3, S::HmetisR],
        },
        FigureBench {
            id: "fig11_cholesky_4gpu",
            spec: PlatformSpec::v100(4),
            workload: Workload::Cholesky { n: 16 },
            schedulers: vec![S::Dmdar, S::DartsLuf, S::DartsLufOpti3, S::HmetisR],
        },
        FigureBench {
            id: "fig12_sparse_4gpu",
            spec: PlatformSpec::v100(4),
            workload: Workload::Sparse2d {
                n: 120,
                density: 0.02,
                seed: 7,
            },
            schedulers: vec![S::Dmdar, S::DartsLuf, S::DartsLufOpti, S::HmetisR],
        },
        FigureBench {
            id: "fig13_sparse_unlimited",
            spec: PlatformSpec::v100_unlimited(4),
            workload: Workload::Sparse2d {
                n: 120,
                density: 0.02,
                seed: 7,
            },
            schedulers: vec![S::Dmdar, S::DartsLuf, S::DartsLufOpti, S::HmetisR],
        },
    ]
}

fn bench_figures(c: &mut Criterion) {
    for fig in figure_benches() {
        let ts = fig.workload.generate();
        let mut group = c.benchmark_group(fig.id);
        group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
        for named in &fig.schedulers {
            group.bench_with_input(
                BenchmarkId::from_parameter(named.label()),
                named,
                |b, named| {
                    b.iter(|| black_box(run_named(named, &ts, &fig.spec)));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
