//! Serial vs parallel sweep harness: the same reduced figure sweep run
//! through `FigureSpec::run_with_jobs` at increasing worker counts. The
//! cells of a sweep are independent simulated runs, so wall time should
//! fall roughly linearly until the worker count passes the cell count or
//! the machine's cores. The rows produced are identical at every worker
//! count (see `crates/experiments/tests/determinism.rs`); only wall time
//! changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memsched_experiments::figures;
use std::hint::black_box;
use std::time::Duration;

fn harness_jobs(c: &mut Criterion) {
    // A mid-size multi-scheduler sweep: enough cells for the pool to
    // matter, small enough to iterate a few times per measurement.
    let fig = figures::quick(figures::fig05());
    let cells: u64 = fig.points.iter().map(|p| p.schedulers.len() as u64).sum();

    let mut group = c.benchmark_group("parallel_harness");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(cells));
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(fig.run_with_jobs(jobs)))
        });
    }
    group.finish();
}

criterion_group!(benches, harness_jobs);
criterion_main!(benches);
