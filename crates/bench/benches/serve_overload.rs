//! Overload-control bench for the serving tier: the same Poisson stream
//! pushed at an underloaded and a 2×-overloaded rate through every shed
//! policy, on the two-V100 serving platform.
//!
//! Records to `results/BENCH_serve_overload.json`:
//!
//! * the underloaded `DeferOnly` baseline (p50/p99 admitted-task
//!   latency, throughput) — the reference point;
//! * per policy at 2× overload: p99 latency, completions, sheds,
//!   expiries, goodput, and engine wall time (best of reps, trace off);
//! * the **bounded-latency assertion**: under overload, `PriorityShed`
//!   must keep the p99 latency of admitted tasks within a fixed
//!   multiple ([`P99_BOUND_MULTIPLE`]) of the underloaded baseline,
//!   while `DeferOnly` — which queues every arrival — must blow past
//!   that same bound (the divergence that motivates shedding). Both
//!   sides are simulated quantities, so the assertion is deterministic.
//!
//! Quick mode (`--quick` or `MEMSCHED_BENCH_QUICK=1`) shrinks the
//! stream for CI.

use memsched_model::DataId;
use memsched_platform::{
    run_with_config, AdmissionConfig, OnlineStats, PlatformSpec, RunConfig, ShedPolicy,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::{deadline_stamps, gemm_2d, open_loop_arrivals, ArrivalPattern};
use serde::Serialize;
use std::time::Instant;

/// p99 admitted-task latency under overload with `PriorityShed` must
/// stay within this multiple of the underloaded `DeferOnly` baseline.
const P99_BOUND_MULTIPLE: f64 = 10.0;

#[derive(Serialize)]
struct PolicyRun {
    policy: &'static str,
    rate_per_sec: f64,
    completed: u64,
    shed: u64,
    deadline_expired: u64,
    deadline_violations: u64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    throughput_tps: f64,
    goodput_tps: f64,
    wall_ns: u64,
    /// p99 as a multiple of the underloaded baseline p99.
    p99_vs_baseline: f64,
}

#[derive(Serialize)]
struct Output {
    quick: bool,
    reps: usize,
    workload: String,
    tasks: usize,
    backlog: usize,
    service_estimate_ns: u64,
    baseline_rate_per_sec: f64,
    overload_rate_per_sec: f64,
    baseline_p50_latency_ns: u64,
    baseline_p99_latency_ns: u64,
    baseline_throughput_tps: f64,
    baseline_wall_ns: u64,
    p99_bound_multiple: f64,
    overloaded: Vec<PolicyRun>,
}

fn timed<R>(reps: usize, f: impl Fn() -> R) -> (R, u64) {
    let mut best: Option<(R, u64)> = None;
    for _ in 0..reps {
        let started = Instant::now();
        let r = f();
        let wall = started.elapsed().as_nanos() as u64;
        if best.as_ref().is_none_or(|&(_, w)| wall < w) {
            best = Some((r, wall));
        }
    }
    best.expect("reps >= 1")
}

fn run_stream(
    ts: &memsched_model::TaskSet,
    spec: &PlatformSpec,
    policy: ShedPolicy,
    backlog: usize,
    reps: usize,
) -> (OnlineStats, u64) {
    let config = RunConfig {
        admission: Some(AdmissionConfig {
            max_backlog: Some(backlog),
            policy,
        }),
        ..RunConfig::default()
    };
    let (stats, wall) = timed(reps, || {
        let mut sched = NamedScheduler::Dmdar.build();
        let (report, _) =
            run_with_config(ts, spec, sched.as_mut(), &config).expect("serving run");
        report.online.expect("online stats")
    });
    (stats, wall)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 2 } else { 3 };
    let n = if quick { 16 } else { 32 }; // n^2 tasks
    let backlog = 8;

    let base = gemm_2d(n);
    let m = base.num_tasks();
    let tile = base.data_size(DataId(0));
    let spec = PlatformSpec::v100(2).with_memory(4 * tile);
    // Empirical service capacity: a batch run (every arrival at t = 0)
    // saturates the platform, so tasks/makespan is the sustainable rate
    // — transfers and memory pressure included, unlike the pure-flops
    // roofline. The baseline streams at half of it, the overload at 2×.
    let capacity_tps = {
        let mut sched = NamedScheduler::Dmdar.build();
        let (report, _) =
            run_with_config(&base, &spec, sched.as_mut(), &RunConfig::default())
                .expect("capacity probe");
        m as f64 / (report.makespan as f64 / 1e9)
    };
    // Effective per-GPU service time backs the deadline stamps.
    let service_ns = (2e9 / capacity_tps).max(1.0) as u64;
    let baseline_rate = 0.5 * capacity_tps;
    let overload_rate = 2.0 * capacity_tps;

    let stamp = |rate: f64| {
        let arrivals = open_loop_arrivals(
            &ArrivalPattern::Poisson { rate_per_sec: rate },
            42,
            m,
        );
        // Deadline budget for the DeadlineShed row: ~20 queued services.
        base.clone()
            .with_arrivals(arrivals)
            .with_deadlines(deadline_stamps(m, 20 * service_ns, 1.0, 42 ^ 0xD00D))
    };

    let under = stamp(baseline_rate);
    let (baseline, baseline_wall) =
        run_stream(&under, &spec, ShedPolicy::DeferOnly, backlog, reps);
    assert_eq!(baseline.tasks_admitted, m as u64, "baseline must admit all");
    println!(
        "baseline (defer @ {baseline_rate:.0}/s): p99 {} ns, {:.0} tasks/s, wall {baseline_wall} ns",
        baseline.p99_latency, baseline.throughput_tps
    );

    let over = stamp(overload_rate);
    let mut overloaded = Vec::new();
    for policy in [
        ShedPolicy::DeferOnly,
        ShedPolicy::DeadlineShed,
        ShedPolicy::PriorityShed,
    ] {
        let (stats, wall) = run_stream(&over, &spec, policy, backlog, reps);
        let ratio = stats.p99_latency as f64 / baseline.p99_latency.max(1) as f64;
        println!(
            "overload {} @ {overload_rate:.0}/s: p99 {} ns ({ratio:.2}x baseline), \
             completed {}, shed {}, expired {}, goodput {:.0}/s, wall {wall} ns",
            policy.as_str(),
            stats.p99_latency,
            stats.tasks_admitted,
            stats.tasks_shed,
            stats.deadline_expired,
            stats.goodput_tps,
        );
        match policy {
            // The point of the bench: shedding bounds tail latency,
            // defer-only queueing does not.
            ShedPolicy::PriorityShed => assert!(
                ratio <= P99_BOUND_MULTIPLE,
                "PriorityShed p99 {ratio:.2}x baseline exceeds the \
                 {P99_BOUND_MULTIPLE}x bound"
            ),
            ShedPolicy::DeferOnly => assert!(
                ratio > P99_BOUND_MULTIPLE,
                "DeferOnly p99 {ratio:.2}x baseline unexpectedly bounded — \
                 the overload rate is not overloading"
            ),
            ShedPolicy::DeadlineShed => {}
        }
        overloaded.push(PolicyRun {
            policy: policy.as_str(),
            rate_per_sec: overload_rate,
            completed: stats.tasks_admitted,
            shed: stats.tasks_shed,
            deadline_expired: stats.deadline_expired,
            deadline_violations: stats.deadline_violations,
            p50_latency_ns: stats.p50_latency,
            p99_latency_ns: stats.p99_latency,
            throughput_tps: stats.throughput_tps,
            goodput_tps: stats.goodput_tps,
            wall_ns: wall,
            p99_vs_baseline: ratio,
        });
    }

    let output = Output {
        quick,
        reps,
        workload: format!("gemm_2d({n})"),
        tasks: m,
        backlog,
        service_estimate_ns: service_ns,
        baseline_rate_per_sec: baseline_rate,
        overload_rate_per_sec: overload_rate,
        baseline_p50_latency_ns: baseline.p50_latency,
        baseline_p99_latency_ns: baseline.p99_latency,
        baseline_throughput_tps: baseline.throughput_tps,
        baseline_wall_ns: baseline_wall,
        p99_bound_multiple: P99_BOUND_MULTIPLE,
        overloaded,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_serve_overload.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("wrote {path}");
}
