//! Benchmarks of the discrete-event engine itself: event throughput as a
//! function of task count, pipeline depth, and GPU count, using the
//! trivial EAGER policy so the engine dominates the measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memsched_bench::run_named;
use memsched_platform::{run, PlatformSpec};
use memsched_schedulers::{EagerScheduler, NamedScheduler};
use memsched_workloads::{constants::GEMM2D_DATA_BYTES, gemm_2d};
use std::hint::black_box;
use std::time::Duration;

fn bench_task_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_task_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for n in [10usize, 20, 40, 80] {
        let ts = gemm_2d(n);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &ts, |b, ts| {
            let spec = PlatformSpec::v100(2);
            b.iter(|| {
                let mut sched = EagerScheduler::new();
                black_box(run(ts, &spec, &mut sched).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_pipeline_depth(c: &mut Criterion) {
    let ts = gemm_2d(24);
    let mut group = c.benchmark_group("engine_pipeline_depth");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for depth in [1usize, 2, 4, 8] {
        let spec = PlatformSpec::v100(2)
            .with_memory(10 * GEMM2D_DATA_BYTES)
            .with_pipeline_depth(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &spec, |b, spec| {
            b.iter(|| black_box(run_named(&NamedScheduler::DartsLuf, &ts, spec)))
        });
    }
    group.finish();
}

fn bench_gpu_count(c: &mut Criterion) {
    let ts = gemm_2d(32);
    let mut group = c.benchmark_group("engine_gpu_count");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for k in [1usize, 2, 4, 8] {
        let spec = PlatformSpec::v100(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &spec, |b, spec| {
            b.iter(|| black_box(run_named(&NamedScheduler::Eager, &ts, spec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_task_scaling, bench_pipeline_depth, bench_gpu_count);
criterion_main!(benches);
