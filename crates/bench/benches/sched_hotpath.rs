//! Scheduler hot-path tier: naive full-scan implementations vs the
//! incremental event-driven ones, on the `scale` workload preset.
//!
//! Unlike the criterion benches, this harness records its measurements to
//! `results/BENCH_sched_hotpath.json` so the speedup — and every future
//! PR's perf trajectory — is machine-readable. For each (workload,
//! scheduler) pair it runs the same simulation twice, once with the
//! reference scans (`naive` feature paths) and once with the incremental
//! state, asserts the simulated outcomes are identical (same decisions ⇒
//! same makespan, loads, per-GPU task counts), and reports the scheduler
//! decision wall time (`prepare_wall + sched_wall`, which includes the
//! event-hook maintenance — incremental work is charged, not hidden).
//!
//! Quick mode (`--quick` or `MEMSCHED_BENCH_QUICK=1`) shrinks the preset
//! and repetitions for CI.

use memsched_platform::{run, PlatformSpec, RunReport, Scheduler};
use memsched_schedulers::{DartsConfig, DartsScheduler, DmdaScheduler};
use memsched_workloads::scale_preset;
use serde::Serialize;
use std::time::Instant;

/// One measured (workload, scheduler) pair.
#[derive(Serialize)]
struct Entry {
    workload: String,
    scheduler: String,
    tasks: usize,
    /// Decision time (prepare + scheduling wall) of the full-scan run, ns.
    naive_decision_ns: u64,
    /// Decision time of the incremental run, ns.
    incremental_decision_ns: u64,
    /// naive / incremental.
    speedup: f64,
    /// End-to-end host wall time of each run, ns (context for the above).
    naive_total_ns: u64,
    incremental_total_ns: u64,
    /// Simulated outcome, identical across the two runs by construction.
    makespan_ns: u64,
    total_loads: u64,
}

#[derive(Serialize)]
struct Output {
    preset: String,
    quick: bool,
    reps: usize,
    entries: Vec<Entry>,
    /// Smallest decision-time speedup over the DARTS configurations — the
    /// acceptance number (must stay ≥ 5 on the scale preset).
    min_darts_speedup: f64,
}

fn decision_ns(r: &RunReport) -> u64 {
    r.prepare_wall + r.sched_wall
}

/// Run `build()` `reps` times, keep the fastest decision time, and check
/// every run reproduces the same simulated outcome.
fn measure(
    ts: &memsched_model::TaskSet,
    spec: &PlatformSpec,
    reps: usize,
    mut build: impl FnMut() -> Box<dyn Scheduler + Send>,
) -> (RunReport, u64, u64) {
    let mut best: Option<(RunReport, u64, u64)> = None;
    for _ in 0..reps {
        let started = Instant::now();
        let mut sched = build();
        let report = run(ts, spec, sched.as_mut()).expect("bench run");
        let total = started.elapsed().as_nanos() as u64;
        let decision = decision_ns(&report);
        if let Some((prev, _, _)) = &best {
            assert_eq!(prev.makespan, report.makespan, "nondeterministic rep");
        }
        if best.as_ref().is_none_or(|&(_, d, _)| decision < d) {
            best = Some((report, decision, total));
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 1 } else { 3 };

    let mut entries = Vec::new();
    let mut min_darts_speedup = f64::INFINITY;
    for workload in scale_preset(quick) {
        let ts = workload.generate();
        // A quarter of the working set: enough memory pressure that the
        // eviction paths (LUF, dependent release) stay hot.
        let spec = PlatformSpec::v100(2).with_memory(ts.working_set_bytes() / 4);

        type Build = Box<dyn Fn() -> Box<dyn Scheduler + Send>>;
        let pairs: Vec<(&str, Build, Build)> = vec![
            (
                "DARTS+LUF",
                Box::new(|| Box::new(DartsScheduler::new(DartsConfig::luf().with_naive()))),
                Box::new(|| Box::new(DartsScheduler::new(DartsConfig::luf()))),
            ),
            (
                "DARTS+LUF-3inputs",
                Box::new(|| {
                    Box::new(DartsScheduler::new(
                        DartsConfig::luf().with_three_inputs().with_naive(),
                    ))
                }),
                Box::new(|| {
                    Box::new(DartsScheduler::new(DartsConfig::luf().with_three_inputs()))
                }),
            ),
            (
                "DMDAR",
                Box::new(|| Box::new(DmdaScheduler::dmdar().with_naive_ready())),
                Box::new(|| Box::new(DmdaScheduler::dmdar())),
            ),
        ];

        for (name, naive_build, incr_build) in pairs {
            let (naive_report, naive_decision, naive_total) =
                measure(&ts, &spec, reps, || naive_build());
            let (incr_report, incr_decision, incr_total) =
                measure(&ts, &spec, reps, || incr_build());

            // Identical decision streams ⇒ identical simulated outcome.
            assert_eq!(naive_report.makespan, incr_report.makespan, "{name}");
            assert_eq!(naive_report.total_loads, incr_report.total_loads, "{name}");
            let naive_tasks: Vec<usize> = naive_report.per_gpu.iter().map(|g| g.tasks).collect();
            let incr_tasks: Vec<usize> = incr_report.per_gpu.iter().map(|g| g.tasks).collect();
            assert_eq!(naive_tasks, incr_tasks, "{name}");

            let speedup = naive_decision as f64 / incr_decision.max(1) as f64;
            if name.starts_with("DARTS") {
                min_darts_speedup = min_darts_speedup.min(speedup);
            }
            println!(
                "{:<22} {:<20} decision {:>12} ns -> {:>10} ns  ({:.1}x)",
                workload.label(),
                name,
                naive_decision,
                incr_decision,
                speedup
            );
            entries.push(Entry {
                workload: workload.label(),
                scheduler: name.to_string(),
                tasks: ts.num_tasks(),
                naive_decision_ns: naive_decision,
                incremental_decision_ns: incr_decision,
                speedup,
                naive_total_ns: naive_total,
                incremental_total_ns: incr_total,
                makespan_ns: incr_report.makespan,
                total_loads: incr_report.total_loads,
            });
        }
    }

    let output = Output {
        preset: "scale".into(),
        quick,
        reps,
        entries,
        min_darts_speedup,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_sched_hotpath.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("min DARTS speedup: {min_darts_speedup:.1}x -> {path}");
}
