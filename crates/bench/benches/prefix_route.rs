//! Prefix-cache routing bench: the `prefix_route` cache-pressure sweep
//! (seeded prefix-tree request stream, two V100s, pressures 0.5×–4×)
//! with the transfer-byte margin asserted.
//!
//! Records to `results/BENCH_prefix_route.json`:
//!
//! * every (pressure × scheduler) cell of the sweep — p50/p99 admitted
//!   latency, bytes transferred, prefix-cache hit rate, evictions —
//!   plus the sweep wall time (best of reps, trace off);
//! * the **routing-margin assertion**: at 2× cache pressure the
//!   residency-aware Router must move at least
//!   [`ROUTER_SAVINGS_MIN`]·100% fewer bytes than EAGER, and must not
//!   lose on p99 latency. Both sides are simulated quantities, so the
//!   assertion is deterministic.
//!
//! Quick mode (`--quick` or `MEMSCHED_BENCH_QUICK=1`) halves the stream
//! for CI; the margin is established well before the quick length, so
//! the same assertions hold.

use memsched_experiments::prefix_route::{run_sweep, SweepConfig};
use serde::Serialize;
use std::time::Instant;

/// At 2× cache pressure the Router must move at least this fraction
/// fewer bytes than EAGER.
const ROUTER_SAVINGS_MIN: f64 = 0.30;

/// The pressure point the assertion reads.
const ASSERT_PRESSURE: f64 = 2.0;

#[derive(Serialize)]
struct Cell {
    scheduler: String,
    pressure_x: f64,
    p50_latency_ns: u64,
    p99_latency_ns: u64,
    transferred_mb: f64,
    cache_hit_rate: f64,
    evictions: u64,
}

#[derive(Serialize)]
struct Output {
    quick: bool,
    reps: usize,
    tasks: usize,
    tree_mb: f64,
    seed: u64,
    router_savings_min: f64,
    assert_pressure_x: f64,
    /// Router transferred bytes over EAGER's at the assert pressure.
    router_vs_eager_bytes: f64,
    sweep_wall_ns: u64,
    cells: Vec<Cell>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 2 } else { 3 };
    let seed = 42;
    let cfg = if quick {
        SweepConfig::quick(seed)
    } else {
        SweepConfig::full(seed)
    };

    let mut best: Option<(Vec<_>, u64)> = None;
    for _ in 0..reps {
        let started = Instant::now();
        let rows = run_sweep(&cfg).expect("sweep runs");
        let wall = started.elapsed().as_nanos() as u64;
        if best.as_ref().is_none_or(|&(_, w)| wall < w) {
            best = Some((rows, wall));
        }
    }
    let (rows, wall) = best.expect("reps >= 1");

    let tree_mb = rows.first().map_or(0.0, |r| r.tree_bytes as f64 / 1e6);
    let cells: Vec<Cell> = rows
        .iter()
        .map(|r| {
            let o = r.report.online.clone().unwrap_or_default();
            Cell {
                scheduler: r.scheduler.clone(),
                pressure_x: r.pressure,
                p50_latency_ns: o.p50_latency,
                p99_latency_ns: o.p99_latency,
                transferred_mb: r.report.transfers_mb(),
                cache_hit_rate: r.report.cache_hit_rate(),
                evictions: r.report.total_evictions,
            }
        })
        .collect();

    let at = |sched: &str| {
        cells
            .iter()
            .find(|c| c.scheduler == sched && c.pressure_x == ASSERT_PRESSURE)
            .unwrap_or_else(|| panic!("{sched} cell at {ASSERT_PRESSURE}x missing"))
    };
    let router = at("ROUTER");
    let eager = at("EAGER");
    let ratio = router.transferred_mb / eager.transferred_mb.max(f64::MIN_POSITIVE);
    println!(
        "router @ {ASSERT_PRESSURE}x: {:.1} MB moved vs EAGER {:.1} MB ({:.1}% fewer), \
         p99 {} vs {} ns, hit rate {:.4} vs {:.4}",
        router.transferred_mb,
        eager.transferred_mb,
        (1.0 - ratio) * 100.0,
        router.p99_latency_ns,
        eager.p99_latency_ns,
        router.cache_hit_rate,
        eager.cache_hit_rate,
    );
    // The point of the bench: residency-aware routing pays for itself in
    // bytes not moved, without giving the tail back.
    assert!(
        ratio <= 1.0 - ROUTER_SAVINGS_MIN,
        "router moved {:.1} MB vs EAGER {:.1} MB at {ASSERT_PRESSURE}x — only \
         {:.1}% fewer, need >= {:.0}%",
        router.transferred_mb,
        eager.transferred_mb,
        (1.0 - ratio) * 100.0,
        ROUTER_SAVINGS_MIN * 100.0
    );
    assert!(
        router.p99_latency_ns <= eager.p99_latency_ns,
        "router p99 {} ns exceeds EAGER p99 {} ns at {ASSERT_PRESSURE}x",
        router.p99_latency_ns,
        eager.p99_latency_ns
    );

    let output = Output {
        quick,
        reps,
        tasks: cfg.tasks,
        tree_mb,
        seed,
        router_savings_min: ROUTER_SAVINGS_MIN,
        assert_pressure_x: ASSERT_PRESSURE,
        router_vs_eager_bytes: ratio,
        sweep_wall_ns: wall,
        cells,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_prefix_route.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("wrote {path}");
}
