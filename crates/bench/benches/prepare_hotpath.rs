//! Offline prepare tier: the paper's quadratic mHFP packing and the
//! full-rebuild multilevel partitioner vs their index-accelerated,
//! decision-equivalent replacements, on the `scale` workload preset.
//!
//! For each workload the same prepare computation runs twice — once with
//! the `naive` reference (the implementation whose scheduling time the
//! paper reports in Figures 3/5, selectable at runtime via
//! `PackConfig::with_naive` / `PartitionConfig::with_naive`) and once with
//! the indexed fast path — and the outputs are asserted **byte-identical**
//! (same package lists, same part vectors) before any timing is reported.
//! Measurements land in `results/BENCH_prepare_hotpath.json`.
//!
//! Acceptance floor (checked here, not just in CI): the minimum mHFP
//! packing speedup must be ≥ 5× on the full scale tier, ≥ 2× in quick
//! mode (`--quick` / `MEMSCHED_BENCH_QUICK=1`, smaller task sets where
//! the quadratic reference has less room to lose).

use memsched_hypergraph::{partition, PartitionConfig};
use memsched_platform::PlatformSpec;
use memsched_schedulers::{hfp_pack_with, HmetisRScheduler, PackConfig};
use memsched_workloads::scale_preset;
use serde::Serialize;
use std::time::Instant;

/// One measured prepare computation.
#[derive(Serialize)]
struct Entry {
    workload: String,
    stage: String,
    tasks: usize,
    /// Prepare wall time of the reference implementation, ns.
    naive_ns: u64,
    /// Prepare wall time of the indexed implementation, ns.
    indexed_ns: u64,
    /// naive / indexed.
    speedup: f64,
}

#[derive(Serialize)]
struct Output {
    preset: String,
    quick: bool,
    reps: usize,
    entries: Vec<Entry>,
    /// Smallest mHFP packing speedup — the acceptance number (must stay
    /// ≥ 5 on the full scale preset, ≥ 2 in quick mode).
    min_mhfp_speedup: f64,
    /// Smallest partitioner speedup (informational; the FM work saved
    /// per pass is workload-dependent).
    min_partition_speedup: f64,
}

/// Time `f` `reps` times, keeping the fastest wall time and the (checked
/// identical) output of the first run.
fn measure<T: PartialEq + std::fmt::Debug>(reps: usize, mut f: impl FnMut() -> T) -> (T, u64) {
    let mut best_ns = u64::MAX;
    let mut out: Option<T> = None;
    for _ in 0..reps {
        let started = Instant::now();
        let r = f();
        best_ns = best_ns.min(started.elapsed().as_nanos() as u64);
        if let Some(prev) = &out {
            assert_eq!(prev, &r, "nondeterministic rep");
        } else {
            out = Some(r);
        }
    }
    (out.expect("reps >= 1"), best_ns)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("MEMSCHED_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 1 } else { 3 };
    let floor = if quick { 2.0 } else { 5.0 };

    let mut entries = Vec::new();
    let mut min_mhfp_speedup = f64::INFINITY;
    let mut min_partition_speedup = f64::INFINITY;
    for workload in scale_preset(quick) {
        let ts = workload.generate();
        // Same platform shape as the runtime hot-path tier: 2 GPUs, a
        // quarter of the working set each, so phase 1 has a real memory
        // bound to respect.
        let spec = PlatformSpec::v100(2).with_memory(ts.working_set_bytes() / 4);

        // mHFP packing: the whole of HfpScheduler::prepare.
        let cfg = PackConfig::new(spec.memory_bytes, spec.num_gpus);
        let (naive_lists, naive_ns) =
            measure(reps, || hfp_pack_with(&ts, &cfg.clone().with_naive()));
        let (fast_lists, indexed_ns) = measure(reps, || hfp_pack_with(&ts, &cfg));
        assert_eq!(naive_lists, fast_lists, "mHFP package lists diverge");
        let speedup = naive_ns as f64 / indexed_ns.max(1) as f64;
        min_mhfp_speedup = min_mhfp_speedup.min(speedup);
        println!(
            "{:<22} {:<16} {:>12} ns -> {:>10} ns  ({:.1}x)",
            workload.label(),
            "mHFP pack",
            naive_ns,
            indexed_ns,
            speedup
        );
        entries.push(Entry {
            workload: workload.label(),
            stage: "mHFP pack".into(),
            tasks: ts.num_tasks(),
            naive_ns,
            indexed_ns,
            speedup,
        });

        // Multilevel partitioner: the hMETIS+R prepare. Fewer restarts
        // than the paper's 20 keep the reference affordable at this size;
        // both sides run the same count so the comparison is fair.
        let hg = HmetisRScheduler::build_hypergraph(&ts);
        let pcfg = PartitionConfig::for_parts(spec.num_gpus)
            .with_nruns(if quick { 2 } else { 4 })
            .with_threads(1);
        let (naive_parts, naive_ns) = {
            let cfg = pcfg.clone().with_naive();
            measure(reps, || partition(&hg, &cfg).parts)
        };
        let (fast_parts, indexed_ns) = measure(reps, || partition(&hg, &pcfg).parts);
        assert_eq!(naive_parts, fast_parts, "partition vectors diverge");
        let speedup = naive_ns as f64 / indexed_ns.max(1) as f64;
        min_partition_speedup = min_partition_speedup.min(speedup);
        println!(
            "{:<22} {:<16} {:>12} ns -> {:>10} ns  ({:.1}x)",
            workload.label(),
            "partition",
            naive_ns,
            indexed_ns,
            speedup
        );
        entries.push(Entry {
            workload: workload.label(),
            stage: "partition".into(),
            tasks: ts.num_tasks(),
            naive_ns,
            indexed_ns,
            speedup,
        });
    }

    assert!(
        min_mhfp_speedup >= floor,
        "mHFP prepare speedup {min_mhfp_speedup:.1}x below the {floor}x floor"
    );

    let output = Output {
        preset: "scale".into(),
        quick,
        reps,
        entries,
        min_mhfp_speedup,
        min_partition_speedup,
    };
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_prepare_hotpath.json"
    );
    let json = serde_json::to_string_pretty(&output).expect("serialize");
    std::fs::write(path, json + "\n").expect("write bench json");
    println!("min mHFP prepare speedup: {min_mhfp_speedup:.1}x -> {path}");
}
