//! Ablation benches for the design choices DESIGN.md calls out:
//! LUF vs LRU eviction for DARTS, the Ready window, task stealing,
//! the DARTS candidate threshold, and the OPTI early exit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memsched_bench::run_named;
use memsched_platform::{run, PlatformSpec};
use memsched_schedulers::{DartsConfig, DartsScheduler, DmdaScheduler, HfpScheduler};
use memsched_schedulers::NamedScheduler as S;
use memsched_workloads::{constants::GEMM2D_DATA_BYTES, gemm_2d, gemm_2d_random};
use std::hint::black_box;
use std::time::Duration;

/// DARTS eviction policy: LUF vs the runtime LRU, under memory pressure.
fn bench_eviction(c: &mut Criterion) {
    let ts = gemm_2d(24);
    let spec = PlatformSpec::v100(1).with_memory(8 * GEMM2D_DATA_BYTES);
    let mut group = c.benchmark_group("ablation_darts_eviction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for named in [S::Darts, S::DartsLuf] {
        group.bench_with_input(
            BenchmarkId::from_parameter(named.label()),
            &named,
            |b, named| b.iter(|| black_box(run_named(named, &ts, &spec))),
        );
    }
    group.finish();
}

/// Ready scan window of DMDAR: 1 (FIFO) → 512.
fn bench_ready_window(c: &mut Criterion) {
    let ts = gemm_2d_random(20, 5);
    let spec = PlatformSpec::v100(2).with_memory(8 * GEMM2D_DATA_BYTES);
    let mut group = c.benchmark_group("ablation_ready_window");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for window in [1usize, 16, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                let mut sched = DmdaScheduler::dmdar().with_window(w);
                black_box(run(&ts, &spec, &mut sched).unwrap())
            })
        });
    }
    group.finish();
}

/// Task stealing on/off for mHFP.
fn bench_stealing(c: &mut Criterion) {
    let ts = gemm_2d(20);
    let spec = PlatformSpec::v100(4).with_memory(8 * GEMM2D_DATA_BYTES);
    let mut group = c.benchmark_group("ablation_mhfp_stealing");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    group.bench_function("with_stealing", |b| {
        b.iter(|| {
            let mut sched = HfpScheduler::new();
            black_box(run(&ts, &spec, &mut sched).unwrap())
        })
    });
    group.bench_function("without_stealing", |b| {
        b.iter(|| {
            let mut sched = HfpScheduler::new().without_stealing();
            black_box(run(&ts, &spec, &mut sched).unwrap())
        })
    });
    group.finish();
}

/// DARTS candidate threshold: unbounded vs tight caps (Figure 8's trick).
fn bench_threshold(c: &mut Criterion) {
    let ts = gemm_2d(32);
    let spec = PlatformSpec::v100(4).with_memory(10 * GEMM2D_DATA_BYTES);
    let mut group = c.benchmark_group("ablation_darts_threshold");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for cap in [0usize, 8, 32, 128] {
        let label = if cap == 0 { "unbounded".into() } else { cap.to_string() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            b.iter(|| {
                let cfg = if cap == 0 {
                    DartsConfig::luf()
                } else {
                    DartsConfig::luf().with_threshold(cap)
                };
                let mut sched = DartsScheduler::new(cfg);
                black_box(run(&ts, &spec, &mut sched).unwrap())
            })
        });
    }
    group.finish();
}

/// OPTI early exit on the task-heavy Cholesky workload (Figure 11's trick).
fn bench_opti(c: &mut Criterion) {
    let ts = memsched_workloads::cholesky(20);
    let spec = PlatformSpec::v100(4);
    let mut group = c.benchmark_group("ablation_darts_opti");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for named in [S::DartsLuf3, S::DartsLufOpti3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(named.label()),
            &named,
            |b, named| b.iter(|| black_box(run_named(named, &ts, &spec))),
        );
    }
    group.finish();
}

/// NVLink fabric on/off (the §VI future-work platform).
fn bench_nvlink(c: &mut Criterion) {
    let ts = gemm_2d(24);
    let mem = 10 * GEMM2D_DATA_BYTES;
    let pci = PlatformSpec::v100(4).with_memory(mem);
    let mut nvl = pci.clone();
    nvl.nvlink_bandwidth = Some(memsched_platform::NVLINK_BANDWIDTH);
    let mut group = c.benchmark_group("ablation_nvlink");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for (label, spec) in [("pci_only", &pci), ("nvlink", &nvl)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), spec, |b, spec| {
            b.iter(|| black_box(run_named(&S::DartsLuf, &ts, spec)))
        });
    }
    group.finish();
}

/// Hypergraph vs clique-expansion (METIS-style) partitioning model.
fn bench_partition_model(c: &mut Criterion) {
    use memsched_schedulers::{HmetisRScheduler, PartitionerOptions};
    let ts = gemm_2d(20);
    let spec = PlatformSpec::v100(4).with_memory(8 * GEMM2D_DATA_BYTES);
    let mut group = c.benchmark_group("ablation_partition_model");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for clique in [false, true] {
        let label = if clique { "clique_graph" } else { "hypergraph" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &clique, |b, &clique| {
            b.iter(|| {
                let mut sched = HmetisRScheduler::with_options(PartitionerOptions {
                    nruns: 4,
                    clique_expansion: clique,
                    ..Default::default()
                });
                black_box(run(&ts, &spec, &mut sched).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eviction,
    bench_ready_window,
    bench_stealing,
    bench_threshold,
    bench_opti,
    bench_nvlink,
    bench_partition_model
);
criterion_main!(benches);
