//! # memsched-bench
//!
//! Criterion benchmarks: one group per paper figure (reduced sweeps of the
//! same configurations the figure binaries run at full size) plus
//! ablations of the design choices called out in DESIGN.md (LUF vs LRU,
//! Ready window, stealing, partitioner restarts, DARTS threshold).
//!
//! Run with `cargo bench --workspace`. The figure benches measure the
//! wall time of a complete simulated run, which is dominated by the
//! scheduler's own decision cost — i.e. they benchmark the schedulers,
//! not the simulated GPUs.

#![warn(missing_docs)]

use memsched_model::TaskSet;
use memsched_platform::{run, PlatformSpec, RunReport};
use memsched_schedulers::NamedScheduler;

/// Run `named` on `ts`/`spec`, panicking on failure (bench helper).
pub fn run_named(named: &NamedScheduler, ts: &TaskSet, spec: &PlatformSpec) -> RunReport {
    let mut sched = named.build();
    run(ts, spec, sched.as_mut()).unwrap_or_else(|e| panic!("{named:?}: {e}"))
}
