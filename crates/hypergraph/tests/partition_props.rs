//! Property tests of the multilevel partitioner over random hypergraphs.

use memsched_hypergraph::*;
use proptest::prelude::*;

/// Random hypergraph: `nv` vertices, nets of 2–5 pins.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..40, 1usize..30).prop_flat_map(|(nv, nn)| {
        proptest::collection::vec(
            proptest::collection::vec(0..nv as u32, 2..=5),
            nn,
        )
        .prop_map(move |nets| {
            // Drop degenerate nets (all pins equal after dedup is fine —
            // Hypergraph dedups; single-pin nets are allowed but inert).
            Hypergraph::unit(nv, nets)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every vertex is assigned a label in 0..k and the reported quality
    /// matches a direct evaluation.
    #[test]
    fn labels_and_quality_consistent(hg in arb_hypergraph(), k in 1usize..5) {
        prop_assume!(hg.num_vertices() >= k);
        let cfg = PartitionConfig::for_parts(k).with_nruns(2).with_threads(1);
        let p = partition(&hg, &cfg);
        prop_assert_eq!(p.parts.len(), hg.num_vertices());
        prop_assert!(p.parts.iter().all(|&x| (x as usize) < k));
        let q = evaluate(&hg, &p.parts, k);
        prop_assert_eq!(q, p.quality);
    }

    /// More restarts never worsen the best connectivity-1.
    #[test]
    fn more_runs_never_worse(hg in arb_hypergraph()) {
        prop_assume!(hg.num_vertices() >= 2);
        let one = partition(&hg, &PartitionConfig::for_parts(2).with_nruns(1).with_threads(1));
        let four = partition(&hg, &PartitionConfig::for_parts(2).with_nruns(4).with_threads(1));
        prop_assert!(
            four.quality.connectivity_minus_one <= one.quality.connectivity_minus_one
        );
    }

    /// Connectivity-1 is bounded by Σ w(net)·(min(|pins|, k) − 1).
    #[test]
    fn connectivity_upper_bound(hg in arb_hypergraph(), k in 2usize..4) {
        prop_assume!(hg.num_vertices() >= k);
        let cfg = PartitionConfig::for_parts(k).with_nruns(1).with_threads(1);
        let p = partition(&hg, &cfg);
        let bound: u64 = (0..hg.num_nets())
            .map(|n| hg.nweight(n) * (hg.pins(n).len().min(k) as u64 - 1))
            .sum();
        prop_assert!(p.quality.connectivity_minus_one <= bound);
    }

    /// The clique expansion preserves vertices and never reduces the
    /// number of (merged) pairwise relations below zero; cuts evaluated
    /// on the expansion over-count multi-pin nets, as §IV-B argues.
    #[test]
    fn clique_expansion_overcounts(hg in arb_hypergraph()) {
        let graph = clique_expand(&hg);
        prop_assert_eq!(graph.num_vertices(), hg.num_vertices());
        // Split vertices into odd/even halves and compare the two models.
        let parts: Vec<u32> = (0..hg.num_vertices() as u32).map(|v| v % 2).collect();
        let hyper = evaluate(&hg, &parts, 2);
        let cliq = evaluate(&graph, &parts, 2);
        // For a bisection, connectivity-1 == cut nets in the hypergraph;
        // the clique cut counts each straddling net at least once (per
        // normalized-weight pair) — never less than... the normalized
        // weights make exact comparisons subtle, so we check the models
        // agree on *zero*: a cut-free partition in one is cut-free in the
        // other.
        if hyper.connectivity_minus_one == 0 {
            prop_assert_eq!(cliq.cut_nets, 0);
        }
        if cliq.cut_nets == 0 {
            prop_assert_eq!(hyper.connectivity_minus_one, 0);
        }
    }

    /// Bisection respects the requested tolerance on random inputs
    /// (weights are unit, so the cap is exact up to eps rounding).
    #[test]
    fn bisection_balance(hg in arb_hypergraph()) {
        prop_assume!(hg.num_vertices() >= 4);
        let total = hg.total_vweight();
        let (parts, _) = bisect(&hg, total / 2, total - total / 2, 0.1, 3);
        let w0: u64 = (0..hg.num_vertices())
            .filter(|&v| parts[v] == 0)
            .map(|v| hg.vweight(v))
            .sum();
        let cap = total / 2 + (total as f64 * 0.1) as u64 + 1;
        prop_assert!(w0 <= cap, "side 0 = {w0} > cap {cap}");
        prop_assert!(total - w0 <= cap, "side 1 = {} > cap {cap}", total - w0);
    }
}
