//! # memsched-hypergraph
//!
//! A from-scratch multilevel K-way hypergraph partitioner standing in for
//! hMETIS (closed-source) in the paper's hMETIS+R strategy (§IV-B).
//!
//! Tasks are vertices, data items are hyperedges spanning their consumer
//! tasks; partitioning into `K` balanced parts with minimal connectivity−1
//! yields a task-to-GPU mapping with few replicated data loads. The
//! pipeline is the standard multilevel recipe: heavy-connectivity
//! coarsening → greedy initial bisection → Fiduccia–Mattheyses refinement
//! → recursive bisection for `K > 2`, with `Nruns` random restarts
//! (parallelized) keeping the best result — matching the hMETIS settings
//! used in the paper (`UBfactor = 1`, `Nruns = 20`).
//!
//! ```
//! use memsched_hypergraph::{Hypergraph, PartitionConfig, partition};
//!
//! // Four tasks in a 2×2 grid sharing row/column data.
//! let hg = Hypergraph::unit(4, vec![vec![0, 1], vec![2, 3], vec![0, 2], vec![1, 3]]);
//! let p = partition(&hg, &PartitionConfig::for_parts(2).with_nruns(2));
//! assert_eq!(p.quality.max_part_weight, 2); // perfectly balanced
//! ```

#![warn(missing_docs)]

mod clique;
mod hg;
mod multilevel;
mod partition;

pub use clique::{clique_expand, partition_clique, MAX_CLIQUE_NET};
pub use hg::{evaluate, Hypergraph, PartitionQuality};
pub use multilevel::bisect;
#[cfg(feature = "naive")]
pub use multilevel::bisect_naive;
pub use partition::{partition, PartitionConfig, Partitioning};
