//! Multilevel bisection: heavy-connectivity coarsening, randomized greedy
//! initial partitioning and Fiduccia–Mattheyses refinement.
//!
//! This is the classic hMETIS recipe (Karypis & Kumar): repeatedly contract
//! pairs of vertices that share many nets until the hypergraph is small,
//! bisect the small hypergraph, then project the bisection back level by
//! level, running FM at each level to repair the cut.
//!
//! The default [`bisect`] is index-accelerated but **decision-equivalent**
//! to the original implementation (kept compilable behind the `naive`
//! feature as [`bisect_naive`], proved by the partition differential
//! proptests in the workspace root):
//!
//! * FM persists `side_pins` / part weights across passes and rolls the
//!   rejected move tail back by counter deltas instead of rebuilding both
//!   from scratch every pass; exact per-vertex gains are maintained with
//!   the standard FM boundary-case delta rules (only nets whose side
//!   counts cross 0/1/2 touch their pins), so each pass starts its heap
//!   from stored gains and the pop loop re-pushes an entry only when the
//!   vertex's gain actually changed — value-identical to the naive
//!   unconditional pushes, whose extra entries are duplicates of live
//!   ones and therefore indistinguishable to the heap;
//! * `coarsen_once` reuses the order/score/touched scratch across levels
//!   and the level stack no longer clones each coarse hypergraph;
//! * `greedy_initial` filters a persistent candidate pool in place
//!   (`retain` keeps the same ascending order and length as the rebuilt
//!   vector, so every RNG draw is identical).

use crate::hg::Hypergraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BinaryHeap;

/// Stop coarsening below this many vertices.
const COARSEN_TARGET: usize = 160;
/// Give up coarsening when a level shrinks less than this factor.
const MIN_SHRINK: f64 = 0.95;
/// Nets larger than this are ignored during matching (they carry little
/// locality signal and make matching quadratic).
const MAX_MATCH_NET: usize = 256;
/// FM passes per level.
const MAX_FM_PASSES: usize = 8;

/// One coarsening level: the coarse hypergraph plus the fine→coarse map.
struct Level {
    coarse: Hypergraph,
    map: Vec<u32>,
}

/// Bisect `hg` into parts of target weights `(w0, w1)` (best effort,
/// tolerance `eps` as a fraction of total weight). Returns the part vector
/// and its connectivity−1 cost.
pub fn bisect(hg: &Hypergraph, w0: u64, w1: u64, eps: f64, seed: u64) -> (Vec<u32>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Coarsen. The current hypergraph is borrowed from the level stack
    // (or is `hg` itself) instead of cloned, and the matching scratch is
    // allocated once for the finest level and reused all the way down.
    let mut levels: Vec<Level> = Vec::new();
    let mut scratch = CoarsenScratch::default();
    loop {
        let current = levels.last().map_or(hg, |l| &l.coarse);
        if current.num_vertices() <= COARSEN_TARGET {
            break;
        }
        let (coarse, map) = coarsen_once(current, &mut rng, &mut scratch);
        let shrink = coarse.num_vertices() as f64 / current.num_vertices() as f64;
        levels.push(Level { coarse, map });
        if shrink > MIN_SHRINK {
            break;
        }
    }

    // Initial partition on the coarsest level.
    let current = levels.last().map_or(hg, |l| &l.coarse);
    let total = current.total_vweight();
    let max0 = target_cap(w0, total, eps);
    let max1 = target_cap(w1, total, eps);
    let mut parts = greedy_initial(current, w0, w1, &mut rng);
    fm_refine(current, &mut parts, max0, max1, MAX_FM_PASSES);

    // Uncoarsen with refinement.
    for idx in (0..levels.len()).rev() {
        let level = &levels[idx];
        let fine_n = level.map.len();
        let mut fine_parts = vec![0u32; fine_n];
        for (v, &c) in level.map.iter().enumerate() {
            fine_parts[v] = parts[c as usize];
        }
        parts = fine_parts;
        let fine_hg = if idx == 0 { hg } else { &levels[idx - 1].coarse };
        fm_refine(fine_hg, &mut parts, max0, max1, MAX_FM_PASSES);
    }

    let cost = bisection_cost(hg, &parts);
    (parts, cost)
}

fn target_cap(target: u64, total: u64, eps: f64) -> u64 {
    target + (total as f64 * eps) as u64
}

/// Connectivity−1 of a bisection (λ ∈ {1, 2}, so this equals the cut).
fn bisection_cost(hg: &Hypergraph, parts: &[u32]) -> u64 {
    let mut cost = 0;
    for n in 0..hg.num_nets() {
        let pins = hg.pins(n);
        let first = parts[pins[0] as usize];
        if pins.iter().any(|&p| parts[p as usize] != first) {
            cost += hg.nweight(n);
        }
    }
    cost
}

/// Matching scratch reused across coarsening levels (the finest level is
/// the largest, so later levels never reallocate).
#[derive(Default)]
struct CoarsenScratch {
    order: Vec<u32>,
    score: Vec<u64>,
    touched: Vec<u32>,
}

/// One level of heavy-connectivity matching.
fn coarsen_once(
    hg: &Hypergraph,
    rng: &mut StdRng,
    scratch: &mut CoarsenScratch,
) -> (Hypergraph, Vec<u32>) {
    let n = hg.num_vertices();
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..n as u32);
    order.shuffle(rng);

    let mut matched = vec![u32::MAX; n]; // coarse id per fine vertex
    let mut next_coarse = 0u32;
    // Scratch for neighbor scores; `score` is all-zero between vertices
    // (reset via `touched`), so growing it keeps the invariant.
    let score = &mut scratch.score;
    if score.len() < n {
        score.resize(n, 0);
    }
    let touched = &mut scratch.touched;

    for &v in order.iter() {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        // Score unmatched neighbors by shared-net weight.
        touched.clear();
        for &net in hg.nets_of(v as usize) {
            let pins = hg.pins(net as usize);
            if pins.len() > MAX_MATCH_NET {
                continue;
            }
            // Weight each shared net by w/(|pins|−1), the standard
            // heavy-connectivity normalization.
            let w = hg.nweight(net as usize).max(1) * 256 / (pins.len() as u64 - 1).max(1);
            for &u in pins {
                if u == v || matched[u as usize] != u32::MAX {
                    continue;
                }
                if score[u as usize] == 0 {
                    touched.push(u);
                }
                score[u as usize] += w;
            }
        }
        let best = touched
            .iter()
            .copied()
            .max_by_key(|&u| (score[u as usize], u));
        let cid = next_coarse;
        next_coarse += 1;
        matched[v as usize] = cid;
        if let Some(u) = best {
            matched[u as usize] = cid;
        }
        for &u in touched.iter() {
            score[u as usize] = 0;
        }
    }

    // Build the coarse hypergraph.
    let cn = next_coarse as usize;
    let mut cweights = vec![0u64; cn];
    for v in 0..n {
        cweights[matched[v] as usize] += hg.vweight(v);
    }
    let mut nets: Vec<Vec<u32>> = Vec::with_capacity(hg.num_nets());
    let mut nweights: Vec<u64> = Vec::with_capacity(hg.num_nets());
    for net in 0..hg.num_nets() {
        let mut pins: Vec<u32> = hg.pins(net).iter().map(|&p| matched[p as usize]).collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() >= 2 {
            nets.push(pins);
            nweights.push(hg.nweight(net));
        }
    }
    (Hypergraph::new(cn, nets, cweights, nweights), matched)
}

/// Randomized greedy growth: grow part 0 from a random seed along nets
/// until it reaches `w0 / (w0 + w1)` of the total weight.
///
/// The seed pool is a persistent vector filtered in place: `retain` keeps
/// the surviving candidates in the same ascending order (and count) as the
/// naive per-draw rebuild, so the RNG sees identical ranges and the drawn
/// vertex is identical.
fn greedy_initial(hg: &Hypergraph, w0: u64, w1: u64, rng: &mut StdRng) -> Vec<u32> {
    let n = hg.num_vertices();
    let total = hg.total_vweight();
    let target0 = (total as u128 * w0 as u128 / (w0 + w1).max(1) as u128) as u64;
    let mut parts = vec![1u32; n];
    let mut weight0 = 0u64;
    let mut frontier: Vec<u32> = Vec::new();
    let mut in_part0 = vec![false; n];
    let mut pool: Vec<u32> = (0..n as u32).collect();

    while weight0 < target0 {
        let v = match frontier.pop() {
            Some(v) if !in_part0[v as usize] => v,
            Some(_) => continue,
            None => {
                // New random seed among remaining vertices.
                pool.retain(|&v| !in_part0[v as usize]);
                if pool.is_empty() {
                    break;
                }
                pool[rng.random_range(0..pool.len())]
            }
        };
        in_part0[v as usize] = true;
        parts[v as usize] = 0;
        weight0 += hg.vweight(v as usize);
        for &net in hg.nets_of(v as usize) {
            let pins = hg.pins(net as usize);
            if pins.len() > MAX_MATCH_NET {
                continue;
            }
            for &u in pins {
                if !in_part0[u as usize] {
                    frontier.push(u);
                }
            }
        }
    }
    parts
}

/// Exact FM gain of moving `v` to the other side.
fn gain_of(hg: &Hypergraph, v: usize, parts: &[u32], side_pins: &[[u32; 2]]) -> i64 {
    let s = parts[v] as usize;
    let mut gain = 0i64;
    for &net in hg.nets_of(v) {
        let sp = &side_pins[net as usize];
        let w = hg.nweight(net as usize) as i64;
        if sp[s] == 1 {
            gain += w; // net leaves the cut
        }
        if sp[1 - s] == 0 {
            gain -= w; // net enters the cut
        }
    }
    gain
}

/// Fiduccia–Mattheyses refinement of a bisection under per-part caps.
///
/// `side_pins`, part weights and per-vertex gains are built once and then
/// maintained by deltas — through accepted moves and through the rollback
/// of each pass's rejected tail — so later passes skip the full rebuild.
/// Gains change only when a net's side count crosses 0/1/2 (the classic FM
/// boundary cases), which bounds the update work per move by the pins of
/// its boundary nets; `v`'s own gain simply flips sign. The gain heap is
/// still rebuilt per pass (every vertex unlocks), but during the pop loop
/// an entry is pushed only when the vertex's gain differs from the value
/// it is currently queued under (`cached`): the naive code pushes
/// unconditionally, but its extra entries equal live queued tuples, and
/// equal tuples are indistinguishable to a binary heap — so the accepted
/// move sequence is identical (see `tests/differential_naive.rs`).
fn fm_refine(hg: &Hypergraph, parts: &mut [u32], max0: u64, max1: u64, passes: usize) {
    let n = hg.num_vertices();
    if n == 0 {
        return;
    }
    let caps = [max0, max1];

    let mut side_pins = vec![[0u32; 2]; hg.num_nets()];
    for v in 0..n {
        for &net in hg.nets_of(v) {
            side_pins[net as usize][parts[v] as usize] += 1;
        }
    }
    let mut weights = [0u64, 0];
    for v in 0..n {
        weights[parts[v] as usize] += hg.vweight(v);
    }
    // Exact gain per vertex, maintained for the rest of the call (locked
    // vertices included — their stored gain seeds the next pass's heap).
    let mut gain: Vec<i64> = (0..n).map(|v| gain_of(hg, v, parts, &side_pins)).collect();
    // Gain value each vertex is currently queued under in the heap.
    let mut cached: Vec<i64> = vec![0; n];
    let mut locked = vec![false; n];
    let mut moves: Vec<u32> = Vec::with_capacity(n);
    let mut heap_vec: Vec<(i64, u32)> = Vec::with_capacity(n);

    for _ in 0..passes {
        heap_vec.clear();
        for v in 0..n {
            cached[v] = gain[v];
            heap_vec.push((gain[v], v as u32));
        }
        let mut heap = BinaryHeap::from(std::mem::take(&mut heap_vec));
        locked.fill(false);
        moves.clear();
        let mut best_prefix = 0usize;
        let mut cur_delta = 0i64;
        let mut best_delta = 0i64;

        while let Some((g, v)) = heap.pop() {
            let vu = v as usize;
            if locked[vu] {
                continue;
            }
            if g != cached[vu] {
                continue; // stale duplicate; the live entry is still queued
            }
            let real = gain[vu];
            if real != g {
                // Drifted since it was queued (a net > MAX_MATCH_NET moved,
                // which never triggers re-pushes); requeue at the true gain
                // exactly like the naive lazy reinsert.
                cached[vu] = real;
                heap.push((real, v));
                continue;
            }
            let s = parts[vu] as usize;
            let t = 1 - s;
            if weights[t] + hg.vweight(vu) > caps[t] {
                // Cannot move without breaking balance; lock in place.
                locked[vu] = true;
                continue;
            }
            // Apply the move. Moving flips every leave-term of v's gain
            // into the mirrored enter-term, so the gain negates.
            locked[vu] = true;
            parts[vu] = t as u32;
            weights[s] -= hg.vweight(vu);
            weights[t] += hg.vweight(vu);
            gain[vu] = -gain[vu];
            for &net in hg.nets_of(vu) {
                let ni = net as usize;
                let f = side_pins[ni][s];
                let tc = side_pins[ni][t];
                let pins = hg.pins(ni);
                // Boundary-case delta rules: pin gains change only when
                // the source count drops to 1 or the destination count
                // leaves {0, 1}.
                if f <= 2 || tc <= 1 {
                    let w = hg.nweight(ni) as i64;
                    for &u in pins {
                        let uu = u as usize;
                        if uu == vu {
                            continue;
                        }
                        if parts[uu] as usize == s {
                            gain[uu] += w * ((f == 2) as i64 + (tc == 0) as i64);
                        } else {
                            gain[uu] -= w * ((tc == 1) as i64 + (f == 1) as i64);
                        }
                    }
                }
                side_pins[ni][s] = f - 1;
                side_pins[ni][t] = tc + 1;
                // Neighbors requeue at their updated gains, net by net —
                // the same program points (and therefore the same values)
                // as the naive per-net pushes.
                if pins.len() <= MAX_MATCH_NET {
                    for &u in pins {
                        let uu = u as usize;
                        if !locked[uu] && gain[uu] != cached[uu] {
                            cached[uu] = gain[uu];
                            heap.push((gain[uu], u));
                        }
                    }
                }
            }
            cur_delta += real;
            moves.push(v);
            if cur_delta > best_delta {
                best_delta = cur_delta;
                best_prefix = moves.len();
            }
        }

        // Roll back the tail beyond the best prefix by deltas, keeping
        // side_pins / weights / gains exact for the next pass.
        for &v in &moves[best_prefix..] {
            let vu = v as usize;
            let s = parts[vu] as usize;
            let t = 1 - s;
            parts[vu] = t as u32;
            weights[s] -= hg.vweight(vu);
            weights[t] += hg.vweight(vu);
            gain[vu] = -gain[vu];
            for &net in hg.nets_of(vu) {
                let ni = net as usize;
                let f = side_pins[ni][s];
                let tc = side_pins[ni][t];
                if f <= 2 || tc <= 1 {
                    let w = hg.nweight(ni) as i64;
                    for &u in hg.pins(ni) {
                        let uu = u as usize;
                        if uu == vu {
                            continue;
                        }
                        if parts[uu] as usize == s {
                            gain[uu] += w * ((f == 2) as i64 + (tc == 0) as i64);
                        } else {
                            gain[uu] -= w * ((tc == 1) as i64 + (f == 1) as i64);
                        }
                    }
                }
                side_pins[ni][s] = f - 1;
                side_pins[ni][t] = tc + 1;
            }
        }
        heap_vec = heap.into_vec();
        if best_delta <= 0 {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Naive reference (the original implementation, feature-gated)
// ---------------------------------------------------------------------------

/// The original [`bisect`]: per-pass rebuilds in FM, per-draw candidate
/// rebuilds in the greedy start, cloned level stack. Kept as the
/// decision-equivalence reference for the differential proptests and for
/// `--paper-timing` style comparisons.
#[cfg(feature = "naive")]
pub fn bisect_naive(hg: &Hypergraph, w0: u64, w1: u64, eps: f64, seed: u64) -> (Vec<u32>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Coarsen.
    let mut levels: Vec<Level> = Vec::new();
    let mut current = hg.clone();
    while current.num_vertices() > COARSEN_TARGET {
        let mut scratch = CoarsenScratch::default();
        let (coarse, map) = coarsen_once(&current, &mut rng, &mut scratch);
        let shrink = coarse.num_vertices() as f64 / current.num_vertices() as f64;
        let stop = shrink > MIN_SHRINK;
        levels.push(Level {
            coarse: coarse.clone(),
            map,
        });
        current = coarse;
        if stop {
            break;
        }
    }

    // Initial partition on the coarsest level.
    let total = current.total_vweight();
    let max0 = target_cap(w0, total, eps);
    let max1 = target_cap(w1, total, eps);
    let mut parts = greedy_initial_naive(&current, w0, w1, &mut rng);
    fm_refine_naive(&current, &mut parts, max0, max1, MAX_FM_PASSES);

    // Uncoarsen with refinement.
    for idx in (0..levels.len()).rev() {
        let level = &levels[idx];
        let fine_n = level.map.len();
        let mut fine_parts = vec![0u32; fine_n];
        for (v, &c) in level.map.iter().enumerate() {
            fine_parts[v] = parts[c as usize];
        }
        parts = fine_parts;
        let fine_hg = if idx == 0 { hg } else { &levels[idx - 1].coarse };
        fm_refine_naive(fine_hg, &mut parts, max0, max1, MAX_FM_PASSES);
    }

    let cost = bisection_cost(hg, &parts);
    (parts, cost)
}

/// Original greedy growth: rebuilds the candidate vector of unassigned
/// vertices on every empty-frontier draw.
#[cfg(feature = "naive")]
fn greedy_initial_naive(hg: &Hypergraph, w0: u64, w1: u64, rng: &mut StdRng) -> Vec<u32> {
    let n = hg.num_vertices();
    let total = hg.total_vweight();
    let target0 = (total as u128 * w0 as u128 / (w0 + w1).max(1) as u128) as u64;
    let mut parts = vec![1u32; n];
    let mut weight0 = 0u64;
    let mut frontier: Vec<u32> = Vec::new();
    let mut in_part0 = vec![false; n];

    while weight0 < target0 {
        let v = match frontier.pop() {
            Some(v) if !in_part0[v as usize] => v,
            Some(_) => continue,
            None => {
                // New random seed among remaining vertices.
                let candidates: Vec<u32> =
                    (0..n as u32).filter(|&v| !in_part0[v as usize]).collect();
                if candidates.is_empty() {
                    break;
                }
                candidates[rng.random_range(0..candidates.len())]
            }
        };
        in_part0[v as usize] = true;
        parts[v as usize] = 0;
        weight0 += hg.vweight(v as usize);
        for &net in hg.nets_of(v as usize) {
            let pins = hg.pins(net as usize);
            if pins.len() > MAX_MATCH_NET {
                continue;
            }
            for &u in pins {
                if !in_part0[u as usize] {
                    frontier.push(u);
                }
            }
        }
    }
    parts
}

/// Original FM: rebuilds `side_pins`, weights and the full gain heap from
/// scratch every pass and recomputes every pushed gain pairwise.
#[cfg(feature = "naive")]
fn fm_refine_naive(hg: &Hypergraph, parts: &mut [u32], max0: u64, max1: u64, passes: usize) {
    let n = hg.num_vertices();
    let caps = [max0, max1];
    for _ in 0..passes {
        // Pin counts per side for every net.
        let mut side_pins = vec![[0u32; 2]; hg.num_nets()];
        for v in 0..n {
            for &net in hg.nets_of(v) {
                side_pins[net as usize][parts[v] as usize] += 1;
            }
        }
        let mut weights = [0u64, 0];
        for v in 0..n {
            weights[parts[v] as usize] += hg.vweight(v);
        }

        // Lazy max-heap of (gain, vertex).
        let mut heap: BinaryHeap<(i64, u32)> = (0..n)
            .map(|v| (gain_of(hg, v, parts, &side_pins), v as u32))
            .collect();
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut best_prefix = 0usize;
        let mut cur_delta = 0i64;
        let mut best_delta = 0i64;

        while let Some((g, v)) = heap.pop() {
            let vu = v as usize;
            if locked[vu] {
                continue;
            }
            let real = gain_of(hg, vu, parts, &side_pins);
            if real != g {
                heap.push((real, v)); // stale entry, reinsert
                continue;
            }
            let s = parts[vu] as usize;
            let t = 1 - s;
            if weights[t] + hg.vweight(vu) > caps[t] {
                // Cannot move without breaking balance; lock in place.
                locked[vu] = true;
                continue;
            }
            // Apply the move.
            locked[vu] = true;
            parts[vu] = t as u32;
            weights[s] -= hg.vweight(vu);
            weights[t] += hg.vweight(vu);
            for &net in hg.nets_of(vu) {
                side_pins[net as usize][s] -= 1;
                side_pins[net as usize][t] += 1;
                // Neighbors' gains changed; push fresh entries lazily.
                let pins = hg.pins(net as usize);
                if pins.len() <= MAX_MATCH_NET {
                    for &u in pins {
                        if !locked[u as usize] {
                            heap.push((gain_of(hg, u as usize, parts, &side_pins), u));
                        }
                    }
                }
            }
            cur_delta += real;
            moves.push(v);
            if cur_delta > best_delta {
                best_delta = cur_delta;
                best_prefix = moves.len();
            }
        }

        // Roll back the tail beyond the best prefix.
        for &v in &moves[best_prefix..] {
            parts[v as usize] ^= 1;
        }
        if best_delta <= 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hg::{evaluate, grid2};

    /// An n×n grid hypergraph (task grid with row/column nets).
    fn grid(n: usize) -> Hypergraph {
        let mut nets = Vec::new();
        for i in 0..n {
            nets.push((0..n).map(|j| (i * n + j) as u32).collect());
        }
        for j in 0..n {
            nets.push((0..n).map(|i| (i * n + j) as u32).collect());
        }
        Hypergraph::unit(n * n, nets)
    }

    #[test]
    fn bisect_tiny_grid_is_balanced() {
        let hg = grid2();
        let (parts, cost) = bisect(&hg, 2, 2, 0.01, 7);
        let q = evaluate(&hg, &parts, 2);
        assert_eq!(q.max_part_weight, 2);
        assert_eq!(q.min_part_weight, 2);
        // Optimal bisection cuts exactly 2 of the 4 nets.
        assert_eq!(cost, 2);
    }

    #[test]
    fn bisect_grid_finds_row_or_column_split() {
        let n = 8;
        let hg = grid(n);
        let (parts, cost) = bisect(&hg, (n * n / 2) as u64, (n * n / 2) as u64, 0.02, 3);
        let q = evaluate(&hg, &parts, 2);
        // Perfect split cuts n nets (all columns or all rows).
        assert!(cost <= (2 * n) as u64, "cost = {cost}");
        assert!(q.max_part_weight <= (n * n / 2 + n) as u64);
        assert_eq!(q.max_part_weight + q.min_part_weight, (n * n) as u64);
    }

    #[test]
    fn coarsening_shrinks_and_projects() {
        let hg = grid(12);
        let mut rng = StdRng::seed_from_u64(1);
        let mut scratch = CoarsenScratch::default();
        let (coarse, map) = coarsen_once(&hg, &mut rng, &mut scratch);
        assert!(coarse.num_vertices() < hg.num_vertices());
        assert!(coarse.num_vertices() >= hg.num_vertices() / 2);
        assert_eq!(map.len(), hg.num_vertices());
        assert_eq!(coarse.total_vweight(), hg.total_vweight());
    }

    #[test]
    fn unbalanced_targets_are_respected() {
        let n = 6;
        let hg = grid(n);
        // 1:2 split (e.g. bisecting for 3 GPUs).
        let (parts, _) = bisect(&hg, 12, 24, 0.05, 11);
        let q = evaluate(&hg, &parts, 2);
        assert!(q.min_part_weight >= 8, "min = {}", q.min_part_weight);
        assert!(q.max_part_weight <= 28, "max = {}", q.max_part_weight);
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = grid(6);
        let (p1, c1) = bisect(&hg, 18, 18, 0.01, 5);
        let (p2, c2) = bisect(&hg, 18, 18, 0.01, 5);
        assert_eq!(p1, p2);
        assert_eq!(c1, c2);
    }

    /// FM's delta-maintained gains must agree with a from-scratch
    /// `gain_of` after a bisection completes (exercised indirectly by
    /// `bisect`; this asserts the public outcome on several seeds).
    #[test]
    fn fm_maintains_exact_state_across_many_seeds() {
        let hg = grid(10);
        for seed in 0..8 {
            let (parts, cost) = bisect(&hg, 50, 50, 0.02, seed);
            assert_eq!(cost, bisection_cost(&hg, &parts), "seed {seed}");
            let q = evaluate(&hg, &parts, 2);
            assert_eq!(q.max_part_weight + q.min_part_weight, 100);
        }
    }

    #[cfg(feature = "naive")]
    #[test]
    fn fast_bisect_matches_naive_on_grids() {
        // 14×14 and 16×16 exceed COARSEN_TARGET, so the clone-free level
        // stack and the reused matching scratch are exercised too.
        for (n, seed) in [(6usize, 0u64), (8, 3), (10, 7), (12, 11), (14, 2), (16, 5)] {
            let hg = grid(n);
            let w = (n * n / 2) as u64;
            let fast = bisect(&hg, w, w, 0.02, seed);
            let naive = bisect_naive(&hg, w, w, 0.02, seed);
            assert_eq!(fast, naive, "n={n} seed={seed}");
        }
    }
}
