//! Hypergraph data structure.
//!
//! In the hMETIS+R strategy (§IV-B) the task set is modelled as a
//! hypergraph: one **vertex per task** (weighted by its load) and one
//! **hyperedge (net) per data item**, spanning every task that reads it.
//! Partitioning the vertices into `K` balanced parts while minimizing the
//! number of nets that span several parts minimizes the number of data
//! items that must be replicated on several GPUs.

/// A hypergraph in pin-list (CSR) form, with vertex and net weights.
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    /// Net -> pins (vertex ids).
    net_offsets: Vec<u32>,
    net_pins: Vec<u32>,
    /// Vertex -> incident nets.
    vert_offsets: Vec<u32>,
    vert_nets: Vec<u32>,
    /// Vertex weights (task loads).
    vweights: Vec<u64>,
    /// Net weights (data sizes or unit).
    nweights: Vec<u64>,
}

impl Hypergraph {
    /// Build from per-net pin lists and weights. Pins may be unsorted;
    /// duplicates within a net are removed.
    pub fn new(num_vertices: usize, nets: Vec<Vec<u32>>, vweights: Vec<u64>, nweights: Vec<u64>) -> Self {
        assert_eq!(vweights.len(), num_vertices, "one weight per vertex");
        assert_eq!(nweights.len(), nets.len(), "one weight per net");
        let mut net_offsets = Vec::with_capacity(nets.len() + 1);
        net_offsets.push(0u32);
        let mut net_pins = Vec::new();
        for net in &nets {
            let mut pins = net.clone();
            pins.sort_unstable();
            pins.dedup();
            for &p in &pins {
                assert!((p as usize) < num_vertices, "pin {p} out of range");
            }
            net_pins.extend_from_slice(&pins);
            net_offsets.push(net_pins.len() as u32);
        }

        // Transpose: vertex -> nets.
        let mut degree = vec![0u32; num_vertices];
        for &v in &net_pins {
            degree[v as usize] += 1;
        }
        let mut vert_offsets = Vec::with_capacity(num_vertices + 1);
        vert_offsets.push(0u32);
        for &d in &degree {
            vert_offsets.push(vert_offsets.last().unwrap() + d);
        }
        let mut cursor: Vec<u32> = vert_offsets[..num_vertices].to_vec();
        let mut vert_nets = vec![0u32; net_pins.len()];
        for (n, w) in net_offsets.windows(2).enumerate() {
            for &v in &net_pins[w[0] as usize..w[1] as usize] {
                vert_nets[cursor[v as usize] as usize] = n as u32;
                cursor[v as usize] += 1;
            }
        }

        Self {
            net_offsets,
            net_pins,
            vert_offsets,
            vert_nets,
            vweights,
            nweights,
        }
    }

    /// Unit-weight convenience constructor.
    pub fn unit(num_vertices: usize, nets: Vec<Vec<u32>>) -> Self {
        let n = nets.len();
        Self::new(num_vertices, nets, vec![1; num_vertices], vec![1; n])
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vweights.len()
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nweights.len()
    }

    /// Total number of pins.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// Pins of net `n`, sorted.
    #[inline]
    pub fn pins(&self, n: usize) -> &[u32] {
        &self.net_pins[self.net_offsets[n] as usize..self.net_offsets[n + 1] as usize]
    }

    /// Nets incident to vertex `v`.
    #[inline]
    pub fn nets_of(&self, v: usize) -> &[u32] {
        &self.vert_nets[self.vert_offsets[v] as usize..self.vert_offsets[v + 1] as usize]
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vweight(&self, v: usize) -> u64 {
        self.vweights[v]
    }

    /// Weight of net `n`.
    #[inline]
    pub fn nweight(&self, n: usize) -> u64 {
        self.nweights[n]
    }

    /// Total vertex weight.
    pub fn total_vweight(&self) -> u64 {
        self.vweights.iter().sum()
    }
}

/// Quality metrics of a partition.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PartitionQuality {
    /// Connectivity−1 metric: `Σ_net w(net)·(λ(net) − 1)` where `λ` is the
    /// number of parts the net spans. This is hMETIS's "sum of external
    /// degrees" objective and exactly the number of extra data copies the
    /// partition forces.
    pub connectivity_minus_one: u64,
    /// Plain hyperedge cut: total weight of nets spanning ≥ 2 parts.
    pub cut_nets: u64,
    /// Heaviest part weight.
    pub max_part_weight: u64,
    /// Lightest part weight.
    pub min_part_weight: u64,
}

/// Compute the quality of `parts` (one part id per vertex) for `k` parts.
pub fn evaluate(hg: &Hypergraph, parts: &[u32], k: usize) -> PartitionQuality {
    assert_eq!(parts.len(), hg.num_vertices());
    let mut conn = 0u64;
    let mut cut = 0u64;
    let mut seen = vec![u32::MAX; k];
    for n in 0..hg.num_nets() {
        let mut lambda = 0u64;
        for &p in hg.pins(n) {
            let part = parts[p as usize] as usize;
            if seen[part] != n as u32 {
                seen[part] = n as u32;
                lambda += 1;
            }
        }
        if lambda > 1 {
            conn += hg.nweight(n) * (lambda - 1);
            cut += hg.nweight(n);
        }
    }
    let mut weights = vec![0u64; k];
    for (v, &p) in parts.iter().enumerate() {
        weights[p as usize] += hg.vweight(v);
    }
    PartitionQuality {
        connectivity_minus_one: conn,
        cut_nets: cut,
        max_part_weight: weights.iter().copied().max().unwrap_or(0),
        min_part_weight: weights.iter().copied().min().unwrap_or(0),
    }
}

#[cfg(test)]
pub(crate) use tests::grid2;

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×2 task grid sharing rows/columns: nets {0,1}, {2,3}, {0,2}, {1,3}.
    pub(crate) fn grid2() -> Hypergraph {
        Hypergraph::unit(4, vec![vec![0, 1], vec![2, 3], vec![0, 2], vec![1, 3]])
    }

    #[test]
    fn construction_and_transpose() {
        let hg = grid2();
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_nets(), 4);
        assert_eq!(hg.num_pins(), 8);
        assert_eq!(hg.pins(0), &[0, 1]);
        assert_eq!(hg.nets_of(0), &[0, 2]);
        assert_eq!(hg.nets_of(3), &[1, 3]);
        assert_eq!(hg.total_vweight(), 4);
    }

    #[test]
    fn duplicate_pins_are_removed() {
        let hg = Hypergraph::unit(2, vec![vec![0, 0, 1, 1]]);
        assert_eq!(hg.pins(0), &[0, 1]);
    }

    #[test]
    fn evaluate_row_partition() {
        let hg = grid2();
        // Parts {0,1} and {2,3}: row nets internal, column nets cut.
        let q = evaluate(&hg, &[0, 0, 1, 1], 2);
        assert_eq!(q.connectivity_minus_one, 2);
        assert_eq!(q.cut_nets, 2);
        assert_eq!(q.max_part_weight, 2);
        assert_eq!(q.min_part_weight, 2);
    }

    #[test]
    fn evaluate_bad_partition() {
        let hg = grid2();
        // Diagonal split cuts everything.
        let q = evaluate(&hg, &[0, 1, 1, 0], 2);
        assert_eq!(q.connectivity_minus_one, 4);
        assert_eq!(q.cut_nets, 4);
    }

    #[test]
    fn evaluate_single_part_has_no_cut() {
        let hg = grid2();
        let q = evaluate(&hg, &[0, 0, 0, 0], 1);
        assert_eq!(q.connectivity_minus_one, 0);
        assert_eq!(q.cut_nets, 0);
        assert_eq!(q.max_part_weight, 4);
    }

    #[test]
    fn weighted_nets_scale_the_cut() {
        let hg = Hypergraph::new(
            2,
            vec![vec![0, 1]],
            vec![1, 1],
            vec![10],
        );
        let q = evaluate(&hg, &[0, 1], 2);
        assert_eq!(q.connectivity_minus_one, 10);
        assert_eq!(q.cut_nets, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pin_panics() {
        Hypergraph::unit(1, vec![vec![5]]);
    }
}
