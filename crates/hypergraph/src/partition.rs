//! K-way partitioning by recursive bisection, with random restarts.
//!
//! Mirrors the hMETIS configuration used in the paper (§IV-B): near-perfect
//! balance (`UBfactor = 1`), `Nruns = 20` random starts keeping the best
//! connectivity−1 result. Restarts run in parallel worker threads.

use crate::hg::{evaluate, Hypergraph, PartitionQuality};
use crate::multilevel::bisect;

/// Configuration of [`partition`].
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionConfig {
    /// Number of parts `K` (one per GPU).
    pub k: usize,
    /// Allowed imbalance as a fraction of the total weight added to each
    /// part's target (hMETIS `UBfactor`, as a fraction: 0.01 ≈ UBfactor 1).
    pub ub_factor: f64,
    /// Number of random restarts (hMETIS `Nruns`).
    pub nruns: usize,
    /// Base RNG seed; restart `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads for the restarts (1 = sequential).
    pub threads: usize,
    /// Use the original full-rebuild bisection. Decision-equivalent to the
    /// default indexed one; only the wall time differs.
    #[cfg(feature = "naive")]
    naive: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            k: 2,
            ub_factor: 0.01,
            nruns: 20,
            seed: 0x5eed,
            threads: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1),
            #[cfg(feature = "naive")]
            naive: false,
        }
    }
}

impl PartitionConfig {
    /// Config for `k` parts with the paper's defaults.
    pub fn for_parts(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Builder: set the number of restarts.
    pub fn with_nruns(mut self, nruns: usize) -> Self {
        assert!(nruns >= 1, "need at least one run");
        self.nruns = nruns;
        self
    }

    /// Builder: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Builder: select the original full-rebuild bisection (the reference
    /// implementation the fast path is proven equivalent to).
    #[cfg(feature = "naive")]
    pub fn with_naive(mut self) -> Self {
        self.naive = true;
        self
    }
}

/// Result of [`partition`].
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// Part id (in `0..k`) per vertex.
    pub parts: Vec<u32>,
    /// Quality of the returned partition.
    pub quality: PartitionQuality,
}

/// Partition `hg` into `config.k` parts, minimizing connectivity−1 under
/// the balance constraint. Deterministic for a fixed config (restarts have
/// fixed seeds; ties resolve to the lowest restart index).
pub fn partition(hg: &Hypergraph, config: &PartitionConfig) -> Partitioning {
    assert!(config.k >= 1, "need at least one part");
    assert!(
        hg.num_vertices() >= config.k,
        "cannot split {} vertices into {} parts",
        hg.num_vertices(),
        config.k
    );
    if config.k == 1 {
        let parts = vec![0u32; hg.num_vertices()];
        let quality = evaluate(hg, &parts, 1);
        return Partitioning { parts, quality };
    }

    let bisect_fn: BisectFn = bisect;
    #[cfg(feature = "naive")]
    let bisect_fn: BisectFn = if config.naive {
        crate::multilevel::bisect_naive
    } else {
        bisect_fn
    };
    let run_once = |seed: u64| -> (Vec<u32>, u64) {
        let mut parts = vec![0u32; hg.num_vertices()];
        recursive_bisect(hg, config.k, config.ub_factor, seed, 0, &mut parts, bisect_fn);
        let cost = evaluate(hg, &parts, config.k).connectivity_minus_one;
        (parts, cost)
    };

    let results: Vec<(usize, Vec<u32>, u64)> = if config.threads <= 1 || config.nruns == 1 {
        (0..config.nruns)
            .map(|i| {
                let (p, c) = run_once(config.seed.wrapping_add(i as u64));
                (i, p, c)
            })
            .collect()
    } else {
        let mut results = Vec::with_capacity(config.nruns);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.nruns)
                .map(|i| {
                    let run_once = &run_once;
                    scope.spawn(move || {
                        let (p, c) = run_once(config.seed.wrapping_add(i as u64));
                        (i, p, c)
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("restart thread panicked"));
            }
        });
        results
    };

    let (_, parts, _) = results
        .into_iter()
        .min_by_key(|(i, _, c)| (*c, *i))
        .expect("nruns >= 1");
    let quality = evaluate(hg, &parts, config.k);
    Partitioning { parts, quality }
}

/// The bisection entry point used per recursion step (the fast [`bisect`]
/// or, under the `naive` feature, the reference `bisect_naive`).
type BisectFn = fn(&Hypergraph, u64, u64, f64, u64) -> (Vec<u32>, u64);

/// Recursively bisect the sub-hypergraph induced by the vertices currently
/// labelled `part_base`, producing labels `part_base..part_base + k`.
fn recursive_bisect(
    hg: &Hypergraph,
    k: usize,
    ub: f64,
    seed: u64,
    part_base: u32,
    parts: &mut [u32],
    bisect_fn: BisectFn,
) {
    if k <= 1 {
        return;
    }
    let members: Vec<u32> = (0..parts.len() as u32)
        .filter(|&v| parts[v as usize] == part_base)
        .collect();
    let (sub, _back) = induce(hg, &members);
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total = sub.total_vweight();
    let w0 = (total as u128 * k0 as u128 / k as u128) as u64;
    let w1 = total - w0;
    let (sub_parts, _) = bisect_fn(&sub, w0, w1, ub, seed);

    // Relabel: side 1 gets labels starting at part_base + k0.
    for (local, &v) in members.iter().enumerate() {
        if sub_parts[local] == 1 {
            parts[v as usize] = part_base + k0 as u32;
        }
    }
    recursive_bisect(
        hg,
        k0,
        ub,
        seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
        part_base,
        parts,
        bisect_fn,
    );
    recursive_bisect(
        hg,
        k1,
        ub,
        seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(2),
        part_base + k0 as u32,
        parts,
        bisect_fn,
    );
}

/// Extract the sub-hypergraph induced by `members` (nets restricted to the
/// member set; nets with < 2 remaining pins dropped). Returns the
/// sub-hypergraph and the local→global vertex map.
fn induce(hg: &Hypergraph, members: &[u32]) -> (Hypergraph, Vec<u32>) {
    let mut local = vec![u32::MAX; hg.num_vertices()];
    for (i, &v) in members.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut nets = Vec::new();
    let mut nweights = Vec::new();
    let mut seen_net = vec![false; hg.num_nets()];
    for &v in members {
        for &net in hg.nets_of(v as usize) {
            if seen_net[net as usize] {
                continue;
            }
            seen_net[net as usize] = true;
            let pins: Vec<u32> = hg
                .pins(net as usize)
                .iter()
                .filter_map(|&p| {
                    let l = local[p as usize];
                    (l != u32::MAX).then_some(l)
                })
                .collect();
            if pins.len() >= 2 {
                nets.push(pins);
                nweights.push(hg.nweight(net as usize));
            }
        }
    }
    let vweights: Vec<u64> = members.iter().map(|&v| hg.vweight(v as usize)).collect();
    (
        Hypergraph::new(members.len(), nets, vweights, nweights),
        members.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Hypergraph {
        let mut nets = Vec::new();
        for i in 0..n {
            nets.push((0..n).map(|j| (i * n + j) as u32).collect());
        }
        for j in 0..n {
            nets.push((0..n).map(|i| (i * n + j) as u32).collect());
        }
        Hypergraph::unit(n * n, nets)
    }

    #[test]
    fn one_part_is_trivial() {
        let hg = grid(4);
        let p = partition(&hg, &PartitionConfig::for_parts(1));
        assert!(p.parts.iter().all(|&x| x == 0));
        assert_eq!(p.quality.connectivity_minus_one, 0);
    }

    #[test]
    fn two_parts_balanced_grid() {
        let hg = grid(8);
        let cfg = PartitionConfig::for_parts(2).with_nruns(4).with_threads(1);
        let p = partition(&hg, &cfg);
        assert_eq!(p.quality.max_part_weight + p.quality.min_part_weight, 64);
        assert!(p.quality.max_part_weight <= 33, "balance violated");
        // A good split cuts about one family of nets (8); allow slack.
        assert!(
            p.quality.connectivity_minus_one <= 16,
            "cut = {}",
            p.quality.connectivity_minus_one
        );
    }

    #[test]
    fn four_parts_cover_all_labels() {
        let hg = grid(8);
        let cfg = PartitionConfig::for_parts(4).with_nruns(4).with_threads(1);
        let p = partition(&hg, &cfg);
        let mut counts = [0usize; 4];
        for &x in &p.parts {
            counts[x as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c >= 12, "part {i} too small: {c} (want ~16)");
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let hg = grid(6);
        let base = PartitionConfig::for_parts(2).with_nruns(6).with_seed(9);
        let seq = partition(&hg, &base.clone().with_threads(1));
        let par = partition(&hg, &base.with_threads(4));
        assert_eq!(seq.parts, par.parts);
    }

    #[test]
    fn deterministic_across_calls() {
        let hg = grid(7);
        let cfg = PartitionConfig::for_parts(3).with_nruns(3).with_threads(2);
        let a = partition(&hg, &cfg);
        let b = partition(&hg, &cfg);
        assert_eq!(a.parts, b.parts);
    }

    #[test]
    fn three_parts_roughly_balanced() {
        let hg = grid(9); // 81 vertices
        let cfg = PartitionConfig::for_parts(3).with_nruns(4).with_threads(1);
        let p = partition(&hg, &cfg);
        assert!(p.quality.max_part_weight <= 32, "max = {}", p.quality.max_part_weight);
        assert!(p.quality.min_part_weight >= 21, "min = {}", p.quality.min_part_weight);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_parts_than_vertices_rejected() {
        let hg = Hypergraph::unit(2, vec![vec![0, 1]]);
        partition(&hg, &PartitionConfig::for_parts(3));
    }
}
