//! Clique (graph) expansion of the task hypergraph — the METIS-style
//! model the paper argues *against* in §IV-B.
//!
//! Yoo et al. model data reuse as a plain graph: tasks are vertices and
//! an edge of weight `w` connects every pair of tasks sharing a data item
//! of size `w`. The paper points out the flaw: a data item shared by
//! three tasks `Ta, Tb, Tc` becomes three edges `(Ta,Tb), (Ta,Tc),
//! (Tb,Tc)`, so its weight is counted three times; the hypergraph model
//! (one hyperedge `{Ta, Tb, Tc}`) counts it once. This module implements
//! the clique expansion so the two models can be compared head to head.

use crate::hg::{evaluate, Hypergraph, PartitionQuality};
use crate::partition::{partition, PartitionConfig, Partitioning};

/// Nets larger than this are not expanded (a `p`-pin net creates
/// `p(p−1)/2` edges; huge nets would dominate the graph while carrying
/// little locality signal — METIS users typically drop them too).
pub const MAX_CLIQUE_NET: usize = 128;

/// Expand every net into its clique of 2-pin edges. Edge weights follow
/// the standard `w/(p−1)` normalization so that cutting a net "in half"
/// costs about `w`; parallel edges from different nets are merged.
pub fn clique_expand(hg: &Hypergraph) -> Hypergraph {
    // Accumulate merged edge weights.
    let mut edges: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    for n in 0..hg.num_nets() {
        let pins = hg.pins(n);
        let p = pins.len();
        if !(2..=MAX_CLIQUE_NET).contains(&p) {
            continue;
        }
        // Scaled weight; keep at least 1 so the edge is not free.
        let w = (hg.nweight(n) / (p as u64 - 1)).max(1);
        for i in 0..p {
            for j in (i + 1)..p {
                *edges.entry((pins[i], pins[j])).or_insert(0) += w;
            }
        }
    }
    let mut nets = Vec::with_capacity(edges.len());
    let mut weights = Vec::with_capacity(edges.len());
    // Sort for determinism.
    let mut sorted: Vec<_> = edges.into_iter().collect();
    sorted.sort_unstable();
    for ((a, b), w) in sorted {
        nets.push(vec![a, b]);
        weights.push(w);
    }
    let vweights: Vec<u64> = (0..hg.num_vertices()).map(|v| hg.vweight(v)).collect();
    Hypergraph::new(hg.num_vertices(), nets, vweights, weights)
}

/// Partition via the clique expansion (the §IV-B "METIS" baseline), but
/// report quality against the **original** hypergraph so the two models
/// are compared on the metric that actually matters (data replication).
pub fn partition_clique(hg: &Hypergraph, config: &PartitionConfig) -> Partitioning {
    let graph = clique_expand(hg);
    let p = partition(&graph, config);
    let quality: PartitionQuality = evaluate(hg, &p.parts, config.k);
    Partitioning {
        parts: p.parts,
        quality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: one data item shared by three tasks.
    #[test]
    fn triple_counting_of_shared_data() {
        let hg = Hypergraph::unit(3, vec![vec![0, 1, 2]]);
        let graph = clique_expand(&hg);
        // One 3-pin net becomes three 2-pin edges.
        assert_eq!(graph.num_nets(), 3);
        // Separating T0 from {T1, T2}: the hypergraph model counts the
        // data once (λ−1 = 1)…
        let parts = vec![0u32, 1, 1];
        assert_eq!(evaluate(&hg, &parts, 2).connectivity_minus_one, 1);
        // …the graph model cuts two of the three edges.
        assert_eq!(evaluate(&graph, &parts, 2).cut_nets, 2);
    }

    #[test]
    fn parallel_edges_merge() {
        // Two nets over the same pair stack their weights.
        let hg = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1]], vec![1, 1], vec![5, 7]);
        let graph = clique_expand(&hg);
        assert_eq!(graph.num_nets(), 1);
        assert_eq!(graph.nweight(0), 12);
    }

    #[test]
    fn weight_normalization_divides_by_arity() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]], vec![1; 3], vec![10]);
        let graph = clique_expand(&hg);
        // w/(p-1) = 10/2 = 5 on each of the three edges.
        for n in 0..3 {
            assert_eq!(graph.nweight(n), 5);
        }
    }

    #[test]
    fn oversized_nets_are_skipped() {
        let big: Vec<u32> = (0..200).collect();
        let hg = Hypergraph::unit(200, vec![big, vec![0, 1]]);
        let graph = clique_expand(&hg);
        assert_eq!(graph.num_nets(), 1, "only the small net expands");
    }

    #[test]
    fn clique_partition_reports_hypergraph_quality() {
        // 4x4 grid; both models should find a decent split, and the
        // reported quality must be the hypergraph connectivity-1.
        let n = 4;
        let mut nets = Vec::new();
        for i in 0..n {
            nets.push((0..n).map(|j| (i * n + j) as u32).collect());
        }
        for j in 0..n {
            nets.push((0..n).map(|i| (i * n + j) as u32).collect());
        }
        let hg = Hypergraph::unit(n * n, nets);
        let cfg = PartitionConfig::for_parts(2).with_nruns(4).with_threads(1);
        let via_graph = partition_clique(&hg, &cfg);
        let via_hg = partition(&hg, &cfg);
        let direct = evaluate(&hg, &via_graph.parts, 2);
        assert_eq!(
            direct.connectivity_minus_one,
            via_graph.quality.connectivity_minus_one
        );
        // The hypergraph model never does worse on its own metric here.
        assert!(
            via_hg.quality.connectivity_minus_one
                <= via_graph.quality.connectivity_minus_one + 2,
            "hypergraph {} vs clique {}",
            via_hg.quality.connectivity_minus_one,
            via_graph.quality.connectivity_minus_one
        );
    }
}
