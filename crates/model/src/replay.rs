//! Offline replay of a schedule under a bounded GPU memory (§III).
//!
//! Given a schedule `σ`, the replay executes the three-stage step of the
//! paper on every GPU — evict `V(k,i)`, load the missing inputs of
//! `σ(k,i)`, process the task — maintaining the live set recurrence
//!
//! ```text
//! L(k, 1) = D(σ(k,1))
//! L(k, i) = (L(k, i−1) \ V(k,i)) ∪ D(σ(k,i))
//! ```
//!
//! and counting `#Loads_k = Σ_i |D(σ(k,i)) \ L(k, i−1)|` (Obj. 2). Two
//! eviction policies are provided: **LRU** (the StarPU default used by all
//! schedulers except DARTS+LUF) and **Belady**'s offline-optimal rule
//! (evict the resident data whose next use is the furthest in the future),
//! which the paper uses to argue that only the ordering problem matters.

use crate::ids::{DataId, GpuId, TaskId};
use crate::schedule::Schedule;
use crate::taskset::TaskSet;
use serde::{Deserialize, Serialize};

/// Offline eviction policy used by [`replay`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least Recently Used — evict the resident item with the oldest last use.
    Lru,
    /// Belady's rule — evict the resident item whose next use is the
    /// furthest in the future (optimal for a fixed order, [15] in the paper).
    Belady,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::Lru => write!(f, "LRU"),
            EvictionPolicy::Belady => write!(f, "Belady"),
        }
    }
}

/// Replay statistics for a single GPU.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuReplay {
    /// Number of host→GPU load operations.
    pub loads: u64,
    /// Bytes loaded from the host.
    pub load_bytes: u64,
    /// Number of evictions performed.
    pub evictions: u64,
    /// Peak number of simultaneously live data items.
    pub max_live_items: usize,
    /// Peak number of simultaneously live bytes.
    pub max_live_bytes: u64,
}

/// Result of replaying a full schedule.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Per-GPU statistics.
    pub per_gpu: Vec<GpuReplay>,
}

impl ReplayReport {
    /// Obj. 2 — total number of loads over all GPUs.
    pub fn total_loads(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.loads).sum()
    }

    /// Total bytes transferred host→GPU.
    pub fn total_load_bytes(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.load_bytes).sum()
    }

    /// Total number of evictions.
    pub fn total_evictions(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.evictions).sum()
    }
}

/// Errors produced by [`replay`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A task's inputs alone exceed the memory capacity.
    TaskTooLarge {
        /// Offending task.
        task: TaskId,
        /// Its input footprint in bytes.
        footprint: u64,
        /// The per-GPU capacity in bytes.
        capacity: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::TaskTooLarge {
                task,
                footprint,
                capacity,
            } => write!(
                f,
                "task {task} needs {footprint} bytes of inputs but GPU memory is {capacity} bytes"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replay `schedule` on GPUs of `capacity_bytes` memory under `policy`,
/// returning per-GPU load/eviction statistics.
///
/// Each GPU is independent in the offline model (the shared bus only
/// matters for timing, which is the simulator's job); loads are counted
/// exactly as `#Loads_k` in §III.
pub fn replay(
    ts: &TaskSet,
    schedule: &Schedule,
    capacity_bytes: u64,
    policy: EvictionPolicy,
) -> Result<ReplayReport, ReplayError> {
    let mut per_gpu = Vec::with_capacity(schedule.num_gpus());
    for (gpu, tasks) in schedule.iter() {
        per_gpu.push(replay_gpu(ts, gpu, tasks, capacity_bytes, policy)?);
    }
    Ok(ReplayReport { per_gpu })
}

fn replay_gpu(
    ts: &TaskSet,
    _gpu: GpuId,
    tasks: &[TaskId],
    capacity: u64,
    policy: EvictionPolicy,
) -> Result<GpuReplay, ReplayError> {
    let n = ts.num_data();
    let mut resident = vec![false; n];
    let mut resident_bytes: u64 = 0;
    let mut stats = GpuReplay::default();
    let mut live_items: usize = 0;

    // LRU bookkeeping: step of last use per data item.
    let mut last_use = vec![0u64; n];
    // Belady bookkeeping: per data item, the ordered list of steps at which
    // it is used, and a cursor into that list.
    let (use_lists, mut cursors) = if policy == EvictionPolicy::Belady {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (step, &t) in tasks.iter().enumerate() {
            for &d in ts.inputs(t) {
                lists[d as usize].push(step as u32);
            }
        }
        (lists, vec![0u32; n])
    } else {
        (Vec::new(), Vec::new())
    };

    for (step, &t) in tasks.iter().enumerate() {
        let footprint = ts.task_footprint(t);
        if footprint > capacity {
            return Err(ReplayError::TaskTooLarge {
                task: t,
                footprint,
                capacity,
            });
        }

        // Bytes that must be brought in for this step.
        let missing: u64 = ts
            .input_ids(t)
            .filter(|&d| !resident[d.index()])
            .map(|d| ts.data_size(d))
            .sum();

        // Stage 1: evict V(k, i) until the missing inputs fit. The current
        // task's inputs are pinned (V(k,i) ∩ D(σ(k,i)) = ∅, §III).
        while resident_bytes + missing > capacity {
            let victim = pick_victim(
                ts,
                &resident,
                ts.inputs(t),
                policy,
                &last_use,
                &use_lists,
                &mut cursors,
                step,
            )
            .expect("memory full of pinned data despite footprint check");
            resident[victim.index()] = false;
            resident_bytes -= ts.data_size(victim);
            live_items -= 1;
            stats.evictions += 1;
        }

        // Stage 2: load missing inputs.
        for d in ts.input_ids(t) {
            if !resident[d.index()] {
                resident[d.index()] = true;
                resident_bytes += ts.data_size(d);
                live_items += 1;
                stats.loads += 1;
                stats.load_bytes += ts.data_size(d);
            }
            // Stage 3 side effect: the processing of the task touches all
            // its inputs.
            last_use[d.index()] = step as u64 + 1;
            if policy == EvictionPolicy::Belady {
                // Advance the cursor past the current step.
                let c = &mut cursors[d.index()];
                let list = &use_lists[d.index()];
                while (*c as usize) < list.len() && list[*c as usize] <= step as u32 {
                    *c += 1;
                }
            }
        }

        stats.max_live_items = stats.max_live_items.max(live_items);
        stats.max_live_bytes = stats.max_live_bytes.max(resident_bytes);
        debug_assert!(resident_bytes <= capacity, "|L(k,i)| exceeds M");
    }
    Ok(stats)
}

/// Pick the eviction victim among resident, un-pinned data.
#[allow(clippy::too_many_arguments)]
fn pick_victim(
    ts: &TaskSet,
    resident: &[bool],
    pinned: &[u32],
    policy: EvictionPolicy,
    last_use: &[u64],
    use_lists: &[Vec<u32>],
    cursors: &mut [u32],
    step: usize,
) -> Option<DataId> {
    let mut best: Option<(DataId, u64)> = None;
    for d in 0..resident.len() {
        if !resident[d] || pinned.binary_search(&(d as u32)).is_ok() {
            continue;
        }
        let key = match policy {
            // Smallest last-use step = least recently used.
            EvictionPolicy::Lru => u64::MAX - last_use[d],
            // Largest next-use step = furthest in the future (∞ if unused).
            EvictionPolicy::Belady => {
                let list = &use_lists[d];
                let c = &mut cursors[d];
                while (*c as usize) < list.len() && (list[*c as usize] as usize) < step {
                    *c += 1;
                }
                if (*c as usize) < list.len() {
                    list[*c as usize] as u64
                } else {
                    u64::MAX
                }
            }
        };
        // Prefer larger keys; break ties toward bigger items (frees more
        // room per eviction), then smaller ids for determinism.
        let better = match &best {
            None => true,
            Some((bd, bk)) => {
                key > *bk
                    || (key == *bk && ts.data_size(DataId(d as u32)) > ts.data_size(*bd))
            }
        };
        if better {
            best = Some((DataId(d as u32), key));
        }
    }
    best.map(|(d, _)| d)
}

/// The compulsory-load lower bound for a given schedule: every data item
/// must be loaded at least once on every GPU that runs one of its
/// consumers, regardless of ordering or eviction policy.
pub fn compulsory_loads(ts: &TaskSet, schedule: &Schedule) -> u64 {
    let mut owner_mask = vec![0u64; ts.num_data()];
    for (gpu, tasks) in schedule.iter() {
        debug_assert!(gpu.index() < 64, "mask supports up to 64 GPUs");
        for &t in tasks {
            for &d in ts.inputs(t) {
                owner_mask[d as usize] |= 1 << gpu.index();
            }
        }
    }
    owner_mask.iter().map(|m| m.count_ones() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::figure1_schedule;
    use crate::taskset::{figure1_example, TaskSetBuilder};

    #[test]
    fn figure1_total_loads_is_11() {
        // The paper's worked example: M = 2, GPU1 loads D1 twice, GPU2
        // avoids multiple loads; total loads = 11.
        let ts = figure1_example();
        let s = figure1_schedule();
        let report = replay(&ts, &s, 2, EvictionPolicy::Belady).unwrap();
        assert_eq!(report.total_loads(), 11);
        // GPU0 runs 4 tasks with one reload (paper's D1 = our D3): 5 loads.
        assert_eq!(report.per_gpu[0].loads, 5);
        // GPU1 runs 5 tasks snaking through the grid: 6 loads.
        assert_eq!(report.per_gpu[1].loads, 6);
    }

    #[test]
    fn belady_never_beats_lru_in_reverse() {
        let ts = figure1_example();
        let s = figure1_schedule();
        let lru = replay(&ts, &s, 2, EvictionPolicy::Lru).unwrap();
        let belady = replay(&ts, &s, 2, EvictionPolicy::Belady).unwrap();
        assert!(belady.total_loads() <= lru.total_loads());
    }

    #[test]
    fn unlimited_memory_loads_each_data_once_per_gpu() {
        let ts = figure1_example();
        let s = figure1_schedule();
        let report = replay(&ts, &s, u64::MAX, EvictionPolicy::Lru).unwrap();
        assert_eq!(report.total_loads(), compulsory_loads(&ts, &s));
        assert_eq!(report.total_evictions(), 0);
    }

    #[test]
    fn compulsory_bound_counts_gpu_copies() {
        let ts = figure1_example();
        let s = figure1_schedule();
        // GPU0 uses D0,D1,D3,D4; GPU1 uses D0..D5 minus... enumerate:
        // GPU0 tasks T0,T1,T4,T3 -> D0,D3,D0,D4,D1,D4,D1,D3 = {D0,D1,D3,D4}
        // GPU1 tasks T2,T5,T8,T7,T6 -> {D0,D5,D1,D5,D2,D5,D2,D4,D2,D3}
        //   = {D0,D1,D2,D3,D4,D5}
        assert_eq!(compulsory_loads(&ts, &s), 4 + 6);
    }

    #[test]
    fn replay_respects_memory_bound() {
        let ts = figure1_example();
        let s = figure1_schedule();
        for cap in 2..=6 {
            for policy in [EvictionPolicy::Lru, EvictionPolicy::Belady] {
                let r = replay(&ts, &s, cap, policy).unwrap();
                for g in &r.per_gpu {
                    assert!(g.max_live_bytes <= cap);
                }
            }
        }
    }

    #[test]
    fn loads_decrease_with_memory() {
        let ts = figure1_example();
        let s = figure1_schedule();
        let mut prev = u64::MAX;
        for cap in 2..=6 {
            let r = replay(&ts, &s, cap, EvictionPolicy::Belady).unwrap();
            assert!(r.total_loads() <= prev);
            prev = r.total_loads();
        }
    }

    #[test]
    fn task_too_large_is_reported() {
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(10);
        let d1 = b.add_data(10);
        let t = b.add_task(&[d0, d1], 1.0);
        let ts = b.build();
        let s = Schedule::from_lists(vec![vec![t]]);
        let err = replay(&ts, &s, 15, EvictionPolicy::Lru).unwrap_err();
        assert_eq!(
            err,
            ReplayError::TaskTooLarge {
                task: t,
                footprint: 20,
                capacity: 15
            }
        );
    }

    #[test]
    fn lru_pathology_on_row_major_gemm() {
        // The EAGER pathology of §V-B: row-major order on a grid with
        // memory below one matrix reloads the whole B matrix per row.
        let n = 8;
        let mut b = TaskSetBuilder::new();
        let rows: Vec<_> = (0..n).map(|_| b.add_data(1)).collect();
        let cols: Vec<_> = (0..n).map(|_| b.add_data(1)).collect();
        let mut order = Vec::new();
        for &row in &rows {
            for &col in &cols {
                order.push(b.add_task(&[row, col], 1.0));
            }
        }
        let ts = b.build();
        let s = Schedule::from_lists(vec![order]);
        // Capacity of n slots: row + (n-1) columns; LRU thrashes columns.
        let lru = replay(&ts, &s, n as u64, EvictionPolicy::Lru).unwrap();
        let belady = replay(&ts, &s, n as u64, EvictionPolicy::Belady).unwrap();
        assert!(
            lru.total_loads() > belady.total_loads(),
            "LRU {} should exceed Belady {}",
            lru.total_loads(),
            belady.total_loads()
        );
        // LRU reloads nearly all columns each row.
        assert!(lru.total_loads() as usize > n * (n / 2));
    }

    #[test]
    fn heterogeneous_sizes_evict_by_key_then_size() {
        let mut b = TaskSetBuilder::new();
        let small = b.add_data(1);
        let big = b.add_data(8);
        let other = b.add_data(4);
        let t0 = b.add_task(&[small, big], 1.0);
        let t1 = b.add_task(&[other], 1.0);
        let ts = b.build();
        let s = Schedule::from_lists(vec![vec![t0, t1]]);
        // Capacity 9: t0 loads 9 bytes; t1 needs 4 more -> must evict `big`
        // (neither is reused; tie on key, bigger item preferred).
        let r = replay(&ts, &s, 9, EvictionPolicy::Belady).unwrap();
        assert_eq!(r.total_loads(), 3);
        assert_eq!(r.per_gpu[0].evictions, 1);
        assert_eq!(r.per_gpu[0].max_live_bytes, 9);
    }
}
