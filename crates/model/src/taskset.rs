//! The bipartite task/data sharing model of the paper (§III).
//!
//! A [`TaskSet`] stores the bipartite graph `G = (T ∪ D, E)` in CSR form on
//! both sides: for each task the list of its input data `D(Ti)`, and for
//! each data item the list of tasks that consume it. Data items carry a
//! size in bytes and tasks a flop count so that heterogeneous variants of
//! the model (mentioned at the end of §III) are supported; the paper's
//! uniform model is the special case where all sizes and flop counts are
//! equal.

use crate::ids::{DataId, TaskId};
use serde::{Deserialize, Serialize};

/// Compressed sparse row adjacency used for both directions of the
/// bipartite graph.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Csr {
    pub offsets: Vec<u32>,
    pub targets: Vec<u32>,
}

impl Csr {
    fn row(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }
}

/// A set of independent tasks sharing read-only input data.
///
/// Build one with [`TaskSetBuilder`]. All queries are O(1) or O(degree).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskSet {
    /// task -> sorted input data ids
    task_data: Csr,
    /// data -> sorted consumer task ids
    data_tasks: Csr,
    /// size in bytes of each data item
    data_size: Vec<u64>,
    /// flop count of each task
    task_flops: Vec<f64>,
    /// sum of input sizes per task (cached)
    task_footprint: Vec<u64>,
    /// arrival time (ns) of each task for online serving; empty means
    /// "all tasks available at t = 0" (batch mode). `#[serde(default)]`
    /// keeps task sets serialized before this field existed loadable.
    #[serde(default)]
    arrivals: Vec<u64>,
    /// relative completion deadline (ns from arrival) of each task for
    /// the online overload-control policies; empty (or a 0 entry) means
    /// "no deadline". Serialized only when attached, so older task sets
    /// load unchanged.
    #[serde(default)]
    deadlines: Vec<u64>,
    /// tenant class of each task (higher = more important); empty means
    /// "all tasks in class 0". Used by priority-based load shedding.
    #[serde(default)]
    classes: Vec<u32>,
}

impl TaskSet {
    /// Number of tasks `m`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.task_flops.len()
    }

    /// Number of data items `n`.
    #[inline]
    pub fn num_data(&self) -> usize {
        self.data_size.len()
    }

    /// Iterator over all task ids in submission order.
    pub fn tasks(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        (0..self.num_tasks() as u32).map(TaskId)
    }

    /// Iterator over all data ids.
    pub fn data(&self) -> impl ExactSizeIterator<Item = DataId> + '_ {
        (0..self.num_data() as u32).map(DataId)
    }

    /// The input data `D(Ti)` of a task, sorted by id.
    #[inline]
    pub fn inputs(&self, t: TaskId) -> &[u32] {
        self.task_data.row(t.index())
    }

    /// The raw CSR slab of the task→data adjacency: `(offsets, ids)` with
    /// `ids[offsets[t] as usize .. offsets[t + 1] as usize]` the sorted
    /// input list of task `t`. This is the flat-handle view used by
    /// arena-style consumers (the engine's missing-input cache, HFP's
    /// package slab) that walk many rows without a per-row call.
    #[inline]
    pub fn input_slab(&self) -> (&[u32], &[u32]) {
        (&self.task_data.offsets, &self.task_data.targets)
    }

    /// The raw CSR slab of the data→task adjacency: `(offsets, ids)` with
    /// `ids[offsets[d] as usize .. offsets[d + 1] as usize]` the sorted
    /// consumer list of data item `d`.
    #[inline]
    pub fn consumer_slab(&self) -> (&[u32], &[u32]) {
        (&self.data_tasks.offsets, &self.data_tasks.targets)
    }

    /// The input data of a task as typed ids.
    pub fn input_ids(&self, t: TaskId) -> impl ExactSizeIterator<Item = DataId> + '_ {
        self.inputs(t).iter().map(|&d| DataId(d))
    }

    /// The tasks consuming a data item, sorted by id.
    #[inline]
    pub fn consumers(&self, d: DataId) -> &[u32] {
        self.data_tasks.row(d.index())
    }

    /// The tasks consuming a data item as typed ids.
    pub fn consumer_ids(&self, d: DataId) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        self.consumers(d).iter().map(|&t| TaskId(t))
    }

    /// Size in bytes of a data item.
    #[inline]
    pub fn data_size(&self, d: DataId) -> u64 {
        self.data_size[d.index()]
    }

    /// Flop count of a task.
    #[inline]
    pub fn flops(&self, t: TaskId) -> f64 {
        self.task_flops[t.index()]
    }

    /// Total flops over all tasks.
    pub fn total_flops(&self) -> f64 {
        self.task_flops.iter().sum()
    }

    /// Sum of the input sizes of a task (bytes that must be resident to run it).
    #[inline]
    pub fn task_footprint(&self, t: TaskId) -> u64 {
        self.task_footprint[t.index()]
    }

    /// Total bytes over all distinct data items (the *working set* of the
    /// paper's x axes).
    pub fn working_set_bytes(&self) -> u64 {
        self.data_size.iter().sum()
    }

    /// True when every data item has the same size (the paper's base model).
    pub fn uniform_data_size(&self) -> bool {
        self.data_size.windows(2).all(|w| w[0] == w[1])
    }

    /// Number of input data items shared by two tasks (intersection of the
    /// two sorted input lists). Used by HFP package affinity.
    pub fn shared_inputs(&self, a: TaskId, b: TaskId) -> usize {
        let (mut i, mut j) = (0, 0);
        let (da, db) = (self.inputs(a), self.inputs(b));
        let mut shared = 0;
        while i < da.len() && j < db.len() {
            match da[i].cmp(&db[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// Bytes of input data shared by two tasks.
    pub fn shared_bytes(&self, a: TaskId, b: TaskId) -> u64 {
        let (mut i, mut j) = (0, 0);
        let (da, db) = (self.inputs(a), self.inputs(b));
        let mut bytes = 0;
        while i < da.len() && j < db.len() {
            match da[i].cmp(&db[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    bytes += self.data_size[da[i] as usize];
                    i += 1;
                    j += 1;
                }
            }
        }
        bytes
    }

    /// Arrival time of a task in nanoseconds (0 in batch mode, where no
    /// arrivals were recorded).
    #[inline]
    pub fn arrival(&self, t: TaskId) -> u64 {
        self.arrivals.get(t.index()).copied().unwrap_or(0)
    }

    /// True when any task arrives after t = 0 (a *stream*, as opposed to
    /// a batch where the whole set is available up front).
    pub fn has_arrivals(&self) -> bool {
        self.arrivals.iter().any(|&a| a > 0)
    }

    /// A copy of this task set with per-task arrival times attached (one
    /// entry per task, in id order). The primary way to turn a batch
    /// workload into a stream: generate arrivals with a traffic model and
    /// attach them here.
    ///
    /// Panics when `arrivals.len()` differs from the task count.
    pub fn with_arrivals(mut self, arrivals: Vec<u64>) -> TaskSet {
        assert_eq!(
            arrivals.len(),
            self.num_tasks(),
            "one arrival time per task required"
        );
        self.arrivals = arrivals;
        self
    }

    /// Relative completion deadline of a task in nanoseconds from its
    /// arrival (0 when none was attached — the task never expires).
    #[inline]
    pub fn deadline(&self, t: TaskId) -> u64 {
        self.deadlines.get(t.index()).copied().unwrap_or(0)
    }

    /// True when any task carries a completion deadline.
    pub fn has_deadlines(&self) -> bool {
        self.deadlines.iter().any(|&d| d > 0)
    }

    /// Tenant class of a task (0 when no classes were attached). Higher
    /// class indices are more important to the shedding policies.
    #[inline]
    pub fn class_of(&self, t: TaskId) -> u32 {
        self.classes.get(t.index()).copied().unwrap_or(0)
    }

    /// Number of distinct tenant classes: `max class + 1` (1 when no
    /// classes were attached).
    pub fn num_classes(&self) -> usize {
        self.classes.iter().max().map_or(1, |&c| c as usize + 1)
    }

    /// A copy of this task set with per-task relative deadlines attached
    /// (nanoseconds from each task's arrival; 0 = no deadline for that
    /// task). One entry per task, in id order.
    ///
    /// Panics when `deadlines.len()` differs from the task count.
    pub fn with_deadlines(mut self, deadlines: Vec<u64>) -> TaskSet {
        assert_eq!(
            deadlines.len(),
            self.num_tasks(),
            "one deadline per task required"
        );
        self.deadlines = deadlines;
        self
    }

    /// A copy of this task set with per-task tenant classes attached
    /// (higher = more important). One entry per task, in id order.
    ///
    /// Panics when `classes.len()` differs from the task count.
    pub fn with_classes(mut self, classes: Vec<u32>) -> TaskSet {
        assert_eq!(
            classes.len(),
            self.num_tasks(),
            "one class per task required"
        );
        self.classes = classes;
        self
    }

    /// Maximum number of inputs over all tasks.
    pub fn max_inputs_per_task(&self) -> usize {
        (0..self.num_tasks())
            .map(|t| self.task_data.row(t).len())
            .max()
            .unwrap_or(0)
    }
}

/// Incremental builder for [`TaskSet`].
///
/// ```
/// use memsched_model::{TaskSetBuilder, DataId};
///
/// let mut b = TaskSetBuilder::new();
/// let d0 = b.add_data(1024);
/// let d1 = b.add_data(1024);
/// let _t = b.add_task(&[d0, d1], 1.0e9);
/// let ts = b.build();
/// assert_eq!(ts.num_tasks(), 1);
/// assert_eq!(ts.consumers(DataId(0)), &[0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TaskSetBuilder {
    data_size: Vec<u64>,
    /// Task inputs accumulated directly in CSR form: `input_ends[t]` is the
    /// exclusive end of task `t`'s row in the shared `input_ids` slab (the
    /// implicit start is `input_ends[t - 1]`, or 0 for the first task).
    /// Building a million-task set this way costs O(1) vectors, not O(m).
    input_ends: Vec<u32>,
    input_ids: Vec<u32>,
    task_flops: Vec<f64>,
    arrivals: Vec<u64>,
}

impl TaskSetBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a data item of `size` bytes and return its id.
    pub fn add_data(&mut self, size: u64) -> DataId {
        assert!(size > 0, "data items must have a positive size");
        let id = DataId::from_usize(self.data_size.len());
        self.data_size.push(size);
        id
    }

    /// Register `count` data items of identical `size`, returning the first id.
    pub fn add_data_block(&mut self, count: usize, size: u64) -> DataId {
        let first = DataId::from_usize(self.data_size.len());
        for _ in 0..count {
            self.add_data(size);
        }
        first
    }

    /// Register a task reading `inputs` and performing `flops` floating
    /// point operations. Duplicate inputs are deduplicated.
    pub fn add_task(&mut self, inputs: &[DataId], flops: f64) -> TaskId {
        assert!(!inputs.is_empty(), "tasks must have at least one input");
        assert!(flops >= 0.0, "flops must be non-negative");
        let start = self.input_ids.len();
        for d in inputs {
            assert!(
                d.index() < self.data_size.len(),
                "task references unknown data {d}"
            );
            self.input_ids.push(d.0);
        }
        // Sort + dedup the appended tail in place: the row lives in the
        // shared slab, no per-task allocation.
        self.input_ids[start..].sort_unstable();
        let mut w = start + 1;
        for r in start + 1..self.input_ids.len() {
            if self.input_ids[r] != self.input_ids[w - 1] {
                self.input_ids[w] = self.input_ids[r];
                w += 1;
            }
        }
        self.input_ids.truncate(w);
        let id = TaskId::from_usize(self.input_ends.len());
        self.input_ends.push(self.input_ids.len() as u32);
        self.task_flops.push(flops);
        self.arrivals.push(0);
        id
    }

    /// Like [`TaskSetBuilder::add_task`], with an arrival time in
    /// nanoseconds for online serving.
    pub fn add_task_at(&mut self, inputs: &[DataId], flops: f64, arrival: u64) -> TaskId {
        let id = self.add_task(inputs, flops);
        self.arrivals[id.index()] = arrival;
        id
    }

    /// Set the arrival time of an already-added task.
    pub fn set_arrival(&mut self, t: TaskId, arrival: u64) {
        self.arrivals[t.index()] = arrival;
    }

    /// Number of tasks added so far.
    pub fn num_tasks(&self) -> usize {
        self.input_ends.len()
    }

    /// Number of data items added so far.
    pub fn num_data(&self) -> usize {
        self.data_size.len()
    }

    /// Finalize into an immutable [`TaskSet`].
    pub fn build(self) -> TaskSet {
        let m = self.input_ends.len();
        let n = self.data_size.len();
        let total_pins = self.input_ids.len();

        let mut task_offsets = Vec::with_capacity(m + 1);
        task_offsets.push(0u32);
        task_offsets.extend_from_slice(&self.input_ends);
        let task_targets = self.input_ids;
        let mut task_footprint = Vec::with_capacity(m);
        for t in 0..m {
            let row = &task_targets[task_offsets[t] as usize..task_offsets[t + 1] as usize];
            task_footprint.push(row.iter().map(|&d| self.data_size[d as usize]).sum());
        }

        // Transpose task->data into data->task, keeping consumer lists sorted
        // (tasks are visited in increasing id order).
        let mut degree = vec![0u32; n];
        for &d in &task_targets {
            degree[d as usize] += 1;
        }
        let mut data_offsets = Vec::with_capacity(n + 1);
        data_offsets.push(0u32);
        for &deg in &degree {
            data_offsets.push(data_offsets.last().unwrap() + deg);
        }
        let mut cursor: Vec<u32> = data_offsets[..n].to_vec();
        let mut data_targets = vec![0u32; total_pins];
        for t in 0..m {
            for &d in &task_targets[task_offsets[t] as usize..task_offsets[t + 1] as usize] {
                data_targets[cursor[d as usize] as usize] = t as u32;
                cursor[d as usize] += 1;
            }
        }

        TaskSet {
            task_data: Csr {
                offsets: task_offsets,
                targets: task_targets,
            },
            data_tasks: Csr {
                offsets: data_offsets,
                targets: data_targets,
            },
            data_size: self.data_size,
            task_flops: self.task_flops,
            task_footprint,
            // Batch sets stay byte-identical on disk: only record the
            // arrivals vector when some task actually arrives late.
            arrivals: if self.arrivals.iter().any(|&a| a > 0) {
                self.arrivals
            } else {
                Vec::new()
            },
            deadlines: Vec::new(),
            classes: Vec::new(),
        }
    }
}

/// Construct the 9-task / 6-data example of Figure 1 of the paper
/// (2D grid dependencies: task `T(i,j)` reads row data `D(i)` and column
/// data `D(3+j)`, all of unit size).
///
/// Task ids are row-major: `T0..T8`; data `D0..D2` are the rows and
/// `D3..D5` the columns.
pub fn figure1_example() -> TaskSet {
    let mut b = TaskSetBuilder::new();
    let rows: Vec<DataId> = (0..3).map(|_| b.add_data(1)).collect();
    let cols: Vec<DataId> = (0..3).map(|_| b.add_data(1)).collect();
    for &row in &rows {
        for &col in &cols {
            b.add_task(&[row, col], 1.0);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_bipartite_graph() {
        let ts = figure1_example();
        assert_eq!(ts.num_tasks(), 9);
        assert_eq!(ts.num_data(), 6);
        // T4 = (row 1, col 1) -> D1 and D4
        assert_eq!(ts.inputs(TaskId(4)), &[1, 4]);
        // D0 (row 0) consumed by T0, T1, T2
        assert_eq!(ts.consumers(DataId(0)), &[0, 1, 2]);
        // D3 (col 0) consumed by T0, T3, T6
        assert_eq!(ts.consumers(DataId(3)), &[0, 3, 6]);
        assert_eq!(ts.working_set_bytes(), 6);
        assert!(ts.uniform_data_size());
        assert_eq!(ts.max_inputs_per_task(), 2);
    }

    #[test]
    fn duplicate_inputs_are_deduplicated() {
        let mut b = TaskSetBuilder::new();
        let d = b.add_data(10);
        let t = b.add_task(&[d, d, d], 5.0);
        let ts = b.build();
        assert_eq!(ts.inputs(t), &[0]);
        assert_eq!(ts.task_footprint(t), 10);
    }

    #[test]
    fn input_slab_matches_per_row_views() {
        let ts = figure1_example();
        let (offsets, ids) = ts.input_slab();
        assert_eq!(offsets.len(), ts.num_tasks() + 1);
        for t in 0..ts.num_tasks() {
            let row = &ids[offsets[t] as usize..offsets[t + 1] as usize];
            assert_eq!(row, ts.inputs(TaskId(t as u32)));
        }
        let (doffsets, dids) = ts.consumer_slab();
        assert_eq!(doffsets.len(), ts.num_data() + 1);
        for d in 0..ts.num_data() {
            let row = &dids[doffsets[d] as usize..doffsets[d + 1] as usize];
            assert_eq!(row, ts.consumers(DataId(d as u32)));
        }
    }

    #[test]
    fn shared_inputs_counts_intersection() {
        let ts = figure1_example();
        // T0=(D0,D3), T1=(D0,D4): share D0.
        assert_eq!(ts.shared_inputs(TaskId(0), TaskId(1)), 1);
        assert_eq!(ts.shared_bytes(TaskId(0), TaskId(1)), 1);
        // T0=(D0,D3), T4=(D1,D4): share nothing.
        assert_eq!(ts.shared_inputs(TaskId(0), TaskId(4)), 0);
        // A task shares all its inputs with itself.
        assert_eq!(ts.shared_inputs(TaskId(0), TaskId(0)), 2);
    }

    #[test]
    fn footprints_and_flops_accumulate() {
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(100);
        let d1 = b.add_data(200);
        b.add_task(&[d0], 1.0);
        b.add_task(&[d0, d1], 2.0);
        let ts = b.build();
        assert_eq!(ts.task_footprint(TaskId(0)), 100);
        assert_eq!(ts.task_footprint(TaskId(1)), 300);
        assert_eq!(ts.total_flops(), 3.0);
        assert_eq!(ts.working_set_bytes(), 300);
        assert!(!ts.uniform_data_size());
    }

    #[test]
    #[should_panic(expected = "unknown data")]
    fn task_with_unknown_data_panics() {
        let mut b = TaskSetBuilder::new();
        b.add_task(&[DataId(0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn task_without_inputs_panics() {
        let mut b = TaskSetBuilder::new();
        b.add_task(&[], 1.0);
    }

    #[test]
    fn arrivals_default_to_batch_and_round_trip() {
        let ts = figure1_example();
        assert!(!ts.has_arrivals());
        assert_eq!(ts.arrival(TaskId(0)), 0);

        let mut b = TaskSetBuilder::new();
        let d = b.add_data(1);
        b.add_task(&[d], 1.0);
        let t1 = b.add_task_at(&[d], 1.0, 500);
        b.set_arrival(t1, 700);
        let ts = b.build();
        assert!(ts.has_arrivals());
        assert_eq!(ts.arrival(TaskId(0)), 0);
        assert_eq!(ts.arrival(TaskId(1)), 700);

        let streamed = figure1_example().with_arrivals((0..9).map(|i| i * 10).collect());
        assert!(streamed.has_arrivals());
        assert_eq!(streamed.arrival(TaskId(8)), 80);
    }

    #[test]
    #[should_panic(expected = "one arrival time per task")]
    fn with_arrivals_rejects_wrong_length() {
        figure1_example().with_arrivals(vec![0; 3]);
    }

    #[test]
    fn deadlines_and_classes_default_to_none() {
        let ts = figure1_example();
        assert!(!ts.has_deadlines());
        assert_eq!(ts.deadline(TaskId(0)), 0);
        assert_eq!(ts.class_of(TaskId(0)), 0);
        assert_eq!(ts.num_classes(), 1);

        let ts = ts
            .with_deadlines((0..9).map(|i| i * 1000).collect())
            .with_classes((0..9).map(|i| (i % 3) as u32).collect());
        assert!(ts.has_deadlines());
        assert_eq!(ts.deadline(TaskId(0)), 0, "0 means no deadline");
        assert_eq!(ts.deadline(TaskId(8)), 8000);
        assert_eq!(ts.class_of(TaskId(5)), 2);
        assert_eq!(ts.num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "one deadline per task")]
    fn with_deadlines_rejects_wrong_length() {
        figure1_example().with_deadlines(vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "one class per task")]
    fn with_classes_rejects_wrong_length() {
        figure1_example().with_classes(vec![0; 3]);
    }

    #[test]
    fn add_data_block_returns_first_id() {
        let mut b = TaskSetBuilder::new();
        let first = b.add_data_block(4, 7);
        assert_eq!(first, DataId(0));
        assert_eq!(b.num_data(), 4);
        let second = b.add_data(7);
        assert_eq!(second, DataId(4));
    }
}
