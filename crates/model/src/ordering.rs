//! Offline orderings for the §III model: given a task set (and optionally
//! a partition), produce single- or multi-GPU schedules whose quality can
//! be measured with [`crate::replay`]. These are the model-level
//! counterparts of the runtime schedulers — useful as baselines, for
//! studying the ordering problem in isolation (the NP-complete core of
//! the paper), and in tests.

use crate::ids::{GpuId, TaskId};
use crate::schedule::Schedule;
use crate::taskset::TaskSet;

/// Submission order: tasks in id order, all on one GPU.
pub fn natural_order(ts: &TaskSet) -> Schedule {
    Schedule::from_lists(vec![ts.tasks().collect()])
}

/// Round-robin deal of the submission order over `k` GPUs (a crude
/// baseline with terrible locality).
pub fn round_robin(ts: &TaskSet, k: usize) -> Schedule {
    assert!(k > 0, "need at least one GPU");
    let mut lists = vec![Vec::new(); k];
    for (i, t) in ts.tasks().enumerate() {
        lists[i % k].push(t);
    }
    Schedule::from_lists(lists)
}

/// Greedy data-reuse ordering — an offline cousin of DARTS: repeatedly
/// run every task whose inputs are all in the simulated memory, else
/// "load" the data item that frees the most remaining tasks (ties to the
/// lowest id), evicting nothing (the order, not the eviction, is the
/// point — eviction is Belady's job at replay time, §III).
///
/// `memory_items` bounds the simulated resident set: when full, the item
/// unused for the longest (simulated) time is dropped from the tracking
/// set, mimicking the bounded window a real schedule has to live with.
pub fn greedy_reuse_order(ts: &TaskSet, memory_items: usize) -> Schedule {
    assert!(memory_items >= ts.max_inputs_per_task());
    let n = ts.num_data();
    let mut resident: Vec<bool> = vec![false; n];
    let mut resident_queue: Vec<u32> = Vec::new(); // FIFO age order
    let mut done = vec![false; ts.num_tasks()];
    let mut remaining = ts.num_tasks();
    let mut order = Vec::with_capacity(ts.num_tasks());

    // Remaining-use counts per data item.
    let mut uses: Vec<u32> = (0..n)
        .map(|d| ts.consumers(crate::ids::DataId(d as u32)).len() as u32)
        .collect();

    while remaining > 0 {
        // Run everything currently free.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for t in ts.tasks() {
                if done[t.index()] {
                    continue;
                }
                if ts.inputs(t).iter().all(|&d| resident[d as usize]) {
                    done[t.index()] = true;
                    remaining -= 1;
                    order.push(t);
                    for &d in ts.inputs(t) {
                        uses[d as usize] -= 1;
                    }
                    progressed = true;
                }
            }
        }
        if remaining == 0 {
            break;
        }
        // Pick the absent data item freeing the most tasks (then the one
        // with the most remaining uses, then lowest id).
        let mut best: Option<(usize, usize, u32, u32)> = None; // (freed, uses, !id, id)
        for d in 0..n as u32 {
            if resident[d as usize] {
                continue;
            }
            let freed = ts
                .consumer_ids(crate::ids::DataId(d))
                .filter(|&t| !done[t.index()])
                .filter(|&t| {
                    ts.inputs(t)
                        .iter()
                        .all(|&i| i == d || resident[i as usize])
                })
                .count();
            let key = (freed, uses[d as usize] as usize, u32::MAX - d, d);
            if best.is_none_or(|b| (key.0, key.1, key.2) > (b.0, b.1, b.2)) {
                best = Some(key);
            }
        }
        let (freed, _, _, d) = best.expect("absent data must exist while tasks remain");
        // Track it as resident (evict oldest if the window is full).
        if resident_queue.len() == memory_items {
            let old = resident_queue.remove(0);
            resident[old as usize] = false;
        }
        resident[d as usize] = true;
        resident_queue.push(d);
        if freed == 0 {
            // Nothing frees a task with a single load (e.g. at start):
            // force the lowest-id unprocessed task runnable by loading all
            // its inputs.
            let t = ts
                .tasks()
                .find(|&t| !done[t.index()])
                .expect("tasks remain");
            for &i in ts.inputs(t) {
                if !resident[i as usize] {
                    if resident_queue.len() == memory_items {
                        let old = resident_queue.remove(0);
                        resident[old as usize] = false;
                    }
                    resident[i as usize] = true;
                    resident_queue.push(i);
                }
            }
        }
    }
    Schedule::from_lists(vec![order])
}

/// Snake (boustrophedon) ordering of a 2D task grid: row major, but every
/// other row reversed — the classic locality fix for the EAGER pathology
/// on grids, reusing the last column data across row boundaries.
///
/// Assumes `ts` has exactly `rows × cols` tasks in row-major id order
/// (as produced by the 2D gemm generator).
pub fn snake_order(ts: &TaskSet, rows: usize, cols: usize) -> Schedule {
    assert_eq!(rows * cols, ts.num_tasks(), "grid shape mismatch");
    let mut order = Vec::with_capacity(ts.num_tasks());
    for i in 0..rows {
        if i % 2 == 0 {
            for j in 0..cols {
                order.push(TaskId::from_usize(i * cols + j));
            }
        } else {
            for j in (0..cols).rev() {
                order.push(TaskId::from_usize(i * cols + j));
            }
        }
    }
    Schedule::from_lists(vec![order])
}

/// Split one global order over `k` GPUs in contiguous chunks (preserving
/// locality within each chunk, unlike [`round_robin`]).
pub fn chunked(order: &Schedule, k: usize) -> Schedule {
    assert_eq!(order.num_gpus(), 1, "chunked expects a single-GPU order");
    assert!(k > 0);
    let tasks = order.gpu(GpuId(0));
    let m = tasks.len();
    let mut lists = Vec::with_capacity(k);
    let chunk = m.div_ceil(k);
    for c in tasks.chunks(chunk.max(1)) {
        lists.push(c.to_vec());
    }
    lists.resize(k, Vec::new());
    Schedule::from_lists(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay, EvictionPolicy};
    use crate::taskset::{figure1_example, TaskSetBuilder};

    /// A miniature 2D grid like the gemm generator's layout.
    fn grid(n: usize) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let rows: Vec<_> = (0..n).map(|_| b.add_data(1)).collect();
        let cols: Vec<_> = (0..n).map(|_| b.add_data(1)).collect();
        for &row in &rows {
            for &col in &cols {
                b.add_task(&[row, col], 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn natural_and_round_robin_are_valid() {
        let ts = figure1_example();
        natural_order(&ts).validate(&ts).unwrap();
        let rr = round_robin(&ts, 3);
        rr.validate(&ts).unwrap();
        assert_eq!(rr.max_load(), 3);
    }

    #[test]
    fn snake_beats_row_major_under_lru() {
        let n = 8;
        let ts = grid(n);
        let cap = (n + 1) as u64; // one row + all-but-one columns
        let row_major = natural_order(&ts);
        let snake = snake_order(&ts, n, n);
        snake.validate(&ts).unwrap();
        let rm = replay(&ts, &row_major, cap, EvictionPolicy::Lru).unwrap();
        let sn = replay(&ts, &snake, cap, EvictionPolicy::Lru).unwrap();
        assert!(
            sn.total_loads() <= rm.total_loads(),
            "snake {} vs row-major {}",
            sn.total_loads(),
            rm.total_loads()
        );
    }

    #[test]
    fn greedy_reuse_is_a_valid_low_load_order() {
        let n = 6;
        let ts = grid(n);
        let sched = greedy_reuse_order(&ts, n);
        sched.validate(&ts).unwrap();
        let cap = n as u64;
        let greedy = replay(&ts, &sched, cap, EvictionPolicy::Belady).unwrap();
        let naive = replay(&ts, &natural_order(&ts), cap, EvictionPolicy::Belady).unwrap();
        assert!(
            greedy.total_loads() <= naive.total_loads(),
            "greedy {} vs natural {}",
            greedy.total_loads(),
            naive.total_loads()
        );
    }

    #[test]
    fn chunked_preserves_order_and_balance() {
        let ts = grid(4);
        let order = natural_order(&ts);
        let split = chunked(&order, 3);
        split.validate(&ts).unwrap();
        assert!(split.max_load() <= 6);
        // First chunk is the prefix of the global order.
        assert_eq!(split.gpu(GpuId(0))[0], TaskId(0));
    }

    #[test]
    #[should_panic(expected = "grid shape mismatch")]
    fn snake_checks_shape() {
        let ts = figure1_example();
        snake_order(&ts, 2, 2);
    }

    #[test]
    fn greedy_reuse_on_figure1_is_near_optimal() {
        let ts = figure1_example();
        let sched = greedy_reuse_order(&ts, 3);
        sched.validate(&ts).unwrap();
        let r = replay(&ts, &sched, 3, EvictionPolicy::Belady).unwrap();
        let naive = replay(&ts, &natural_order(&ts), 3, EvictionPolicy::Belady).unwrap();
        // 6 data items; with M = 3 a decent order loads each at most
        // twice on average and never beats the compulsory bound.
        assert!(r.total_loads() >= 6);
        assert!(r.total_loads() <= 12, "loads = {}", r.total_loads());
        assert!(
            r.total_loads() <= naive.total_loads() + 1,
            "greedy {} much worse than natural {}",
            r.total_loads(),
            naive.total_loads()
        );
    }
}
