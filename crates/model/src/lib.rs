//! # memsched-model
//!
//! The formal model of *“Memory-Aware Scheduling of Tasks Sharing Data on
//! Multiple GPUs with Dynamic Runtime Systems”* (Gonthier, Marchal,
//! Thibault — IPDPS 2022), §III:
//!
//! * [`TaskSet`] — the bipartite graph `G = (T ∪ D, E)` between independent
//!   tasks and their shared, read-only input data;
//! * [`Schedule`] — a partition-and-order `σ` of the tasks over `K` GPUs;
//! * [`replay`] — offline execution of a schedule against a bounded GPU
//!   memory, counting `#Loads_k` (Obj. 2) under LRU or Belady eviction;
//! * [`bounds`] — schedule-independent lower bounds and the roofline /
//!   PCI-limit reference lines of the paper's figures.
//!
//! This crate is purely combinatorial: time only enters through the
//! simulator crate (`memsched-platform`), which shares these types.

#![warn(missing_docs)]

pub mod bounds;
mod ids;
pub mod ordering;
mod replay;
mod schedule;
mod taskset;

pub use ids::{DataId, GpuId, TaskId};
pub use replay::{
    compulsory_loads, replay, EvictionPolicy, GpuReplay, ReplayError, ReplayReport,
};
pub use schedule::{Schedule, ScheduleError};
pub use taskset::{figure1_example, TaskSet, TaskSetBuilder};

// Compile-time audit for the parallel sweep harness: a generated
// `TaskSet` is shared read-only across worker threads via `Arc`, so it
// must be `Send + Sync` (it is plain owned data — CSR index vectors).
#[allow(dead_code)]
fn _assert_taskset_shareable() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<TaskSet>();
    is_send_sync::<std::sync::Arc<TaskSet>>();
}
