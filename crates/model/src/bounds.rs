//! Schedule-independent lower bounds on the two objectives of §III.
//!
//! These bounds are used by the test suite (no strategy may beat them) and
//! reported by the experiment harness to show how far each heuristic is
//! from optimal.

use crate::taskset::TaskSet;

/// Lower bound on Obj. 1 for `k` GPUs with uniform task durations:
/// `⌈m / K⌉` tasks on the most loaded GPU.
pub fn min_max_load(ts: &TaskSet, k: usize) -> usize {
    assert!(k > 0, "need at least one GPU");
    ts.num_tasks().div_ceil(k)
}

/// Lower bound on Obj. 2 for *any* schedule on *any* number of GPUs: every
/// data item with at least one consumer must be loaded at least once
/// somewhere (all data start in host memory only). Unconsumed data items
/// (possible in sparse workloads) never need to be loaded.
pub fn min_total_loads(ts: &TaskSet) -> u64 {
    ts.data().filter(|&d| !ts.consumers(d).is_empty()).count() as u64
}

/// Lower bound on the bytes that must cross the bus for any schedule:
/// each consumed data item crosses at least once.
pub fn min_total_load_bytes(ts: &TaskSet) -> u64 {
    ts.data()
        .filter(|&d| !ts.consumers(d).is_empty())
        .map(|d| ts.data_size(d))
        .sum()
}

/// A memory-pressure refinement of the load lower bound for a *single* GPU
/// with a memory of `capacity` bytes, in the spirit of Hong & Kung's I/O
/// lower bounds: processing any group of tasks whose union of inputs
/// exceeds the memory requires at least `union − capacity` extra bytes of
/// reloads beyond the compulsory ones. We use the coarsest version — the
/// whole task set as one group — which is exact when the working set fits
/// and a valid (if weak) bound otherwise.
pub fn single_gpu_min_load_bytes(ts: &TaskSet, _capacity: u64) -> u64 {
    // The compulsory bound; tightening it further is NP-hard (§III).
    min_total_load_bytes(ts)
}

/// Minimum makespan (seconds) on `k` identical GPUs of `gflops` GFlop/s
/// each, ignoring all transfers: `total_flops / (k · gflops · 1e9)`.
/// This is the "GFlop/s max" roofline of Figures 3–13.
pub fn compute_roofline_seconds(ts: &TaskSet, k: usize, gflops: f64) -> f64 {
    assert!(k > 0 && gflops > 0.0);
    ts.total_flops() / (k as f64 * gflops * 1e9)
}

/// The "PCI bus limit" line of Figure 4: the maximum number of bytes that
/// can cross a bus of `bandwidth` bytes/s during the compute-roofline
/// time. A strategy transferring more than this necessarily takes longer
/// than the optimal compute time.
pub fn pci_bus_limit_bytes(ts: &TaskSet, k: usize, gflops: f64, bandwidth: f64) -> f64 {
    compute_roofline_seconds(ts, k, gflops) * bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskset::figure1_example;

    #[test]
    fn max_load_bound_is_ceiling() {
        let ts = figure1_example();
        assert_eq!(min_max_load(&ts, 1), 9);
        assert_eq!(min_max_load(&ts, 2), 5);
        assert_eq!(min_max_load(&ts, 3), 3);
        assert_eq!(min_max_load(&ts, 4), 3);
    }

    #[test]
    fn load_bounds_count_all_data() {
        let ts = figure1_example();
        assert_eq!(min_total_loads(&ts), 6);
        assert_eq!(min_total_load_bytes(&ts), 6);
        assert_eq!(single_gpu_min_load_bytes(&ts, 100), 6);
    }

    #[test]
    fn roofline_scales_with_gpus() {
        let ts = figure1_example(); // 9 flops total
        let t1 = compute_roofline_seconds(&ts, 1, 1e-9); // 1 flop/s
        let t2 = compute_roofline_seconds(&ts, 2, 1e-9);
        assert!((t1 - 9.0).abs() < 1e-12);
        assert!((t2 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn pci_limit_is_time_times_bandwidth() {
        let ts = figure1_example();
        let b = pci_bus_limit_bytes(&ts, 1, 1e-9, 2.0);
        assert!((b - 18.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        let ts = figure1_example();
        min_max_load(&ts, 0);
    }
}
