//! Strongly-typed identifiers for tasks, data items and GPUs.
//!
//! The paper models the input as a bipartite graph `G = (T ∪ D, E)` between
//! tasks `T = {T1..Tm}` and data `D = {D1..Dn}`. We index both sides with
//! dense `u32` newtypes so they can be used directly as `Vec` indices
//! without accidentally mixing the two sides of the graph.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Build an id from a `usize` index (panics if it does not fit in `u32`).
            #[inline]
            pub fn from_usize(i: usize) -> Self {
                Self(u32::try_from(i).expect("id overflows u32"))
            }

            /// The id as a `usize`, for direct indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a task (`Ti` in the paper).
    TaskId,
    "T"
);
id_type!(
    /// Identifier of a data item (`Dj` in the paper).
    DataId,
    "D"
);
id_type!(
    /// Identifier of a GPU (`GPUk` in the paper).
    GpuId,
    "GPU"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let t = TaskId::from_usize(42);
        assert_eq!(t.index(), 42);
        assert_eq!(t, TaskId(42));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(TaskId(3).to_string(), "T3");
        assert_eq!(DataId(7).to_string(), "D7");
        assert_eq!(GpuId(0).to_string(), "GPU0");
        assert_eq!(format!("{:?}", DataId(1)), "D1");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(TaskId(1) < TaskId(2));
        assert!(DataId(0) < DataId(10));
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn from_usize_overflow_panics() {
        let _ = TaskId::from_usize(usize::MAX);
    }
}
