//! Schedules `σ` — per-GPU ordered task lists — and the load-balance
//! objective (Obj. 1 of §III).

use crate::ids::{GpuId, TaskId};
use crate::taskset::TaskSet;
use serde::{Deserialize, Serialize};

/// A complete schedule: for each GPU `k`, the ordered list of tasks
/// `σ(k, 1), σ(k, 2), …` it processes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    gpus: Vec<Vec<TaskId>>,
}

/// Errors detected by [`Schedule::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// A task appears more than once across all GPUs.
    DuplicateTask(TaskId),
    /// A task of the task set is never scheduled.
    MissingTask(TaskId),
    /// A scheduled task id is outside the task set.
    UnknownTask(TaskId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::DuplicateTask(t) => write!(f, "task {t} scheduled more than once"),
            ScheduleError::MissingTask(t) => write!(f, "task {t} never scheduled"),
            ScheduleError::UnknownTask(t) => write!(f, "task {t} not in the task set"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// An empty schedule over `k` GPUs.
    pub fn new(k: usize) -> Self {
        Self {
            gpus: vec![Vec::new(); k],
        }
    }

    /// Build directly from per-GPU task lists.
    pub fn from_lists(gpus: Vec<Vec<TaskId>>) -> Self {
        Self { gpus }
    }

    /// Number of GPUs `K`.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Append a task to the end of GPU `k`'s list.
    pub fn push(&mut self, gpu: GpuId, task: TaskId) {
        self.gpus[gpu.index()].push(task);
    }

    /// Ordered task list of GPU `k`.
    pub fn gpu(&self, gpu: GpuId) -> &[TaskId] {
        &self.gpus[gpu.index()]
    }

    /// Iterate over `(GpuId, task list)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GpuId, &[TaskId])> {
        self.gpus
            .iter()
            .enumerate()
            .map(|(k, l)| (GpuId::from_usize(k), l.as_slice()))
    }

    /// Total number of scheduled tasks.
    pub fn num_tasks(&self) -> usize {
        self.gpus.iter().map(Vec::len).sum()
    }

    /// `nb_k` — number of tasks on GPU `k`.
    pub fn load(&self, gpu: GpuId) -> usize {
        self.gpus[gpu.index()].len()
    }

    /// Objective 1: `max_k nb_k` (uniform task durations).
    pub fn max_load(&self) -> usize {
        self.gpus.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Weighted variant of Objective 1: the maximum of the summed flop
    /// counts per GPU (heterogeneous tasks, end of §III).
    pub fn max_load_flops(&self, ts: &TaskSet) -> f64 {
        self.gpus
            .iter()
            .map(|l| l.iter().map(|&t| ts.flops(t)).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Load imbalance ratio `max_k nb_k / (m / K)`; 1.0 is perfect.
    pub fn imbalance(&self) -> f64 {
        let m = self.num_tasks();
        if m == 0 || self.gpus.is_empty() {
            return 1.0;
        }
        let avg = m as f64 / self.gpus.len() as f64;
        self.max_load() as f64 / avg
    }

    /// Check the schedule is a partition of the task set: every task
    /// appears exactly once over all GPUs.
    pub fn validate(&self, ts: &TaskSet) -> Result<(), ScheduleError> {
        let m = ts.num_tasks();
        let mut seen = vec![false; m];
        for list in &self.gpus {
            for &t in list {
                if t.index() >= m {
                    return Err(ScheduleError::UnknownTask(t));
                }
                if seen[t.index()] {
                    return Err(ScheduleError::DuplicateTask(t));
                }
                seen[t.index()] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::MissingTask(TaskId::from_usize(missing)));
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) use tests::figure1_schedule;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskset::figure1_example;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    /// The exact schedule of Figure 1: GPU1 runs T1,T2,T5,T4 and GPU2 runs
    /// T3,T6,T9,T8,T7 — in the paper's 1-based numbering. In our 0-based
    /// ids: GPU0 = [T0,T1,T4,T3], GPU1 = [T2,T5,T8,T7,T6].
    pub(crate) fn figure1_schedule() -> Schedule {
        Schedule::from_lists(vec![
            vec![t(0), t(1), t(4), t(3)],
            vec![t(2), t(5), t(8), t(7), t(6)],
        ])
    }

    #[test]
    fn figure1_schedule_is_valid() {
        let ts = figure1_example();
        let s = figure1_schedule();
        s.validate(&ts).unwrap();
        assert_eq!(s.num_tasks(), 9);
        assert_eq!(s.load(GpuId(0)), 4);
        assert_eq!(s.load(GpuId(1)), 5);
        assert_eq!(s.max_load(), 5);
    }

    #[test]
    fn validate_detects_duplicates() {
        let ts = figure1_example();
        let s = Schedule::from_lists(vec![vec![t(0), t(0)], vec![]]);
        assert_eq!(s.validate(&ts), Err(ScheduleError::DuplicateTask(t(0))));
    }

    #[test]
    fn validate_detects_missing() {
        let ts = figure1_example();
        let s = Schedule::from_lists(vec![vec![t(0)], vec![]]);
        assert_eq!(s.validate(&ts), Err(ScheduleError::MissingTask(t(1))));
    }

    #[test]
    fn validate_detects_unknown() {
        let ts = figure1_example();
        let s = Schedule::from_lists(vec![vec![t(99)], vec![]]);
        assert_eq!(s.validate(&ts), Err(ScheduleError::UnknownTask(t(99))));
    }

    #[test]
    fn imbalance_of_even_split_is_one() {
        let mut s = Schedule::new(2);
        for i in 0..4 {
            s.push(GpuId(i % 2), t(i));
        }
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.max_load(), 2);
    }

    #[test]
    fn weighted_load_uses_flops() {
        let ts = figure1_example(); // all tasks 1.0 flop
        let s = figure1_schedule();
        assert_eq!(s.max_load_flops(&ts), 5.0);
    }

    #[test]
    fn push_and_iter_roundtrip() {
        let mut s = Schedule::new(3);
        s.push(GpuId(2), t(7));
        let collected: Vec<_> = s.iter().map(|(g, l)| (g, l.len())).collect();
        assert_eq!(
            collected,
            vec![(GpuId(0), 0), (GpuId(1), 0), (GpuId(2), 1)]
        );
        assert_eq!(s.gpu(GpuId(2)), &[t(7)]);
    }
}
