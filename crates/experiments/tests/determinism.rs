//! Determinism regression test for the parallel sweep harness: the same
//! mid-size sweep run with 1, 2 and 8 workers must serialize to identical
//! bytes. This is the harness's core guarantee — worker count (and hence
//! pool interleaving) can never leak into figure output.
//!
//! Wall-clock-derived fields (`prepare_ms`, `sched_ms`,
//! `gflops_with_sched`) are zeroed via `Row::canonical` before
//! serializing; every simulated quantity is compared exactly.

use memsched_experiments::{canonical_json, FigureSpec, Metric, SweepPoint};
use memsched_platform::{FaultPlan, PlatformSpec};
use memsched_schedulers::NamedScheduler as S;
use memsched_workloads::{constants::GEMM2D_DATA_BYTES, Workload};

/// A mid-size sweep: three sizes, several scheduler families, memory
/// pressure on (so eviction paths run), 13 cells total.
fn mid_size_sweep() -> FigureSpec {
    let schedulers = vec![S::Eager, S::Dmdar, S::Mhfp, S::DartsLuf];
    FigureSpec {
        id: "determinism",
        title: "determinism regression sweep",
        spec: PlatformSpec::v100(2).with_memory(8 * GEMM2D_DATA_BYTES),
        points: vec![
            SweepPoint {
                workload: Workload::Gemm2d { n: 8 },
                schedulers: schedulers.clone(),
            },
            SweepPoint {
                workload: Workload::Gemm2dRandom { n: 10, seed: 7 },
                schedulers: schedulers.clone(),
            },
            SweepPoint {
                workload: Workload::Cholesky { n: 8 },
                // mHFP is dropped at the largest point, as figures do for
                // expensive static schedulers — exercises ragged points.
                schedulers: vec![S::Eager, S::Dmdar, S::DartsLuf, S::HmetisR, S::Darts],
            },
        ],
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

#[test]
fn sweep_rows_are_identical_across_worker_counts() {
    let fig = mid_size_sweep();
    let reference = canonical_json(&fig.run_with_jobs(1).unwrap());
    for jobs in [2, 8] {
        let got = canonical_json(&fig.run_with_jobs(jobs).unwrap());
        assert_eq!(
            got, reference,
            "rows with {jobs} workers differ from the serial run"
        );
    }
    // And a repeated serial run reproduces itself (workload generation
    // and the engine are fully deterministic).
    assert_eq!(canonical_json(&fig.run_with_jobs(1).unwrap()), reference);
}

#[test]
fn csv_and_table_are_identical_across_worker_counts() {
    let fig = mid_size_sweep();
    let rows1 = fig.run_with_jobs(1).unwrap();
    let rows8 = fig.run_with_jobs(8).unwrap();
    // CSV contains the wall-clock columns, so compare through canonical
    // rows; the table prints gflops_with_sched, so compare its canonical
    // rendering too.
    let canon1: Vec<_> = rows1.iter().map(|r| r.canonical()).collect();
    let canon8: Vec<_> = rows8.iter().map(|r| r.canonical()).collect();
    assert_eq!(fig.to_csv(&canon1), fig.to_csv(&canon8));
    assert_eq!(fig.to_table(&canon1), fig.to_table(&canon8));
}
