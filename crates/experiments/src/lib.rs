//! # memsched-experiments
//!
//! The harness that regenerates **every figure of the paper's evaluation**
//! (Figures 3–13). Each figure has a binary (`fig03` … `fig13`) printing a
//! human table plus CSV; `all_figures` runs the full set.
//!
//! ```no_run
//! use memsched_experiments::figures;
//! figures::fig03().run_and_print(None);
//! ```
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison produced with this harness.

#![warn(missing_docs)]

pub mod chaos;
pub mod checks;
pub mod cli;
pub mod figures;
pub mod harness;
pub mod obs;
pub mod pool;
pub mod prefix_route;

pub use checks::{shape_checks, CheckResult};
pub use figures::all_figures;
pub use harness::{canonical_json, FigureSpec, Metric, Row, SweepPoint};
pub use obs::{export_figure, lint_chrome, ObsOut, TraceFormat};
pub use pool::resolve_jobs;
