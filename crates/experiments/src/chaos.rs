//! Chaos composition for the serving tier: seeded random fault plans ×
//! overload traffic, with the hard serving invariants as checkers.
//!
//! One seed fully determines one *composition* — an overloaded,
//! deadline- and class-stamped request stream, a two-GPU platform, a
//! randomized fault plan and a backlog bound. The soak harness
//! (`tests/chaos_soak.rs`) and the standalone `chaos` driver binary run
//! the same matrix through this module, so a failure found by either
//! reproduces from its seed alone.

use memsched_model::{DataId, TaskId, TaskSet};
use memsched_platform::{
    run_with_config, AdmissionConfig, FaultPlan, PlatformSpec, RunConfig, RunError, RunReport,
    ShedPolicy, TraceEvent, TraceMode, TransferFaultSpec, V100_GFLOPS,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::{assign_classes, deadline_stamps, gemm_2d, open_loop_arrivals, ArrivalPattern};

/// The five online scheduler families the chaos matrix sweeps.
pub const FAMILIES: [NamedScheduler; 6] = [
    NamedScheduler::Eager,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
    NamedScheduler::DartsLuf,
    NamedScheduler::Router,
];

/// The three admission shed policies the chaos matrix sweeps.
pub const POLICIES: [ShedPolicy; 3] = [
    ShedPolicy::DeferOnly,
    ShedPolicy::DeadlineShed,
    ShedPolicy::PriorityShed,
];

/// SplitMix64 step: the harness's only randomness, all derived from the
/// composition seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One randomized composition: an overloaded deadline/class-stamped
/// stream, a platform, a fault plan and a backlog bound.
pub struct Chaos {
    /// The overloaded stream with deadline and class metadata attached.
    pub ts: TaskSet,
    /// The same stream *without* overload metadata (for the `DeferOnly`
    /// conservative-extension check).
    pub plain: TaskSet,
    /// The two-GPU serving platform.
    pub spec: PlatformSpec,
    /// The seeded fault plan (each ingredient lands with probability ½).
    pub faults: FaultPlan,
    /// The admitted-backlog bound (also the `PriorityShed` queue cap).
    pub backlog: usize,
}

/// Build the composition for `seed`.
pub fn compose(seed: u64) -> Chaos {
    let mut s = seed;
    // Overload traffic: gemm_2d at 2–4× the rate the golden stream
    // (2000/s on this platform) already queues at.
    let n = 3 + (splitmix(&mut s) % 2) as usize; // 9 or 16 tasks
    let rate = 4000.0 + 2000.0 * (splitmix(&mut s) % 3) as f64;
    let base = gemm_2d(n);
    let m = base.num_tasks();
    let arrivals = open_loop_arrivals(
        &ArrivalPattern::Poisson { rate_per_sec: rate },
        seed ^ 0xA5A5,
        m,
    );
    let plain = base.with_arrivals(arrivals);
    let tile = plain.data_size(DataId(0));
    let spec = PlatformSpec::v100(2).with_memory(4 * tile);
    // Deadline budget anchored at ~20 single-task service times with the
    // scale swept across under- and over-provisioned budgets.
    let service_ns = (plain.flops(TaskId(0)) / V100_GFLOPS).max(1.0) as u64;
    let scale = 0.25 + (splitmix(&mut s) % 8) as f64 * 0.5;
    let ts = plain
        .clone()
        .with_deadlines(deadline_stamps(m, 20 * service_ns, scale, seed ^ 0xD00D))
        .with_classes(
            assign_classes(m, &[3.0, 2.0, 1.0], seed ^ 0xC1A5)
                .into_iter()
                .map(|c| c as u32)
                .collect(),
        );
    // Randomized fault plan: each ingredient lands with probability 1/2,
    // at most one fail-stop so a survivor always remains.
    let horizon = (m as u64) * 1_000_000; // ~the stream's span in ns
    let mut faults = FaultPlan::none();
    if splitmix(&mut s) & 1 == 0 {
        faults = faults.with_gpu_failure(
            (splitmix(&mut s) % 2) as usize,
            splitmix(&mut s) % horizon,
        );
    }
    if splitmix(&mut s) & 1 == 0 {
        faults = faults.with_capacity_shrink(
            (splitmix(&mut s) % 2) as usize,
            splitmix(&mut s) % horizon,
            3 * tile,
        );
    }
    if splitmix(&mut s) & 1 == 0 {
        faults = faults.with_straggler(
            (splitmix(&mut s) % 2) as usize,
            splitmix(&mut s) % horizon,
            0.25 + (splitmix(&mut s) % 3) as f64 * 0.25,
        );
    }
    if splitmix(&mut s) & 1 == 0 {
        faults = faults.with_transfer_faults(TransferFaultSpec {
            seed: splitmix(&mut s),
            fault_ppm: 100_000,
            max_attempts: 16,
            backoff_base: 100,
        });
    }
    let backlog = 1 + (splitmix(&mut s) % 4) as usize;
    Chaos {
        ts,
        plain,
        spec,
        faults,
        backlog,
    }
}

/// The run configuration for one cell of the matrix.
pub fn config_for(chaos: &Chaos, policy: ShedPolicy) -> RunConfig {
    RunConfig {
        trace: TraceMode::Full,
        faults: chaos.faults.clone(),
        admission: Some(AdmissionConfig {
            max_backlog: Some(chaos.backlog),
            policy,
        }),
        ..RunConfig::default()
    }
}

/// Run one cell of the matrix.
pub fn run_cell(
    chaos: &Chaos,
    named: &NamedScheduler,
    policy: ShedPolicy,
) -> Result<(RunReport, Vec<TraceEvent>), RunError> {
    let mut sched = named.build();
    run_with_config(&chaos.ts, &chaos.spec, sched.as_mut(), &config_for(chaos, policy))
}

/// Digest one cell: the full trace (or the structured error) as a
/// string, so worker counts and reruns compare byte-for-byte.
pub fn digest(chaos: &Chaos, named: &NamedScheduler, policy: ShedPolicy) -> String {
    match run_cell(chaos, named, policy) {
        Ok((report, trace)) => format!("{}:{:?}", report.makespan, trace),
        Err(e) => format!("ERR:{e:?}"),
    }
}

/// Check the hard per-cell invariants on one completed run — panics
/// with a seed-reproducible message on the first violation:
///
/// * exactly-once outcomes (admitted+finished xor shed/expired);
/// * no shed or expired task ever starts;
/// * the deferred queue respects `max_backlog` under `PriorityShed`;
/// * `DeferOnly` never drops;
/// * the `OnlineStats` ledger agrees with the trace.
pub fn check_invariants(
    chaos: &Chaos,
    named: &NamedScheduler,
    policy: ShedPolicy,
    trace: &[TraceEvent],
    report: &RunReport,
) {
    let n = chaos.ts.num_tasks();
    let mut arrived = vec![0u32; n];
    let mut admitted = vec![0u32; n];
    let mut dropped = vec![0u32; n];
    let mut started = vec![0u32; n];
    let mut finished = vec![0u32; n];
    let mut queued: Vec<bool> = vec![false; n]; // deferred, outcome pending
    let mut outstanding = 0usize;
    for ev in trace {
        match *ev {
            TraceEvent::TaskArrived { task, .. } => arrived[task] += 1,
            TraceEvent::TaskDeferred { task, .. } => {
                assert!(
                    !queued[task],
                    "{named:?}/{policy:?}: task {task} deferred twice"
                );
                queued[task] = true;
                outstanding += 1;
                // Bounded backlog: an overflow evicts before the push.
                if policy == ShedPolicy::PriorityShed {
                    assert!(
                        outstanding <= chaos.backlog,
                        "{named:?}/{policy:?}: deferred queue grew to {outstanding} \
                         past the bound {}",
                        chaos.backlog
                    );
                }
            }
            TraceEvent::TaskAdmitted { task, .. } => {
                admitted[task] += 1;
                assert_eq!(
                    dropped[task], 0,
                    "{named:?}/{policy:?}: task {task} admitted after drop"
                );
                if queued[task] {
                    queued[task] = false;
                    outstanding -= 1;
                }
            }
            TraceEvent::TaskShed { task, .. } | TraceEvent::DeadlineExpired { task, .. } => {
                dropped[task] += 1;
                assert_eq!(
                    admitted[task], 0,
                    "{named:?}/{policy:?}: task {task} dropped after admit"
                );
                assert_ne!(
                    policy,
                    ShedPolicy::DeferOnly,
                    "{named:?}: DeferOnly must never drop a task"
                );
                if queued[task] {
                    queued[task] = false;
                    outstanding -= 1;
                }
            }
            TraceEvent::TaskStarted { task, .. } => {
                started[task] += 1;
                assert_eq!(
                    dropped[task], 0,
                    "{named:?}/{policy:?}: shed/expired task {task} started"
                );
            }
            TraceEvent::TaskFinished { task, .. } => finished[task] += 1,
            _ => {}
        }
    }
    for t in 0..n {
        assert_eq!(arrived[t], 1, "{named:?}/{policy:?}: task {t} arrivals");
        assert_eq!(
            admitted[t] + dropped[t],
            1,
            "{named:?}/{policy:?}: task {t}: admitted {} dropped {}",
            admitted[t],
            dropped[t]
        );
        if dropped[t] == 1 {
            assert_eq!(started[t], 0, "{named:?}/{policy:?}: dropped task {t} ran");
            assert_eq!(finished[t], 0);
        } else {
            assert_eq!(finished[t], 1, "{named:?}/{policy:?}: task {t} finishes");
        }
    }
    let stats = report.online.as_ref().expect("online stats");
    let total_dropped: u64 = dropped.iter().map(|&c| u64::from(c)).sum();
    assert_eq!(
        stats.tasks_admitted + stats.tasks_shed + stats.deadline_expired,
        n as u64,
        "{named:?}/{policy:?}: outcome ledger does not cover arrivals"
    );
    assert_eq!(stats.tasks_shed + stats.deadline_expired, total_dropped);
    assert!(stats.goodput_tps <= stats.throughput_tps + 1e-9);
}
