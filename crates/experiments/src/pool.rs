//! Determinism-preserving worker pool — re-exported from the platform
//! crate, where it also drives the sharded simulation tier
//! (`memsched_platform::shard`). The harness keeps using it to fan
//! independent (workload × scheduler) cells over worker threads.

pub use memsched_platform::pool::{resolve_jobs, run_indexed, JOBS_ENV};
