//! Determinism-preserving worker pool for the sweep harness.
//!
//! The pool fans independent work items over a fixed number of worker
//! threads pulling from a shared atomic index (global-queue stealing:
//! whichever worker is free next takes the next cell), and collects each
//! result into a slot keyed by the item's index. Because results are
//! gathered **by index** rather than by completion order, the output of
//! [`run_indexed`] is identical for any worker count — the scheduling of
//! the pool can never leak into figure output.
//!
//! The simulation engine itself stays single-threaded; parallelism lives
//! only here, across independent (workload × scheduler) cells.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// `--jobs` value is given.
pub const JOBS_ENV: &str = "MEMSCHED_JOBS";

/// Resolve the worker count: an explicit request (e.g. from `--jobs N`)
/// wins, then the `MEMSCHED_JOBS` environment variable, then the
/// machine's available parallelism. Always at least 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Apply `f` to every item and return the results **in item order**,
/// using up to `jobs` worker threads.
///
/// With `jobs <= 1` the items run inline on the caller's thread with no
/// thread machinery at all, which keeps single-worker runs trivially
/// deterministic and cheap. With more workers, each result lands in the
/// slot of its item index, so the returned `Vec` is byte-for-byte the
/// same regardless of how the pool interleaved the work.
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *slots[i].lock() = Some(f(i, &items[i]));
            });
        }
    })
    .expect("worker pool panicked");

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = run_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let reference = run_indexed(&items, 1, |i, &x| (i as u64) * 31 + x);
        for jobs in [2, 4, 16] {
            assert_eq!(run_indexed(&items, jobs, |i, &x| (i as u64) * 31 + x), reference);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(run_indexed(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_indexed(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn resolve_jobs_prefers_explicit_and_floors_at_one() {
        assert_eq!(resolve_jobs(Some(5)), 5);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
