//! Shared argument parsing for the figure binaries.
//!
//! Every `fig*` binary (and `all_figures`) accepts the same flags:
//! `--quick` (trim the sweep to a few points), `--paper-timing` (run the
//! paper's original quadratic mHFP packing so prepare wall time matches
//! the published scheduling-time behaviour; simulated decisions are
//! unchanged), `--json PATH` (also write the rows as JSON), `--jobs N`
//! (worker count for the sweep pool; falls back to `MEMSCHED_JOBS`, then
//! to the machine's parallelism), `--faults SPEC` (inject a
//! deterministic fault plan into every run cell; see
//! [`FaultPlan::parse`] for the clause grammar), and the observability
//! outputs `--trace-out PATH`, `--trace-format chrome|paje` and
//! `--metrics-out PATH` (re-run the figure's representative cell with a
//! probe attached and export the timeline/metrics; see [`crate::obs`]).
//! Output paths are checked at parse time — a bad path exits with
//! status 2 before any cell runs, like a malformed `--faults` spec.

use crate::figures;
use crate::harness::FigureSpec;
use crate::obs::{self, ObsOut, TraceFormat};
use crate::pool;
use memsched_platform::FaultPlan;

/// Parsed command-line options common to all figure binaries.
#[derive(Clone, Debug)]
pub struct FigArgs {
    /// `--quick`: keep only a few sweep points.
    pub quick: bool,
    /// `--paper-timing`: mHFP entries use the original quadratic packing.
    pub paper_timing: bool,
    /// `--json PATH`: also write rows as JSON to this path.
    pub json: Option<String>,
    /// Resolved worker count (`--jobs` > `MEMSCHED_JOBS` > parallelism).
    pub jobs: usize,
    /// `--faults SPEC`: fault plan injected into every run cell.
    pub faults: Option<FaultPlan>,
    /// `--trace-out` / `--trace-format` / `--metrics-out`.
    pub obs: ObsOut,
}

impl FigArgs {
    /// Apply the spec-shaping flags to `fig`: trim the sweep under
    /// `--quick`, swap mHFP to the paper-timing variant under
    /// `--paper-timing`, install the `--faults` plan.
    pub fn apply(&self, fig: FigureSpec) -> FigureSpec {
        let fig = if self.quick { figures::quick(fig) } else { fig };
        let mut fig = if self.paper_timing {
            figures::paper_timing(fig)
        } else {
            fig
        };
        if let Some(plan) = &self.faults {
            fig.faults = plan.clone();
        }
        fig
    }

    /// Write the requested trace/metrics files for `fig` (no-op unless
    /// `--trace-out` or `--metrics-out` was given). Call after the sweep
    /// so a failing sweep never leaves half-written observability files.
    pub fn export_obs(&self, fig: &FigureSpec) -> Result<(), String> {
        obs::export_figure(fig, &self.obs)
    }
}

/// Parse the process's arguments; exits with a readable message (status 2)
/// if the fault spec is malformed.
pub fn parse() -> FigArgs {
    match parse_from(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Parse from an explicit argument list (testable entry point).
pub fn parse_from(args: impl Iterator<Item = String>) -> Result<FigArgs, String> {
    let args: Vec<String> = args.collect();
    let quick = args.iter().any(|a| a == "--quick");
    let paper_timing = args.iter().any(|a| a == "--paper-timing");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let jobs_arg = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--jobs="))
                .and_then(|v| v.parse::<usize>().ok())
        });
    // `--flag VALUE` or `--flag=VALUE`.
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                let prefix = format!("{flag}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&prefix))
                    .map(str::to_string)
            })
    };
    let faults = match value_of("--faults") {
        Some(spec) => {
            Some(FaultPlan::parse(&spec).map_err(|e| format!("--faults {spec:?}: {e}"))?)
        }
        None => None,
    };
    let trace_out = value_of("--trace-out");
    if let Some(p) = &trace_out {
        obs::validate_out_path("--trace-out", p)?;
    }
    let metrics_out = value_of("--metrics-out");
    if let Some(p) = &metrics_out {
        obs::validate_out_path("--metrics-out", p)?;
    }
    let trace_format = match value_of("--trace-format") {
        Some(f) => TraceFormat::parse(&f)?,
        None => TraceFormat::default(),
    };
    Ok(FigArgs {
        quick,
        paper_timing,
        json,
        jobs: pool::resolve_jobs(jobs_arg),
        faults,
        obs: ObsOut {
            trace_out,
            trace_format,
            metrics_out,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> impl Iterator<Item = String> {
        items
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_all_flags() {
        let a = parse_from(argv(&[
            "--quick",
            "--paper-timing",
            "--json",
            "out.json",
            "--jobs",
            "3",
        ]))
        .unwrap();
        assert!(a.quick);
        assert!(a.paper_timing);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.jobs, 3);
        assert!(a.faults.is_none());
    }

    #[test]
    fn apply_shapes_the_spec() {
        use memsched_schedulers::NamedScheduler;
        let args = parse_from(argv(&["--quick", "--paper-timing"])).unwrap();
        let fig = args.apply(crate::figures::fig03());
        assert!(fig.points.len() <= 4, "--quick must trim the sweep");
        for p in &fig.points {
            assert!(
                !p.schedulers.contains(&NamedScheduler::Mhfp),
                "--paper-timing must swap every mHFP entry"
            );
        }
        let plain = parse_from(argv(&[])).unwrap();
        let fig = plain.apply(crate::figures::fig03());
        assert_eq!(fig.points.len(), crate::figures::fig03().points.len());
    }

    #[test]
    fn parses_equals_form_and_defaults() {
        let a = parse_from(argv(&["--jobs=2"])).unwrap();
        assert!(!a.quick);
        assert!(!a.paper_timing);
        assert_eq!(a.json, None);
        assert_eq!(a.jobs, 2);

        let d = parse_from(argv(&[])).unwrap();
        assert!(d.jobs >= 1);
        assert!(d.faults.is_none());
    }

    #[test]
    fn parses_and_applies_fault_specs() {
        let a = parse_from(argv(&["--faults", "fail:1@5ms;flaky:ppm=1000"])).unwrap();
        let plan = a.faults.clone().expect("plan parsed");
        assert_eq!(plan.gpu_failures.len(), 1);
        assert!(plan.transfer_faults.is_some());
        let fig = a.apply(crate::figures::fig05());
        assert_eq!(fig.faults, plan);

        let eq = parse_from(argv(&["--faults=slow:0@1sx2.0"])).unwrap();
        assert_eq!(eq.faults.unwrap().stragglers.len(), 1);

        let bad = parse_from(argv(&["--faults", "explode:3"]));
        assert!(bad.is_err(), "malformed spec must be rejected");
    }

    #[test]
    fn parses_obs_flags_and_rejects_bad_paths_at_parse_time() {
        let a = parse_from(argv(&[
            "--trace-out",
            "/tmp/t.json",
            "--trace-format=paje",
            "--metrics-out",
            "/tmp/m.json",
        ]))
        .unwrap();
        assert_eq!(a.obs.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(a.obs.trace_format, TraceFormat::Paje);
        assert_eq!(a.obs.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert!(a.obs.is_active());

        let d = parse_from(argv(&[])).unwrap();
        assert!(!d.obs.is_active());
        assert_eq!(d.obs.trace_format, TraceFormat::Chrome);

        // Bad paths and formats surface as parse errors (→ exit 2),
        // exactly like a malformed --faults spec.
        let e = parse_from(argv(&["--trace-out", "/no/such/dir/t.json"]));
        assert!(e.unwrap_err().contains("--trace-out"));
        let e = parse_from(argv(&["--metrics-out=/no/such/dir/m.json"]));
        assert!(e.unwrap_err().contains("--metrics-out"));
        let e = parse_from(argv(&["--trace-format", "vite"]));
        assert!(e.unwrap_err().contains("--trace-format"));
    }
}
