//! Sweep harness: runs a set of schedulers over a size sweep of a
//! workload family and prints the series of one paper figure.

use crate::pool;
use memsched_model::TaskSet;
use memsched_platform::{
    run, run_with_config, FaultPlan, PlatformSpec, RunConfig, RunError, RunReport,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Which metric the figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Throughput in GFlop/s (higher is better) — Figures 3, 5, 6, 8–13.
    Gflops,
    /// Total data transferred in MB (lower is better) — Figures 4, 7.
    TransfersMb,
}

/// One measured cell of a figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Figure id, e.g. "fig03".
    pub figure: String,
    /// Workload label.
    pub workload: String,
    /// Working-set size in MB (the x axis).
    pub ws_mb: f64,
    /// Number of GPUs.
    pub gpus: usize,
    /// Scheduler label.
    pub scheduler: String,
    /// Simulated throughput ignoring scheduling cost.
    pub gflops: f64,
    /// Throughput including measured scheduling wall time (the paper's
    /// default reporting).
    pub gflops_with_sched: f64,
    /// Total host→GPU transfers in MB.
    pub transfers_mb: f64,
    /// Number of load operations.
    pub loads: u64,
    /// Number of evictions.
    pub evictions: u64,
    /// Simulated makespan in milliseconds.
    pub makespan_ms: f64,
    /// Static scheduling phase (partitioning/packing) wall time in ms.
    pub prepare_ms: f64,
    /// Dynamic scheduling callbacks wall time in ms.
    pub sched_ms: f64,
    /// `max_k nb_k` (Objective 1).
    pub max_load: usize,
    /// Transfer retries from injected transient faults (0 without
    /// `--faults`).
    #[serde(default)]
    pub retries: u64,
    /// Tasks re-dispatched after injected fail-stop GPU faults.
    #[serde(default)]
    pub redispatched: u64,
    /// Mean per-GPU time executing tasks, ms (simulated; deterministic).
    #[serde(default)]
    pub busy_ms: f64,
    /// Mean per-GPU time starved on in-flight transfers, ms. For each
    /// GPU `busy + stall + idle == makespan` exactly, so these three
    /// columns localize where the throughput of a row went.
    #[serde(default)]
    pub stall_ms: f64,
    /// Mean per-GPU time with no work and no pending transfer, ms.
    #[serde(default)]
    pub idle_ms: f64,
}

impl Row {
    fn from_report(
        figure: &str,
        workload: &Workload,
        ws_mb: f64,
        gpus: usize,
        r: &RunReport,
    ) -> Self {
        let k = r.per_gpu.len().max(1) as f64;
        let mean_ms =
            |f: fn(&memsched_platform::GpuRunStats) -> u64| {
                r.per_gpu.iter().map(f).sum::<u64>() as f64 / k / 1e6
            };
        Self {
            figure: figure.to_string(),
            workload: workload.label(),
            ws_mb,
            gpus,
            scheduler: r.scheduler.clone(),
            gflops: r.gflops(),
            gflops_with_sched: r.gflops_with_sched(),
            transfers_mb: r.transfers_mb(),
            loads: r.total_loads,
            evictions: r.total_evictions,
            makespan_ms: r.makespan as f64 / 1e6,
            prepare_ms: r.prepare_wall as f64 / 1e6,
            sched_ms: r.sched_wall as f64 / 1e6,
            max_load: r.max_load(),
            retries: r.transfer_retries,
            redispatched: r.tasks_redispatched,
            busy_ms: mean_ms(|g| g.busy),
            stall_ms: mean_ms(|g| g.stall),
            idle_ms: mean_ms(|g| g.idle),
        }
    }

    /// A copy with every wall-clock-derived field zeroed.
    ///
    /// `prepare_ms`, `sched_ms` and `gflops_with_sched` measure host wall
    /// time, so they vary run to run; everything else is simulated and
    /// exactly reproducible. Canonical rows are what the determinism
    /// guarantee is stated over: serializing the canonical rows of a sweep
    /// yields byte-identical output for any worker count.
    pub fn canonical(&self) -> Row {
        Row {
            gflops_with_sched: 0.0,
            prepare_ms: 0.0,
            sched_ms: 0.0,
            ..self.clone()
        }
    }
}

/// Serialize rows in canonical form (wall-clock fields zeroed) as pretty
/// JSON. Two sweeps of the same figure produce byte-identical canonical
/// JSON regardless of worker count — see `tests/determinism.rs`.
pub fn canonical_json(rows: &[Row]) -> String {
    let canonical: Vec<Row> = rows.iter().map(Row::canonical).collect();
    serde_json::to_string_pretty(&canonical).expect("rows serialize")
}

/// One point of the sweep: a workload instance plus the schedulers that
/// the paper plots at this size (expensive static schedulers are dropped
/// from large sizes, exactly as the paper does for mHFP).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The workload at this size.
    pub workload: Workload,
    /// Schedulers to run at this point.
    pub schedulers: Vec<NamedScheduler>,
}

/// Description of one figure to regenerate.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    /// Figure id ("fig03" … "fig13").
    pub id: &'static str,
    /// Human title (matches the paper caption).
    pub title: &'static str,
    /// Platform (GPU count, memory clamp).
    pub spec: PlatformSpec,
    /// The sweep.
    pub points: Vec<SweepPoint>,
    /// Plotted metric.
    pub metric: Metric,
    /// Faults injected into every cell (`--faults`; empty by default, in
    /// which case runs are identical to the fault-free harness).
    pub faults: FaultPlan,
}

impl FigureSpec {
    /// Run every cell (size × scheduler) with the default worker count
    /// (`MEMSCHED_JOBS`, else the machine's parallelism). Results are
    /// sorted by (working set, scheduler). Errs on the first failed cell
    /// (infeasible fault plan, exhausted transfer retries, …).
    pub fn run(&self) -> Result<Vec<Row>, RunError> {
        self.run_with_jobs(pool::resolve_jobs(None))
    }

    /// Run every cell using up to `jobs` worker threads.
    ///
    /// Cells are fanned over the pool in a fixed order and collected back
    /// by index, so the returned rows are identical for any `jobs` value
    /// (modulo the wall-clock fields — see [`Row::canonical`]). Each sweep
    /// point's `TaskSet` is generated exactly once, on whichever worker
    /// gets there first, and shared across that point's schedulers via
    /// `Arc` instead of being regenerated per cell.
    pub fn run_with_jobs(&self, jobs: usize) -> Result<Vec<Row>, RunError> {
        // Materialize cells as (point index, scheduler): the point index
        // keys the shared TaskSet cache.
        let cells: Vec<(usize, NamedScheduler)> = self
            .points
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| p.schedulers.iter().map(move |s| (pi, s.clone())))
            .collect();

        // One lazily-filled slot per sweep point. `OnceLock::get_or_init`
        // guarantees the generator runs exactly once even when several
        // workers reach the same point concurrently.
        let cache: Vec<OnceLock<Arc<TaskSet>>> =
            self.points.iter().map(|_| OnceLock::new()).collect();

        let mut rows = pool::run_indexed(&cells, jobs, |_, (pi, named)| {
            let point = &self.points[*pi];
            let ts = cache[*pi]
                .get_or_init(|| Arc::new(point.workload.generate()))
                .clone();
            self.run_cell_on(&ts, &point.workload, named)
        })
        .into_iter()
        .collect::<Result<Vec<Row>, RunError>>()?;

        rows.sort_by(|a, b| {
            a.ws_mb
                .total_cmp(&b.ws_mb)
                .then_with(|| a.scheduler.cmp(&b.scheduler))
        });
        Ok(rows)
    }

    /// Run a single cell against an already-generated task set.
    pub fn run_cell_on(
        &self,
        ts: &TaskSet,
        workload: &Workload,
        named: &NamedScheduler,
    ) -> Result<Row, RunError> {
        let ws_mb = ts.working_set_bytes() as f64 / 1e6;
        let mut sched = named.build();
        let report = if self.faults.is_empty() {
            run(ts, &self.spec, sched.as_mut())?
        } else {
            let config = RunConfig {
                faults: self.faults.clone(),
                ..RunConfig::default()
            };
            run_with_config(ts, &self.spec, sched.as_mut(), &config)?.0
        };
        Ok(Row::from_report(
            self.id,
            workload,
            ws_mb,
            self.spec.num_gpus,
            &report,
        ))
    }

    /// Run a single cell, generating the task set from scratch.
    pub fn run_cell(&self, workload: &Workload, named: &NamedScheduler) -> Result<Row, RunError> {
        self.run_cell_on(&workload.generate(), workload, named)
    }

    /// The roofline of the figure: the aggregate platform throughput.
    pub fn roofline_gflops(&self) -> f64 {
        self.spec.total_gflops()
    }

    /// The PCI-limit curve value (Figure 4): max MB transferable during
    /// the compute-roofline time of this task set.
    pub fn pci_limit_mb(&self, ts: &TaskSet) -> f64 {
        memsched_model::bounds::pci_bus_limit_bytes(
            ts,
            self.spec.num_gpus,
            self.spec.gpu_gflops,
            self.spec.bus_bandwidth,
        ) / 1e6
    }

    /// Render rows as CSV (header + one line per row).
    pub fn to_csv(&self, rows: &[Row]) -> String {
        let mut out = String::from(
            "figure,workload,ws_mb,gpus,scheduler,gflops,gflops_with_sched,\
             transfers_mb,loads,evictions,makespan_ms,prepare_ms,sched_ms,max_load,\
             retries,redispatched,busy_ms,stall_ms,idle_ms\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{},{},{:.1},{},{},{:.1},{:.1},{:.1},{},{},{:.3},{:.3},{:.3},{},{},{},\
                 {:.3},{:.3},{:.3}\n",
                r.figure,
                r.workload.replace(',', ";"),
                r.ws_mb,
                r.gpus,
                r.scheduler,
                r.gflops,
                r.gflops_with_sched,
                r.transfers_mb,
                r.loads,
                r.evictions,
                r.makespan_ms,
                r.prepare_ms,
                r.sched_ms,
                r.max_load,
                r.retries,
                r.redispatched,
                r.busy_ms,
                r.stall_ms,
                r.idle_ms
            ));
        }
        out
    }

    /// Render a compact human-readable table of the figure's metric:
    /// one line per working-set size, one column per scheduler.
    pub fn to_table(&self, rows: &[Row]) -> String {
        let mut schedulers: Vec<&str> = rows.iter().map(|r| r.scheduler.as_str()).collect();
        schedulers.sort_unstable();
        schedulers.dedup();
        let mut sizes: Vec<f64> = rows.iter().map(|r| r.ws_mb).collect();
        sizes.sort_by(f64::total_cmp);
        sizes.dedup();

        let metric_of = |r: &Row| match self.metric {
            Metric::Gflops => r.gflops_with_sched,
            Metric::TransfersMb => r.transfers_mb,
        };

        let mut out = format!(
            "# {} — {}\n# metric: {}\n",
            self.id,
            self.title,
            match self.metric {
                Metric::Gflops => "GFlop/s (scheduling time included)",
                Metric::TransfersMb => "data transfers (MB)",
            }
        );
        out.push_str(&format!("{:>10}", "WS(MB)"));
        for s in &schedulers {
            out.push_str(&format!(" {s:>24}"));
        }
        out.push('\n');
        for &ws in &sizes {
            out.push_str(&format!("{ws:>10.0}"));
            for s in &schedulers {
                let cell = rows
                    .iter()
                    .find(|r| r.ws_mb == ws && r.scheduler == *s)
                    .map(|r| format!("{:.0}", metric_of(r)))
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!(" {cell:>24}"));
            }
            out.push('\n');
        }
        if self.metric == Metric::Gflops {
            out.push_str(&format!(
                "# roofline: {:.0} GFlop/s\n",
                self.roofline_gflops()
            ));
        }
        out
    }

    /// Run the figure and print the table, the paper-shape check verdicts
    /// and the CSV to stdout; also write JSON when `json_path` is given.
    /// Uses the default worker count (see [`pool::resolve_jobs`]). Errs
    /// (instead of panicking) when any cell fails, so the fig binaries
    /// can exit with a readable message.
    pub fn run_and_print(&self, json_path: Option<&str>) -> Result<(), RunError> {
        self.run_and_print_with_jobs(json_path, pool::resolve_jobs(None))
    }

    /// [`FigureSpec::run_and_print`] with an explicit worker count.
    pub fn run_and_print_with_jobs(
        &self,
        json_path: Option<&str>,
        jobs: usize,
    ) -> Result<(), RunError> {
        let rows = self.run_with_jobs(jobs)?;
        print!("{}", self.to_table(&rows));
        if self.metric == Metric::Gflops {
            let checks = crate::checks::shape_checks(self.id, &rows, self.roofline_gflops());
            print!("{}", crate::checks::render(&checks));
        }
        println!();
        print!("{}", self.to_csv(&rows));
        if let Some(path) = json_path {
            let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
            std::fs::write(path, json).expect("write json");
            eprintln!("wrote {path}");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_figure() -> FigureSpec {
        let item = memsched_workloads::constants::GEMM2D_DATA_BYTES;
        FigureSpec {
            id: "test",
            title: "tiny",
            spec: PlatformSpec::v100(2).with_memory(6 * item),
            points: vec![
                SweepPoint {
                    workload: Workload::Gemm2d { n: 4 },
                    schedulers: vec![NamedScheduler::Eager, NamedScheduler::DartsLuf],
                },
                SweepPoint {
                    workload: Workload::Gemm2d { n: 6 },
                    schedulers: vec![NamedScheduler::Eager],
                },
            ],
            metric: Metric::Gflops,
            faults: FaultPlan::none(),
        }
    }

    #[test]
    fn run_produces_one_row_per_cell() {
        let fig = tiny_figure();
        let rows = fig.run().expect("fault-free run");
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0].ws_mb <= w[1].ws_mb));
        for r in &rows {
            assert!(r.gflops > 0.0);
            assert!(r.gflops_with_sched <= r.gflops + 1e-9);
            assert!(r.loads >= 8, "at least compulsory loads");
        }
    }

    #[test]
    fn csv_and_table_are_well_formed() {
        let fig = tiny_figure();
        let rows = fig.run().expect("fault-free run");
        let csv = fig.to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("figure,workload"));
        let table = fig.to_table(&rows);
        assert!(table.contains("DARTS+LUF"));
        assert!(table.contains("EAGER"));
        assert!(table.contains("roofline"));
    }

    #[test]
    fn run_with_jobs_matches_serial_run() {
        let fig = tiny_figure();
        let serial = canonical_json(&fig.run_with_jobs(1).unwrap());
        for jobs in [2, 4] {
            assert_eq!(canonical_json(&fig.run_with_jobs(jobs).unwrap()), serial);
        }
    }

    #[test]
    fn canonical_zeroes_only_wall_clock_fields() {
        let fig = tiny_figure();
        let rows = fig.run_with_jobs(2).unwrap();
        for r in &rows {
            let c = r.canonical();
            assert_eq!(c.gflops_with_sched, 0.0);
            assert_eq!(c.prepare_ms, 0.0);
            assert_eq!(c.sched_ms, 0.0);
            assert_eq!(c.gflops, r.gflops);
            assert_eq!(c.loads, r.loads);
            assert_eq!(c.makespan_ms, r.makespan_ms);
        }
    }

    #[test]
    fn breakdown_columns_sum_to_makespan() {
        let fig = tiny_figure();
        for r in fig.run().unwrap() {
            assert!(r.busy_ms > 0.0, "{}: no busy time", r.scheduler);
            // The per-GPU split is exact in ns; the ms means may lose at
            // most a rounding ulp each.
            let sum = r.busy_ms + r.stall_ms + r.idle_ms;
            assert!(
                (sum - r.makespan_ms).abs() < 1e-6,
                "{}: busy+stall+idle {sum} != makespan {}",
                r.scheduler,
                r.makespan_ms
            );
        }
    }

    #[test]
    fn roofline_scales_with_gpu_count() {
        let fig = tiny_figure();
        assert_eq!(fig.roofline_gflops(), 2.0 * 13_253.0);
    }
}
