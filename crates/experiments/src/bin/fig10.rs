//! Regenerates Figure 10 of the paper.
//! Usage: `fig10 [--quick] [--json PATH] [--jobs N]`.
use memsched_experiments::{cli, figures};

fn main() {
    let args = cli::parse();
    let fig = if args.quick { figures::quick(figures::fig10()) } else { figures::fig10() };
    fig.run_and_print_with_jobs(args.json.as_deref(), args.jobs);
}
