//! Online serving load sweep: drive every scheduler family with a
//! seeded request stream through the engine's admission loop and report
//! serving metrics (p50/p99 task latency, queueing delay, sustained
//! throughput).
//!
//! ```text
//! serve [--arrival-rate R1,R2,…] [--pattern poisson|bursty]
//!       [--closed-loop CLIENTS] [--duration SECS] [--tasks N]
//!       [--workload gemm|prefix]
//!       [--sched eager|dmda|dmdar|hmetis|mhfp|darts|router|all]
//!       [--shed defer|deadline|priority] [--deadline-scale F]
//!       [--classes N] [--backlog N]
//!       [--seed N] [--jobs N] [--faults SPEC] [--out CSV] [--quick]
//!       [--trace-out PATH] [--trace-format chrome|paje] [--metrics-out PATH]
//! ```
//!
//! Each (scheduler × rate) cell generates `rate × duration` tasks on a
//! 2D-GEMM grid — or, under `--workload prefix`, as requests over a
//! shared prefix tree (the multi-GPU KV/prefix-cache serving scenario;
//! the per-GPU memory is sized to half the tree, 1× aggregate cache
//! pressure on the two-GPU spec) — stamps them with open-loop arrivals,
//! and runs the stream with admission control enabled. `--tasks N` pins the per-cell
//! task count directly instead (the grid rounds up to the next square),
//! which is how the million-task serving runs are driven: pair it with
//! a high `--arrival-rate` so arrivals, not the horizon, bound the run. Results are printed as a
//! table and optionally written as CSV (`--out`). `--faults` composes a
//! deterministic fault plan into every cell, so degraded-capacity
//! serving is measurable with the same flag grammar as the figure
//! binaries; malformed flags exit with status 2 before anything runs.
//! `--trace-out`/`--metrics-out` re-run the representative cell (first
//! scheduler, highest rate) observed and export the timeline — with the
//! arrival/admit/defer admission track — and the metrics registry
//! including the latency histograms (`trace_lint --metrics` checks
//! them).
//!
//! `--closed-loop N` switches the traffic class: `N` clients each keep
//! one request in flight, thinking for an exponential time between the
//! estimated completion of one request and the issue of the next. The
//! sweep still iterates `--arrival-rate`, which in closed-loop mode is
//! the *aggregate target* rate — the mean think time is sized as
//! `clients / rate` minus the per-task service estimate, so a saturated
//! system sees back-to-back requests while an unloaded one idles
//! between them. The CSV gains a `clients` column (0 = open loop).
//!
//! Overload control: `--shed` selects the admission [`ShedPolicy`]
//! (default `defer`, today's byte-identical defer-only loop).
//! `--deadline-scale F` stamps every request with a seeded per-task
//! completion budget of `F × 20 × service_estimate` (jittered ±50 %), so
//! `F = 1` roughly tolerates a twenty-deep queue and smaller values bite
//! sooner. `--classes N` splits the stream into `N` equally likely
//! tenant classes (higher class = higher priority under `priority`
//! shedding) and `--backlog N` bounds the admitted backlog — under
//! `priority` it also caps the deferred queue, which is what makes
//! bounded-backlog shedding actually bound memory. The CSV gains
//! `shed`, `deadline_expired`, `deadline_violations`, `goodput_tps` and
//! `;`-joined per-class drop/completion columns.

use memsched_experiments::obs::{self, TraceFormat};
use memsched_experiments::pool;
use memsched_model::{DataId, TaskSet};
use memsched_platform::obs::{chrome_trace_json, paje_trace, Metrics, Probe};
use memsched_platform::{
    run_observed, run_with_config, AdmissionConfig, FaultPlan, PlatformSpec, RunConfig, RunReport,
    ShedPolicy,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::{
    assign_classes, closed_loop_arrivals, deadline_stamps, gemm_2d, open_loop_arrivals,
    prefix::{self, PrefixConfig},
    prefix_tree, ArrivalPattern,
};
use serde::{Number, Value};

#[derive(Clone, Debug, PartialEq)]
enum PatternKind {
    Poisson,
    Bursty,
}

impl PatternKind {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "poisson" => Ok(Self::Poisson),
            "bursty" => Ok(Self::Bursty),
            other => Err(format!(
                "--pattern {other:?}: expected \"poisson\" or \"bursty\""
            )),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Self::Poisson => "poisson",
            Self::Bursty => "bursty",
        }
    }

    /// The arrival process at a given long-run mean rate. The bursty
    /// shape alternates 20 ms phases at 1.6× and 0.4× the rate, so the
    /// blended mean matches the requested rate.
    fn at_rate(&self, rate_per_sec: f64) -> ArrivalPattern {
        match self {
            Self::Poisson => ArrivalPattern::Poisson { rate_per_sec },
            Self::Bursty => ArrivalPattern::Bursty {
                on_rate_per_sec: 1.6 * rate_per_sec,
                off_rate_per_sec: 0.4 * rate_per_sec,
                on_ns: 20_000_000,
                off_ns: 20_000_000,
            },
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum WorkloadKind {
    /// The 2D-GEMM request grid (default; byte-identical to the
    /// pre-`--workload` serve).
    Gemm,
    /// Shared-prefix-tree requests ([`prefix`]): tasks sharing an
    /// ancestor share its data, so residency-aware routing pays off.
    Prefix,
}

impl WorkloadKind {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gemm" => Ok(Self::Gemm),
            "prefix" => Ok(Self::Prefix),
            other => Err(format!(
                "--workload {other:?}: expected \"gemm\" or \"prefix\""
            )),
        }
    }
}

#[derive(Clone, Debug)]
struct ServeArgs {
    rates: Vec<f64>,
    pattern: PatternKind,
    workload: WorkloadKind,
    duration_s: f64,
    /// Pinned per-cell task count; `None` sizes cells as rate × duration.
    tasks: Option<usize>,
    /// Closed-loop traffic: this many clients, each with one request in
    /// flight. `None` keeps the open-loop arrival process.
    closed_loop: Option<usize>,
    scheds: Vec<NamedScheduler>,
    /// Admission overload-control policy (default: defer-only).
    shed: ShedPolicy,
    /// Deadline stamp scale; `None` leaves tasks deadline-free.
    deadline_scale: Option<f64>,
    /// Number of equally likely tenant classes (1 = class-less).
    classes: usize,
    /// Admitted-backlog bound (and deferred-queue cap under `priority`).
    backlog: Option<usize>,
    seed: u64,
    jobs: usize,
    faults: FaultPlan,
    out: Option<String>,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    metrics_out: Option<String>,
}

const KNOWN_VALUE_FLAGS: &[&str] = &[
    "--arrival-rate",
    "--pattern",
    "--workload",
    "--closed-loop",
    "--duration",
    "--tasks",
    "--sched",
    "--shed",
    "--deadline-scale",
    "--classes",
    "--backlog",
    "--seed",
    "--jobs",
    "--faults",
    "--out",
    "--trace-out",
    "--trace-format",
    "--metrics-out",
];

fn parse_scheds(spec: &str) -> Result<Vec<NamedScheduler>, String> {
    let mut out = Vec::new();
    for name in spec.split(',').filter(|s| !s.is_empty()) {
        match name {
            "eager" => out.push(NamedScheduler::Eager),
            "dmda" => out.push(NamedScheduler::Dmda),
            "dmdar" => out.push(NamedScheduler::Dmdar),
            "hmetis" => out.push(NamedScheduler::HmetisR),
            "mhfp" => out.push(NamedScheduler::Mhfp),
            "darts" => out.push(NamedScheduler::DartsLuf),
            "router" => out.push(NamedScheduler::Router),
            "all" => out.extend([
                NamedScheduler::Eager,
                NamedScheduler::Dmdar,
                NamedScheduler::HmetisR,
                NamedScheduler::Mhfp,
                NamedScheduler::DartsLuf,
                NamedScheduler::Router,
            ]),
            other => {
                return Err(format!(
                    "--sched {other:?}: expected eager|dmda|dmdar|hmetis|mhfp|darts|router|all"
                ))
            }
        }
    }
    if out.is_empty() {
        return Err("--sched: empty scheduler list".to_string());
    }
    Ok(out)
}

fn parse_from(args: Vec<String>) -> Result<ServeArgs, String> {
    // Reject unknown flags up front (exit-2 convention): every argument
    // must be --quick, a known --flag VALUE pair, or --flag=VALUE.
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--quick" {
            i += 1;
        } else if let Some((flag, _)) = a.split_once('=') {
            if !KNOWN_VALUE_FLAGS.contains(&flag) {
                return Err(format!("unknown flag {flag:?}"));
            }
            i += 1;
        } else if KNOWN_VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a}: missing value"));
            }
            i += 2;
        } else {
            return Err(format!("unknown argument {a:?}"));
        }
    }
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                let prefix = format!("{flag}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&prefix))
                    .map(str::to_string)
            })
    };
    let quick = args.iter().any(|a| a == "--quick");

    let mut rates: Vec<f64> = match value_of("--arrival-rate") {
        Some(spec) => spec
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| format!("--arrival-rate {s:?}: not a number"))
                    .and_then(|r| {
                        if r > 0.0 {
                            Ok(r)
                        } else {
                            Err(format!("--arrival-rate {s:?}: must be positive"))
                        }
                    })
            })
            .collect::<Result<_, _>>()?,
        None => vec![200.0, 500.0, 1000.0],
    };
    if rates.is_empty() {
        return Err("--arrival-rate: empty rate list".to_string());
    }
    let pattern = match value_of("--pattern") {
        Some(p) => PatternKind::parse(&p)?,
        None => PatternKind::Poisson,
    };
    let workload = match value_of("--workload") {
        Some(w) => WorkloadKind::parse(&w)?,
        None => WorkloadKind::Gemm,
    };
    let mut duration_s = match value_of("--duration") {
        Some(d) => {
            let d = d
                .parse::<f64>()
                .map_err(|_| format!("--duration {d:?}: not a number"))?;
            if d <= 0.0 {
                return Err(format!("--duration {d}: must be positive"));
            }
            d
        }
        None => 1.0,
    };
    let tasks = match value_of("--tasks") {
        Some(t) => {
            let n = t
                .parse::<usize>()
                .map_err(|_| format!("--tasks {t:?}: not a number"))?;
            if n == 0 {
                return Err("--tasks 0: must be positive".to_string());
            }
            Some(n)
        }
        None => None,
    };
    let closed_loop = match value_of("--closed-loop") {
        Some(c) => {
            let n = c
                .parse::<usize>()
                .map_err(|_| format!("--closed-loop {c:?}: not a number"))?;
            if n == 0 {
                return Err("--closed-loop 0: need at least one client".to_string());
            }
            Some(n)
        }
        None => None,
    };
    let scheds = parse_scheds(&value_of("--sched").unwrap_or_else(|| "all".to_string()))?;
    let shed = match value_of("--shed") {
        Some(p) => ShedPolicy::parse(&p)?,
        None => ShedPolicy::default(),
    };
    let deadline_scale = match value_of("--deadline-scale") {
        Some(f) => {
            let s = f
                .parse::<f64>()
                .map_err(|_| format!("--deadline-scale {f:?}: not a number"))?;
            if !(s.is_finite() && s > 0.0) {
                return Err(format!("--deadline-scale {s}: must be positive and finite"));
            }
            Some(s)
        }
        None => None,
    };
    let classes = match value_of("--classes") {
        Some(c) => {
            let n = c
                .parse::<usize>()
                .map_err(|_| format!("--classes {c:?}: not a number"))?;
            if n == 0 {
                return Err("--classes 0: need at least one class".to_string());
            }
            n
        }
        None => 1,
    };
    let backlog = match value_of("--backlog") {
        Some(b) => {
            let n = b
                .parse::<usize>()
                .map_err(|_| format!("--backlog {b:?}: not a number"))?;
            if n == 0 {
                return Err("--backlog 0: must be positive".to_string());
            }
            Some(n)
        }
        None => None,
    };
    if shed == ShedPolicy::PriorityShed && backlog.is_none() {
        return Err(
            "--shed priority needs --backlog N (the deferred-queue cap it enforces)".to_string(),
        );
    }
    let seed = match value_of("--seed") {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("--seed {s:?}: not a u64"))?,
        None => 42,
    };
    let jobs_arg = match value_of("--jobs") {
        Some(j) => Some(
            j.parse::<usize>()
                .map_err(|_| format!("--jobs {j:?}: not a number"))?,
        ),
        None => None,
    };
    let faults = match value_of("--faults") {
        Some(spec) => FaultPlan::parse(&spec).map_err(|e| format!("--faults {spec:?}: {e}"))?,
        None => FaultPlan::default(),
    };
    let out = value_of("--out");
    if let Some(p) = &out {
        obs::validate_out_path("--out", p)?;
    }
    let trace_out = value_of("--trace-out");
    if let Some(p) = &trace_out {
        obs::validate_out_path("--trace-out", p)?;
    }
    let metrics_out = value_of("--metrics-out");
    if let Some(p) = &metrics_out {
        obs::validate_out_path("--metrics-out", p)?;
    }
    let trace_format = match value_of("--trace-format") {
        Some(f) => TraceFormat::parse(&f)?,
        None => TraceFormat::default(),
    };
    if quick {
        rates.truncate(1);
        duration_s = duration_s.min(0.25);
    }
    Ok(ServeArgs {
        rates,
        pattern,
        workload,
        duration_s,
        tasks,
        closed_loop,
        scheds,
        shed,
        deadline_scale,
        classes,
        backlog,
        seed,
        jobs: pool::resolve_jobs(jobs_arg),
        faults,
        out,
        trace_out,
        trace_format,
        metrics_out,
    })
}

/// The stream workload for one cell: a 2D-GEMM grid (or a prefix-tree
/// request stream under `--workload prefix`) sized to carry
/// `rate × duration` tasks — or exactly `--tasks` when pinned — stamped
/// with open-loop arrivals, or closed-loop ones under `--closed-loop`.
fn stream_taskset(args: &ServeArgs, rate: f64) -> TaskSet {
    let target = args
        .tasks
        .unwrap_or_else(|| (rate * args.duration_s).ceil().max(1.0) as usize);
    let ts = match args.workload {
        WorkloadKind::Gemm => {
            let n = (target as f64).sqrt().ceil().max(2.0) as usize;
            gemm_2d(n)
        }
        WorkloadKind::Prefix => prefix_tree(&PrefixConfig::serving_default(target, args.seed)),
    };
    let arrivals = match args.closed_loop {
        Some(clients) => {
            // Aggregate target rate → per-client cycle time `clients/rate`;
            // the think time is what remains after the service estimate
            // (one tile task at the V100 roofline).
            let service_ns =
                (ts.flops(memsched_model::TaskId(0)) / memsched_platform::V100_GFLOPS) as u64;
            let cycle_ns = (clients as f64 / rate * 1e9) as u64;
            let think_ns = cycle_ns.saturating_sub(service_ns).max(1);
            closed_loop_arrivals(ts.num_tasks(), clients, think_ns, service_ns, args.seed)
        }
        None => open_loop_arrivals(&args.pattern.at_rate(rate), args.seed, ts.num_tasks()),
    };
    let mut ts = ts.with_arrivals(arrivals);
    if let Some(scale) = args.deadline_scale {
        // Budget anchor: 20× the single-tile service estimate, so
        // `--deadline-scale 1` tolerates a twenty-deep queue before the
        // budget bites. Derived seed keeps deadline jitter independent of
        // the arrival stream.
        let service_ns = (ts.flops(memsched_model::TaskId(0)) / memsched_platform::V100_GFLOPS)
            .max(1.0) as u64;
        let stamps = deadline_stamps(
            ts.num_tasks(),
            20 * service_ns,
            scale,
            args.seed ^ 0x9e37_79b9_7f4a_7c15,
        );
        ts = ts.with_deadlines(stamps);
    }
    if args.classes > 1 {
        let cls = assign_classes(
            ts.num_tasks(),
            &vec![1.0; args.classes],
            args.seed ^ 0xda94_2042_e4dd_58b5,
        );
        ts = ts.with_classes(cls.into_iter().map(|c| c as u32).collect());
    }
    ts
}

/// The serving platform for one cell: two V100s under mild memory
/// pressure — half the working set per GPU (at least four tiles for
/// GEMM; for the prefix tree this is 1× aggregate cache pressure, with
/// a floor of 2× the largest request footprint so every task fits).
fn stream_spec(args: &ServeArgs, ts: &TaskSet) -> PlatformSpec {
    let per_gpu = match args.workload {
        WorkloadKind::Gemm => {
            let tile = ts.data_size(DataId(0));
            (ts.num_data() as u64 / 2).max(4) * tile
        }
        WorkloadKind::Prefix => {
            let max_footprint = ts
                .tasks()
                .map(|t| ts.task_footprint(t))
                .max()
                .unwrap_or(0);
            (prefix::tree_bytes(ts) / 2).max(2 * max_footprint)
        }
    };
    PlatformSpec::v100(2).with_memory(per_gpu)
}

fn serve_config(args: &ServeArgs) -> RunConfig {
    RunConfig {
        faults: args.faults.clone(),
        admission: Some(AdmissionConfig {
            max_backlog: args.backlog,
            policy: args.shed,
        }),
        ..RunConfig::default()
    }
}

/// `;`-joined per-class counter column (CSV-safe; empty when class-less
/// and nothing was dropped).
fn class_column(v: &[u64]) -> String {
    v.iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(";")
}

struct CellResult {
    scheduler: String,
    rate: f64,
    tasks: usize,
    report: RunReport,
}

fn run_cell(args: &ServeArgs, named: &NamedScheduler, rate: f64) -> Result<CellResult, String> {
    let ts = stream_taskset(args, rate);
    let spec = stream_spec(args, &ts);
    let mut sched = named.build();
    let config = serve_config(args);
    let (report, _trace) = run_with_config(&ts, &spec, sched.as_mut(), &config)
        .map_err(|e| format!("{} @ {rate}/s: {e}", named.label()))?;
    Ok(CellResult {
        scheduler: report.scheduler.clone(),
        rate,
        tasks: ts.num_tasks(),
        report,
    })
}

const CSV_HEADER: &str = "scheduler,pattern,clients,rate_per_sec,tasks,makespan_ns,p50_latency_ns,\
                          p99_latency_ns,mean_latency_ns,p50_queueing_ns,p99_queueing_ns,\
                          throughput_tps,admitted,deferred,shed_policy,shed,deadline_expired,\
                          deadline_violations,goodput_tps,shed_per_class,completed_per_class";

fn csv_row(args: &ServeArgs, c: &CellResult) -> String {
    let o = c.report.online.clone().unwrap_or_default();
    let pattern = if args.closed_loop.is_some() {
        "closed-loop"
    } else {
        args.pattern.label()
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},{},{},{:.3},{},{}",
        c.scheduler,
        pattern,
        args.closed_loop.unwrap_or(0),
        c.rate,
        c.tasks,
        c.report.makespan,
        o.p50_latency,
        o.p99_latency,
        o.mean_latency,
        o.p50_queueing,
        o.p99_queueing,
        o.throughput_tps,
        o.tasks_admitted,
        o.tasks_deferred,
        args.shed.as_str(),
        o.tasks_shed,
        o.deadline_expired,
        o.deadline_violations,
        o.goodput_tps,
        class_column(&o.shed_per_class),
        class_column(&o.completed_per_class),
    )
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Observed re-run of the representative cell (first scheduler, highest
/// rate) for `--trace-out` / `--metrics-out`.
fn export_obs(args: &ServeArgs) -> Result<(), String> {
    if args.trace_out.is_none() && args.metrics_out.is_none() {
        return Ok(());
    }
    let named = args.scheds.first().expect("non-empty scheduler list");
    let rate = args.rates.iter().cloned().fold(f64::MIN, f64::max);
    let ts = stream_taskset(args, rate);
    let spec = stream_spec(args, &ts);
    let mut sched = named.build();
    let config = serve_config(args);
    let probe = Probe::unbounded();
    let (report, _trace) = run_observed(&ts, &spec, sched.as_mut(), &config, &probe)
        .map_err(|e| format!("observed cell failed: {e}"))?;
    let events = probe.events();

    if let Some(path) = &args.trace_out {
        let text = match args.trace_format {
            TraceFormat::Chrome => {
                chrome_trace_json(&events).map_err(|e| format!("chrome export: {e}"))?
            }
            TraceFormat::Paje => paje_trace(&events).map_err(|e| format!("paje export: {e}"))?,
        };
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path} ({} events)", events.len());
    }
    if let Some(path) = &args.metrics_out {
        let mut metrics = Metrics::with_snapshots((report.makespan / 64).max(1));
        metrics.ingest(&events);
        let o = report.online.clone().unwrap_or_default();
        let root = obj(vec![
            ("bin", Value::Str("serve".to_string())),
            ("scheduler", Value::Str(report.scheduler.clone())),
            (
                "pattern",
                Value::Str(if args.closed_loop.is_some() {
                    "closed-loop".to_string()
                } else {
                    args.pattern.label().to_string()
                }),
            ),
            (
                "clients",
                Value::Num(Number::U(args.closed_loop.unwrap_or(0) as u64)),
            ),
            ("rate_per_sec", Value::Num(Number::F(rate))),
            ("shed_policy", Value::Str(args.shed.as_str().to_string())),
            ("makespan_ns", Value::Num(Number::U(report.makespan))),
            (
                "online",
                obj(vec![
                    ("tasks_admitted", Value::Num(Number::U(o.tasks_admitted))),
                    ("tasks_deferred", Value::Num(Number::U(o.tasks_deferred))),
                    ("p50_latency_ns", Value::Num(Number::U(o.p50_latency))),
                    ("p99_latency_ns", Value::Num(Number::U(o.p99_latency))),
                    ("mean_latency_ns", Value::Num(Number::U(o.mean_latency))),
                    ("p50_queueing_ns", Value::Num(Number::U(o.p50_queueing))),
                    ("p99_queueing_ns", Value::Num(Number::U(o.p99_queueing))),
                    ("throughput_tps", Value::Num(Number::F(o.throughput_tps))),
                    ("tasks_shed", Value::Num(Number::U(o.tasks_shed))),
                    ("deadline_expired", Value::Num(Number::U(o.deadline_expired))),
                    (
                        "deadline_violations",
                        Value::Num(Number::U(o.deadline_violations)),
                    ),
                    ("goodput_tps", Value::Num(Number::F(o.goodput_tps))),
                ]),
            ),
            ("metrics", metrics.to_value()),
        ]);
        let text = serde_json::to_string_pretty(&root)
            .map_err(|e| format!("serialize metrics: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() {
    let args = match parse_from(std::env::args().skip(1).collect()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    let cells: Vec<(NamedScheduler, f64)> = args
        .scheds
        .iter()
        .flat_map(|s| args.rates.iter().map(move |&r| (s.clone(), r)))
        .collect();
    let results = pool::run_indexed(&cells, args.jobs, |_, (named, rate)| {
        run_cell(&args, named, *rate)
    });

    println!(
        "{:<14} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8} {:>6} {:>10}",
        "scheduler", "rate/s", "tasks", "makespan_ms", "p50_lat_us", "p99_lat_us", "p50_queue_us",
        "thru/s", "deferred", "shed", "goodput/s"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for res in results {
        match res {
            Ok(c) => {
                let o = c.report.online.clone().unwrap_or_default();
                println!(
                    "{:<14} {:>8} {:>7} {:>12.3} {:>12.1} {:>12.1} {:>12.1} {:>10.1} {:>8} {:>6} {:>10.1}",
                    c.scheduler,
                    c.rate,
                    c.tasks,
                    c.report.makespan as f64 / 1e6,
                    o.p50_latency as f64 / 1e3,
                    o.p99_latency as f64 / 1e3,
                    o.p50_queueing as f64 / 1e3,
                    o.throughput_tps,
                    o.tasks_deferred,
                    o.tasks_shed + o.deadline_expired,
                    o.goodput_tps
                );
                rows.push(csv_row(&args, &c));
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &args.out {
        let mut text = String::from(CSV_HEADER);
        text.push('\n');
        for r in &rows {
            text.push_str(r);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} ({} rows)", rows.len());
    }

    if let Err(e) = export_obs(&args) {
        eprintln!("error: {e}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ServeArgs, String> {
        parse_from(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn zero_backlog_is_rejected() {
        let err = parse(&["--backlog", "0"]).unwrap_err();
        assert!(err.contains("--backlog 0"), "got {err:?}");
        // `--flag=VALUE` spelling goes through the same validation.
        let err = parse(&["--backlog=0"]).unwrap_err();
        assert!(err.contains("--backlog 0"), "got {err:?}");
        assert_eq!(parse(&["--backlog", "4"]).unwrap().backlog, Some(4));
    }

    #[test]
    fn priority_shed_requires_backlog() {
        let err = parse(&["--shed", "priority"]).unwrap_err();
        assert!(err.contains("--backlog"), "got {err:?}");
        // The pair that the lone flag was missing parses fine…
        let args = parse(&["--shed", "priority", "--backlog", "8"]).unwrap();
        assert_eq!(args.shed, ShedPolicy::PriorityShed);
        assert_eq!(args.backlog, Some(8));
        // …and a zero backlog does not satisfy the requirement.
        let err = parse(&["--shed", "priority", "--backlog", "0"]).unwrap_err();
        assert!(err.contains("--backlog 0"), "got {err:?}");
    }

    #[test]
    fn workload_flag_parses() {
        assert_eq!(parse(&[]).unwrap().workload, WorkloadKind::Gemm);
        assert_eq!(
            parse(&["--workload", "gemm"]).unwrap().workload,
            WorkloadKind::Gemm
        );
        assert_eq!(
            parse(&["--workload", "prefix"]).unwrap().workload,
            WorkloadKind::Prefix
        );
        assert_eq!(
            parse(&["--workload=prefix"]).unwrap().workload,
            WorkloadKind::Prefix
        );
        let err = parse(&["--workload", "bogus"]).unwrap_err();
        assert!(err.contains("--workload"), "got {err:?}");
    }

    #[test]
    fn router_is_a_known_scheduler() {
        let args = parse(&["--sched", "router"]).unwrap();
        assert_eq!(args.scheds, vec![NamedScheduler::Router]);
        let all = parse(&["--sched", "all"]).unwrap();
        assert!(all.scheds.contains(&NamedScheduler::Router));
        let err = parse(&["--sched", "nope"]).unwrap_err();
        assert!(err.contains("router"), "the hint should list router: {err:?}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--workload"]).unwrap_err().contains("missing value"));
    }
}
