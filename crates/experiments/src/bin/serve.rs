//! Online serving load sweep: drive every scheduler family with a
//! seeded request stream through the engine's admission loop and report
//! serving metrics (p50/p99 task latency, queueing delay, sustained
//! throughput).
//!
//! ```text
//! serve [--arrival-rate R1,R2,…] [--pattern poisson|bursty]
//!       [--closed-loop CLIENTS] [--duration SECS] [--tasks N]
//!       [--sched eager|dmda|dmdar|hmetis|mhfp|darts|all]
//!       [--seed N] [--jobs N] [--faults SPEC] [--out CSV] [--quick]
//!       [--trace-out PATH] [--trace-format chrome|paje] [--metrics-out PATH]
//! ```
//!
//! Each (scheduler × rate) cell generates `rate × duration` tasks on a
//! 2D-GEMM grid, stamps them with open-loop arrivals, and runs the
//! stream with admission control enabled. `--tasks N` pins the per-cell
//! task count directly instead (the grid rounds up to the next square),
//! which is how the million-task serving runs are driven: pair it with
//! a high `--arrival-rate` so arrivals, not the horizon, bound the run. Results are printed as a
//! table and optionally written as CSV (`--out`). `--faults` composes a
//! deterministic fault plan into every cell, so degraded-capacity
//! serving is measurable with the same flag grammar as the figure
//! binaries; malformed flags exit with status 2 before anything runs.
//! `--trace-out`/`--metrics-out` re-run the representative cell (first
//! scheduler, highest rate) observed and export the timeline — with the
//! arrival/admit/defer admission track — and the metrics registry
//! including the latency histograms (`trace_lint --metrics` checks
//! them).
//!
//! `--closed-loop N` switches the traffic class: `N` clients each keep
//! one request in flight, thinking for an exponential time between the
//! estimated completion of one request and the issue of the next. The
//! sweep still iterates `--arrival-rate`, which in closed-loop mode is
//! the *aggregate target* rate — the mean think time is sized as
//! `clients / rate` minus the per-task service estimate, so a saturated
//! system sees back-to-back requests while an unloaded one idles
//! between them. The CSV gains a `clients` column (0 = open loop).

use memsched_experiments::obs::{self, TraceFormat};
use memsched_experiments::pool;
use memsched_model::{DataId, TaskSet};
use memsched_platform::obs::{chrome_trace_json, paje_trace, Metrics, Probe};
use memsched_platform::{
    run_observed, run_with_config, AdmissionConfig, FaultPlan, PlatformSpec, RunConfig, RunReport,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::{closed_loop_arrivals, gemm_2d, open_loop_arrivals, ArrivalPattern};
use serde::{Number, Value};

#[derive(Clone, Debug, PartialEq)]
enum PatternKind {
    Poisson,
    Bursty,
}

impl PatternKind {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "poisson" => Ok(Self::Poisson),
            "bursty" => Ok(Self::Bursty),
            other => Err(format!(
                "--pattern {other:?}: expected \"poisson\" or \"bursty\""
            )),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Self::Poisson => "poisson",
            Self::Bursty => "bursty",
        }
    }

    /// The arrival process at a given long-run mean rate. The bursty
    /// shape alternates 20 ms phases at 1.6× and 0.4× the rate, so the
    /// blended mean matches the requested rate.
    fn at_rate(&self, rate_per_sec: f64) -> ArrivalPattern {
        match self {
            Self::Poisson => ArrivalPattern::Poisson { rate_per_sec },
            Self::Bursty => ArrivalPattern::Bursty {
                on_rate_per_sec: 1.6 * rate_per_sec,
                off_rate_per_sec: 0.4 * rate_per_sec,
                on_ns: 20_000_000,
                off_ns: 20_000_000,
            },
        }
    }
}

#[derive(Clone, Debug)]
struct ServeArgs {
    rates: Vec<f64>,
    pattern: PatternKind,
    duration_s: f64,
    /// Pinned per-cell task count; `None` sizes cells as rate × duration.
    tasks: Option<usize>,
    /// Closed-loop traffic: this many clients, each with one request in
    /// flight. `None` keeps the open-loop arrival process.
    closed_loop: Option<usize>,
    scheds: Vec<NamedScheduler>,
    seed: u64,
    jobs: usize,
    faults: FaultPlan,
    out: Option<String>,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    metrics_out: Option<String>,
}

const KNOWN_VALUE_FLAGS: &[&str] = &[
    "--arrival-rate",
    "--pattern",
    "--closed-loop",
    "--duration",
    "--tasks",
    "--sched",
    "--seed",
    "--jobs",
    "--faults",
    "--out",
    "--trace-out",
    "--trace-format",
    "--metrics-out",
];

fn parse_scheds(spec: &str) -> Result<Vec<NamedScheduler>, String> {
    let mut out = Vec::new();
    for name in spec.split(',').filter(|s| !s.is_empty()) {
        match name {
            "eager" => out.push(NamedScheduler::Eager),
            "dmda" => out.push(NamedScheduler::Dmda),
            "dmdar" => out.push(NamedScheduler::Dmdar),
            "hmetis" => out.push(NamedScheduler::HmetisR),
            "mhfp" => out.push(NamedScheduler::Mhfp),
            "darts" => out.push(NamedScheduler::DartsLuf),
            "all" => out.extend([
                NamedScheduler::Eager,
                NamedScheduler::Dmdar,
                NamedScheduler::HmetisR,
                NamedScheduler::Mhfp,
                NamedScheduler::DartsLuf,
            ]),
            other => {
                return Err(format!(
                    "--sched {other:?}: expected eager|dmda|dmdar|hmetis|mhfp|darts|all"
                ))
            }
        }
    }
    if out.is_empty() {
        return Err("--sched: empty scheduler list".to_string());
    }
    Ok(out)
}

fn parse_from(args: Vec<String>) -> Result<ServeArgs, String> {
    // Reject unknown flags up front (exit-2 convention): every argument
    // must be --quick, a known --flag VALUE pair, or --flag=VALUE.
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--quick" {
            i += 1;
        } else if let Some((flag, _)) = a.split_once('=') {
            if !KNOWN_VALUE_FLAGS.contains(&flag) {
                return Err(format!("unknown flag {flag:?}"));
            }
            i += 1;
        } else if KNOWN_VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a}: missing value"));
            }
            i += 2;
        } else {
            return Err(format!("unknown argument {a:?}"));
        }
    }
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                let prefix = format!("{flag}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&prefix))
                    .map(str::to_string)
            })
    };
    let quick = args.iter().any(|a| a == "--quick");

    let mut rates: Vec<f64> = match value_of("--arrival-rate") {
        Some(spec) => spec
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|_| format!("--arrival-rate {s:?}: not a number"))
                    .and_then(|r| {
                        if r > 0.0 {
                            Ok(r)
                        } else {
                            Err(format!("--arrival-rate {s:?}: must be positive"))
                        }
                    })
            })
            .collect::<Result<_, _>>()?,
        None => vec![200.0, 500.0, 1000.0],
    };
    if rates.is_empty() {
        return Err("--arrival-rate: empty rate list".to_string());
    }
    let pattern = match value_of("--pattern") {
        Some(p) => PatternKind::parse(&p)?,
        None => PatternKind::Poisson,
    };
    let mut duration_s = match value_of("--duration") {
        Some(d) => {
            let d = d
                .parse::<f64>()
                .map_err(|_| format!("--duration {d:?}: not a number"))?;
            if d <= 0.0 {
                return Err(format!("--duration {d}: must be positive"));
            }
            d
        }
        None => 1.0,
    };
    let tasks = match value_of("--tasks") {
        Some(t) => {
            let n = t
                .parse::<usize>()
                .map_err(|_| format!("--tasks {t:?}: not a number"))?;
            if n == 0 {
                return Err("--tasks 0: must be positive".to_string());
            }
            Some(n)
        }
        None => None,
    };
    let closed_loop = match value_of("--closed-loop") {
        Some(c) => {
            let n = c
                .parse::<usize>()
                .map_err(|_| format!("--closed-loop {c:?}: not a number"))?;
            if n == 0 {
                return Err("--closed-loop 0: need at least one client".to_string());
            }
            Some(n)
        }
        None => None,
    };
    let scheds = parse_scheds(&value_of("--sched").unwrap_or_else(|| "all".to_string()))?;
    let seed = match value_of("--seed") {
        Some(s) => s
            .parse::<u64>()
            .map_err(|_| format!("--seed {s:?}: not a u64"))?,
        None => 42,
    };
    let jobs_arg = match value_of("--jobs") {
        Some(j) => Some(
            j.parse::<usize>()
                .map_err(|_| format!("--jobs {j:?}: not a number"))?,
        ),
        None => None,
    };
    let faults = match value_of("--faults") {
        Some(spec) => FaultPlan::parse(&spec).map_err(|e| format!("--faults {spec:?}: {e}"))?,
        None => FaultPlan::default(),
    };
    let out = value_of("--out");
    if let Some(p) = &out {
        obs::validate_out_path("--out", p)?;
    }
    let trace_out = value_of("--trace-out");
    if let Some(p) = &trace_out {
        obs::validate_out_path("--trace-out", p)?;
    }
    let metrics_out = value_of("--metrics-out");
    if let Some(p) = &metrics_out {
        obs::validate_out_path("--metrics-out", p)?;
    }
    let trace_format = match value_of("--trace-format") {
        Some(f) => TraceFormat::parse(&f)?,
        None => TraceFormat::default(),
    };
    if quick {
        rates.truncate(1);
        duration_s = duration_s.min(0.25);
    }
    Ok(ServeArgs {
        rates,
        pattern,
        duration_s,
        tasks,
        closed_loop,
        scheds,
        seed,
        jobs: pool::resolve_jobs(jobs_arg),
        faults,
        out,
        trace_out,
        trace_format,
        metrics_out,
    })
}

/// The stream workload for one cell: a 2D-GEMM grid sized to carry
/// `rate × duration` tasks — or exactly `--tasks` when pinned — stamped
/// with open-loop arrivals, or closed-loop ones under `--closed-loop`.
fn stream_taskset(args: &ServeArgs, rate: f64) -> TaskSet {
    let target = args
        .tasks
        .unwrap_or_else(|| (rate * args.duration_s).ceil().max(1.0) as usize);
    let n = (target as f64).sqrt().ceil().max(2.0) as usize;
    let ts = gemm_2d(n);
    let arrivals = match args.closed_loop {
        Some(clients) => {
            // Aggregate target rate → per-client cycle time `clients/rate`;
            // the think time is what remains after the service estimate
            // (one tile task at the V100 roofline).
            let service_ns =
                (ts.flops(memsched_model::TaskId(0)) / memsched_platform::V100_GFLOPS) as u64;
            let cycle_ns = (clients as f64 / rate * 1e9) as u64;
            let think_ns = cycle_ns.saturating_sub(service_ns).max(1);
            closed_loop_arrivals(ts.num_tasks(), clients, think_ns, service_ns, args.seed)
        }
        None => open_loop_arrivals(&args.pattern.at_rate(rate), args.seed, ts.num_tasks()),
    };
    ts.with_arrivals(arrivals)
}

/// The serving platform for one cell: two V100s under mild memory
/// pressure (half the working set, at least four tiles per GPU).
fn stream_spec(ts: &TaskSet) -> PlatformSpec {
    let tile = ts.data_size(DataId(0));
    let tiles = (ts.num_data() as u64 / 2).max(4);
    PlatformSpec::v100(2).with_memory(tiles * tile)
}

fn serve_config(args: &ServeArgs) -> RunConfig {
    RunConfig {
        faults: args.faults.clone(),
        admission: Some(AdmissionConfig::default()),
        ..RunConfig::default()
    }
}

struct CellResult {
    scheduler: String,
    rate: f64,
    tasks: usize,
    report: RunReport,
}

fn run_cell(args: &ServeArgs, named: &NamedScheduler, rate: f64) -> Result<CellResult, String> {
    let ts = stream_taskset(args, rate);
    let spec = stream_spec(&ts);
    let mut sched = named.build();
    let config = serve_config(args);
    let (report, _trace) = run_with_config(&ts, &spec, sched.as_mut(), &config)
        .map_err(|e| format!("{} @ {rate}/s: {e}", named.label()))?;
    Ok(CellResult {
        scheduler: report.scheduler.clone(),
        rate,
        tasks: ts.num_tasks(),
        report,
    })
}

const CSV_HEADER: &str = "scheduler,pattern,clients,rate_per_sec,tasks,makespan_ns,p50_latency_ns,\
                          p99_latency_ns,mean_latency_ns,p50_queueing_ns,p99_queueing_ns,\
                          throughput_tps,admitted,deferred";

fn csv_row(args: &ServeArgs, c: &CellResult) -> String {
    let o = c.report.online.clone().unwrap_or_default();
    let pattern = if args.closed_loop.is_some() {
        "closed-loop"
    } else {
        args.pattern.label()
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{:.3},{},{}",
        c.scheduler,
        pattern,
        args.closed_loop.unwrap_or(0),
        c.rate,
        c.tasks,
        c.report.makespan,
        o.p50_latency,
        o.p99_latency,
        o.mean_latency,
        o.p50_queueing,
        o.p99_queueing,
        o.throughput_tps,
        o.tasks_admitted,
        o.tasks_deferred
    )
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Observed re-run of the representative cell (first scheduler, highest
/// rate) for `--trace-out` / `--metrics-out`.
fn export_obs(args: &ServeArgs) -> Result<(), String> {
    if args.trace_out.is_none() && args.metrics_out.is_none() {
        return Ok(());
    }
    let named = args.scheds.first().expect("non-empty scheduler list");
    let rate = args.rates.iter().cloned().fold(f64::MIN, f64::max);
    let ts = stream_taskset(args, rate);
    let spec = stream_spec(&ts);
    let mut sched = named.build();
    let config = serve_config(args);
    let probe = Probe::unbounded();
    let (report, _trace) = run_observed(&ts, &spec, sched.as_mut(), &config, &probe)
        .map_err(|e| format!("observed cell failed: {e}"))?;
    let events = probe.events();

    if let Some(path) = &args.trace_out {
        let text = match args.trace_format {
            TraceFormat::Chrome => {
                chrome_trace_json(&events).map_err(|e| format!("chrome export: {e}"))?
            }
            TraceFormat::Paje => paje_trace(&events).map_err(|e| format!("paje export: {e}"))?,
        };
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path} ({} events)", events.len());
    }
    if let Some(path) = &args.metrics_out {
        let mut metrics = Metrics::with_snapshots((report.makespan / 64).max(1));
        metrics.ingest(&events);
        let o = report.online.clone().unwrap_or_default();
        let root = obj(vec![
            ("bin", Value::Str("serve".to_string())),
            ("scheduler", Value::Str(report.scheduler.clone())),
            (
                "pattern",
                Value::Str(if args.closed_loop.is_some() {
                    "closed-loop".to_string()
                } else {
                    args.pattern.label().to_string()
                }),
            ),
            (
                "clients",
                Value::Num(Number::U(args.closed_loop.unwrap_or(0) as u64)),
            ),
            ("rate_per_sec", Value::Num(Number::F(rate))),
            ("makespan_ns", Value::Num(Number::U(report.makespan))),
            (
                "online",
                obj(vec![
                    ("tasks_admitted", Value::Num(Number::U(o.tasks_admitted))),
                    ("tasks_deferred", Value::Num(Number::U(o.tasks_deferred))),
                    ("p50_latency_ns", Value::Num(Number::U(o.p50_latency))),
                    ("p99_latency_ns", Value::Num(Number::U(o.p99_latency))),
                    ("mean_latency_ns", Value::Num(Number::U(o.mean_latency))),
                    ("p50_queueing_ns", Value::Num(Number::U(o.p50_queueing))),
                    ("p99_queueing_ns", Value::Num(Number::U(o.p99_queueing))),
                    ("throughput_tps", Value::Num(Number::F(o.throughput_tps))),
                ]),
            ),
            ("metrics", metrics.to_value()),
        ]);
        let text = serde_json::to_string_pretty(&root)
            .map_err(|e| format!("serialize metrics: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() {
    let args = match parse_from(std::env::args().skip(1).collect()) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    let cells: Vec<(NamedScheduler, f64)> = args
        .scheds
        .iter()
        .flat_map(|s| args.rates.iter().map(move |&r| (s.clone(), r)))
        .collect();
    let results = pool::run_indexed(&cells, args.jobs, |_, (named, rate)| {
        run_cell(&args, named, *rate)
    });

    println!(
        "{:<14} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "scheduler", "rate/s", "tasks", "makespan_ms", "p50_lat_us", "p99_lat_us", "p50_queue_us",
        "thru/s", "deferred"
    );
    let mut rows = Vec::new();
    let mut failed = false;
    for res in results {
        match res {
            Ok(c) => {
                let o = c.report.online.clone().unwrap_or_default();
                println!(
                    "{:<14} {:>8} {:>7} {:>12.3} {:>12.1} {:>12.1} {:>12.1} {:>10.1} {:>8}",
                    c.scheduler,
                    c.rate,
                    c.tasks,
                    c.report.makespan as f64 / 1e6,
                    o.p50_latency as f64 / 1e3,
                    o.p99_latency as f64 / 1e3,
                    o.p50_queueing as f64 / 1e3,
                    o.throughput_tps,
                    o.tasks_deferred
                );
                rows.push(csv_row(&args, &c));
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &args.out {
        let mut text = String::from(CSV_HEADER);
        text.push('\n');
        for r in &rows {
            text.push_str(r);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} ({} rows)", rows.len());
    }

    if let Err(e) = export_obs(&args) {
        eprintln!("error: {e}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
