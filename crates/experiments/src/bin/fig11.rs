//! Regenerates Figure 11 of the paper. Usage: `fig11 [--quick] [--json PATH]`.
use memsched_experiments::figures;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let fig = if quick { figures::quick(figures::fig11()) } else { figures::fig11() };
    fig.run_and_print(json);
}
