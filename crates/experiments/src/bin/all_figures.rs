//! Regenerates every figure in sequence.
//! Usage: `all_figures [--quick] [--paper-timing] [--jobs N] [--faults SPEC]
//! [--trace-out PATH] [--trace-format chrome|paje] [--metrics-out PATH]`.
//!
//! When observability outputs are requested, each figure writes its own
//! files with the figure id inserted before the extension
//! (`trace.json` → `trace.fig03.json`, …).
use memsched_experiments::{cli, figures, obs};

fn main() {
    let args = cli::parse();
    for fig in figures::all_figures() {
        let fig = args.apply(fig);
        if let Err(e) = fig.run_and_print_with_jobs(None, args.jobs) {
            eprintln!("{} failed: {e}", fig.id);
            std::process::exit(1);
        }
        if let Err(e) = obs::export_figure(&fig, &args.obs.suffixed(fig.id)) {
            eprintln!("{} failed: {e}", fig.id);
            std::process::exit(1);
        }
        println!();
    }
}
