//! Regenerates every figure in sequence. Usage: `all_figures [--quick]`.
use memsched_experiments::figures;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for fig in figures::all_figures() {
        let fig = if quick { figures::quick(fig) } else { fig };
        fig.run_and_print(None);
        println!();
    }
}
