//! Regenerates every figure in sequence.
//! Usage: `all_figures [--quick] [--paper-timing] [--jobs N] [--faults SPEC]`.
use memsched_experiments::{cli, figures};

fn main() {
    let args = cli::parse();
    for fig in figures::all_figures() {
        let fig = args.apply(fig);
        if let Err(e) = fig.run_and_print_with_jobs(None, args.jobs) {
            eprintln!("{} failed: {e}", fig.id);
            std::process::exit(1);
        }
        println!();
    }
}
