//! The prefix-cache routing figure: a seeded prefix-tree request
//! stream (the multi-GPU KV/prefix-cache serving scenario) swept over
//! cache pressure — tree bytes / aggregate GPU memory — at 0.5×, 1×,
//! 2× and 4×, comparing the residency-aware Router against DMDAR,
//! DARTS+LUF and EAGER on p99 latency, bytes transferred and
//! prefix-cache hit rate.
//!
//! Usage: `prefix_route [--quick] [--seed N] [--csv PATH]`.
//! Prints a human table plus CSV to stdout; `--csv` also writes the
//! CSV rows to a file. Malformed flags exit with status 2 before any
//! cell runs.

use memsched_experiments::prefix_route::{run_sweep, PressureRow, SweepConfig};

struct Args {
    quick: bool,
    seed: u64,
    csv: Option<String>,
}

fn parse_from(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let args: Vec<String> = args.collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                let prefix = format!("{flag}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&prefix))
                    .map(str::to_string)
            })
    };
    for a in &args {
        let flag = a.split('=').next().unwrap_or(a);
        match flag {
            "--quick" | "--seed" | "--csv" => {}
            _ if !a.starts_with("--") => {}
            _ => return Err(format!("unknown flag {a:?}")),
        }
    }
    let seed = match value_of("--seed") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("--seed {v:?}: not a u64"))?,
        None => 42,
    };
    let csv = value_of("--csv");
    if let Some(p) = &csv {
        if p.is_empty() || p.starts_with("--") {
            return Err(format!("--csv {p:?}: not a path"));
        }
    }
    Ok(Args {
        quick: args.iter().any(|a| a == "--quick"),
        seed,
        csv,
    })
}

fn human_table(rows: &[PressureRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>9} {:>6} {:>12} {:>14} {:>9} {:>9}\n",
        "scheduler", "pressure", "tasks", "moved (MB)", "p99 (us)", "hit rate", "evictions"
    ));
    for r in rows {
        let o = r.report.online.clone().unwrap_or_default();
        out.push_str(&format!(
            "{:<10} {:>8}x {:>6} {:>12.1} {:>14.1} {:>9.4} {:>9}\n",
            r.scheduler,
            r.pressure,
            r.tasks,
            r.report.transfers_mb(),
            o.p99_latency as f64 / 1e3,
            r.report.cache_hit_rate(),
            r.report.total_evictions,
        ));
    }
    out
}

fn main() {
    let args = match parse_from(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let cfg = if args.quick {
        SweepConfig::quick(args.seed)
    } else {
        SweepConfig::full(args.seed)
    };
    let rows = match run_sweep(&cfg) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("prefix_route failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", human_table(&rows));
    println!();
    let mut csv = String::from(PressureRow::CSV_HEADER);
    csv.push('\n');
    for r in &rows {
        csv.push_str(&r.csv());
        csv.push('\n');
    }
    print!("{csv}");
    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, &csv) {
            eprintln!("prefix_route failed: write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
