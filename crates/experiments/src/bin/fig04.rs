//! Regenerates Figure 04 of the paper.
//! Usage: `fig04 [--quick] [--paper-timing] [--json PATH] [--jobs N]
//! [--faults SPEC]
//! [--trace-out PATH] [--trace-format chrome|paje] [--metrics-out PATH]`.
use memsched_experiments::{cli, figures};

fn main() {
    let args = cli::parse();
    let fig = args.apply(figures::fig04());
    if let Err(e) = fig.run_and_print_with_jobs(args.json.as_deref(), args.jobs) {
        eprintln!("fig04 failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = args.export_obs(&fig) {
        eprintln!("fig04 failed: {e}");
        std::process::exit(1);
    }
}
