//! Regenerates Figure 09 of the paper.
//! Usage: `fig09 [--quick] [--paper-timing] [--json PATH] [--jobs N]`.
use memsched_experiments::{cli, figures};

fn main() {
    let args = cli::parse();
    let fig = args.apply(figures::fig09());
    fig.run_and_print_with_jobs(args.json.as_deref(), args.jobs);
}
