//! Validate a Chrome Trace Event JSON file produced by `--trace-out`.
//!
//! Usage: `trace_lint TRACE.json`. Checks the structural schema (a
//! `traceEvents` array whose entries carry `name`/`ph`/`pid`/`tid`,
//! spans with numeric non-negative `ts`/`dur`) and the simulator's
//! guarantee that spans on one track never overlap. Exit status: 0 when
//! valid (prints a summary line), 1 on a violation, 2 on usage errors —
//! the same convention as the figure binaries.
use memsched_experiments::obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] if !p.starts_with('-') => p,
        _ => {
            eprintln!("usage: trace_lint TRACE.json");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    match obs::lint_chrome(&doc) {
        Ok(l) => println!(
            "{path}: OK — {} events ({} spans, {} instants, {} counters, {} metadata) \
             on {} tracks",
            l.events, l.spans, l.instants, l.counters, l.metadata, l.tracks
        ),
        Err(e) => {
            eprintln!("{path}: invalid Chrome trace: {e}");
            std::process::exit(1);
        }
    }
}
