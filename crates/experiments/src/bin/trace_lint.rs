//! Validate a Chrome Trace Event JSON file produced by `--trace-out`,
//! and optionally a metrics JSON produced by `--metrics-out`.
//!
//! Usage: `trace_lint TRACE.json [--metrics METRICS.json]`. The trace
//! checks cover the structural schema (a `traceEvents` array whose
//! entries carry `name`/`ph`/`pid`/`tid`, spans with numeric
//! non-negative `ts`/`dur`), the simulator's guarantee that spans on one
//! track never overlap (each PCI bus of a multi-bus platform gets its
//! own track, checked independently), the placement of transfers on
//! interconnect tracks and compute on GPU tracks, the shard-merge
//! invariant (per-track spans appear in canonical `(time, gpu)` order),
//! and the admission-track invariants of online
//! runs (time-ordered arrivals, no admit/defer before the arrival). The
//! `--metrics` check validates histogram quantile ordering (p50 ≤ p99)
//! and the latency-sample/completion-count agreement. Exit status: 0
//! when valid (prints a summary line), 1 on a violation, 2 on usage
//! errors — the same convention as the figure binaries.
use memsched_experiments::obs;

fn read_json(path: &str) -> serde::Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--metrics="))
                .map(str::to_string)
        });
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--metrics" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with('-')
            })
            .collect()
    };
    let path = match positional.as_slice() {
        [p] => p.as_str(),
        _ => {
            eprintln!("usage: trace_lint TRACE.json [--metrics METRICS.json]");
            std::process::exit(2);
        }
    };
    let doc = read_json(path);
    match obs::lint_chrome(&doc) {
        Ok(l) => println!(
            "{path}: OK — {} events ({} spans, {} instants, {} counters, {} metadata, \
             {} admission) on {} tracks ({} bus)",
            l.events, l.spans, l.instants, l.counters, l.metadata, l.admission, l.tracks,
            l.bus_tracks
        ),
        Err(e) => {
            eprintln!("{path}: invalid Chrome trace: {e}");
            std::process::exit(1);
        }
    }
    if let Some(mpath) = metrics {
        let mdoc = read_json(&mpath);
        match obs::lint_metrics(&mdoc) {
            Ok(l) => println!(
                "{mpath}: OK — {} histograms checked ({} run)",
                l.histograms,
                if l.online { "online" } else { "batch" }
            ),
            Err(e) => {
                eprintln!("{mpath}: invalid metrics: {e}");
                std::process::exit(1);
            }
        }
    }
}
