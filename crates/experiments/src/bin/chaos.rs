//! Standalone chaos driver: the soak harness's randomized
//! faults × overload matrix (`memsched_experiments::chaos`) as a CLI.
//!
//! ```text
//! chaos [--seeds N] [--sched eager|dmda|dmdar|hmetis|mhfp|darts|all]
//!       [--jobs N] [--out CSV] [--quick]
//! ```
//!
//! For every seed the driver builds one composition (overloaded
//! deadline/class-stamped Poisson stream, seeded fault plan, backlog
//! bound), runs every requested scheduler family under all three shed
//! policies, checks the hard serving invariants on each cell, and
//! verifies the whole matrix digests byte-identically on 1, 2 and
//! `--jobs` pool workers. One CSV row per cell summarizes the outcome
//! ledger. Any invariant violation panics with a seed-reproducible
//! message, so the process exit code is the pass/fail signal for CI.
//!
//! `--quick` caps the sweep at 2 seeds regardless of `--seeds` (the CI
//! tier); malformed flags exit with status 2 before anything runs.

use memsched_experiments::chaos::{
    check_invariants, compose, digest, run_cell, Chaos, FAMILIES, POLICIES,
};
use memsched_experiments::pool;
use memsched_platform::{RunError, ShedPolicy};
use memsched_schedulers::NamedScheduler;

#[derive(Clone, Debug)]
struct ChaosArgs {
    seeds: u64,
    scheds: Vec<NamedScheduler>,
    jobs: usize,
    out: Option<String>,
}

const KNOWN_VALUE_FLAGS: &[&str] = &["--seeds", "--sched", "--jobs", "--out"];

fn parse_scheds(spec: &str) -> Result<Vec<NamedScheduler>, String> {
    let mut out = Vec::new();
    for name in spec.split(',').filter(|s| !s.is_empty()) {
        match name {
            "eager" => out.push(NamedScheduler::Eager),
            "dmda" => out.push(NamedScheduler::Dmda),
            "dmdar" => out.push(NamedScheduler::Dmdar),
            "hmetis" => out.push(NamedScheduler::HmetisR),
            "mhfp" => out.push(NamedScheduler::Mhfp),
            "darts" => out.push(NamedScheduler::DartsLuf),
            "all" => out.extend(FAMILIES),
            other => {
                return Err(format!(
                    "--sched {other:?}: expected eager|dmda|dmdar|hmetis|mhfp|darts|all"
                ))
            }
        }
    }
    if out.is_empty() {
        return Err("--sched: empty scheduler list".to_string());
    }
    Ok(out)
}

fn parse_from(args: Vec<String>) -> Result<ChaosArgs, String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--quick" {
            i += 1;
        } else if let Some((flag, _)) = a.split_once('=') {
            if !KNOWN_VALUE_FLAGS.contains(&flag) {
                return Err(format!("unknown flag {flag:?}"));
            }
            i += 1;
        } else if KNOWN_VALUE_FLAGS.contains(&a.as_str()) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a}: missing value"));
            }
            i += 2;
        } else {
            return Err(format!("unknown argument {a:?}"));
        }
    }
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                let prefix = format!("{flag}=");
                args.iter()
                    .find_map(|a| a.strip_prefix(&prefix))
                    .map(str::to_string)
            })
    };
    let quick = args.iter().any(|a| a == "--quick");
    let mut seeds = match value_of("--seeds") {
        Some(s) => {
            let n = s
                .parse::<u64>()
                .map_err(|_| format!("--seeds {s:?}: not a number"))?;
            if n == 0 {
                return Err("--seeds 0: need at least one seed".to_string());
            }
            n
        }
        None => 8,
    };
    if quick {
        seeds = seeds.min(2);
    }
    let scheds = parse_scheds(&value_of("--sched").unwrap_or_else(|| "all".to_string()))?;
    let jobs = match value_of("--jobs") {
        Some(j) => {
            let n = j
                .parse::<usize>()
                .map_err(|_| format!("--jobs {j:?}: not a number"))?;
            if n == 0 {
                return Err("--jobs 0: need at least one worker".to_string());
            }
            n
        }
        None => pool::resolve_jobs(None),
    };
    Ok(ChaosArgs {
        seeds,
        scheds,
        jobs,
        out: value_of("--out"),
    })
}

const CSV_HEADER: &str = "seed,scheduler,shed_policy,tasks,completed,shed,deadline_expired,\
                          deadline_violations,stuck,p99_latency_ns,goodput_tps";

/// Run one cell, enforce its invariants, and render its CSV row.
fn cell_row(seed: u64, chaos: &Chaos, named: &NamedScheduler, policy: ShedPolicy) -> String {
    let n = chaos.ts.num_tasks();
    match run_cell(chaos, named, policy) {
        Ok((report, trace)) => {
            check_invariants(chaos, named, policy, &trace, &report);
            let s = report.online.as_ref().expect("online stats");
            format!(
                "{seed},{},{},{n},{},{},{},{},0,{},{:.3}",
                report.scheduler,
                policy.as_str(),
                s.tasks_admitted,
                s.tasks_shed,
                s.deadline_expired,
                s.deadline_violations,
                s.p99_latency,
                s.goodput_tps,
            )
        }
        Err(e) => {
            // Only the legacy defer-only policy may wedge on a
            // fault-stranded deferral; a shedding policy failing is a
            // harness bug.
            assert_eq!(
                policy,
                ShedPolicy::DeferOnly,
                "seed {seed}: {named:?}/{policy:?} failed: {e:?}"
            );
            assert!(
                matches!(e, RunError::SchedulerStuck { .. }),
                "seed {seed}: {named:?}: unexpected error {e:?}"
            );
            let completed = match e {
                RunError::SchedulerStuck { completed, .. } => completed,
                _ => unreachable!(),
            };
            format!(
                "{seed},{named:?},{},{n},{completed},0,0,0,1,0,0.000",
                policy.as_str()
            )
        }
    }
}

fn main() {
    let args = match parse_from(std::env::args().skip(1).collect()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };
    let mut rows = vec![CSV_HEADER.to_string()];
    for seed in 1..=args.seeds {
        let chaos = compose(seed);
        let cells: Vec<(NamedScheduler, ShedPolicy)> = args
            .scheds
            .iter()
            .flat_map(|f| POLICIES.iter().map(move |&p| (f.clone(), p)))
            .collect();
        // Determinism across worker counts: 1 vs 2 vs --jobs.
        let run_all = |jobs: usize| -> Vec<String> {
            pool::run_indexed(&cells, jobs, |_, (named, policy)| {
                digest(&chaos, named, *policy)
            })
        };
        let one = run_all(1);
        assert_eq!(one, run_all(2), "seed {seed}: 1 vs 2 workers diverge");
        assert_eq!(
            one,
            run_all(args.jobs),
            "seed {seed}: 1 vs {} workers diverge",
            args.jobs
        );
        for (named, policy) in &cells {
            rows.push(cell_row(seed, &chaos, named, *policy));
        }
    }
    for row in &rows {
        println!("{row}");
    }
    if let Some(path) = &args.out {
        let mut csv = rows.join("\n");
        csv.push('\n');
        std::fs::write(path, csv).expect("write chaos CSV");
        eprintln!("chaos: wrote {path}");
    }
    eprintln!(
        "chaos: {} seeds x {} cells passed all serving invariants",
        args.seeds,
        args.scheds.len() * POLICIES.len()
    );
}
