//! Regenerates Figure 03 of the paper.
//! Usage: `fig03 [--quick] [--paper-timing] [--json PATH] [--jobs N]`.
use memsched_experiments::{cli, figures};

fn main() {
    let args = cli::parse();
    let fig = args.apply(figures::fig03());
    fig.run_and_print_with_jobs(args.json.as_deref(), args.jobs);
}
