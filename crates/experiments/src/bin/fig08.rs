//! Regenerates Figure 08 of the paper.
//! Usage: `fig08 [--quick] [--paper-timing] [--json PATH] [--jobs N]
//! [--faults SPEC]
//! [--trace-out PATH] [--trace-format chrome|paje] [--metrics-out PATH]`.
use memsched_experiments::{cli, figures};

fn main() {
    let args = cli::parse();
    let fig = args.apply(figures::fig08());
    if let Err(e) = fig.run_and_print_with_jobs(args.json.as_deref(), args.jobs) {
        eprintln!("fig08 failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = args.export_obs(&fig) {
        eprintln!("fig08 failed: {e}");
        std::process::exit(1);
    }
}
