//! Per-figure experiment definitions (§V, Figures 3–13).
//!
//! Each function returns the [`FigureSpec`] that regenerates one figure of
//! the paper: the same workload family, GPU count, memory clamp and
//! scheduler set, swept over working-set sizes straddling the paper's
//! reference lines ("B fits in (cumulated) memory", "A and B fit"). Grid
//! sizes are chosen so the sweeps complete in minutes on a laptop while
//! covering both the unconstrained and the memory-starved regimes; the
//! quadratic-time mHFP packing is only run on small working sets, exactly
//! as the paper only reports mHFP "for a few working set sizes".

use crate::harness::{FigureSpec, Metric, SweepPoint};
use memsched_platform::{FaultPlan, PlatformSpec};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::Workload;

use NamedScheduler as S;

/// Working-set sizes (task-grid N) used by the single-GPU 2D sweeps:
/// N = 17 puts "A and B fit" (500 MB) behind us, N = 35 crosses "B fits"
/// (1 000 MB working set).
const GEMM2D_1GPU_N: &[usize] = &[5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70];
/// mHFP's quadratic packing is only run up to this N (≈ 900 tasks).
const MHFP_MAX_N: usize = 30;

/// 2-GPU sweeps reach 4 000 MB like Figures 5–7 (N = 140 ⇒ ≈ 4 100 MB).
const GEMM2D_2GPU_N: &[usize] = &[5, 15, 25, 35, 50, 65, 80, 100, 120, 140];
/// 4-GPU sweep of Figure 8 (up to ≈ 5 000 MB, past the "B fits in
/// cumulated memory" line at ≈ 4 000 MB).
const GEMM2D_4GPU_N: &[usize] = &[10, 25, 40, 55, 70, 90, 110, 140, 170];
/// The exhaustive-scan DARTS variants stop here in Figure 8; beyond, only
/// the thresholded variant runs (the paper's fix for the same problem).
const DARTS_EXHAUSTIVE_MAX_N: usize = 140;
/// Randomized-order sweep of Figure 9 (up to ≈ 1 700 MB).
const GEMM2D_RAND_N: &[usize] = &[5, 10, 15, 20, 25, 30, 35, 40, 50, 60];
/// 3D sweep of Figure 10 (WS = 2·n²·3.7 MB; n = 24 ⇒ ≈ 4 200 MB).
const GEMM3D_N: &[usize] = &[6, 8, 10, 12, 14, 16, 20, 24];
/// Cholesky tile grids of Figure 11 (WS = n(n+1)/2·3.7 MB).
const CHOLESKY_N: &[usize] = &[8, 12, 16, 20, 26, 32, 40, 48];
/// Sparse sweeps of Figures 12–13 (2 % density).
const SPARSE_N: &[usize] = &[40, 80, 120, 160, 220, 280, 360, 440];

fn gemm2d_points(sizes: &[usize], mut base: Vec<NamedScheduler>, with_mhfp: bool) -> Vec<SweepPoint> {
    base.sort_by_key(|s| format!("{s:?}"));
    sizes
        .iter()
        .map(|&n| {
            let mut schedulers = base.clone();
            if with_mhfp && n <= MHFP_MAX_N {
                schedulers.push(S::Mhfp);
            }
            SweepPoint {
                workload: Workload::Gemm2d { n },
                schedulers,
            }
        })
        .collect()
}

/// Figure 3: GFlop/s, 2D multiplication, 1 V100, 500 MB.
pub fn fig03() -> FigureSpec {
    FigureSpec {
        id: "fig03",
        title: "2D matrix multiplication, 1 GPU — throughput",
        spec: PlatformSpec::v100(1),
        points: gemm2d_points(
            GEMM2D_1GPU_N,
            vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf],
            true,
        ),
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 4: data transfers, 2D multiplication, 1 V100, 500 MB.
pub fn fig04() -> FigureSpec {
    FigureSpec {
        id: "fig04",
        title: "2D matrix multiplication, 1 GPU — data transfers",
        spec: PlatformSpec::v100(1),
        points: gemm2d_points(
            GEMM2D_1GPU_N,
            vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf],
            true,
        ),
        metric: Metric::TransfersMb,
        faults: FaultPlan::none(),
    }
}

/// Figure 5: GFlop/s, 2D multiplication, 2 V100s (simulation — our
/// environment is always a simulator; the "no sched. time" series is the
/// `gflops` column of the CSV).
pub fn fig05() -> FigureSpec {
    FigureSpec {
        id: "fig05",
        title: "2D matrix multiplication, 2 GPUs (simulation)",
        spec: PlatformSpec::v100(2),
        points: gemm2d_points(
            GEMM2D_2GPU_N,
            vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf, S::HmetisR],
            true,
        ),
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 6: GFlop/s, 2D multiplication, 2 V100s ("real": scheduling and
/// partitioning wall time included — the `gflops_with_sched` column; the
/// "hMETIS+R no part. time" series is the `gflops` column).
pub fn fig06() -> FigureSpec {
    FigureSpec {
        id: "fig06",
        title: "2D matrix multiplication, 2 GPUs (scheduling time charged)",
        spec: PlatformSpec::v100(2),
        points: gemm2d_points(
            GEMM2D_2GPU_N,
            vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf, S::HmetisR],
            false,
        ),
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 7: data transfers, 2D multiplication, 2 V100s.
pub fn fig07() -> FigureSpec {
    FigureSpec {
        id: "fig07",
        title: "2D matrix multiplication, 2 GPUs — data transfers",
        spec: PlatformSpec::v100(2),
        points: gemm2d_points(
            GEMM2D_2GPU_N,
            vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf, S::HmetisR],
            false,
        ),
        metric: Metric::TransfersMb,
        faults: FaultPlan::none(),
    }
}

/// Figure 8: GFlop/s, 2D multiplication, 4 V100s, with the thresholded
/// DARTS variant the paper adds for the largest working sets.
pub fn fig08() -> FigureSpec {
    let points = GEMM2D_4GPU_N
        .iter()
        .map(|&n| {
            let mut schedulers = vec![
                S::Eager,
                S::Dmdar,
                S::DartsLufThreshold(32),
                S::HmetisR,
            ];
            if n <= DARTS_EXHAUSTIVE_MAX_N {
                schedulers.push(S::Darts);
                schedulers.push(S::DartsLuf);
            }
            SweepPoint {
                workload: Workload::Gemm2d { n },
                schedulers,
            }
        })
        .collect();
    FigureSpec {
        id: "fig08",
        title: "2D matrix multiplication, 4 GPUs",
        spec: PlatformSpec::v100(4),
        points,
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 9: GFlop/s, randomized-order 2D multiplication, 2 V100s.
pub fn fig09() -> FigureSpec {
    let points = GEMM2D_RAND_N
        .iter()
        .map(|&n| SweepPoint {
            workload: Workload::Gemm2dRandom { n, seed: 42 },
            schedulers: vec![S::Eager, S::Dmdar, S::Darts, S::DartsLuf, S::HmetisR],
        })
        .collect();
    FigureSpec {
        id: "fig09",
        title: "2D matrix multiplication, randomized task order, 2 GPUs",
        spec: PlatformSpec::v100(2),
        points,
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 10: GFlop/s, 3D multiplication, 4 V100s, with the 3inputs
/// variant.
pub fn fig10() -> FigureSpec {
    let points = GEMM3D_N
        .iter()
        .map(|&n| SweepPoint {
            workload: Workload::Gemm3d { n },
            schedulers: vec![
                S::Eager,
                S::Dmdar,
                S::DartsLuf,
                S::DartsLuf3,
                S::HmetisR,
            ],
        })
        .collect();
    FigureSpec {
        id: "fig10",
        title: "3D matrix multiplication, 4 GPUs",
        spec: PlatformSpec::v100(4),
        points,
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 11: GFlop/s, Cholesky task set, 4 V100s, with the OPTI variants
/// the paper introduces for its huge task counts. The exhaustive-scan
/// DARTS variants are only run on the smaller tile grids — on the large
/// ones their scheduling time is prohibitive, which is precisely the
/// finding that motivates OPTI (§V-F).
pub fn fig11() -> FigureSpec {
    let points = CHOLESKY_N
        .iter()
        .map(|&n| {
            let mut schedulers = vec![S::Eager, S::Dmdar, S::DartsLufOpti3, S::HmetisR];
            if n <= 32 {
                schedulers.push(S::DartsLuf);
                schedulers.push(S::DartsLuf3);
            }
            SweepPoint {
                workload: Workload::Cholesky { n },
                schedulers,
            }
        })
        .collect();
    FigureSpec {
        id: "fig11",
        title: "Cholesky task set, 4 GPUs",
        spec: PlatformSpec::v100(4),
        points,
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 12: GFlop/s, sparse 2D multiplication (2 % density), 4 V100s,
/// 500 MB memory clamp.
pub fn fig12() -> FigureSpec {
    let points = SPARSE_N
        .iter()
        .map(|&n| SweepPoint {
            workload: Workload::Sparse2d {
                n,
                density: 0.02,
                seed: 7,
            },
            schedulers: vec![
                S::Eager,
                S::Dmdar,
                S::DartsLuf,
                S::DartsLufOpti,
                S::HmetisR,
            ],
        })
        .collect();
    FigureSpec {
        id: "fig12",
        title: "sparse 2D matrix multiplication, 4 GPUs",
        spec: PlatformSpec::v100(4),
        points,
        metric: Metric::Gflops,
        faults: FaultPlan::none(),
    }
}

/// Figure 13: as Figure 12 but without the memory limitation (32 GB per
/// GPU).
pub fn fig13() -> FigureSpec {
    let mut fig = fig12();
    fig.id = "fig13";
    fig.title = "sparse 2D matrix multiplication, 4 GPUs, 32 GB (no memory limit)";
    fig.spec = PlatformSpec::v100_unlimited(4);
    fig
}

/// Every figure, in order.
pub fn all_figures() -> Vec<FigureSpec> {
    vec![
        fig03(),
        fig04(),
        fig05(),
        fig06(),
        fig07(),
        fig08(),
        fig09(),
        fig10(),
        fig11(),
        fig12(),
        fig13(),
    ]
}

/// A reduced version of `fig` for smoke tests and benches: keeps roughly
/// every other sweep point, dropping the largest sizes.
pub fn quick(fig: FigureSpec) -> FigureSpec {
    let keep = (fig.points.len() / 2).clamp(2, 4);
    FigureSpec {
        points: fig.points.into_iter().take(keep).collect(),
        ..fig
    }
}

/// `fig` with every mHFP entry running the paper's original quadratic
/// packing in `prepare` (`--paper-timing`): the produced queues, and
/// therefore every simulated decision and transfer count, are identical —
/// only the measured scheduling time reverts to the published behaviour,
/// which matters for the figures that charge prepare wall time to the
/// makespan (Figure 6).
pub fn paper_timing(mut fig: FigureSpec) -> FigureSpec {
    for p in &mut fig.points {
        for s in &mut p.schedulers {
            if *s == S::Mhfp {
                *s = S::MhfpPaperTiming;
            }
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_have_distinct_ids_and_points() {
        let figs = all_figures();
        assert_eq!(figs.len(), 11);
        let mut ids: Vec<_> = figs.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 11, "figure ids must be unique");
        for f in &figs {
            assert!(!f.points.is_empty(), "{} has no sweep points", f.id);
            for p in &f.points {
                assert!(!p.schedulers.is_empty());
            }
        }
    }

    #[test]
    fn mhfp_only_runs_on_small_working_sets() {
        let fig = fig03();
        for p in &fig.points {
            let n = match p.workload {
                Workload::Gemm2d { n } => n,
                _ => unreachable!(),
            };
            let has_mhfp = p.schedulers.contains(&NamedScheduler::Mhfp);
            assert_eq!(has_mhfp, n <= MHFP_MAX_N, "n = {n}");
        }
    }

    #[test]
    fn fig13_lifts_the_memory_clamp() {
        assert_eq!(fig12().spec.memory_bytes, 500_000_000);
        assert_eq!(fig13().spec.memory_bytes, 32_000_000_000);
    }

    #[test]
    fn quick_figures_shrink_the_sweep() {
        let q = quick(fig05());
        assert!(q.points.len() <= 4);
        assert_eq!(q.id, "fig05");
    }

    #[test]
    fn paper_timing_swaps_every_mhfp_entry() {
        let fig = paper_timing(fig03());
        let swapped: usize = fig
            .points
            .iter()
            .flat_map(|p| &p.schedulers)
            .filter(|s| **s == NamedScheduler::MhfpPaperTiming)
            .count();
        assert!(swapped > 0, "fig03 must carry mHFP points");
        for p in &fig.points {
            assert!(
                !p.schedulers.contains(&NamedScheduler::Mhfp),
                "plain mHFP left behind"
            );
        }
        // Figures without mHFP pass through unchanged.
        let untouched = paper_timing(fig09());
        assert_eq!(untouched.points.len(), fig09().points.len());
        for p in &untouched.points {
            assert!(!p.schedulers.contains(&NamedScheduler::MhfpPaperTiming));
        }
    }

    #[test]
    fn smoke_run_quick_fig03() {
        // End-to-end: run a reduced Figure 3 and verify the qualitative
        // ordering at the smallest sizes (everything near roofline).
        let q = quick(fig03());
        let rows = q.run().expect("fault-free run");
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.gflops > 0.0, "{}: no throughput", r.scheduler);
        }
    }
}
