//! The cache-pressure routing sweep behind the `prefix_route` binary
//! and the `prefix_route` bench: a seeded prefix-tree request stream
//! (the multi-GPU KV/prefix-cache serving scenario) swept over cache
//! pressure — tree bytes / aggregate GPU memory — comparing the
//! residency-aware Router against DMDAR, DARTS and EAGER on p99
//! latency, bytes transferred, and prefix-cache hit rate.
//!
//! Pressure is the x-axis of the scenario: at 0.5× the whole tree fits
//! in the two GPUs and every policy converges once the tree is warm; at
//! 2–4× placement decides what gets re-fetched, which is where the
//! Router's `recomp_bytes + α·load` score pays.

use memsched_model::TaskSet;
use memsched_platform::{
    run_with_config, AdmissionConfig, PlatformSpec, RunConfig, RunError, RunReport,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::{
    open_loop_arrivals, prefix, ArrivalPattern, PrefixConfig,
};

/// Cache-pressure points of the sweep: tree bytes / aggregate GPU
/// memory. 0.5× (everything fits) through 4× (three quarters of every
/// path must be re-fetched somewhere).
pub const PRESSURES: &[f64] = &[0.5, 1.0, 2.0, 4.0];

/// The four families the scenario compares (the paper's baselines plus
/// the Router).
pub fn schedulers() -> Vec<NamedScheduler> {
    vec![
        NamedScheduler::Router,
        NamedScheduler::Dmdar,
        NamedScheduler::DartsLuf,
        NamedScheduler::Eager,
    ]
}

/// Sweep configuration: one prefix-tree stream shared by every
/// (pressure × scheduler) cell.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Requests in the stream.
    pub tasks: usize,
    /// Poisson arrival rate stamped onto the stream.
    pub rate_per_sec: f64,
    /// Generation + arrival seed.
    pub seed: u64,
}

impl SweepConfig {
    /// The default sweep: 4000 requests over the serving-default tree,
    /// long enough for every policy's steady state to dominate warm-up.
    pub fn full(seed: u64) -> Self {
        SweepConfig {
            tasks: 4000,
            rate_per_sec: 2000.0,
            seed,
        }
    }

    /// CI-friendly sweep: same tree and rate, half the requests. Still
    /// past the warm-up knee — the Router/EAGER transfer gap at 2× is
    /// established by ~2000 requests — so CI asserts the same margins.
    pub fn quick(seed: u64) -> Self {
        SweepConfig {
            tasks: 2000,
            rate_per_sec: 2000.0,
            seed,
        }
    }
}

/// The request stream: serving-default prefix tree with Poisson
/// open-loop arrivals. Pure function of the config.
pub fn sweep_taskset(cfg: &SweepConfig) -> TaskSet {
    let ts = prefix::prefix_tree(&PrefixConfig::serving_default(cfg.tasks, cfg.seed));
    let arrivals = open_loop_arrivals(
        &ArrivalPattern::Poisson {
            rate_per_sec: cfg.rate_per_sec,
        },
        cfg.seed,
        ts.num_tasks(),
    );
    ts.with_arrivals(arrivals)
}

/// The two-V100 platform at a given cache pressure: per-GPU memory is
/// `tree_bytes / (2 × pressure)`, floored at twice the largest request
/// footprint so every task always fits.
pub fn sweep_spec(ts: &TaskSet, pressure: f64) -> PlatformSpec {
    assert!(pressure > 0.0, "cache pressure must be positive");
    let tree = prefix::tree_bytes(ts);
    let max_footprint = ts.tasks().map(|t| ts.task_footprint(t)).max().unwrap_or(0);
    let per_gpu = ((tree as f64 / (2.0 * pressure)) as u64).max(2 * max_footprint);
    PlatformSpec::v100(2).with_memory(per_gpu)
}

/// One cell of the sweep, run online (admission loop, defer-only).
pub fn run_cell(
    ts: &TaskSet,
    spec: &PlatformSpec,
    named: &NamedScheduler,
) -> Result<RunReport, RunError> {
    let mut sched = named.build();
    let config = RunConfig {
        admission: Some(AdmissionConfig::default()),
        ..RunConfig::default()
    };
    run_with_config(ts, spec, sched.as_mut(), &config).map(|(report, _)| report)
}

/// One row of the sweep result.
#[derive(Clone, Debug)]
pub struct PressureRow {
    /// Scheduler display name.
    pub scheduler: String,
    /// Cache pressure of the cell (tree bytes / aggregate memory).
    pub pressure: f64,
    /// Requests served.
    pub tasks: usize,
    /// Tree bytes (the pressure numerator).
    pub tree_bytes: u64,
    /// The full report (latency quantiles under `online`).
    pub report: RunReport,
}

impl PressureRow {
    /// CSV header matching [`PressureRow::csv`].
    pub const CSV_HEADER: &'static str = "scheduler,pressure_x,tasks,tree_mb,makespan_ns,\
                                          p50_latency_ns,p99_latency_ns,throughput_tps,\
                                          transferred_mb,cache_hit_rate,evictions";

    /// Render the row as one CSV line.
    pub fn csv(&self) -> String {
        let o = self.report.online.clone().unwrap_or_default();
        format!(
            "{},{},{},{:.1},{},{},{},{:.3},{:.1},{:.4},{}",
            self.scheduler,
            self.pressure,
            self.tasks,
            self.tree_bytes as f64 / 1e6,
            self.report.makespan,
            o.p50_latency,
            o.p99_latency,
            o.throughput_tps,
            self.report.transfers_mb(),
            self.report.cache_hit_rate(),
            self.report.total_evictions,
        )
    }
}

/// Run the full (pressure × scheduler) sweep serially, in deterministic
/// cell order. The task set is generated once and shared.
pub fn run_sweep(cfg: &SweepConfig) -> Result<Vec<PressureRow>, RunError> {
    let ts = sweep_taskset(cfg);
    let tree = prefix::tree_bytes(&ts);
    let mut rows = Vec::new();
    for &pressure in PRESSURES {
        let spec = sweep_spec(&ts, pressure);
        for named in schedulers() {
            let report = run_cell(&ts, &spec, &named)?;
            rows.push(PressureRow {
                scheduler: report.scheduler.clone(),
                pressure,
                tasks: ts.num_tasks(),
                tree_bytes: tree,
                report,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_tracks_pressure() {
        let cfg = SweepConfig {
            tasks: 50,
            rate_per_sec: 1000.0,
            seed: 1,
        };
        let ts = sweep_taskset(&cfg);
        let tree = prefix::tree_bytes(&ts);
        let half = sweep_spec(&ts, 0.5);
        let four = sweep_spec(&ts, 4.0);
        // 0.5× pressure: aggregate memory is 2× the tree, so each of the
        // two GPUs holds the whole tree.
        assert_eq!(half.memory_bytes, tree);
        assert!(four.memory_bytes < half.memory_bytes);
    }

    #[test]
    fn quick_sweep_produces_all_cells() {
        let cfg = SweepConfig {
            tasks: 60,
            rate_per_sec: 3000.0,
            seed: 7,
        };
        let rows = run_sweep(&cfg).expect("sweep runs");
        assert_eq!(rows.len(), PRESSURES.len() * schedulers().len());
        for row in &rows {
            let o = row.report.online.as_ref().expect("online run");
            assert_eq!(o.tasks_admitted, 60, "{} lost tasks", row.scheduler);
            assert!(!row.csv().is_empty());
        }
    }
}
