//! Observed-run export for the figure binaries (`--trace-out`,
//! `--trace-format`, `--metrics-out`) plus the Chrome-trace linter
//! behind the `trace_lint` binary.
//!
//! A figure sweep runs dozens of cells; recording all of them would
//! produce gigabytes of spans nobody opens. Instead the harness re-runs
//! **one representative cell** — the last sweep point (largest working
//! set, where contention is most visible) with the point's first
//! scheduler — through [`memsched_platform::run_observed`] and writes:
//!
//! - the timeline in Chrome Trace Event Format (Perfetto,
//!   `chrome://tracing`) or Paje (`.trace`, ViTE) — `--trace-out`;
//! - a metrics JSON (counters, histograms, gauge timeseries, per-GPU
//!   busy/stall/idle split, bus-utilization timeline) — `--metrics-out`.
//!
//! Both paths are validated at argument-parse time (parent directory
//! must exist, path must not be a directory), matching the `--faults`
//! convention: a bad invocation exits with status 2 and a readable
//! message before any cell runs.

use crate::harness::FigureSpec;
use memsched_platform::obs::{bus_utilization, chrome_trace_json, paje_trace, Metrics, Probe};
use memsched_platform::{run_observed, RunConfig};
use serde::{Number, Value};
use std::path::Path;

/// Timeline export format selected by `--trace-format`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome Trace Event Format JSON (Perfetto, `chrome://tracing`).
    #[default]
    Chrome,
    /// Paje `.trace` (ViTE, the StarPU-native visualization path).
    Paje,
}

impl TraceFormat {
    /// Parse a `--trace-format` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "chrome" => Ok(Self::Chrome),
            "paje" => Ok(Self::Paje),
            other => Err(format!(
                "--trace-format {other:?}: expected \"chrome\" or \"paje\""
            )),
        }
    }
}

/// Observability outputs requested on the command line; inactive (both
/// paths `None`) unless `--trace-out` / `--metrics-out` were given.
#[derive(Clone, Debug, Default)]
pub struct ObsOut {
    /// `--trace-out PATH`: timeline destination.
    pub trace_out: Option<String>,
    /// `--trace-format chrome|paje` (default chrome).
    pub trace_format: TraceFormat,
    /// `--metrics-out PATH`: metrics JSON destination.
    pub metrics_out: Option<String>,
}

impl ObsOut {
    /// Whether any output was requested.
    pub fn is_active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// A copy with `.fig06` (etc.) inserted before each path's
    /// extension, so `all_figures` can fan one `--trace-out` over every
    /// figure without the files clobbering each other.
    pub fn suffixed(&self, id: &str) -> ObsOut {
        ObsOut {
            trace_out: self.trace_out.as_deref().map(|p| suffix_path(p, id)),
            trace_format: self.trace_format,
            metrics_out: self.metrics_out.as_deref().map(|p| suffix_path(p, id)),
        }
    }
}

/// `results/trace.json` + `fig06` → `results/trace.fig06.json`.
fn suffix_path(path: &str, id: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => {
            format!("{stem}.{id}.{ext}")
        }
        _ => format!("{path}.{id}"),
    }
}

/// Reject unusable output paths before any cell runs: the path must not
/// be a directory and its parent directory must already exist. Returns
/// a message naming the flag, ready for the parser's exit-2 path.
pub fn validate_out_path(flag: &str, path: &str) -> Result<(), String> {
    if path.is_empty() {
        return Err(format!("{flag}: path is empty"));
    }
    let p = Path::new(path);
    if p.is_dir() {
        return Err(format!("{flag} {path:?}: path is a directory"));
    }
    let parent = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if !parent.is_dir() {
        return Err(format!(
            "{flag} {path:?}: parent directory {:?} does not exist",
            parent.display()
        ));
    }
    Ok(())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Run the figure's representative cell observed and write the
/// requested files. No-op when nothing was requested. The cell is the
/// **last sweep point, first scheduler** — deterministic, so repeated
/// invocations produce identical traces.
pub fn export_figure(fig: &FigureSpec, out: &ObsOut) -> Result<(), String> {
    if !out.is_active() {
        return Ok(());
    }
    let point = fig
        .points
        .last()
        .ok_or_else(|| format!("{}: no sweep points to observe", fig.id))?;
    let named = point
        .schedulers
        .first()
        .ok_or_else(|| format!("{}: observed point has no schedulers", fig.id))?;
    let ts = point.workload.generate();
    let mut sched = named.build();
    let probe = Probe::unbounded();
    let config = RunConfig {
        faults: fig.faults.clone(),
        ..RunConfig::default()
    };
    let (report, _trace) = run_observed(&ts, &fig.spec, sched.as_mut(), &config, &probe)
        .map_err(|e| format!("{}: observed cell failed: {e}", fig.id))?;
    let events = probe.events();

    if let Some(path) = &out.trace_out {
        let text = match out.trace_format {
            TraceFormat::Chrome => chrome_trace_json(&events)
                .map_err(|e| format!("{}: chrome export: {e}", fig.id))?,
            TraceFormat::Paje => {
                paje_trace(&events).map_err(|e| format!("{}: paje export: {e}", fig.id))?
            }
        };
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {path} ({} events, {} · {} on {})",
            events.len(),
            point.workload.label(),
            report.scheduler,
            fig.id
        );
    }

    if let Some(path) = &out.metrics_out {
        let text = render_metrics(fig, &events, &report, &probe)?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Number of equal slices the bus-utilization timeline is bucketed into.
const BUS_BUCKETS: usize = 50;

/// Metrics JSON for one observed run: registry (counters, histograms,
/// gauge snapshots) plus the derived per-GPU busy/stall/idle split and
/// the bus-utilization timeline.
fn render_metrics(
    fig: &FigureSpec,
    events: &[memsched_platform::ObsEvent],
    report: &memsched_platform::RunReport,
    probe: &Probe,
) -> Result<String, String> {
    let makespan = report.makespan;
    // Snapshot cadence: ~64 slices of the run (at least 1 ns apart).
    let mut metrics = Metrics::with_snapshots((makespan / 64).max(1));
    metrics.ingest(events);
    let util = bus_utilization(events, BUS_BUCKETS, makespan)
        .map_err(|e| format!("{}: bus utilization: {e}", fig.id))?;

    let per_gpu: Vec<Value> = report
        .per_gpu
        .iter()
        .enumerate()
        .map(|(g, st)| {
            obj(vec![
                ("gpu", Value::Num(Number::U(g as u64))),
                ("busy_ns", Value::Num(Number::U(st.busy))),
                ("stall_ns", Value::Num(Number::U(st.stall))),
                ("idle_ns", Value::Num(Number::U(st.idle))),
                ("tasks", Value::Num(Number::U(st.tasks as u64))),
                ("loads", Value::Num(Number::U(st.loads))),
                ("evictions", Value::Num(Number::U(st.evictions))),
                ("cache_hit_bytes", Value::Num(Number::U(st.cache_hit_bytes))),
                ("cache_miss_bytes", Value::Num(Number::U(st.cache_miss_bytes))),
            ])
        })
        .collect();

    let root = obj(vec![
        ("figure", Value::Str(fig.id.to_string())),
        (
            "workload",
            Value::Str(
                fig.points
                    .last()
                    .map(|p| p.workload.label())
                    .unwrap_or_default(),
            ),
        ),
        ("scheduler", Value::Str(report.scheduler.clone())),
        ("makespan_ns", Value::Num(Number::U(makespan))),
        ("events", Value::Num(Number::U(events.len() as u64))),
        ("dropped_events", Value::Num(Number::U(probe.dropped()))),
        ("per_gpu", Value::Arr(per_gpu)),
        (
            "bus_utilization",
            Value::Arr(util.into_iter().map(|v| Value::Num(Number::F(v))).collect()),
        ),
        ("metrics", metrics.to_value()),
    ]);
    serde_json::to_string_pretty(&root).map_err(|e| format!("serialize metrics: {e}"))
}

/// Summary counts of a linted Chrome trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeLint {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// `"ph": "X"` complete spans.
    pub spans: usize,
    /// `"ph": "i"` instants.
    pub instants: usize,
    /// `"ph": "C"` counter samples.
    pub counters: usize,
    /// `"ph": "M"` metadata entries.
    pub metadata: usize,
    /// Distinct `tid`s seen.
    pub tracks: usize,
    /// Distinct PCI-bus `tid`s seen (1 on single-bus platforms; one per
    /// bus group on multi-bus platforms).
    pub bus_tracks: usize,
    /// Admission-track instants (arrive/admit/defer), zero on batch runs.
    pub admission: usize,
}

/// Chrome `tid` ranges of the simulator's fixed track layout
/// (`Track::tid` in the obs crate): GPUs are `0..1000`, the PCI buses
/// `1000` (bus 0) and `1100 + n` (bus `n ≥ 1`), NVLink `1001`.
fn is_bus_tid(tid: u64) -> bool {
    tid == 1000 || (1100..2000).contains(&tid)
}

fn is_interconnect_tid(tid: u64) -> bool {
    is_bus_tid(tid) || tid == 1001
}

fn num_of(v: &Value) -> Option<f64> {
    match v {
        Value::Num(Number::U(u)) => Some(*u as f64),
        Value::Num(Number::I(i)) => Some(*i as f64),
        Value::Num(Number::F(f)) => Some(*f),
        _ => None,
    }
}

fn require_num(ev: &Value, key: &str, i: usize) -> Result<f64, String> {
    let v = ev
        .field(key, "event")
        .map_err(|_| format!("event {i}: missing {key:?}"))?;
    num_of(v).ok_or_else(|| format!("event {i}: {key:?} is not a number"))
}

/// Validate a parsed Chrome Trace Event JSON document: the structural
/// schema (`traceEvents` array; every event carries `ph`/`pid`/`tid`;
/// spans carry numeric non-negative `ts`/`dur`) plus the simulator's
/// own guarantees:
///
/// * spans on one track never overlap (per-GPU compute is sequential
///   and each PCI bus is FIFO — on multi-bus platforms every bus group
///   gets its own track, checked independently);
/// * transfer spans live on interconnect tracks (a PCI bus or NVLink)
///   and compute spans on GPU tracks — a transfer rendered onto a GPU
///   track would hide a bus-serialization bug;
/// * within each track, spans appear in the file in non-decreasing
///   `ts` order — the canonical `(time, gpu)` trace order that the
///   sharded tier's merge must reproduce byte-identically, surviving
///   export (the shard-merge invariant).
pub fn lint_chrome(doc: &Value) -> Result<ChromeLint, String> {
    let events = doc
        .field("traceEvents", "trace")
        .map_err(|_| "top level: missing \"traceEvents\"".to_string())?
        .as_arr()
        .ok_or_else(|| "\"traceEvents\" is not an array".to_string())?;

    let mut lint = ChromeLint {
        events: events.len(),
        ..ChromeLint::default()
    };
    // (tid, ts, ts+dur) of every span, for the per-track overlap check.
    let mut spans: Vec<(u64, f64, f64)> = Vec::new();
    let mut tids: Vec<u64> = Vec::new();
    // Last span begin per track, for the canonical-order check.
    let mut last_begin: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    // Admission-track state: arrivals must be time-ordered, and a task
    // can only be admitted at or after its recorded arrival.
    let mut last_arrival = f64::NEG_INFINITY;
    let mut arrivals: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    // Tasks dropped by the overload-control policy: dropped at most once,
    // and never admitted afterwards.
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .field("ph", "event")
            .map_err(|_| format!("event {i}: missing \"ph\""))?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?;
        if ev.field("name", "event").is_err() {
            return Err(format!("event {i}: missing \"name\""));
        }
        let tid = require_num(ev, "tid", i)? as u64;
        require_num(ev, "pid", i)?;
        tids.push(tid);
        match ph {
            "X" => {
                lint.spans += 1;
                let ts = require_num(ev, "ts", i)?;
                let dur = require_num(ev, "dur", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                match ev.field("cat", "event").ok().and_then(Value::as_str) {
                    Some("transfer") if !is_interconnect_tid(tid) => {
                        return Err(format!(
                            "event {i}: transfer span on non-interconnect track {tid}"
                        ));
                    }
                    Some("compute") if tid >= 1000 => {
                        return Err(format!(
                            "event {i}: compute span on non-GPU track {tid}"
                        ));
                    }
                    _ => {}
                }
                if let Some(&prev) = last_begin.get(&tid) {
                    if ts + EPS_US < prev {
                        return Err(format!(
                            "event {i}: track {tid} spans out of canonical order \
                             ({ts} after {prev})"
                        ));
                    }
                }
                last_begin.insert(tid, last_begin.get(&tid).copied().unwrap_or(ts).max(ts));
                spans.push((tid, ts, ts + dur));
            }
            "i" => {
                lint.instants += 1;
                let ts = require_num(ev, "ts", i)?;
                let cat = ev.field("cat", "event").ok().and_then(Value::as_str);
                if cat == Some("admission") {
                    lint.admission += 1;
                    let name = ev
                        .field("name", "event")
                        .ok()
                        .and_then(Value::as_str)
                        .unwrap_or_default();
                    let task = ev
                        .field("args", "event")
                        .ok()
                        .and_then(|a| a.field("task", "args").ok())
                        .and_then(num_of)
                        .ok_or_else(|| {
                            format!("event {i}: admission instant without args.task")
                        })? as u64;
                    if let Some(rest) = name.strip_prefix("arrive ") {
                        let _ = rest;
                        if ts + EPS_US < last_arrival {
                            return Err(format!(
                                "event {i}: arrivals out of order ({ts} after {last_arrival})"
                            ));
                        }
                        last_arrival = last_arrival.max(ts);
                        arrivals.insert(task, ts);
                    } else if name.starts_with("admit ") || name.starts_with("defer ") {
                        let arrived = arrivals.get(&task).copied().ok_or_else(|| {
                            format!("event {i}: task {task} admitted/deferred before arriving")
                        })?;
                        if ts + EPS_US < arrived {
                            return Err(format!(
                                "event {i}: task {task} admitted at {ts} before its arrival \
                                 at {arrived}"
                            ));
                        }
                        if name.starts_with("admit ") && dropped.contains(&task) {
                            return Err(format!(
                                "event {i}: task {task} admitted after being shed/expired"
                            ));
                        }
                    } else if name.starts_with("shed ") || name.starts_with("expire ") {
                        let arrived = arrivals.get(&task).copied().ok_or_else(|| {
                            format!("event {i}: task {task} shed/expired before arriving")
                        })?;
                        if ts + EPS_US < arrived {
                            return Err(format!(
                                "event {i}: task {task} shed at {ts} before its arrival \
                                 at {arrived}"
                            ));
                        }
                        if !dropped.insert(task) {
                            return Err(format!("event {i}: task {task} dropped twice"));
                        }
                    } else {
                        return Err(format!(
                            "event {i}: unexpected admission instant {name:?}"
                        ));
                    }
                }
            }
            "C" => {
                lint.counters += 1;
                require_num(ev, "ts", i)?;
            }
            "M" => lint.metadata += 1,
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    tids.sort_unstable();
    tids.dedup();
    lint.tracks = tids.len();
    lint.bus_tracks = tids.iter().filter(|&&t| is_bus_tid(t)).count();

    spans.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
    // ts/dur are microsecond doubles converted from exact nanosecond
    // integers; summing them can overshoot by an ulp, so abutting spans
    // get one simulator tick (1 ns = 1e-3 us) of tolerance.
    const EPS_US: f64 = 1e-3;
    for w in spans.windows(2) {
        let ((tid_a, _, end_a), (tid_b, start_b, _)) = (w[0], w[1]);
        if tid_a == tid_b && start_b + EPS_US < end_a {
            return Err(format!(
                "track {tid_a}: overlapping spans (ends {end_a}, next begins {start_b})"
            ));
        }
    }
    Ok(lint)
}

/// Summary of a linted metrics JSON (`--metrics-out` output).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsLint {
    /// Histograms checked.
    pub histograms: usize,
    /// Whether the run carried admission traffic (online serving mode).
    pub online: bool,
}

fn require_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    let f = v
        .field(key, ctx)
        .map_err(|_| format!("{ctx}: missing {key:?}"))
        .and_then(|x| num_of(x).ok_or_else(|| format!("{ctx}.{key}: not a number")))?;
    Ok(f as u64)
}

/// Sanity-check a metrics JSON produced by `--metrics-out`: every
/// histogram must satisfy `p50 ≤ p99` with `min ≤ p50 ≤ p99 ≤ 2·max`
/// when non-empty (quantiles are log2 bucket upper bounds, so they may
/// overshoot the exact max by less than 2×), and on online runs the latency histogram must hold one
/// sample per completed task while the admission counters stay
/// consistent (`admitted ≤ arrived`, `deferred ≤ arrived`, and the
/// exactly-once outcome `admitted + shed + expired = arrived`).
pub fn lint_metrics(doc: &Value) -> Result<MetricsLint, String> {
    let m = doc
        .field("metrics", "root")
        .map_err(|_| "top level: missing \"metrics\"".to_string())?;
    let histograms = m
        .field("histograms", "metrics")
        .map_err(|_| "metrics: missing \"histograms\"".to_string())?;
    let counters = m
        .field("counters", "metrics")
        .map_err(|_| "metrics: missing \"counters\"".to_string())?;

    let mut lint = MetricsLint::default();
    let entries = match histograms {
        Value::Obj(entries) => entries,
        _ => return Err("\"histograms\" is not an object".to_string()),
    };
    let mut latency_count = 0u64;
    for (name, h) in entries {
        let ctx = format!("histograms.{name}");
        let count = require_u64(h, "count", &ctx)?;
        let p50 = require_u64(h, "p50", &ctx)?;
        let p99 = require_u64(h, "p99", &ctx)?;
        let max = require_u64(h, "max", &ctx)?;
        if p50 > p99 {
            return Err(format!("{ctx}: p50 {p50} > p99 {p99}"));
        }
        if count > 0 {
            let min = require_u64(h, "min", &ctx)?;
            // Quantiles come from log2 bucket upper bounds, so they can
            // overshoot the exact max by up to 2× — never more.
            if min > p50 || p99 > max.saturating_mul(2) {
                return Err(format!(
                    "{ctx}: quantiles not ordered (min {min}, p50 {p50}, p99 {p99}, max {max})"
                ));
            }
        }
        if name == "task_latency_ns" {
            latency_count = count;
        }
        lint.histograms += 1;
    }

    let arrived = require_u64(counters, "tasks_arrived", "counters")?;
    let admitted = require_u64(counters, "tasks_admitted", "counters")?;
    let deferred = require_u64(counters, "tasks_deferred", "counters")?;
    let shed = require_u64(counters, "tasks_shed", "counters")?;
    let expired = require_u64(counters, "deadlines_expired", "counters")?;
    let tasks = require_u64(counters, "tasks", "counters")?;
    if arrived > 0 {
        lint.online = true;
        if admitted > arrived || deferred > arrived {
            return Err(format!(
                "admission counters inconsistent: arrived {arrived}, admitted {admitted}, \
                 deferred {deferred}"
            ));
        }
        // Exactly-once admission outcome: a completed serving run admits
        // or drops every arrival, with nothing left in the queue.
        if admitted + shed + expired != arrived {
            return Err(format!(
                "admission outcomes don't cover arrivals: arrived {arrived}, \
                 admitted {admitted}, shed {shed}, expired {expired}"
            ));
        }
        if latency_count != tasks {
            return Err(format!(
                "task_latency_ns holds {latency_count} samples but {tasks} tasks completed"
            ));
        }
    } else if shed + expired != 0 {
        return Err(format!(
            "batch run (no arrivals) sheds tasks (shed {shed}, expired {expired})"
        ));
    } else if latency_count != 0 {
        return Err(format!(
            "batch run (no arrivals) carries {latency_count} latency samples"
        ));
    }

    // Counter identity: the registry's cache byte counters are derived
    // from the event stream, the per-GPU report fields from the engine's
    // own accounting — two independent pipelines that must agree (unless
    // the probe dropped events, in which case the registry undercounts).
    let hit = require_u64(counters, "cache_hit_bytes", "counters")?;
    let miss = require_u64(counters, "cache_miss_bytes", "counters")?;
    let dropped = require_u64(doc, "dropped_events", "root").unwrap_or(0);
    if let Ok(Value::Arr(gpus)) = doc.field("per_gpu", "root") {
        let mut rep_hit = 0u64;
        let mut rep_miss = 0u64;
        for (g, entry) in gpus.iter().enumerate() {
            let ctx = format!("per_gpu[{g}]");
            rep_hit += require_u64(entry, "cache_hit_bytes", &ctx)?;
            rep_miss += require_u64(entry, "cache_miss_bytes", &ctx)?;
        }
        if dropped == 0 && (rep_hit != hit || rep_miss != miss) {
            return Err(format!(
                "cache counters disagree with the per-GPU report: registry \
                 hit {hit} / miss {miss}, report hit {rep_hit} / miss {rep_miss}"
            ));
        }
    }
    Ok(lint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    #[test]
    fn trace_format_parses_or_rejects() {
        assert_eq!(TraceFormat::parse("chrome").unwrap(), TraceFormat::Chrome);
        assert_eq!(TraceFormat::parse("paje").unwrap(), TraceFormat::Paje);
        assert!(TraceFormat::parse("vite").is_err());
    }

    #[test]
    fn out_path_validation_matches_the_faults_convention() {
        assert!(validate_out_path("--trace-out", "").is_err());
        assert!(validate_out_path("--trace-out", "/definitely/not/here/x.json").is_err());
        assert!(validate_out_path("--trace-out", "/tmp").is_err(), "directory");
        assert!(validate_out_path("--trace-out", "trace.json").is_ok());
        assert!(validate_out_path("--metrics-out", "/tmp/metrics.json").is_ok());
    }

    #[test]
    fn suffixing_keeps_the_extension() {
        assert_eq!(suffix_path("results/t.json", "fig06"), "results/t.fig06.json");
        assert_eq!(suffix_path("trace", "fig03"), "trace.fig03");
        assert_eq!(suffix_path("a.b/trace", "fig03"), "a.b/trace.fig03");
    }

    fn lint_str(json: &str) -> Result<ChromeLint, String> {
        lint_chrome(&serde_json::parse_value(json).expect("valid JSON"))
    }

    #[test]
    fn multi_bus_trace_counts_bus_tracks() {
        let lint = lint_str(
            r#"{"traceEvents": [
                {"name": "T0", "cat": "compute", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 0.0, "dur": 1.0},
                {"name": "D0", "cat": "transfer", "ph": "X", "pid": 0, "tid": 1000,
                 "ts": 0.0, "dur": 1.0},
                {"name": "D1", "cat": "transfer", "ph": "X", "pid": 0, "tid": 1101,
                 "ts": 0.0, "dur": 1.0}
            ]}"#,
        )
        .expect("lintable");
        assert_eq!(lint.spans, 3);
        assert_eq!(lint.tracks, 3);
        assert_eq!(lint.bus_tracks, 2, "bus 0 (tid 1000) + bus 1 (tid 1101)");
    }

    #[test]
    fn transfer_span_on_gpu_track_is_rejected() {
        let err = lint_str(
            r#"{"traceEvents": [
                {"name": "D0", "cat": "transfer", "ph": "X", "pid": 0, "tid": 3,
                 "ts": 0.0, "dur": 1.0}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.contains("non-interconnect"), "{err}");
        let err = lint_str(
            r#"{"traceEvents": [
                {"name": "T0", "cat": "compute", "ph": "X", "pid": 0, "tid": 1000,
                 "ts": 0.0, "dur": 1.0}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.contains("non-GPU"), "{err}");
    }

    #[test]
    fn spans_out_of_canonical_order_are_rejected() {
        // Disjoint spans, so the overlap check alone would pass; only the
        // shard-merge (canonical order) invariant catches the swap.
        let err = lint_str(
            r#"{"traceEvents": [
                {"name": "D1", "cat": "transfer", "ph": "X", "pid": 0, "tid": 1000,
                 "ts": 5.0, "dur": 1.0},
                {"name": "D0", "cat": "transfer", "ph": "X", "pid": 0, "tid": 1000,
                 "ts": 0.0, "dur": 1.0}
            ]}"#,
        )
        .unwrap_err();
        assert!(err.contains("canonical order"), "{err}");
    }

    #[test]
    fn multi_bus_observed_run_lints_with_per_bus_tracks() {
        use memsched_platform::{run_observed, PlatformSpec};
        let ts = memsched_workloads::gemm_2d(6);
        let tile = ts.data_size(memsched_model::DataId(0));
        let spec = PlatformSpec::v100_multibus(4, 2).with_memory(16 * tile);
        let mut sched = memsched_schedulers::DmdaScheduler::dmda();
        let probe = Probe::unbounded();
        run_observed(&ts, &spec, &mut sched, &RunConfig::default(), &probe).expect("run");
        let text = chrome_trace_json(&probe.events()).expect("chrome export");
        let doc = serde_json::parse_value(&text).expect("valid JSON");
        let lint = lint_chrome(&doc).expect("multi-bus trace must lint clean");
        assert_eq!(lint.bus_tracks, 2, "one track per bus group");
        assert!(lint.spans > 0);
    }

    #[test]
    fn export_writes_lintable_trace_and_metrics() {
        let dir = std::env::temp_dir().join("memsched_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.json");
        let metrics = dir.join("m.json");
        let fig = figures::quick(figures::fig03());
        let out = ObsOut {
            trace_out: Some(trace.to_str().unwrap().into()),
            trace_format: TraceFormat::Chrome,
            metrics_out: Some(metrics.to_str().unwrap().into()),
        };
        export_figure(&fig, &out).expect("export");

        let doc = serde_json::parse_value(&std::fs::read_to_string(&trace).unwrap())
            .expect("valid JSON");
        let lint = lint_chrome(&doc).expect("lintable");
        assert!(lint.spans > 0, "trace must contain spans");
        assert!(lint.tracks >= 2, "GPU + bus tracks at least");

        let m = serde_json::parse_value(&std::fs::read_to_string(&metrics).unwrap())
            .expect("valid metrics JSON");
        let per_gpu = m.field("per_gpu", "metrics").unwrap().as_arr().unwrap();
        assert_eq!(per_gpu.len(), fig.spec.num_gpus);
        let makespan = match m.field("makespan_ns", "metrics").unwrap() {
            Value::Num(Number::U(u)) => *u,
            other => panic!("makespan_ns not a u64: {other:?}"),
        };
        for g in per_gpu {
            let part = |k: &str| match g.field(k, "gpu").unwrap() {
                Value::Num(Number::U(u)) => *u,
                other => panic!("{k} not a u64: {other:?}"),
            };
            assert_eq!(part("busy_ns") + part("stall_ns") + part("idle_ns"), makespan);
        }
        let util = m.field("bus_utilization", "metrics").unwrap().as_arr().unwrap();
        assert_eq!(util.len(), BUS_BUCKETS);

        // Paje output is non-empty and ViTE-shaped (header + states).
        let out = ObsOut {
            trace_out: Some(trace.to_str().unwrap().into()),
            trace_format: TraceFormat::Paje,
            metrics_out: None,
        };
        export_figure(&fig, &out).expect("paje export");
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.contains("%EventDef"), "paje header missing");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_rejects_malformed_documents() {
        let bad = serde_json::parse_value("{\"traceEvents\": [{\"ph\": \"X\"}]}").unwrap();
        assert!(lint_chrome(&bad).is_err(), "span without name/ts/dur");
        let not_obj = serde_json::parse_value("[1, 2]").unwrap();
        assert!(lint_chrome(&not_obj).is_err());
        let overlap = serde_json::parse_value(
            "{\"traceEvents\": [\
             {\"name\": \"a\", \"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"ts\": 0, \"dur\": 10},\
             {\"name\": \"b\", \"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"ts\": 5, \"dur\": 10}]}",
        )
        .unwrap();
        assert!(lint_chrome(&overlap).is_err(), "overlapping spans on one track");
    }
}
