//! Programmatic shape checks: the paper's qualitative claims, encoded as
//! assertions over a figure's measured rows. The figure binaries print
//! these verdicts after their tables, and the test suite runs them on
//! reduced sweeps — so a regression that flips a published comparison
//! fails loudly instead of silently producing a wrong curve.

use crate::harness::Row;

/// Outcome of one shape check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckResult {
    /// What was checked, in words.
    pub claim: String,
    /// Whether the measured rows satisfy it.
    pub pass: bool,
    /// Supporting detail (measured values).
    pub detail: String,
}

impl CheckResult {
    fn new(claim: &str, pass: bool, detail: String) -> Self {
        Self {
            claim: claim.to_string(),
            pass,
            detail,
        }
    }
}

fn metric(rows: &[Row], scheduler: &str, ws: f64) -> Option<f64> {
    rows.iter()
        .find(|r| r.scheduler == scheduler && r.ws_mb == ws)
        .map(|r| r.gflops_with_sched)
}

fn sizes(rows: &[Row]) -> Vec<f64> {
    let mut s: Vec<f64> = rows.iter().map(|r| r.ws_mb).collect();
    s.sort_by(f64::total_cmp);
    s.dedup();
    s
}

/// At the largest working set where both ran, `a` achieves at least
/// `factor ×` the throughput of `b`.
pub fn check_dominates_at_largest(
    rows: &[Row],
    a: &str,
    b: &str,
    factor: f64,
) -> CheckResult {
    let claim = format!("{a} ≥ {factor:.2}× {b} at the largest common working set");
    let common: Vec<f64> = sizes(rows)
        .into_iter()
        .filter(|&ws| metric(rows, a, ws).is_some() && metric(rows, b, ws).is_some())
        .collect();
    let Some(&ws) = common.last() else {
        return CheckResult::new(&claim, false, "no common working set".into());
    };
    let (va, vb) = (metric(rows, a, ws).unwrap(), metric(rows, b, ws).unwrap());
    CheckResult::new(
        &claim,
        va >= factor * vb,
        format!("at {ws:.0} MB: {a} = {va:.0}, {b} = {vb:.0}"),
    )
}

/// `scheduler` loses at least `drop_fraction` of its small-size
/// throughput by the largest size (a collapse check, e.g. EAGER past the
/// "B fits" line).
pub fn check_collapses(rows: &[Row], scheduler: &str, drop_fraction: f64) -> CheckResult {
    let claim = format!(
        "{scheduler} collapses by ≥ {:.0}% from its peak",
        drop_fraction * 100.0
    );
    let mine: Vec<&Row> = rows.iter().filter(|r| r.scheduler == scheduler).collect();
    let Some(peak) = mine
        .iter()
        .map(|r| r.gflops_with_sched)
        .max_by(f64::total_cmp)
    else {
        return CheckResult::new(&claim, false, "scheduler absent".into());
    };
    let Some(last) = mine.last().map(|r| r.gflops_with_sched) else {
        return CheckResult::new(&claim, false, "scheduler absent".into());
    };
    CheckResult::new(
        &claim,
        last <= (1.0 - drop_fraction) * peak,
        format!("peak {peak:.0}, final {last:.0}"),
    )
}

/// `scheduler` stays within `tolerance` of the roofline at every size it
/// ran (the DARTS+LUF "near optimal" claim).
pub fn check_near_roofline(
    rows: &[Row],
    scheduler: &str,
    roofline: f64,
    tolerance: f64,
) -> CheckResult {
    let claim = format!(
        "{scheduler} stays within {:.0}% of the roofline on its worst point past warm-up",
        tolerance * 100.0
    );
    // Skip the smallest size: startup transfer latency dominates there.
    let all = sizes(rows);
    let mine: Vec<&Row> = rows
        .iter()
        .filter(|r| r.scheduler == scheduler && Some(&r.ws_mb) != all.first())
        .collect();
    if mine.is_empty() {
        return CheckResult::new(&claim, false, "scheduler absent".into());
    }
    let worst = mine
        .iter()
        .map(|r| r.gflops_with_sched)
        .min_by(f64::total_cmp)
        .unwrap();
    CheckResult::new(
        &claim,
        worst >= (1.0 - tolerance) * roofline,
        format!("worst {worst:.0} vs roofline {roofline:.0}"),
    )
}

/// The paper's headline shape checks per figure id (GFlop/s figures
/// only). Thresholds are generous: they catch inversions, not noise.
pub fn shape_checks(figure_id: &str, rows: &[Row], roofline: f64) -> Vec<CheckResult> {
    match figure_id {
        "fig03" => vec![
            check_collapses(rows, "EAGER", 0.3),
            check_near_roofline(rows, "DARTS+LUF", roofline, 0.35),
            check_dominates_at_largest(rows, "DARTS+LUF", "EAGER", 1.3),
            check_dominates_at_largest(rows, "DARTS+LUF", "DMDAR", 1.0),
        ],
        "fig05" | "fig06" => vec![
            check_collapses(rows, "EAGER", 0.5),
            check_dominates_at_largest(rows, "DARTS+LUF", "DMDAR", 1.0),
            check_dominates_at_largest(rows, "DARTS+LUF", "hMETIS+R", 1.2),
        ],
        "fig08" => vec![
            check_collapses(rows, "EAGER", 0.4),
            check_collapses(rows, "hMETIS+R", 0.4),
        ],
        "fig09" => vec![
            check_collapses(rows, "DMDAR", 0.3),
            check_dominates_at_largest(rows, "DARTS+LUF", "DMDAR", 1.2),
        ],
        "fig10" => vec![check_dominates_at_largest(
            rows,
            "DARTS+LUF-3inputs",
            "DMDAR",
            1.1,
        )],
        "fig11" => vec![check_dominates_at_largest(
            rows,
            "DARTS+LUF+OPTI-3inputs",
            "hMETIS+R",
            1.4,
        )],
        "fig12" | "fig13" => vec![check_dominates_at_largest(
            rows,
            "DARTS+LUF",
            "DMDAR",
            1.1,
        )],
        _ => Vec::new(),
    }
}

/// Render check results as lines prefixed with PASS/FAIL.
pub fn render(results: &[CheckResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&format!(
            "# {} — {} ({})\n",
            if r.pass { "PASS" } else { "FAIL" },
            r.claim,
            r.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scheduler: &str, ws: f64, gflops: f64) -> Row {
        Row {
            figure: "t".into(),
            workload: "w".into(),
            ws_mb: ws,
            gpus: 1,
            scheduler: scheduler.into(),
            gflops,
            gflops_with_sched: gflops,
            transfers_mb: 0.0,
            loads: 0,
            evictions: 0,
            makespan_ms: 0.0,
            prepare_ms: 0.0,
            sched_ms: 0.0,
            max_load: 0,
            retries: 0,
            redispatched: 0,
            busy_ms: 0.0,
            stall_ms: 0.0,
            idle_ms: 0.0,
        }
    }

    #[test]
    fn dominates_at_largest_common_size() {
        let rows = vec![
            row("A", 100.0, 10.0),
            row("B", 100.0, 10.0),
            row("A", 200.0, 10.0),
            row("B", 200.0, 4.0),
        ];
        let r = check_dominates_at_largest(&rows, "A", "B", 2.0);
        assert!(r.pass, "{}", r.detail);
        let r = check_dominates_at_largest(&rows, "B", "A", 1.0);
        assert!(!r.pass);
    }

    #[test]
    fn collapse_detects_drop() {
        let rows = vec![row("E", 1.0, 100.0), row("E", 2.0, 40.0)];
        assert!(check_collapses(&rows, "E", 0.5).pass);
        assert!(!check_collapses(&rows, "E", 0.7).pass);
    }

    #[test]
    fn near_roofline_skips_first_point() {
        let rows = vec![
            row("D", 1.0, 10.0), // warm-up point, ignored
            row("D", 2.0, 95.0),
            row("D", 3.0, 90.0),
        ];
        assert!(check_near_roofline(&rows, "D", 100.0, 0.15).pass);
        assert!(!check_near_roofline(&rows, "D", 100.0, 0.05).pass);
    }

    #[test]
    fn unknown_figure_has_no_checks() {
        assert!(shape_checks("fig99", &[], 1.0).is_empty());
    }

    #[test]
    fn render_formats_verdicts() {
        let r = vec![CheckResult::new("c", true, "d".into())];
        assert_eq!(render(&r), "# PASS — c (d)\n");
    }
}
