//! Structured tracing and metrics for the memsched simulation
//! (`memsched-obs`).
//!
//! The simulation engine and the scheduler families emit typed
//! [`ObsEvent`]s — spans (transfer begin/end, compute begin/end) and
//! instants (evictions, scheduler decisions, steals, faults, gauges) —
//! into a [`Probe`], a cheaply cloneable handle over a ring-buffered
//! [`Recorder`]. The subsystem is strictly opt-in: when no probe is
//! attached the engine takes the exact same code path as before and the
//! golden traces stay byte-identical (see the `obs_overhead` bench).
//!
//! On top of the raw event stream:
//! - [`chrome::chrome_trace_json`] exports Chrome Trace Event Format
//!   (loadable in `chrome://tracing` and Perfetto), one track per GPU
//!   plus one for the PCI bus, NVLink and each scheduler context;
//! - [`paje::paje_trace`] exports a Paje `.trace` readable by ViTE,
//!   the StarPU-native visualization path;
//! - [`Metrics`] is a counter/gauge/histogram registry with periodic
//!   timeseries snapshots, fed from the same events;
//! - [`breakdown`] derives per-GPU busy/stall/idle splits and a bus
//!   utilization timeline from the span structure.
//!
//! This crate is deliberately free of simulation dependencies: events
//! carry raw `u32` ids so the crate sits below `memsched-platform` in
//! the dependency graph.

pub mod breakdown;
pub mod chrome;
pub mod event;
pub mod metrics;
pub mod paje;
pub mod sink;
pub mod wellformed;

pub use breakdown::{bus_utilization, bus_utilization_on, gpu_breakdowns, GpuBreakdown};
pub use chrome::{chrome_trace, chrome_trace_json};
pub use event::{GaugeKind, Nanos, ObsEvent, Track};
pub use metrics::{Counter, Histogram, Metrics, Snapshot};
pub use paje::paje_trace;
pub use sink::{Probe, Recorder, TraceSink};
pub use wellformed::{build_timeline, check_well_formed, Span, SpanKind, Timeline, WellFormedError};
