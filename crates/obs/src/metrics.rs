//! The metrics registry: counters, last-value gauges, log₂-bucketed
//! histograms, and periodic timeseries snapshots — all fed from the
//! same [`ObsEvent`] stream the exporters consume, so aggregate numbers
//! and timelines can never disagree.

use crate::event::{GaugeKind, Nanos, ObsEvent};
use crate::sink::TraceSink;
use serde::{Number, Value};
use std::collections::{BTreeMap, HashMap};

/// Monotone counters tracked by [`Metrics`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Delivered transfers (bus + NVLink).
    Loads,
    /// Data evictions.
    Evictions,
    /// Transfer attempts killed by injected faults.
    TransferRetries,
    /// Work-stealing operations.
    Steals,
    /// Tasks moved by stealing (one steal moves half a tail).
    StolenTasks,
    /// Tasks completed (interrupted executions excluded).
    Tasks,
    /// `pop_task` calls observed.
    Decisions,
    /// Fail-stop GPU failures.
    GpuFailures,
    /// Online arrivals at the admission loop.
    TasksArrived,
    /// Online admissions (tasks released to the scheduler).
    TasksAdmitted,
    /// Online arrivals deferred at least once.
    TasksDeferred,
    /// Online arrivals rejected by the shedding policy.
    TasksShed,
    /// Deferred tasks dropped after their deadline lapsed.
    DeadlinesExpired,
    /// Input bytes already resident (or in flight) on the chosen GPU at
    /// placement time, summed over all placed tasks.
    CacheHitBytes,
    /// Input bytes that still had to be fetched at placement time.
    CacheMissBytes,
}

impl Counter {
    /// All counters, in stable serialization order.
    pub const ALL: [Counter; 15] = [
        Counter::Loads,
        Counter::Evictions,
        Counter::TransferRetries,
        Counter::Steals,
        Counter::StolenTasks,
        Counter::Tasks,
        Counter::Decisions,
        Counter::GpuFailures,
        Counter::TasksArrived,
        Counter::TasksAdmitted,
        Counter::TasksDeferred,
        Counter::TasksShed,
        Counter::DeadlinesExpired,
        Counter::CacheHitBytes,
        Counter::CacheMissBytes,
    ];

    /// Stable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::Loads => "loads",
            Counter::Evictions => "evictions",
            Counter::TransferRetries => "transfer_retries",
            Counter::Steals => "steals",
            Counter::StolenTasks => "stolen_tasks",
            Counter::Tasks => "tasks",
            Counter::Decisions => "decisions",
            Counter::GpuFailures => "gpu_failures",
            Counter::TasksArrived => "tasks_arrived",
            Counter::TasksAdmitted => "tasks_admitted",
            Counter::TasksDeferred => "tasks_deferred",
            Counter::TasksShed => "tasks_shed",
            Counter::DeadlinesExpired => "deadlines_expired",
            Counter::CacheHitBytes => "cache_hit_bytes",
            Counter::CacheMissBytes => "cache_miss_bytes",
        }
    }

    fn index(&self) -> usize {
        Counter::ALL.iter().position(|c| c == self).unwrap()
    }
}

/// A log₂-bucketed histogram of non-negative values (durations in ns).
/// Bucket `i` holds values in `[2^(i-1), 2^i)`, bucket 0 holds zero —
/// coarse, allocation-free, and enough to tell a 2µs decision from a
/// 200µs one.
#[derive(Clone, Debug)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let bucket = if v == 0 { 0 } else { 64 - (v.leading_zeros() as usize) };
        self.buckets[bucket] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper edge of the bucket containing quantile `q` (0..=1). A
    /// bucket-resolution approximation: right for "which power of two",
    /// not for exact percentiles.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }

    /// JSON summary (count/sum/min/mean/p50/p99/max).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("count".into(), Value::Num(Number::U(self.count))),
            ("sum".into(), Value::Num(Number::U(self.sum))),
            ("min".into(), Value::Num(Number::U(self.min()))),
            ("mean".into(), Value::Num(Number::F(self.mean()))),
            ("p50".into(), Value::Num(Number::U(self.quantile(0.5)))),
            ("p99".into(), Value::Num(Number::U(self.quantile(0.99)))),
            ("max".into(), Value::Num(Number::U(self.max)))
        ])
    }
}

/// One periodic sample of the registry state.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Simulated time of the sample (a multiple of the interval).
    pub t: Nanos,
    /// Counter values at `t`, indexed like [`Counter::ALL`].
    pub counters: [u64; Counter::ALL.len()],
    /// Last-seen gauge values at `t`, by stable name.
    pub gauges: Vec<(String, f64)>,
}

fn gauge_name(kind: GaugeKind, gpu: Option<u32>) -> String {
    match gpu {
        Some(g) => format!("{}/gpu{g}", kind.name()),
        None => kind.name().to_string(),
    }
}

/// The registry. Implements [`TraceSink`], so it can sit directly on a
/// probe stream or be fed after the fact from a [`crate::Recorder`].
#[derive(Clone, Debug)]
pub struct Metrics {
    counters: [u64; Counter::ALL.len()],
    gauges: BTreeMap<String, f64>,
    transfer_ns: Histogram,
    decision_ns: Histogram,
    /// Task latency (completion − arrival) of online runs.
    task_latency_ns: Histogram,
    /// Queueing delay (compute start − arrival) of online runs.
    queueing_ns: Histogram,
    /// Open transfer begin times, keyed by (gpu, data, attempt).
    open_transfers: HashMap<(u32, u32, u32), Nanos>,
    /// Arrival times of online tasks, for latency accounting (lookup
    /// only — never iterated, so the map's order cannot leak).
    arrival_ns: HashMap<u32, Nanos>,
    snapshot_every: Nanos,
    next_snapshot: Nanos,
    /// Periodic samples (empty unless built with
    /// [`Metrics::with_snapshots`]).
    pub timeseries: Vec<Snapshot>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A registry without periodic snapshotting.
    pub fn new() -> Self {
        Metrics {
            counters: [0; Counter::ALL.len()],
            gauges: BTreeMap::new(),
            transfer_ns: Histogram::new(),
            decision_ns: Histogram::new(),
            task_latency_ns: Histogram::new(),
            queueing_ns: Histogram::new(),
            open_transfers: HashMap::new(),
            arrival_ns: HashMap::new(),
            snapshot_every: 0,
            next_snapshot: 0,
            timeseries: Vec::new(),
        }
    }

    /// A registry that snapshots every `every` simulated nanoseconds
    /// (on the first event at or past each interval boundary).
    pub fn with_snapshots(every: Nanos) -> Self {
        Metrics {
            snapshot_every: every.max(1),
            next_snapshot: every.max(1),
            ..Metrics::new()
        }
    }

    /// Feed a whole recorded stream.
    pub fn ingest(&mut self, events: &[ObsEvent]) {
        for ev in events {
            self.record(ev);
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Last-seen value of a gauge, if it was ever sampled.
    pub fn gauge(&self, kind: GaugeKind, gpu: Option<u32>) -> Option<f64> {
        self.gauges.get(&gauge_name(kind, gpu)).copied()
    }

    /// Transfer wire-time histogram (delivered transfers only).
    pub fn transfer_duration(&self) -> &Histogram {
        &self.transfer_ns
    }

    /// Scheduler decision latency histogram (host wall time).
    pub fn decision_latency(&self) -> &Histogram {
        &self.decision_ns
    }

    /// Task latency histogram (completion − arrival; online runs only).
    pub fn task_latency(&self) -> &Histogram {
        &self.task_latency_ns
    }

    /// Queueing-delay histogram (compute start − arrival; online runs
    /// only).
    pub fn queueing_delay(&self) -> &Histogram {
        &self.queueing_ns
    }

    fn maybe_snapshot(&mut self, t: Nanos) {
        if self.snapshot_every == 0 {
            return;
        }
        while t >= self.next_snapshot {
            self.timeseries.push(Snapshot {
                t: self.next_snapshot,
                counters: self.counters,
                gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            });
            self.next_snapshot += self.snapshot_every;
        }
    }

    fn bump(&mut self, c: Counter) {
        self.counters[c.index()] += 1;
    }

    /// Full JSON rendering: counters, gauges, histograms, timeseries.
    pub fn to_value(&self) -> Value {
        let counters = Value::Obj(
            Counter::ALL
                .iter()
                .map(|c| (c.name().to_string(), Value::Num(Number::U(self.counter(*c)))))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Num(Number::F(*v))))
                .collect(),
        );
        let histograms = Value::Obj(vec![
            ("transfer_duration_ns".into(), self.transfer_ns.to_value()),
            ("decision_latency_ns".into(), self.decision_ns.to_value()),
            ("task_latency_ns".into(), self.task_latency_ns.to_value()),
            ("queueing_delay_ns".into(), self.queueing_ns.to_value()),
        ]);
        let timeseries = Value::Arr(
            self.timeseries
                .iter()
                .map(|s| {
                    let mut entries = vec![("t".to_string(), Value::Num(Number::U(s.t)))];
                    entries.extend(Counter::ALL.iter().enumerate().map(|(i, c)| {
                        (c.name().to_string(), Value::Num(Number::U(s.counters[i])))
                    }));
                    entries.extend(
                        s.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Num(Number::F(*v)))),
                    );
                    Value::Obj(entries)
                })
                .collect(),
        );
        Value::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("timeseries".into(), timeseries),
        ])
    }

    /// [`Metrics::to_value`] rendered as pretty JSON.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_else(|e| {
            format!("{{\"error\": \"metrics serialization failed: {e}\"}}")
        })
    }
}

impl TraceSink for Metrics {
    fn record(&mut self, ev: &ObsEvent) {
        self.maybe_snapshot(ev.t());
        match *ev {
            ObsEvent::TransferBegin {
                t, gpu, data, attempt, ..
            } => {
                self.open_transfers.insert((gpu, data, attempt), t);
            }
            ObsEvent::TransferEnd {
                t,
                gpu,
                data,
                attempt,
                delivered,
                ..
            } => {
                let begun = self.open_transfers.remove(&(gpu, data, attempt));
                if delivered {
                    self.bump(Counter::Loads);
                    if let Some(b) = begun {
                        self.transfer_ns.record(t.saturating_sub(b));
                    }
                }
            }
            ObsEvent::ComputeBegin { t, task, .. } => {
                if let Some(&arrived) = self.arrival_ns.get(&task) {
                    self.queueing_ns.record(t.saturating_sub(arrived));
                }
            }
            ObsEvent::ComputeEnd { t, task, interrupted, .. } => {
                if !interrupted {
                    self.bump(Counter::Tasks);
                    if let Some(arrived) = self.arrival_ns.remove(&task) {
                        self.task_latency_ns.record(t.saturating_sub(arrived));
                    }
                }
            }
            ObsEvent::Eviction { .. } => self.bump(Counter::Evictions),
            ObsEvent::Decision { wall_ns, .. } => {
                self.bump(Counter::Decisions);
                self.decision_ns.record(wall_ns);
            }
            ObsEvent::Steal { tasks, .. } => {
                self.bump(Counter::Steals);
                self.counters[Counter::StolenTasks.index()] += u64::from(tasks);
            }
            ObsEvent::Gauge { gpu, kind, value, .. } => {
                self.gauges.insert(gauge_name(kind, gpu), value);
            }
            ObsEvent::TransferRetry { .. } => self.bump(Counter::TransferRetries),
            ObsEvent::GpuFailed { .. } => self.bump(Counter::GpuFailures),
            ObsEvent::CapacityShrunk { .. } | ObsEvent::GpuSlowed { .. } => {}
            ObsEvent::TaskArrived { t, task } => {
                self.bump(Counter::TasksArrived);
                self.arrival_ns.insert(task, t);
            }
            ObsEvent::TaskAdmitted { .. } => self.bump(Counter::TasksAdmitted),
            ObsEvent::TaskDeferred { .. } => self.bump(Counter::TasksDeferred),
            // Dropped tasks never complete: forget their arrival so the
            // latency histogram keeps counting completions only.
            ObsEvent::TaskShed { task, .. } => {
                self.bump(Counter::TasksShed);
                self.arrival_ns.remove(&task);
            }
            ObsEvent::DeadlineExpired { task, .. } => {
                self.bump(Counter::DeadlinesExpired);
                self.arrival_ns.remove(&task);
            }
            ObsEvent::CacheAccess {
                hit_bytes, miss_bytes, ..
            } => {
                self.counters[Counter::CacheHitBytes.index()] += hit_bytes;
                self.counters[Counter::CacheMissBytes.index()] += miss_bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert!(h.mean() > 0.0);
        assert_eq!(h.quantile(0.0), 0, "lowest value is in the zero bucket");
        assert!(h.quantile(1.0) >= 1_000_000, "p100 covers the max");
        assert!(h.quantile(0.5) <= 4, "median is tiny");
    }

    #[test]
    fn cache_access_bumps_byte_counters() {
        let mut m = Metrics::new();
        m.ingest(&[
            ObsEvent::CacheAccess {
                t: 10,
                gpu: 0,
                task: 1,
                hit_bytes: 100,
                miss_bytes: 40,
            },
            ObsEvent::CacheAccess {
                t: 20,
                gpu: 1,
                task: 2,
                hit_bytes: 0,
                miss_bytes: 64,
            },
        ]);
        assert_eq!(m.counter(Counter::CacheHitBytes), 100);
        assert_eq!(m.counter(Counter::CacheMissBytes), 104);
    }

    #[test]
    fn counters_and_transfer_durations() {
        let mut m = Metrics::new();
        m.ingest(&[
            ObsEvent::TransferBegin {
                t: 0,
                gpu: 0,
                data: 7,
                bytes: 64,
                bus_wait: 0,
                bus: 0,
                peer: None,
                attempt: 1,
            },
            ObsEvent::TransferEnd {
                t: 500,
                gpu: 0,
                data: 7,
                bytes: 64,
                bus: 0,
                peer: None,
                attempt: 1,
                delivered: false,
            },
            ObsEvent::TransferRetry { t: 500, gpu: 0, data: 7, attempt: 1 },
            ObsEvent::TransferBegin {
                t: 600,
                gpu: 0,
                data: 7,
                bytes: 64,
                bus_wait: 100,
                bus: 0,
                peer: None,
                attempt: 2,
            },
            ObsEvent::TransferEnd {
                t: 1100,
                gpu: 0,
                data: 7,
                bytes: 64,
                bus: 0,
                peer: None,
                attempt: 2,
                delivered: true,
            },
            ObsEvent::Steal { t: 1200, from: 0, to: 1, tasks: 3 },
            ObsEvent::ComputeBegin { t: 1200, gpu: 1, task: 4 },
            ObsEvent::ComputeEnd { t: 1300, gpu: 1, task: 4, interrupted: false },
        ]);
        assert_eq!(m.counter(Counter::Loads), 1, "faulted attempt not a load");
        assert_eq!(m.counter(Counter::TransferRetries), 1);
        assert_eq!(m.counter(Counter::Steals), 1);
        assert_eq!(m.counter(Counter::StolenTasks), 3);
        assert_eq!(m.counter(Counter::Tasks), 1);
        assert_eq!(m.transfer_duration().count(), 1, "only delivered timed");
        assert_eq!(m.transfer_duration().max(), 500);
    }

    #[test]
    fn snapshots_fire_on_interval_boundaries() {
        let mut m = Metrics::with_snapshots(100);
        m.record(&ObsEvent::GpuFailed { t: 50, gpu: 0 });
        m.record(&ObsEvent::Gauge {
            t: 90,
            gpu: Some(0),
            kind: GaugeKind::Occupancy,
            value: 0.5,
        });
        m.record(&ObsEvent::GpuFailed { t: 250, gpu: 1 });
        assert_eq!(m.timeseries.len(), 2, "boundaries at 100 and 200");
        assert_eq!(m.timeseries[0].t, 100);
        assert_eq!(
            m.timeseries[0].counters[Counter::GpuFailures.index()],
            1,
            "second failure is after the 100ns sample"
        );
        assert_eq!(m.timeseries[0].gauges, vec![("occupancy/gpu0".to_string(), 0.5)]);
        assert_eq!(m.timeseries[1].t, 200);
        assert_eq!(m.counter(Counter::GpuFailures), 2);
    }

    #[test]
    fn json_rendering_is_parseable() {
        let mut m = Metrics::with_snapshots(1000);
        m.record(&ObsEvent::Decision { t: 1500, gpu: 0, task: Some(1), wall_ns: 800 });
        let text = m.render_json();
        let v = serde_json::parse_value(&text).expect("valid JSON");
        let counters = v.field("counters", "metrics").unwrap();
        assert!(counters.field("decisions", "counters").is_ok());
        assert_eq!(v.field("timeseries", "metrics").unwrap().as_arr().unwrap().len(), 1);
    }
}
