//! Paje trace exporter (ViTE-compatible, the StarPU-native format).
//!
//! Emits the classic self-describing header (`%EventDef` blocks) and
//! then one line per state change / event / variable sample, in
//! non-decreasing time order as ViTE requires. The container hierarchy
//! mirrors the Chrome track layout:
//!
//! ```text
//! platform "p"
//! ├── g0, g1, ...   (one per GPU: Computing state, eviction/fault events)
//! ├── bus           (PCI bus: Transferring state)
//! ├── nvlink        (only when peer transfers occurred)
//! └── s0, s1, ...   (scheduler contexts: decision/steal events, gauges)
//! ```
//!
//! Times are seconds with nanosecond resolution, printed in fixed
//! notation so every Paje consumer parses them.

use crate::event::{GaugeKind, Nanos, ObsEvent, Track};
use crate::wellformed::{check_well_formed, SpanKind, WellFormedError};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn secs(t: Nanos) -> String {
    format!("{}.{:09}", t / 1_000_000_000, t % 1_000_000_000)
}

const HEADER: &str = "\
%EventDef PajeDefineContainerType 0
% Alias string
% Type string
% Name string
%EndEventDef
%EventDef PajeDefineStateType 1
% Alias string
% Type string
% Name string
%EndEventDef
%EventDef PajeDefineEventType 2
% Alias string
% Type string
% Name string
%EndEventDef
%EventDef PajeDefineVariableType 3
% Alias string
% Type string
% Name string
%EndEventDef
%EventDef PajeDefineEntityValue 4
% Alias string
% Type string
% Name string
% Color color
%EndEventDef
%EventDef PajeCreateContainer 5
% Time date
% Alias string
% Type string
% Container string
% Name string
%EndEventDef
%EventDef PajeDestroyContainer 6
% Time date
% Name string
% Type string
%EndEventDef
%EventDef PajePushState 7
% Time date
% Type string
% Container string
% Value string
%EndEventDef
%EventDef PajePopState 8
% Time date
% Type string
% Container string
%EndEventDef
%EventDef PajeNewEvent 9
% Time date
% Type string
% Container string
% Value string
%EndEventDef
%EventDef PajeSetVariable 10
% Time date
% Type string
% Container string
% Value double
%EndEventDef
";

/// A body line with its sort key: `(time, rank, emission index)`.
/// Pops sort before events before variables before pushes at equal
/// timestamps, so back-to-back states never nest.
struct Line {
    t: Nanos,
    rank: u8,
    seq: usize,
    text: String,
}

fn state_type(track: Track) -> &'static str {
    match track {
        Track::Gpu(_) => "ST",
        Track::Bus | Track::BusN(_) | Track::NvLink => "LT",
        // The admission track only carries instants; the arm exists for
        // exhaustiveness.
        Track::Sched(_) | Track::Global | Track::Admission => "ST",
    }
}

fn gauge_type(kind: GaugeKind) -> &'static str {
    match kind {
        GaugeKind::Occupancy => "VO",
        GaugeKind::ReadyQueueDepth => "VQ",
        GaugeKind::NbFreeTasks => "VF",
    }
}

/// Instant rendering: `(event type alias, value string)`.
fn instant_value(ev: &ObsEvent) -> Option<(&'static str, String)> {
    match *ev {
        ObsEvent::Eviction { data, by_scheduler, .. } => Some((
            "EV",
            format!("evict_d{data}_{}", if by_scheduler { "sched" } else { "lru" }),
        )),
        ObsEvent::Decision { task, .. } => Some((
            "DE",
            match task {
                Some(t) => format!("pop_t{t}"),
                None => "pop_none".to_string(),
            },
        )),
        ObsEvent::Steal { from, tasks, .. } => Some(("SL", format!("steal_{tasks}_from_g{from}"))),
        ObsEvent::TransferRetry { data, attempt, .. } => {
            Some(("FA", format!("retry_d{data}_a{attempt}")))
        }
        ObsEvent::GpuFailed { .. } => Some(("FA", "gpu_failed".to_string())),
        ObsEvent::CapacityShrunk { capacity, .. } => {
            Some(("FA", format!("shrunk_to_{capacity}")))
        }
        ObsEvent::GpuSlowed { factor, .. } => Some(("FA", format!("slowed_x{factor}"))),
        ObsEvent::TaskArrived { task, .. } => Some(("AD", format!("arrive_t{task}"))),
        ObsEvent::TaskAdmitted { task, .. } => Some(("AD", format!("admit_t{task}"))),
        ObsEvent::TaskDeferred { task, .. } => Some(("AD", format!("defer_t{task}"))),
        ObsEvent::TaskShed { task, .. } => Some(("AD", format!("shed_t{task}"))),
        ObsEvent::DeadlineExpired { task, .. } => Some(("AD", format!("expire_t{task}"))),
        ObsEvent::CacheAccess {
            task, hit_bytes, miss_bytes, ..
        } => Some(("CH", format!("cache_t{task}_h{hit_bytes}_m{miss_bytes}"))),
        _ => None,
    }
}

/// Export the event stream as a Paje `.trace` string. Validates
/// well-formedness first (ViTE is unforgiving about unbalanced
/// push/pop).
pub fn paje_trace(events: &[ObsEvent]) -> Result<String, WellFormedError> {
    let timeline = check_well_formed(events)?;
    let tracks: BTreeSet<Track> = events.iter().map(ObsEvent::track).collect();
    let horizon = timeline.horizon();

    let mut out = String::from(HEADER);
    // Type hierarchy.
    out.push_str("0 CP 0 \"platform\"\n");
    out.push_str("0 CG CP \"gpu\"\n");
    out.push_str("0 CB CP \"interconnect\"\n");
    out.push_str("0 CS CP \"scheduler\"\n");
    out.push_str("0 CA CP \"admission\"\n");
    out.push_str("1 ST CG \"gpu state\"\n");
    out.push_str("1 LT CB \"link state\"\n");
    out.push_str("2 EV CG \"eviction\"\n");
    out.push_str("2 FA CG \"fault\"\n");
    out.push_str("2 DE CS \"decision\"\n");
    out.push_str("2 SL CS \"steal\"\n");
    out.push_str("2 CH CS \"cache access\"\n");
    out.push_str("2 AD CA \"admission event\"\n");
    out.push_str("3 VO CS \"occupancy\"\n");
    out.push_str("3 VQ CS \"ready queue depth\"\n");
    out.push_str("3 VF CS \"nb free tasks\"\n");
    out.push_str("4 C ST \"Computing\" \"0.2 0.8 0.2\"\n");
    out.push_str("4 T LT \"Transferring\" \"0.2 0.4 0.9\"\n");

    // Containers.
    out.push_str("5 0.000000000 p CP 0 \"platform\"\n");
    for track in &tracks {
        let ctype = match track {
            Track::Gpu(_) => "CG",
            Track::Bus | Track::BusN(_) | Track::NvLink => "CB",
            Track::Sched(_) | Track::Global => "CS",
            Track::Admission => "CA",
        };
        let _ = writeln!(
            out,
            "5 0.000000000 {} {} p \"{}\"",
            track.paje_alias(),
            ctype,
            track.label()
        );
    }

    // Body lines, time-sorted with pop-before-push at equal stamps.
    let mut lines: Vec<Line> = Vec::new();
    let mut seq = 0usize;
    let mut push = |lines: &mut Vec<Line>, t: Nanos, rank: u8, text: String| {
        lines.push(Line { t, rank, seq, text });
        seq += 1;
    };
    for span in &timeline.spans {
        let st = state_type(span.track);
        let alias = span.track.paje_alias();
        let value = match span.kind {
            SpanKind::Transfer { .. } => "T",
            SpanKind::Compute { .. } => "C",
        };
        push(
            &mut lines,
            span.begin,
            3,
            format!("7 {} {st} {alias} {value}", secs(span.begin)),
        );
        push(
            &mut lines,
            span.end,
            0,
            format!("8 {} {st} {alias}", secs(span.end)),
        );
    }
    for ev in &timeline.instants {
        let alias = ev.track().paje_alias();
        if let ObsEvent::Gauge { t, kind, value, .. } = ev {
            push(
                &mut lines,
                *t,
                2,
                format!("10 {} {} {alias} {value:?}", secs(*t), gauge_type(*kind)),
            );
        } else if let Some((etype, value)) = instant_value(ev) {
            push(
                &mut lines,
                ev.t(),
                1,
                format!("9 {} {etype} {alias} {value}", secs(ev.t())),
            );
        }
    }
    lines.sort_by_key(|a| (a.t, a.rank, a.seq));
    for line in &lines {
        out.push_str(&line.text);
        out.push('\n');
    }

    // Tear down containers at the horizon.
    for track in &tracks {
        let ctype = match track {
            Track::Gpu(_) => "CG",
            Track::Bus | Track::BusN(_) | Track::NvLink => "CB",
            Track::Sched(_) | Track::Global => "CS",
            Track::Admission => "CA",
        };
        let _ = writeln!(out, "6 {} {} {ctype}", secs(horizon), track.paje_alias());
    }
    let _ = writeln!(out, "6 {} p CP", secs(horizon));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_balance_and_time_order() {
        let evs = vec![
            ObsEvent::TransferBegin {
                t: 0,
                gpu: 0,
                data: 0,
                bytes: 8,
                bus_wait: 0,
                bus: 0,
                peer: None,
                attempt: 1,
            },
            ObsEvent::TransferBegin {
                t: 100,
                gpu: 1,
                data: 1,
                bytes: 8,
                bus_wait: 100,
                bus: 0,
                peer: None,
                attempt: 1,
            },
            ObsEvent::TransferEnd {
                t: 100,
                gpu: 0,
                data: 0,
                bytes: 8,
                bus: 0,
                peer: None,
                attempt: 1,
                delivered: true,
            },
            ObsEvent::TransferEnd {
                t: 200,
                gpu: 1,
                data: 1,
                bytes: 8,
                bus: 0,
                peer: None,
                attempt: 1,
                delivered: true,
            },
        ];
        let trace = paje_trace(&evs).unwrap();
        let pushes = trace.lines().filter(|l| l.starts_with("7 ")).count();
        let pops = trace.lines().filter(|l| l.starts_with("8 ")).count();
        assert_eq!(pushes, 2);
        assert_eq!(pops, 2);
        // At t=100 the pop (code 8) must precede the push (code 7) so
        // the bus state never nests.
        let body: Vec<&str> = trace
            .lines()
            .filter(|l| l.starts_with("7 0.000000100") || l.starts_with("8 0.000000100"))
            .collect();
        assert_eq!(body.len(), 2);
        assert!(body[0].starts_with("8 "), "pop first at equal stamps: {body:?}");
        // Containers are destroyed at the horizon.
        assert!(trace.contains("6 0.000000200 bus CB"));
        assert!(trace.ends_with("6 0.000000200 p CP\n"));
    }

    #[test]
    fn times_are_fixed_point_seconds() {
        assert_eq!(secs(0), "0.000000000");
        assert_eq!(secs(1_500_000_000), "1.500000000");
        assert_eq!(secs(42), "0.000000042");
    }
}
