//! The typed event taxonomy recorded by the engine and the schedulers.
//!
//! Events are either **spans** (a matched begin/end pair on one track)
//! or **instants** (a single point in simulated time). Every event
//! carries its simulated timestamp in nanoseconds; `Decision` events
//! additionally carry host wall time, the one place the two clocks meet.

/// Simulated-time nanoseconds (mirrors `memsched_platform::Nanos`;
/// this crate sits below the platform in the dependency graph, so the
/// alias is repeated here rather than imported).
pub type Nanos = u64;

/// The timeline a given event belongs to. Exporters render one visual
/// track per variant: compute and memory activity per GPU, transfers on
/// the shared PCI bus (or NVLink), scheduler decisions per GPU context,
/// and a global track for platform-wide gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Compute, evictions and fault instants of one GPU.
    Gpu(u32),
    /// The shared FIFO PCI bus (host-to-device transfers). On multi-bus
    /// platforms this is bus 0; higher buses get [`Track::BusN`] tracks.
    Bus,
    /// PCI bus `n ≥ 1` of a multi-bus platform (`PlatformSpec::bus_groups`).
    /// Bus 0 stays [`Track::Bus`], so single-bus traces are unchanged.
    BusN(u32),
    /// The peer-to-peer NVLink interconnect.
    NvLink,
    /// Scheduler activity (decisions, steals, queue gauges) for one GPU.
    Sched(u32),
    /// Platform-wide gauges with no per-GPU owner (e.g. `nbFreeTasks`).
    Global,
    /// The online admission loop: arrival, admit and defer instants
    /// (empty in batch runs).
    Admission,
}

impl Track {
    /// Human-readable track name used by both exporters.
    pub fn label(&self) -> String {
        match self {
            Track::Gpu(g) => format!("GPU {g}"),
            Track::Bus => "PCI bus".to_string(),
            Track::BusN(n) => format!("PCI bus {n}"),
            Track::NvLink => "NVLink".to_string(),
            Track::Sched(g) => format!("sched GPU {g}"),
            Track::Global => "scheduler (global)".to_string(),
            Track::Admission => "admission".to_string(),
        }
    }

    /// Stable Chrome `tid` for the track (also the sort key).
    pub fn tid(&self) -> u64 {
        match self {
            Track::Gpu(g) => u64::from(*g),
            Track::Bus => 1000,
            Track::NvLink => 1001,
            // 1100+n keeps clear of NvLink's 1001 for any realistic n.
            Track::BusN(n) => 1100 + u64::from(*n),
            Track::Sched(g) => 2000 + u64::from(*g),
            Track::Global => 3000,
            Track::Admission => 4000,
        }
    }

    /// Short alias used as the Paje container name.
    pub fn paje_alias(&self) -> String {
        match self {
            Track::Gpu(g) => format!("g{g}"),
            Track::Bus => "bus".to_string(),
            Track::BusN(n) => format!("bus{n}"),
            Track::NvLink => "nvlink".to_string(),
            Track::Sched(g) => format!("s{g}"),
            Track::Global => "sched".to_string(),
            Track::Admission => "adm".to_string(),
        }
    }
}

/// What a [`ObsEvent::Gauge`] sample measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GaugeKind {
    /// Fraction of a GPU's memory capacity currently resident (0..=1).
    Occupancy,
    /// Depth of a scheduler's ready/planned queue (per GPU, or the
    /// shared queue for EAGER).
    ReadyQueueDepth,
    /// DARTS `nbFreeTasks`: tasks not yet planned onto any GPU.
    NbFreeTasks,
}

impl GaugeKind {
    /// Stable metric name.
    pub fn name(&self) -> &'static str {
        match self {
            GaugeKind::Occupancy => "occupancy",
            GaugeKind::ReadyQueueDepth => "ready_queue_depth",
            GaugeKind::NbFreeTasks => "nb_free_tasks",
        }
    }
}

/// One recorded observation. Span events come in begin/end pairs that
/// pair FIFO per track (the bus is FIFO and each GPU computes one task
/// at a time, so first-begun is first-ended); everything else is an
/// instant.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A transfer was granted the bus (or NVLink) at `t`; it waited
    /// `bus_wait` ns in the FIFO queue before the grant. `peer` is the
    /// source GPU for NVLink transfers, `None` for host loads.
    TransferBegin {
        /// Grant time (start of the wire time).
        t: Nanos,
        /// Destination GPU.
        gpu: u32,
        /// Data id being moved.
        data: u32,
        /// Payload size.
        bytes: u64,
        /// Time spent queued behind earlier transfers before the grant.
        bus_wait: Nanos,
        /// PCI bus the destination GPU hangs off (0 on single-bus
        /// platforms; ignored for NVLink transfers).
        bus: u32,
        /// Source GPU for peer-to-peer transfers.
        peer: Option<u32>,
        /// 1-based attempt number (>1 after fault retries).
        attempt: u32,
    },
    /// The matching end of a [`ObsEvent::TransferBegin`]. `delivered`
    /// is false when the attempt was killed by an injected fault (a
    /// retry will begin a fresh span).
    TransferEnd {
        /// Completion time.
        t: Nanos,
        /// Destination GPU.
        gpu: u32,
        /// Data id.
        data: u32,
        /// Payload size.
        bytes: u64,
        /// PCI bus of the begin (0 on single-bus platforms).
        bus: u32,
        /// Source GPU for peer-to-peer transfers.
        peer: Option<u32>,
        /// Attempt number matching the begin.
        attempt: u32,
        /// False when the attempt faulted and will be retried.
        delivered: bool,
    },
    /// A task started executing on `gpu`.
    ComputeBegin {
        /// Start time.
        t: Nanos,
        /// Executing GPU.
        gpu: u32,
        /// Task id.
        task: u32,
    },
    /// The task finished — or was cut short by a GPU failure
    /// (`interrupted`), in which case it reruns elsewhere.
    ComputeEnd {
        /// End time.
        t: Nanos,
        /// Executing GPU.
        gpu: u32,
        /// Task id.
        task: u32,
        /// True when a fail-stop fault killed the task mid-flight.
        interrupted: bool,
    },
    /// `data` was evicted from `gpu`. `by_scheduler` distinguishes a
    /// scheduler-chosen victim from the engine's LRU fallback.
    Eviction {
        /// Eviction time.
        t: Nanos,
        /// GPU losing the replica.
        gpu: u32,
        /// Evicted data id.
        data: u32,
        /// Size of the evicted replica.
        bytes: u64,
        /// True when `Scheduler::choose_victim` picked it, false for
        /// the LRU fallback.
        by_scheduler: bool,
    },
    /// One `pop_task` call: which task the scheduler handed to `gpu`
    /// (`None` when it had nothing) and how long the decision took in
    /// host wall-clock nanoseconds.
    Decision {
        /// Simulated time of the decision.
        t: Nanos,
        /// GPU asking for work.
        gpu: u32,
        /// Task chosen, if any.
        task: Option<u32>,
        /// Host wall time spent inside `pop_task`.
        wall_ns: u64,
    },
    /// A work-stealing event: `to` stole `tasks` tasks from `from`'s
    /// tail (hMETIS+R / mHFP §IV-B stealing).
    Steal {
        /// Steal time.
        t: Nanos,
        /// Victim GPU.
        from: u32,
        /// Thief GPU.
        to: u32,
        /// Number of tasks moved.
        tasks: u32,
    },
    /// A sampled gauge value; `gpu` is `None` for platform-wide gauges.
    Gauge {
        /// Sample time.
        t: Nanos,
        /// Owning GPU, if the gauge is per-GPU.
        gpu: Option<u32>,
        /// What is being measured.
        kind: GaugeKind,
        /// The sampled value.
        value: f64,
    },
    /// A transfer attempt faulted and was re-queued (PR 4 fault model).
    TransferRetry {
        /// Fault detection time.
        t: Nanos,
        /// Destination GPU.
        gpu: u32,
        /// Data id.
        data: u32,
        /// The attempt that failed (1-based).
        attempt: u32,
    },
    /// Fail-stop GPU failure.
    GpuFailed {
        /// Failure time.
        t: Nanos,
        /// The dead GPU.
        gpu: u32,
    },
    /// Mid-run capacity shrink took effect.
    CapacityShrunk {
        /// Time the shrink was applied.
        t: Nanos,
        /// Affected GPU.
        gpu: u32,
        /// New capacity in bytes.
        capacity: u64,
    },
    /// A straggler fault changed a GPU's speed.
    GpuSlowed {
        /// Time of the slowdown.
        t: Nanos,
        /// Affected GPU.
        gpu: u32,
        /// GFlop/s multiplier now in effect.
        factor: f64,
    },
    /// A task arrived at the online admission loop.
    TaskArrived {
        /// Arrival time.
        t: Nanos,
        /// Task id.
        task: u32,
    },
    /// The admission loop released a task to the scheduler.
    TaskAdmitted {
        /// Admission time.
        t: Nanos,
        /// Task id.
        task: u32,
        /// Time spent deferred before admission (0 when admitted on
        /// arrival).
        wait: Nanos,
    },
    /// The admission loop deferred a task (emitted once per arrival, at
    /// the first defer decision).
    TaskDeferred {
        /// Defer time.
        t: Nanos,
        /// Task id.
        task: u32,
    },
    /// The admission loop shed a task under a shedding policy — it was
    /// rejected outright and no scheduler ever sees it.
    TaskShed {
        /// Shed time.
        t: Nanos,
        /// Task id.
        task: u32,
    },
    /// A deferred task's completion deadline lapsed while it waited and
    /// it was dropped from the queue.
    DeadlineExpired {
        /// Expiry-detection time.
        t: Nanos,
        /// Task id.
        task: u32,
    },
    /// Residency outcome of one placement: when the engine commits
    /// `task` to `gpu`'s pipeline it splits the task's input footprint
    /// into bytes already resident (or in flight) on that GPU
    /// (`hit_bytes`) and bytes that must still be fetched
    /// (`miss_bytes`). Emitted exactly once per task placement, so
    /// `hit + miss` sums to the task's footprint.
    CacheAccess {
        /// Placement time (the pop that committed the task).
        t: Nanos,
        /// GPU the task was placed on.
        gpu: u32,
        /// Task id.
        task: u32,
        /// Input bytes already resident/in flight on `gpu`.
        hit_bytes: u64,
        /// Input bytes still missing from `gpu`.
        miss_bytes: u64,
    },
}

impl ObsEvent {
    /// The simulated timestamp of the event.
    pub fn t(&self) -> Nanos {
        match *self {
            ObsEvent::TransferBegin { t, .. }
            | ObsEvent::TransferEnd { t, .. }
            | ObsEvent::ComputeBegin { t, .. }
            | ObsEvent::ComputeEnd { t, .. }
            | ObsEvent::Eviction { t, .. }
            | ObsEvent::Decision { t, .. }
            | ObsEvent::Steal { t, .. }
            | ObsEvent::Gauge { t, .. }
            | ObsEvent::TransferRetry { t, .. }
            | ObsEvent::GpuFailed { t, .. }
            | ObsEvent::CapacityShrunk { t, .. }
            | ObsEvent::GpuSlowed { t, .. }
            | ObsEvent::TaskArrived { t, .. }
            | ObsEvent::TaskAdmitted { t, .. }
            | ObsEvent::TaskDeferred { t, .. }
            | ObsEvent::TaskShed { t, .. }
            | ObsEvent::DeadlineExpired { t, .. }
            | ObsEvent::CacheAccess { t, .. } => t,
        }
    }

    /// The track the event lives on.
    pub fn track(&self) -> Track {
        match *self {
            ObsEvent::TransferBegin { peer, bus, .. }
            | ObsEvent::TransferEnd { peer, bus, .. } => {
                if peer.is_some() {
                    Track::NvLink
                } else if bus == 0 {
                    Track::Bus
                } else {
                    Track::BusN(bus)
                }
            }
            ObsEvent::ComputeBegin { gpu, .. }
            | ObsEvent::ComputeEnd { gpu, .. }
            | ObsEvent::Eviction { gpu, .. }
            | ObsEvent::TransferRetry { gpu, .. }
            | ObsEvent::GpuFailed { gpu, .. }
            | ObsEvent::CapacityShrunk { gpu, .. }
            | ObsEvent::GpuSlowed { gpu, .. } => Track::Gpu(gpu),
            ObsEvent::Decision { gpu, .. } | ObsEvent::CacheAccess { gpu, .. } => {
                Track::Sched(gpu)
            }
            ObsEvent::Steal { to, .. } => Track::Sched(to),
            ObsEvent::Gauge { gpu, .. } => match gpu {
                Some(g) => Track::Sched(g),
                None => Track::Global,
            },
            ObsEvent::TaskArrived { .. }
            | ObsEvent::TaskAdmitted { .. }
            | ObsEvent::TaskDeferred { .. }
            | ObsEvent::TaskShed { .. }
            | ObsEvent::DeadlineExpired { .. } => Track::Admission,
        }
    }

    /// True for span-opening events.
    pub fn is_begin(&self) -> bool {
        matches!(
            self,
            ObsEvent::TransferBegin { .. } | ObsEvent::ComputeBegin { .. }
        )
    }

    /// True for span-closing events.
    pub fn is_end(&self) -> bool {
        matches!(self, ObsEvent::TransferEnd { .. } | ObsEvent::ComputeEnd { .. })
    }

    /// True for point events (neither begin nor end).
    pub fn is_instant(&self) -> bool {
        !self.is_begin() && !self.is_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_route_by_peer_and_role() {
        let host = ObsEvent::TransferBegin {
            t: 0,
            gpu: 1,
            data: 2,
            bytes: 8,
            bus_wait: 0,
            bus: 0,
            peer: None,
            attempt: 1,
        };
        assert_eq!(host.track(), Track::Bus);
        let p2p = ObsEvent::TransferEnd {
            t: 5,
            gpu: 1,
            data: 2,
            bytes: 8,
            bus: 0,
            peer: Some(0),
            attempt: 1,
            delivered: true,
        };
        assert_eq!(p2p.track(), Track::NvLink);
        let second_bus = ObsEvent::TransferBegin {
            t: 0,
            gpu: 4,
            data: 2,
            bytes: 8,
            bus_wait: 0,
            bus: 1,
            peer: None,
            attempt: 1,
        };
        assert_eq!(second_bus.track(), Track::BusN(1));
        assert_eq!(Track::BusN(1).tid(), 1101);
        assert_eq!(Track::BusN(2).label(), "PCI bus 2");
        assert_eq!(Track::BusN(3).paje_alias(), "bus3");
        let dec = ObsEvent::Decision {
            t: 9,
            gpu: 3,
            task: None,
            wall_ns: 120,
        };
        assert_eq!(dec.track(), Track::Sched(3));
        assert!(dec.is_instant());
        assert!(host.is_begin() && !host.is_end());
        assert_eq!(Track::Sched(3).tid(), 2003);
    }
}
