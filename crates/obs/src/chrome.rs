//! Chrome Trace Event Format exporter (`chrome://tracing`, Perfetto).
//!
//! Produces the JSON object form: `{"displayTimeUnit": "ns",
//! "traceEvents": [...]}` with one `tid` per [`Track`] inside a single
//! `pid` 0. Spans become `"ph": "X"` complete events (ts/dur in
//! microseconds, as the format requires), instants become `"ph": "i"`
//! thread-scoped events, gauges become `"ph": "C"` counter events, and
//! each track gets `thread_name` / `thread_sort_index` metadata so
//! GPUs, the PCI bus and the scheduler contexts stack in a stable
//! order.

use crate::event::{ObsEvent, Track};
use crate::wellformed::{check_well_formed, Span, SpanKind, WellFormedError};
use serde::{Number, Value};
use std::collections::BTreeSet;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn u(v: u64) -> Value {
    Value::Num(Number::U(v))
}

fn f(v: f64) -> Value {
    Value::Num(Number::F(v))
}

/// Nanoseconds to the format's microsecond doubles.
fn us(t: u64) -> Value {
    f(t as f64 / 1000.0)
}

fn sort_index(track: Track) -> u64 {
    match track {
        Track::Gpu(g) => u64::from(g),
        Track::Bus => 100,
        Track::NvLink => 101,
        Track::BusN(n) => 110 + u64::from(n),
        Track::Sched(g) => 200 + u64::from(g),
        Track::Global => 300,
        Track::Admission => 400,
    }
}

fn metadata(track: Track) -> Vec<Value> {
    let head = |name: &str| {
        vec![
            ("name", s(name)),
            ("ph", s("M")),
            ("pid", u(0)),
            ("tid", u(track.tid())),
        ]
    };
    let mut name_entry = head("thread_name");
    name_entry.push(("args", obj(vec![("name", s(track.label()))])));
    let mut sort_entry = head("thread_sort_index");
    sort_entry.push(("args", obj(vec![("sort_index", u(sort_index(track)))])));
    vec![obj(name_entry), obj(sort_entry)]
}

fn span_event(span: &Span) -> Value {
    let (name, cat, args) = match &span.kind {
        SpanKind::Transfer {
            data,
            bytes,
            bus_wait,
            peer,
            attempt,
            delivered,
        } => (
            format!("D{data}"),
            "transfer",
            obj(vec![
                ("gpu", u(u64::from(span.gpu))),
                ("data", u(u64::from(*data))),
                ("bytes", u(*bytes)),
                ("bus_wait_ns", u(*bus_wait)),
                (
                    "peer",
                    peer.map(|p| u(u64::from(p))).unwrap_or(Value::Null),
                ),
                ("attempt", u(u64::from(*attempt))),
                ("delivered", Value::Bool(*delivered)),
            ]),
        ),
        SpanKind::Compute { task, interrupted } => (
            format!("T{task}"),
            "compute",
            obj(vec![
                ("task", u(u64::from(*task))),
                ("interrupted", Value::Bool(*interrupted)),
            ]),
        ),
    };
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("X")),
        ("pid", u(0)),
        ("tid", u(span.track.tid())),
        ("ts", us(span.begin)),
        ("dur", us(span.end - span.begin)),
        ("args", args),
    ])
}

/// Instant / counter payload: `(name, cat, args)`; `None` for span
/// events (handled elsewhere).
fn instant_payload(ev: &ObsEvent) -> Option<(String, &'static str, Value)> {
    match *ev {
        ObsEvent::Eviction {
            gpu,
            data,
            bytes,
            by_scheduler,
            ..
        } => Some((
            format!("evict D{data}"),
            "eviction",
            obj(vec![
                ("gpu", u(u64::from(gpu))),
                ("data", u(u64::from(data))),
                ("bytes", u(bytes)),
                ("by_scheduler", Value::Bool(by_scheduler)),
            ]),
        )),
        ObsEvent::Decision { gpu, task, wall_ns, .. } => Some((
            match task {
                Some(t) => format!("pop T{t}"),
                None => "pop (none)".to_string(),
            },
            "decision",
            obj(vec![
                ("gpu", u(u64::from(gpu))),
                (
                    "task",
                    task.map(|t| u(u64::from(t))).unwrap_or(Value::Null),
                ),
                ("wall_ns", u(wall_ns)),
            ]),
        )),
        ObsEvent::Steal { from, to, tasks, .. } => Some((
            format!("steal {tasks} from GPU {from}"),
            "steal",
            obj(vec![
                ("from", u(u64::from(from))),
                ("to", u(u64::from(to))),
                ("tasks", u(u64::from(tasks))),
            ]),
        )),
        ObsEvent::TransferRetry {
            gpu, data, attempt, ..
        } => Some((
            format!("retry D{data}"),
            "retry",
            obj(vec![
                ("gpu", u(u64::from(gpu))),
                ("data", u(u64::from(data))),
                ("attempt", u(u64::from(attempt))),
            ]),
        )),
        ObsEvent::GpuFailed { gpu, .. } => Some((
            format!("GPU {gpu} failed"),
            "fault",
            obj(vec![("gpu", u(u64::from(gpu)))]),
        )),
        ObsEvent::CapacityShrunk { gpu, capacity, .. } => Some((
            format!("GPU {gpu} shrunk"),
            "fault",
            obj(vec![
                ("gpu", u(u64::from(gpu))),
                ("capacity", u(capacity)),
            ]),
        )),
        ObsEvent::GpuSlowed { gpu, factor, .. } => Some((
            format!("GPU {gpu} slowed"),
            "fault",
            obj(vec![("gpu", u(u64::from(gpu))), ("factor", f(factor))]),
        )),
        ObsEvent::TaskArrived { task, .. } => Some((
            format!("arrive T{task}"),
            "admission",
            obj(vec![("task", u(u64::from(task)))]),
        )),
        ObsEvent::TaskAdmitted { task, wait, .. } => Some((
            format!("admit T{task}"),
            "admission",
            obj(vec![("task", u(u64::from(task))), ("wait_ns", u(wait))]),
        )),
        ObsEvent::TaskDeferred { task, .. } => Some((
            format!("defer T{task}"),
            "admission",
            obj(vec![("task", u(u64::from(task)))]),
        )),
        ObsEvent::TaskShed { task, .. } => Some((
            format!("shed T{task}"),
            "admission",
            obj(vec![("task", u(u64::from(task)))]),
        )),
        ObsEvent::DeadlineExpired { task, .. } => Some((
            format!("expire T{task}"),
            "admission",
            obj(vec![("task", u(u64::from(task)))]),
        )),
        ObsEvent::CacheAccess {
            gpu,
            task,
            hit_bytes,
            miss_bytes,
            ..
        } => Some((
            format!("cache T{task}"),
            "cache",
            obj(vec![
                ("gpu", u(u64::from(gpu))),
                ("task", u(u64::from(task))),
                ("hit_bytes", u(hit_bytes)),
                ("miss_bytes", u(miss_bytes)),
            ]),
        )),
        _ => None,
    }
}

/// Build the Chrome trace as a [`Value`] tree. Validates
/// well-formedness first, so a malformed stream is an error here
/// rather than a broken file in the viewer.
pub fn chrome_trace(events: &[ObsEvent]) -> Result<Value, WellFormedError> {
    let timeline = check_well_formed(events)?;
    let tracks: BTreeSet<Track> = events.iter().map(ObsEvent::track).collect();
    let mut out: Vec<Value> = Vec::new();
    out.push(obj(vec![
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", u(0)),
        ("tid", u(0)),
        ("args", obj(vec![("name", s("memsched simulation"))])),
    ]));
    for track in &tracks {
        out.extend(metadata(*track));
    }
    for span in &timeline.spans {
        out.push(span_event(span));
    }
    for ev in &timeline.instants {
        if let ObsEvent::Gauge { t, gpu, kind, value } = ev {
            let name = match gpu {
                Some(g) => format!("{} gpu{g}", kind.name()),
                None => kind.name().to_string(),
            };
            out.push(obj(vec![
                ("name", s(name)),
                ("ph", s("C")),
                ("pid", u(0)),
                ("tid", u(ev.track().tid())),
                ("ts", us(*t)),
                ("args", obj(vec![("value", f(*value))])),
            ]));
        } else if let Some((name, cat, args)) = instant_payload(ev) {
            out.push(obj(vec![
                ("name", s(name)),
                ("cat", s(cat)),
                ("ph", s("i")),
                ("s", s("t")),
                ("pid", u(0)),
                ("tid", u(ev.track().tid())),
                ("ts", us(ev.t())),
                ("args", args),
            ]));
        }
    }
    Ok(obj(vec![
        ("displayTimeUnit", s("ns")),
        ("traceEvents", Value::Arr(out)),
    ]))
}

/// [`chrome_trace`] rendered to a JSON string.
pub fn chrome_trace_json(events: &[ObsEvent]) -> Result<String, WellFormedError> {
    let v = chrome_trace(events)?;
    serde_json::to_string(&v)
        .map_err(|e| WellFormedError { message: format!("serialize: {e}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::GaugeKind;

    fn sample() -> Vec<ObsEvent> {
        vec![
            ObsEvent::Decision {
                t: 0,
                gpu: 0,
                task: Some(0),
                wall_ns: 50,
            },
            ObsEvent::TransferBegin {
                t: 0,
                gpu: 0,
                data: 1,
                bytes: 64,
                bus_wait: 0,
                bus: 0,
                peer: None,
                attempt: 1,
            },
            ObsEvent::TransferEnd {
                t: 80,
                gpu: 0,
                data: 1,
                bytes: 64,
                bus: 0,
                peer: None,
                attempt: 1,
                delivered: true,
            },
            ObsEvent::Gauge {
                t: 80,
                gpu: Some(0),
                kind: GaugeKind::Occupancy,
                value: 0.25,
            },
            ObsEvent::ComputeBegin { t: 80, gpu: 0, task: 0 },
            ObsEvent::Eviction {
                t: 90,
                gpu: 0,
                data: 1,
                bytes: 64,
                by_scheduler: true,
            },
            ObsEvent::ComputeEnd {
                t: 100,
                gpu: 0,
                task: 0,
                interrupted: false,
            },
        ]
    }

    fn count_ph(json: &Value, ph: &str) -> usize {
        json.field("traceEvents", "trace")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.field("ph", "event").unwrap().as_str() == Some(ph))
            .count()
    }

    #[test]
    fn export_round_trips_through_serde_json() {
        let text = chrome_trace_json(&sample()).unwrap();
        let parsed = serde_json::parse_value(&text).expect("valid JSON");
        assert_eq!(count_ph(&parsed, "X"), 2, "one transfer + one compute");
        assert_eq!(count_ph(&parsed, "i"), 2, "decision + eviction instants");
        assert_eq!(count_ph(&parsed, "C"), 1, "one gauge counter");
        // ts/dur are microsecond doubles: the 80ns transfer is 0.08us.
        assert!(text.contains("0.08"), "{text}");
    }

    #[test]
    fn malformed_stream_is_an_error_not_a_file() {
        let evs = vec![ObsEvent::ComputeBegin { t: 0, gpu: 0, task: 0 }];
        assert!(chrome_trace(&evs).is_err());
    }
}
