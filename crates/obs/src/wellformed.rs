//! Span pairing and well-formedness checks over a raw event stream.
//!
//! The recorder stores events in **emission** order, which is not
//! timestamp order: the engine emits a `TransferBegin` at issue time
//! stamped with its future bus-grant time, so a begin can precede the
//! end of the transfer currently on the wire. What *is* guaranteed —
//! and what [`build_timeline`] verifies — is FIFO pairing per track:
//! the bus serves transfers in grant order and each GPU computes one
//! task at a time, so on every track the first span begun is the first
//! to end. Pairing by that rule turns the stream into non-overlapping
//! [`Span`]s per track plus a list of instants, the canonical form both
//! exporters and the derived analyses consume.

use crate::event::{Nanos, ObsEvent, Track};
use std::collections::BTreeMap;

/// A violation of the trace contract, with a human-readable reason.
#[derive(Clone, Debug, PartialEq)]
pub struct WellFormedError {
    /// What went wrong and where.
    pub message: String,
}

impl WellFormedError {
    fn new(message: impl Into<String>) -> Self {
        WellFormedError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace: {}", self.message)
    }
}

impl std::error::Error for WellFormedError {}

/// What a paired span was doing.
#[derive(Clone, Debug, PartialEq)]
pub enum SpanKind {
    /// A data transfer over the bus or NVLink.
    Transfer {
        /// Data id moved.
        data: u32,
        /// Payload size.
        bytes: u64,
        /// Queue wait before the grant (from the begin event).
        bus_wait: Nanos,
        /// Source GPU for peer-to-peer transfers.
        peer: Option<u32>,
        /// Attempt number (1-based).
        attempt: u32,
        /// False when the attempt was killed by an injected fault.
        delivered: bool,
    },
    /// A task execution.
    Compute {
        /// Task id.
        task: u32,
        /// True when cut short by a GPU failure.
        interrupted: bool,
    },
}

/// A matched begin/end pair on one track.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// The track the span occupies.
    pub track: Track,
    /// Destination/executing GPU.
    pub gpu: u32,
    /// Span start (begin-event timestamp).
    pub begin: Nanos,
    /// Span end (end-event timestamp).
    pub end: Nanos,
    /// Payload.
    pub kind: SpanKind,
}

/// The canonical, order-normalized view of a trace.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// All spans, sorted by `(track, begin, end)`; per track they are
    /// non-overlapping.
    pub spans: Vec<Span>,
    /// All instants, in emission order (non-decreasing per track).
    pub instants: Vec<ObsEvent>,
}

impl Timeline {
    /// Spans on one track, in begin order.
    pub fn spans_on(&self, track: Track) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Largest timestamp in the timeline (0 when empty).
    pub fn horizon(&self) -> Nanos {
        let span_max = self.spans.iter().map(|s| s.end).max().unwrap_or(0);
        let inst_max = self.instants.iter().map(ObsEvent::t).max().unwrap_or(0);
        span_max.max(inst_max)
    }
}

/// Matching key of a span event: transfers pair on (data, attempt),
/// computes on task id.
fn span_key(ev: &ObsEvent) -> (u32, u32) {
    match *ev {
        ObsEvent::TransferBegin { data, attempt, .. }
        | ObsEvent::TransferEnd { data, attempt, .. } => (data, attempt),
        ObsEvent::ComputeBegin { task, .. } => (task, 0),
        ObsEvent::ComputeEnd { task, .. } => (task, 0),
        _ => unreachable!("span_key on instant"),
    }
}

/// Pair begin/end events FIFO per track and split out the instants.
/// Errors on an end without a begin, a key mismatch (FIFO order
/// violated), an end earlier than its begin, or an unclosed begin.
pub fn build_timeline(events: &[ObsEvent]) -> Result<Timeline, WellFormedError> {
    let mut open: BTreeMap<Track, Vec<&ObsEvent>> = BTreeMap::new();
    let mut spans = Vec::new();
    let mut instants = Vec::new();
    for ev in events {
        if ev.is_begin() {
            open.entry(ev.track()).or_default().push(ev);
        } else if ev.is_end() {
            let track = ev.track();
            let queue = open.entry(track).or_default();
            if queue.is_empty() {
                return Err(WellFormedError::new(format!(
                    "end without begin on {}: {ev:?}",
                    track.label()
                )));
            }
            let begin = queue.remove(0);
            if span_key(begin) != span_key(ev) {
                return Err(WellFormedError::new(format!(
                    "FIFO pairing violated on {}: begin {begin:?} closed by {ev:?}",
                    track.label()
                )));
            }
            if ev.t() < begin.t() {
                return Err(WellFormedError::new(format!(
                    "span ends before it begins on {}: {begin:?} .. {ev:?}",
                    track.label()
                )));
            }
            spans.push(make_span(begin, ev));
        } else {
            instants.push(ev.clone());
        }
    }
    for (track, queue) in &open {
        if let Some(first) = queue.first() {
            return Err(WellFormedError::new(format!(
                "{} unclosed begin(s) on {}, first: {first:?}",
                queue.len(),
                track.label()
            )));
        }
    }
    spans.sort_by(|a, b| {
        (a.track, a.begin, a.end)
            .cmp(&(b.track, b.begin, b.end))
    });
    Ok(Timeline { spans, instants })
}

fn make_span(begin: &ObsEvent, end: &ObsEvent) -> Span {
    match (begin, end) {
        (
            &ObsEvent::TransferBegin {
                t: b,
                gpu,
                data,
                bytes,
                bus_wait,
                bus: _,
                peer,
                attempt,
            },
            &ObsEvent::TransferEnd {
                t: e, delivered, ..
            },
        ) => Span {
            track: begin.track(),
            gpu,
            begin: b,
            end: e,
            kind: SpanKind::Transfer {
                data,
                bytes,
                bus_wait,
                peer,
                attempt,
                delivered,
            },
        },
        (
            &ObsEvent::ComputeBegin { t: b, gpu, task },
            &ObsEvent::ComputeEnd {
                t: e, interrupted, ..
            },
        ) => Span {
            track: begin.track(),
            gpu,
            begin: b,
            end: e,
            kind: SpanKind::Compute { task, interrupted },
        },
        _ => unreachable!("mismatched span pair survived key check"),
    }
}

/// Full well-formedness check: FIFO pairing succeeds, spans do not
/// overlap within a track, and instant timestamps are non-decreasing
/// per track in emission order. Returns the timeline on success.
pub fn check_well_formed(events: &[ObsEvent]) -> Result<Timeline, WellFormedError> {
    let timeline = build_timeline(events)?;
    let mut prev: Option<&Span> = None;
    for span in &timeline.spans {
        if let Some(p) = prev {
            if p.track == span.track && span.begin < p.end {
                return Err(WellFormedError::new(format!(
                    "overlapping spans on {}: {p:?} and {span:?}",
                    p.track.label()
                )));
            }
        }
        prev = Some(span);
    }
    let mut last: BTreeMap<Track, Nanos> = BTreeMap::new();
    for inst in &timeline.instants {
        let track = inst.track();
        let t = inst.t();
        if let Some(&p) = last.get(&track) {
            if t < p {
                return Err(WellFormedError::new(format!(
                    "instant timestamps regress on {}: {p} then {t} ({inst:?})",
                    track.label()
                )));
            }
        }
        last.insert(track, t);
    }
    Ok(timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(t: Nanos, data: u32) -> ObsEvent {
        ObsEvent::TransferBegin {
            t,
            gpu: 0,
            data,
            bytes: 10,
            bus_wait: 0,
            bus: 0,
            peer: None,
            attempt: 1,
        }
    }

    fn te(t: Nanos, data: u32) -> ObsEvent {
        ObsEvent::TransferEnd {
            t,
            gpu: 0,
            data,
            bytes: 10,
            bus: 0,
            peer: None,
            attempt: 1,
            delivered: true,
        }
    }

    #[test]
    fn bus_tracks_pair_and_check_independently() {
        // Overlapping-in-time transfers on two different buses are fine:
        // pairing and the overlap check are per track.
        let on_bus = |mut ev: ObsEvent, b: u32| {
            match &mut ev {
                ObsEvent::TransferBegin { bus, gpu, .. }
                | ObsEvent::TransferEnd { bus, gpu, .. } => {
                    *bus = b;
                    *gpu = b;
                }
                _ => unreachable!(),
            }
            ev
        };
        let evs = vec![
            on_bus(tb(0, 0), 0),
            on_bus(tb(2, 1), 1),
            on_bus(te(8, 0), 0),
            on_bus(te(9, 1), 1),
        ];
        let tl = check_well_formed(&evs).unwrap();
        assert_eq!(tl.spans_on(Track::Bus).count(), 1);
        assert_eq!(tl.spans_on(Track::BusN(1)).count(), 1);
        // The same two spans on one bus DO overlap and must be rejected.
        let evs = vec![tb(0, 0), tb(2, 1), te(8, 0), te(9, 1)];
        // FIFO pairing yields spans (0,8) and (2,9) on Track::Bus.
        let err = check_well_formed(&evs).unwrap_err();
        assert!(err.message.contains("overlapping"), "{err}");
    }

    #[test]
    fn pairs_out_of_order_emission_fifo() {
        // Issue order: begin d0 at 0, begin d1 stamped at 5 (future
        // grant), then both ends. FIFO pairing must produce two
        // back-to-back bus spans.
        let evs = vec![tb(0, 0), tb(5, 1), te(5, 0), te(9, 1)];
        let tl = check_well_formed(&evs).unwrap();
        assert_eq!(tl.spans.len(), 2);
        assert_eq!((tl.spans[0].begin, tl.spans[0].end), (0, 5));
        assert_eq!((tl.spans[1].begin, tl.spans[1].end), (5, 9));
        assert_eq!(tl.horizon(), 9);
    }

    #[test]
    fn rejects_fifo_violation() {
        // d1's end arrives while d0 is the open head: key mismatch.
        let evs = vec![tb(0, 0), tb(5, 1), te(9, 1), te(5, 0)];
        let err = build_timeline(&evs).unwrap_err();
        assert!(err.message.contains("FIFO"), "{err}");
    }

    #[test]
    fn rejects_unclosed_and_orphan_ends() {
        assert!(build_timeline(&[tb(0, 0)])
            .unwrap_err()
            .message
            .contains("unclosed"));
        assert!(build_timeline(&[te(0, 0)])
            .unwrap_err()
            .message
            .contains("end without begin"));
    }

    #[test]
    fn rejects_overlap_within_track() {
        // Two compute spans on one GPU that overlap in time.
        let evs = vec![
            ObsEvent::ComputeBegin { t: 0, gpu: 0, task: 0 },
            ObsEvent::ComputeEnd { t: 10, gpu: 0, task: 0, interrupted: false },
            ObsEvent::ComputeBegin { t: 5, gpu: 0, task: 1 },
            ObsEvent::ComputeEnd { t: 15, gpu: 0, task: 1, interrupted: false },
        ];
        let err = check_well_formed(&evs).unwrap_err();
        assert!(err.message.contains("overlapping"), "{err}");
    }

    #[test]
    fn rejects_regressing_instants_per_track() {
        let evs = vec![
            ObsEvent::GpuFailed { t: 10, gpu: 0 },
            ObsEvent::GpuFailed { t: 5, gpu: 0 },
        ];
        let err = check_well_formed(&evs).unwrap_err();
        assert!(err.message.contains("regress"), "{err}");
    }
}
