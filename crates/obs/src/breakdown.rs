//! Derived timeline analyses: where did each GPU's time go, and how
//! loaded was the bus?
//!
//! The per-GPU breakdown splits `[0, makespan]` into three disjoint
//! buckets:
//! - **busy** — a task was executing;
//! - **stall** — no task was executing but at least one transfer
//!   destined for the GPU was in flight (queued or on the wire): the
//!   GPU is starved by data movement, the situation the paper's
//!   Obj. 2 (#Loads) only captures in aggregate;
//! - **idle** — everything else (no work, or dead after a fault).
//!
//! A transfer is "in flight" from its *issue* time (`begin − bus_wait`,
//! when the engine committed to the load) to its completion, so time
//! queued behind other transfers on the shared bus counts as stall —
//! that queue is exactly what bus contention looks like from a GPU.

use crate::event::{Nanos, ObsEvent, Track};
use crate::wellformed::{check_well_formed, SpanKind, WellFormedError};

/// Disjoint time split for one GPU; the three fields sum to the
/// `makespan` passed to [`gpu_breakdowns`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GpuBreakdown {
    /// Time executing tasks.
    pub busy: Nanos,
    /// Time starved: not executing, but waiting on at least one
    /// in-flight transfer.
    pub stall: Nanos,
    /// Remaining time (no runnable work, or dead).
    pub idle: Nanos,
}

/// Merge intervals and return both the merged list and total coverage.
fn merge(mut iv: Vec<(Nanos, Nanos)>) -> (Vec<(Nanos, Nanos)>, Nanos) {
    iv.retain(|(a, b)| b > a);
    iv.sort_unstable();
    let mut merged: Vec<(Nanos, Nanos)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match merged.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => merged.push((a, b)),
        }
    }
    let total = merged.iter().map(|(a, b)| b - a).sum();
    (merged, total)
}

/// Total overlap between two merged (sorted, disjoint) interval lists.
fn intersection(xs: &[(Nanos, Nanos)], ys: &[(Nanos, Nanos)]) -> Nanos {
    let (mut i, mut j, mut total) = (0, 0, 0);
    while i < xs.len() && j < ys.len() {
        let lo = xs[i].0.max(ys[j].0);
        let hi = xs[i].1.min(ys[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if xs[i].1 <= ys[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Per-GPU busy/stall/idle split over `[0, makespan]`, derived purely
/// from the recorded spans. The three buckets sum to `makespan` for
/// every GPU (the engine's always-on accounting in
/// `RunReport.per_gpu[g].{busy,stall,idle}` computes the same split
/// online; the two are cross-checked in the integration tests).
pub fn gpu_breakdowns(
    events: &[ObsEvent],
    num_gpus: usize,
    makespan: Nanos,
) -> Result<Vec<GpuBreakdown>, WellFormedError> {
    let timeline = check_well_formed(events)?;
    let mut compute: Vec<Vec<(Nanos, Nanos)>> = vec![Vec::new(); num_gpus];
    let mut pending: Vec<Vec<(Nanos, Nanos)>> = vec![Vec::new(); num_gpus];
    for span in &timeline.spans {
        let g = span.gpu as usize;
        if g >= num_gpus {
            continue;
        }
        match span.kind {
            SpanKind::Compute { .. } => {
                compute[g].push((span.begin.min(makespan), span.end.min(makespan)));
            }
            SpanKind::Transfer { bus_wait, .. } => {
                let issue = span.begin.saturating_sub(bus_wait);
                pending[g].push((issue.min(makespan), span.end.min(makespan)));
            }
        }
    }
    let mut out = Vec::with_capacity(num_gpus);
    for g in 0..num_gpus {
        let (comp, busy) = merge(std::mem::take(&mut compute[g]));
        let (pend, covered) = merge(std::mem::take(&mut pending[g]));
        let stall = covered - intersection(&comp, &pend);
        let idle = makespan.saturating_sub(busy + stall);
        out.push(GpuBreakdown { busy, stall, idle });
    }
    Ok(out)
}

/// Bus occupancy per time bucket: `buckets` equal slices of
/// `[0, makespan]`, each value the fraction of that slice the PCI bus
/// spent moving data (0..=1). NVLink traffic is excluded — it does not
/// contend with the host bus.
pub fn bus_utilization(
    events: &[ObsEvent],
    buckets: usize,
    makespan: Nanos,
) -> Result<Vec<f64>, WellFormedError> {
    bus_utilization_on(events, 0, buckets, makespan)
}

/// [`bus_utilization`] for one specific PCI bus of a multi-bus platform
/// (`bus` 0 is [`Track::Bus`], higher indices [`Track::BusN`]).
pub fn bus_utilization_on(
    events: &[ObsEvent],
    bus: u32,
    buckets: usize,
    makespan: Nanos,
) -> Result<Vec<f64>, WellFormedError> {
    let timeline = check_well_formed(events)?;
    let n = buckets.max(1);
    if makespan == 0 {
        return Ok(vec![0.0; n]);
    }
    let track = if bus == 0 { Track::Bus } else { Track::BusN(bus) };
    let busy: Vec<(Nanos, Nanos)> = timeline
        .spans_on(track)
        .map(|s| (s.begin.min(makespan), s.end.min(makespan)))
        .collect();
    let (merged, _) = merge(busy);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = makespan * i as u64 / n as u64;
        let hi = makespan * (i as u64 + 1) / n as u64;
        let width = hi.saturating_sub(lo);
        if width == 0 {
            out.push(0.0);
            continue;
        }
        let overlap = intersection(&merged, &[(lo, hi)]);
        out.push(overlap as f64 / width as f64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(gpu: u32, data: u32, issue: Nanos, grant: Nanos, done: Nanos) -> [ObsEvent; 2] {
        [
            ObsEvent::TransferBegin {
                t: grant,
                gpu,
                data,
                bytes: 8,
                bus_wait: grant - issue,
                bus: 0,
                peer: None,
                attempt: 1,
            },
            ObsEvent::TransferEnd {
                t: done,
                gpu,
                data,
                bytes: 8,
                bus: 0,
                peer: None,
                attempt: 1,
                delivered: true,
            },
        ]
    }

    fn compute(gpu: u32, task: u32, b: Nanos, e: Nanos) -> [ObsEvent; 2] {
        [
            ObsEvent::ComputeBegin { t: b, gpu, task },
            ObsEvent::ComputeEnd { t: e, gpu, task, interrupted: false },
        ]
    }

    #[test]
    fn breakdown_sums_to_makespan_and_counts_queue_wait_as_stall() {
        // GPU0: transfer issued at 0, queued until 50, delivered at
        // 100, then computes 100..300. GPU1 does nothing.
        let mut evs = Vec::new();
        evs.extend(transfer(0, 0, 0, 50, 100));
        evs.extend(compute(0, 0, 100, 300));
        let bd = gpu_breakdowns(&evs, 2, 300).unwrap();
        assert_eq!(bd[0], GpuBreakdown { busy: 200, stall: 100, idle: 0 });
        assert_eq!(bd[1], GpuBreakdown { busy: 0, stall: 0, idle: 300 });
        for g in &bd {
            assert_eq!(g.busy + g.stall + g.idle, 300);
        }
    }

    #[test]
    fn overlapping_transfer_under_compute_is_not_stall() {
        // Prefetch arrives while the GPU is busy: no stall.
        let mut evs = Vec::new();
        evs.extend(compute(0, 0, 0, 100));
        evs.extend(transfer(0, 1, 20, 20, 80));
        let bd = gpu_breakdowns(&evs, 1, 100).unwrap();
        assert_eq!(bd[0], GpuBreakdown { busy: 100, stall: 0, idle: 0 });
    }

    #[test]
    fn bus_utilization_fractions() {
        // Bus busy 0..100 out of a 200ns makespan, two buckets.
        let evs: Vec<ObsEvent> = transfer(0, 0, 0, 0, 100).into();
        let u = bus_utilization(&evs, 2, 200).unwrap();
        assert_eq!(u, vec![1.0, 0.0]);
        let u4 = bus_utilization(&evs, 4, 200).unwrap();
        assert_eq!(u4, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn per_bus_utilization_separates_traffic() {
        // Bus 1 busy 100..200; bus 0 idle throughout.
        let mut evs: Vec<ObsEvent> = transfer(4, 0, 100, 100, 200).into();
        for ev in &mut evs {
            match ev {
                ObsEvent::TransferBegin { bus, .. } | ObsEvent::TransferEnd { bus, .. } => {
                    *bus = 1;
                }
                _ => {}
            }
        }
        assert_eq!(bus_utilization_on(&evs, 0, 2, 200).unwrap(), vec![0.0, 0.0]);
        assert_eq!(bus_utilization_on(&evs, 1, 2, 200).unwrap(), vec![0.0, 1.0]);
    }
}
