//! Event sinks: the [`TraceSink`] trait, the ring-buffered
//! [`Recorder`], and the [`Probe`] handle the engine and schedulers
//! share.

use crate::event::ObsEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Anything that consumes a stream of [`ObsEvent`]s: the in-memory
/// [`Recorder`], the [`crate::Metrics`] registry, or a test double.
pub trait TraceSink {
    /// Consume one event.
    fn record(&mut self, ev: &ObsEvent);
}

/// A bounded in-memory event buffer. When full, the **oldest** events
/// are dropped (the tail of a run usually matters most) and the drop is
/// counted so exporters can flag a truncated timeline.
#[derive(Clone, Debug)]
pub struct Recorder {
    buf: VecDeque<ObsEvent>,
    capacity: usize,
    dropped: u64,
}

impl Recorder {
    /// A recorder that keeps at most `capacity` events (oldest dropped).
    pub fn new(capacity: usize) -> Self {
        Recorder {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// A recorder that never drops.
    pub fn unbounded() -> Self {
        Recorder::new(usize::MAX)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Snapshot the buffered events in recording order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Consume the recorder, returning the buffered events.
    pub fn into_events(self) -> Vec<ObsEvent> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, ev: &ObsEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
    }
}

/// The handle the engine and the schedulers write through: a cheaply
/// cloneable, shared [`Recorder`]. The engine holds one clone, each
/// scheduler that wants to emit (decision gauges, steals) holds
/// another; events interleave in emission order.
///
/// The simulation itself is single-threaded, so the mutex is
/// uncontended — its cost is one atomic pair per event, and only when a
/// probe is attached at all (the disabled path never touches it).
#[derive(Clone, Debug)]
pub struct Probe {
    inner: Arc<Mutex<Recorder>>,
}

impl Probe {
    /// A probe over a bounded recorder (oldest events dropped on
    /// overflow).
    pub fn new(capacity: usize) -> Self {
        Probe {
            inner: Arc::new(Mutex::new(Recorder::new(capacity))),
        }
    }

    /// A probe that never drops events.
    pub fn unbounded() -> Self {
        Probe {
            inner: Arc::new(Mutex::new(Recorder::unbounded())),
        }
    }

    /// Record one event.
    pub fn emit(&self, ev: ObsEvent) {
        self.inner.lock().record(&ev);
    }

    /// Snapshot the recorded events in emission order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.lock().events()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Number of events dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(t: u64) -> ObsEvent {
        ObsEvent::GpuFailed { t, gpu: 0 }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = Recorder::new(3);
        for t in 0..5 {
            r.record(&instant(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.events().iter().map(ObsEvent::t).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest two dropped");
    }

    #[test]
    fn probe_clones_share_one_buffer() {
        let p = Probe::unbounded();
        let q = p.clone();
        p.emit(instant(1));
        q.emit(instant(2));
        assert_eq!(p.len(), 2);
        assert_eq!(q.dropped(), 0);
        let ts: Vec<u64> = p.events().iter().map(ObsEvent::t).collect();
        assert_eq!(ts, vec![1, 2]);
    }
}
