//! Post-mortem analysis of execution traces: bus utilization, per-GPU
//! occupancy, and how much transfer time was hidden behind computation —
//! the overlap the paper credits for DARTS+LUF's throughput lead even
//! when its raw transfer volume exceeds DMDAR's (§V-C: "This confirms
//! that the overlap between calculations and transfers is effective").

use crate::report::{RunReport, TraceEvent};
use crate::spec::Nanos;
use memsched_obs::{Counter, Metrics, ObsEvent};

/// Aggregated view of a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceAnalysis {
    /// Makespan covered by the trace (last event timestamp).
    pub makespan: Nanos,
    /// Nanoseconds during which at least one transfer was in flight.
    pub bus_busy: Nanos,
    /// Nanoseconds during which at least one GPU was computing.
    pub any_compute: Nanos,
    /// Nanoseconds during which transfers and computation proceeded
    /// simultaneously (the overlap that hides communication).
    pub overlap: Nanos,
    /// Per-GPU busy time (computing).
    pub gpu_busy: Vec<Nanos>,
    /// Count of load / eviction / task events.
    pub loads: usize,
    /// Number of evictions.
    pub evictions: usize,
    /// Number of task executions.
    pub tasks: usize,
    /// Injected fail-stop GPU failures observed in the trace.
    pub gpu_failures: usize,
    /// Injected transient transfer retries observed in the trace.
    pub transfer_retries: usize,
    /// Capacity-change steps from injected shrinks observed in the trace.
    pub capacity_shrinks: usize,
    /// Covered transfer time per PCI bus (index = bus id). One entry —
    /// equal to `bus_busy` — when the analysis ran without a platform
    /// spec or on a single-bus platform. Transfers are attributed to the
    /// destination GPU's bus.
    pub per_bus_busy: Vec<Nanos>,
}

impl TraceAnalysis {
    /// Fraction of the makespan with a transfer in flight.
    pub fn bus_utilization(&self) -> f64 {
        ratio(self.bus_busy, self.makespan)
    }

    /// Fraction of transfer time hidden behind computation.
    pub fn overlap_ratio(&self) -> f64 {
        ratio(self.overlap, self.bus_busy)
    }

    /// Mean GPU occupancy (busy time over makespan, averaged over GPUs).
    pub fn mean_gpu_occupancy(&self) -> f64 {
        if self.gpu_busy.is_empty() {
            return 0.0;
        }
        self.gpu_busy
            .iter()
            .map(|&b| ratio(b, self.makespan))
            .sum::<f64>()
            / self.gpu_busy.len() as f64
    }
}

fn ratio(a: Nanos, b: Nanos) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Interval-union helper: total covered length of `[start, end)` pairs.
fn covered(mut iv: Vec<(Nanos, Nanos)>) -> Nanos {
    iv.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(Nanos, Nanos)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Intersection length of two interval sets.
fn intersection(mut a: Vec<(Nanos, Nanos)>, mut b: Vec<(Nanos, Nanos)>) -> Nanos {
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j) = (0, 0);
    let mut total = 0;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Convert an engine [`TraceEvent`] stream into the typed
/// [`ObsEvent`] stream the `memsched-obs` registry and exporters
/// consume, so a [`crate::TraceMode::Full`] run can be counted,
/// exported, and cross-checked through the same pipeline as a probed
/// one.
///
/// Information the legacy trace never carried is filled with neutral
/// values: transfer `bytes` are 0, `bus_wait` is 0 (the trace records
/// issue time, not grant time — the whole queued interval becomes the
/// span), evictions are tagged `by_scheduler: false`, and retried loads
/// keep `attempt: 1` because the trace does not split attempts into
/// separate wire spans. Counter semantics are unaffected.
pub fn to_obs_events(trace: &[TraceEvent]) -> Vec<ObsEvent> {
    let mut out = Vec::with_capacity(trace.len());
    // Open compute span per GPU, so a fail-stop closes it interrupted.
    // Indexed by GPU id — a flat slot vector grown on demand beats a
    // hash map for the handful of GPUs a platform has.
    let mut running: Vec<Option<u32>> = Vec::new();
    fn slot(running: &mut Vec<Option<u32>>, gpu: usize) -> &mut Option<u32> {
        if gpu >= running.len() {
            running.resize(gpu + 1, None);
        }
        &mut running[gpu]
    }
    for ev in trace {
        match *ev {
            TraceEvent::LoadIssued { at, gpu, data, .. } => out.push(ObsEvent::TransferBegin {
                t: at,
                gpu: gpu as u32,
                data: data as u32,
                bytes: 0,
                bus_wait: 0,
                bus: 0,
                peer: None,
                attempt: 1,
            }),
            TraceEvent::LoadDone { at, gpu, data } => out.push(ObsEvent::TransferEnd {
                t: at,
                gpu: gpu as u32,
                data: data as u32,
                bytes: 0,
                bus: 0,
                peer: None,
                attempt: 1,
                delivered: true,
            }),
            TraceEvent::Evicted { at, gpu, data } => out.push(ObsEvent::Eviction {
                t: at,
                gpu: gpu as u32,
                data: data as u32,
                bytes: 0,
                by_scheduler: false,
            }),
            TraceEvent::TaskStarted { at, gpu, task } => {
                *slot(&mut running, gpu) = Some(task as u32);
                out.push(ObsEvent::ComputeBegin {
                    t: at,
                    gpu: gpu as u32,
                    task: task as u32,
                });
            }
            TraceEvent::TaskFinished { at, gpu, task } => {
                *slot(&mut running, gpu) = None;
                out.push(ObsEvent::ComputeEnd {
                    t: at,
                    gpu: gpu as u32,
                    task: task as u32,
                    interrupted: false,
                });
            }
            TraceEvent::GpuFailed { at, gpu } => {
                if let Some(task) = slot(&mut running, gpu).take() {
                    out.push(ObsEvent::ComputeEnd {
                        t: at,
                        gpu: gpu as u32,
                        task,
                        interrupted: true,
                    });
                }
                out.push(ObsEvent::GpuFailed { t: at, gpu: gpu as u32 });
            }
            TraceEvent::TransferRetry { at, gpu, data, attempt } => {
                out.push(ObsEvent::TransferRetry {
                    t: at,
                    gpu: gpu as u32,
                    data: data as u32,
                    attempt,
                })
            }
            TraceEvent::CapacityShrunk { at, gpu, capacity } => {
                out.push(ObsEvent::CapacityShrunk {
                    t: at,
                    gpu: gpu as u32,
                    capacity,
                })
            }
            TraceEvent::GpuSlowed { at, gpu, factor } => out.push(ObsEvent::GpuSlowed {
                t: at,
                gpu: gpu as u32,
                factor,
            }),
            TraceEvent::TaskArrived { at, task } => out.push(ObsEvent::TaskArrived {
                t: at,
                task: task as u32,
            }),
            // The engine trace does not carry the deferral wait; replay
            // it as zero (the obs stream from a live probe has the true
            // value).
            TraceEvent::TaskAdmitted { at, task } => out.push(ObsEvent::TaskAdmitted {
                t: at,
                task: task as u32,
                wait: 0,
            }),
            TraceEvent::TaskDeferred { at, task } => out.push(ObsEvent::TaskDeferred {
                t: at,
                task: task as u32,
            }),
            TraceEvent::TaskShed { at, task } => out.push(ObsEvent::TaskShed {
                t: at,
                task: task as u32,
            }),
            TraceEvent::DeadlineExpired { at, task } => out.push(ObsEvent::DeadlineExpired {
                t: at,
                task: task as u32,
            }),
        }
    }
    out
}

/// Analyse a trace produced by [`crate::run_with_config`] under
/// [`crate::TraceMode::Full`]. `num_gpus` must match the run's platform.
///
/// Event *counts* (loads, evictions, tasks, retries, failures) are
/// derived by feeding the converted stream ([`to_obs_events`]) through
/// the [`Metrics`] registry — one counting implementation shared with
/// live probes, so the analysis and a `--metrics-out` file can never
/// disagree. The interval math (overlap, busy time) stays local: it
/// needs the paired starts the registry does not retain.
pub fn analyze(trace: &[TraceEvent], num_gpus: usize) -> TraceAnalysis {
    analyze_multibus(trace, num_gpus, None)
}

/// As [`analyze`], additionally splitting transfer time per PCI bus
/// when the run's [`crate::PlatformSpec`] is available (`spec` carries
/// the bus grouping; `None` folds everything onto one bus).
pub fn analyze_multibus(
    trace: &[TraceEvent],
    num_gpus: usize,
    spec: Option<&crate::PlatformSpec>,
) -> TraceAnalysis {
    let num_buses = spec.map_or(1, |s| s.num_buses());
    let bus_of = |g: usize| spec.map_or(0, |s| s.bus_of(g));
    let mut per_bus: Vec<Vec<(Nanos, Nanos)>> = vec![Vec::new(); num_buses];
    let mut transfers: Vec<(Nanos, Nanos)> = Vec::new();
    let mut compute: Vec<(Nanos, Nanos)> = Vec::new();
    let mut gpu_busy = vec![0; num_gpus];
    let mut started: Vec<Option<Nanos>> = vec![None; num_gpus];
    let mut makespan = 0;
    let mut capacity_shrinks = 0;

    for ev in trace {
        match *ev {
            TraceEvent::LoadIssued { at, gpu, done_at, .. } => {
                transfers.push((at, done_at));
                per_bus[bus_of(gpu)].push((at, done_at));
                makespan = makespan.max(done_at);
            }
            TraceEvent::LoadDone { at, .. } => {
                makespan = makespan.max(at);
            }
            TraceEvent::Evicted { at, .. } => {
                makespan = makespan.max(at);
            }
            TraceEvent::TaskStarted { at, gpu, .. } => {
                started[gpu] = Some(at);
            }
            TraceEvent::TaskFinished { at, gpu, .. } => {
                makespan = makespan.max(at);
                if let Some(s) = started[gpu].take() {
                    compute.push((s, at));
                    gpu_busy[gpu] += at - s;
                }
            }
            TraceEvent::GpuFailed { at, gpu } => {
                makespan = makespan.max(at);
                // The interrupted task never finishes here: close its
                // compute interval at the failure (matching the engine's
                // busy-time refund).
                if let Some(s) = started[gpu].take() {
                    compute.push((s, at));
                    gpu_busy[gpu] += at - s;
                }
            }
            TraceEvent::TransferRetry { at, .. } => {
                makespan = makespan.max(at);
            }
            TraceEvent::CapacityShrunk { at, .. } => {
                capacity_shrinks += 1;
                makespan = makespan.max(at);
            }
            TraceEvent::GpuSlowed { at, .. } => {
                makespan = makespan.max(at);
            }
            TraceEvent::TaskArrived { at, .. }
            | TraceEvent::TaskAdmitted { at, .. }
            | TraceEvent::TaskDeferred { at, .. }
            | TraceEvent::TaskShed { at, .. }
            | TraceEvent::DeadlineExpired { at, .. } => {
                makespan = makespan.max(at);
            }
        }
    }

    let mut metrics = Metrics::new();
    metrics.ingest(&to_obs_events(trace));

    TraceAnalysis {
        makespan,
        bus_busy: covered(transfers.clone()),
        any_compute: covered(compute.clone()),
        overlap: intersection(transfers, compute),
        gpu_busy,
        loads: metrics.counter(Counter::Loads) as usize,
        evictions: metrics.counter(Counter::Evictions) as usize,
        tasks: metrics.counter(Counter::Tasks) as usize,
        gpu_failures: metrics.counter(Counter::GpuFailures) as usize,
        transfer_retries: metrics.counter(Counter::TransferRetries) as usize,
        // The registry deliberately does not count shrink steps (they
        // are capacity states, not events a policy can influence).
        capacity_shrinks,
        per_bus_busy: per_bus.into_iter().map(covered).collect(),
    }
}

/// Convenience: sanity-check a `(report, trace)` pair — event counts in
/// the trace must match the report. Returns the analysis.
pub fn analyze_checked(report: &RunReport, trace: &[TraceEvent]) -> TraceAnalysis {
    let a = analyze(trace, report.per_gpu.len());
    debug_assert_eq!(a.loads as u64, report.total_loads);
    debug_assert_eq!(a.evictions as u64, report.total_evictions);
    debug_assert_eq!(
        a.tasks,
        report.per_gpu.iter().map(|g| g.tasks).sum::<usize>()
    );
    debug_assert_eq!(a.transfer_retries as u64, report.transfer_retries);
    debug_assert_eq!(a.gpu_failures as u64, report.gpu_failures);
    a
}

/// Render an ASCII Gantt chart of a trace: one lane per GPU (`#` =
/// computing, `.` = idle) plus a bus lane (`=` = transfer in flight).
/// `width` is the number of character columns the makespan is scaled to.
pub fn render_gantt(trace: &[TraceEvent], num_gpus: usize, width: usize) -> String {
    let width = width.clamp(10, 500);
    let a = analyze(trace, num_gpus);
    if a.makespan == 0 {
        return String::from("(empty trace)\n");
    }
    let col_of = |t: Nanos| ((t as u128 * width as u128 / a.makespan as u128) as usize).min(width - 1);

    let mut lanes = vec![vec![b'.'; width]; num_gpus];
    let mut bus = vec![b' '; width];
    let mut started: Vec<Option<Nanos>> = vec![None; num_gpus];
    for ev in trace {
        match *ev {
            TraceEvent::LoadIssued { at, done_at, .. } => {
                bus[col_of(at)..=col_of(done_at)].fill(b'=');
            }
            TraceEvent::TaskStarted { at, gpu, .. } => started[gpu] = Some(at),
            TraceEvent::TaskFinished { at, gpu, .. } => {
                if let Some(s) = started[gpu].take() {
                    lanes[gpu][col_of(s)..=col_of(at)].fill(b'#');
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (g, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("GPU{g:<2} |{}|\n", String::from_utf8_lossy(lane)));
    }
    out.push_str(&format!("bus   |{}|\n", String::from_utf8_lossy(&bus)));
    out.push_str(&format!(
        "0{:>width$}\n",
        format!("{:.1} ms", a.makespan as f64 / 1e6),
        width = width
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gantt_renders_lanes() {
        let trace = vec![
            TraceEvent::LoadIssued {
                at: 0,
                gpu: 0,
                data: 0,
                done_at: 50,
            },
            TraceEvent::TaskStarted {
                at: 50,
                gpu: 0,
                task: 0,
            },
            TraceEvent::TaskFinished {
                at: 100,
                gpu: 0,
                task: 0,
            },
        ];
        let chart = render_gantt(&trace, 2, 20);
        assert!(chart.contains("GPU0"));
        assert!(chart.contains("GPU1"));
        assert!(chart.contains("bus"));
        assert!(chart.contains('#'), "compute lane should be drawn");
        assert!(chart.contains('='), "bus lane should be drawn");
        // GPU1 never works: its lane is all idle dots.
        let gpu1_line = chart.lines().nth(1).unwrap();
        assert!(!gpu1_line.contains('#'));
    }

    #[test]
    fn gantt_empty_trace() {
        assert_eq!(render_gantt(&[], 1, 40), "(empty trace)\n");
    }

    #[test]
    fn covered_merges_overlaps() {
        assert_eq!(covered(vec![(0, 10), (5, 15), (20, 30)]), 25);
        assert_eq!(covered(vec![]), 0);
        assert_eq!(covered(vec![(3, 3)]), 0);
    }

    #[test]
    fn intersection_of_interval_sets() {
        let a = vec![(0, 10), (20, 30)];
        let b = vec![(5, 25)];
        assert_eq!(intersection(a, b), 10); // [5,10) + [20,25)
        assert_eq!(intersection(vec![(0, 5)], vec![(5, 9)]), 0);
    }

    #[test]
    fn analyze_counts_and_ratios() {
        let trace = vec![
            TraceEvent::LoadIssued {
                at: 0,
                gpu: 0,
                data: 0,
                done_at: 100,
            },
            TraceEvent::LoadDone {
                at: 100,
                gpu: 0,
                data: 0,
            },
            TraceEvent::TaskStarted {
                at: 100,
                gpu: 0,
                task: 0,
            },
            TraceEvent::LoadIssued {
                at: 100,
                gpu: 0,
                data: 1,
                done_at: 180,
            },
            TraceEvent::LoadDone {
                at: 180,
                gpu: 0,
                data: 1,
            },
            TraceEvent::TaskFinished {
                at: 300,
                gpu: 0,
                task: 0,
            },
        ];
        let a = analyze(&trace, 1);
        assert_eq!(a.makespan, 300);
        assert_eq!(a.bus_busy, 180);
        assert_eq!(a.any_compute, 200);
        assert_eq!(a.overlap, 80, "second transfer hides behind the task");
        assert_eq!(a.loads, 2);
        assert_eq!(a.tasks, 1);
        assert!((a.overlap_ratio() - 80.0 / 180.0).abs() < 1e-12);
        assert!((a.bus_utilization() - 0.6).abs() < 1e-12);
        assert!((a.mean_gpu_occupancy() - 200.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_overlap_is_high_for_good_schedulers() {
        use crate::{run_with_config, PlatformSpec, RunConfig, TraceMode};
        use memsched_model::TaskSetBuilder;

        // A chain of tasks on distinct data: with pipeline depth 2, every
        // transfer after the first should hide behind computation.
        let mut b = TaskSetBuilder::new();
        for _ in 0..10 {
            let d = b.add_data(1000);
            b.add_task(&[d], 100_000.0);
        }
        let ts = b.build();
        struct Fifo(u32);
        impl crate::Scheduler for Fifo {
            fn name(&self) -> String {
                "fifo".into()
            }
            fn pop_task(
                &mut self,
                _: memsched_model::GpuId,
                v: &crate::RuntimeView<'_>,
            ) -> Option<memsched_model::TaskId> {
                if self.0 < v.task_set().num_tasks() as u32 {
                    self.0 += 1;
                    Some(memsched_model::TaskId(self.0 - 1))
                } else {
                    None
                }
            }
        }
        let spec = PlatformSpec {
            num_gpus: 1,
            memory_bytes: 10_000,
            bus_bandwidth: 1e9,
            transfer_latency: 0,
            gpu_gflops: 1.0,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        let (report, trace) = run_with_config(
            &ts,
            &spec,
            &mut Fifo(0),
            &RunConfig {
                trace: TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        let a = analyze_checked(&report, &trace);
        assert_eq!(a.tasks, 10);
        // 9 of 10 transfers hide behind compute (first one cannot).
        assert!(a.overlap_ratio() > 0.85, "overlap = {}", a.overlap_ratio());
    }

    #[test]
    fn retry_counts_cross_check_report_trace_and_metrics() {
        use crate::fault::{FaultPlan, TransferFaultSpec};
        use crate::{run_with_config, PlatformSpec, RunConfig, TraceMode};
        use memsched_model::TaskSetBuilder;

        let mut b = TaskSetBuilder::new();
        for _ in 0..4 {
            let d = b.add_data(1000);
            b.add_task(&[d], 5_000.0);
        }
        let ts = b.build();
        struct Fifo(u32);
        impl crate::Scheduler for Fifo {
            fn name(&self) -> String {
                "fifo".into()
            }
            fn pop_task(
                &mut self,
                _: memsched_model::GpuId,
                v: &crate::RuntimeView<'_>,
            ) -> Option<memsched_model::TaskId> {
                if self.0 < v.task_set().num_tasks() as u32 {
                    self.0 += 1;
                    Some(memsched_model::TaskId(self.0 - 1))
                } else {
                    None
                }
            }
        }
        let spec = PlatformSpec {
            num_gpus: 1,
            memory_bytes: 10_000,
            bus_bandwidth: 1e9,
            transfer_latency: 0,
            gpu_gflops: 1.0,
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        };
        // Heavy transient fault rate so retries actually fire.
        let faults = FaultPlan::none().with_transfer_faults(TransferFaultSpec {
            seed: 7,
            fault_ppm: 500_000,
            max_attempts: 10,
            backoff_base: 100,
        });
        let (report, trace) = run_with_config(
            &ts,
            &spec,
            &mut Fifo(0),
            &RunConfig {
                trace: TraceMode::Full,
                faults,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.transfer_retries > 0, "plan must actually fire");
        // Trace-event count == report counter.
        let in_trace = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TransferRetry { .. }))
            .count() as u64;
        assert_eq!(in_trace, report.transfer_retries);
        // And the metrics registry, fed from the converted stream,
        // agrees with both.
        let mut m = Metrics::new();
        m.ingest(&to_obs_events(&trace));
        assert_eq!(m.counter(Counter::TransferRetries), report.transfer_retries);
        let a = analyze_checked(&report, &trace);
        assert_eq!(a.transfer_retries as u64, report.transfer_retries);
    }
}
