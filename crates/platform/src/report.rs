//! Execution reports produced by the simulator.

use crate::spec::Nanos;
use serde::{Deserialize, Serialize};

/// Per-GPU execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuRunStats {
    /// Tasks executed on this GPU (`nb_k`).
    pub tasks: usize,
    /// Host→GPU load operations.
    pub loads: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Nanoseconds spent executing tasks.
    pub busy: Nanos,
    /// Nanoseconds starved by data movement: not executing, alive, and at
    /// least one transfer destined for this GPU in flight (queued on the
    /// bus or on the wire). Disjoint from `busy`;
    /// `busy + stall + idle == makespan` exactly.
    #[serde(default)]
    pub stall: Nanos,
    /// Remaining nanoseconds: no runnable work, or dead after a fault.
    #[serde(default)]
    pub idle: Nanos,
    /// Wall-clock nanoseconds spent inside scheduler callbacks for this
    /// GPU's worker (pop/eviction decisions).
    pub sched_wall: Nanos,
    /// Loads served from a peer GPU over the NVLink fabric (0 on the
    /// paper's PCI-only platform).
    pub nvlink_loads: u64,
    /// Bytes received over NVLink.
    pub nvlink_bytes: u64,
    /// Input bytes already resident (or in flight) here when a task was
    /// committed to this GPU's pipeline, summed over placements.
    #[serde(default)]
    pub cache_hit_bytes: u64,
    /// Input bytes still missing at placement time (the recomputation /
    /// re-fetch cost the placement incurred).
    #[serde(default)]
    pub cache_miss_bytes: u64,
}

/// Result of one simulated run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Simulated makespan in nanoseconds (excluding scheduling cost).
    pub makespan: Nanos,
    /// Total floating-point operations executed.
    pub total_flops: f64,
    /// Total bytes transferred host→GPUs.
    pub total_load_bytes: u64,
    /// Total number of host→GPU load operations (Obj. 2).
    pub total_loads: u64,
    /// Total evictions.
    pub total_evictions: u64,
    /// Per-GPU breakdown.
    pub per_gpu: Vec<GpuRunStats>,
    /// Wall-clock nanoseconds of the static phase
    /// (partitioning / packing / DMDA allocation loop).
    pub prepare_wall: Nanos,
    /// Wall-clock nanoseconds of all dynamic scheduler callbacks.
    pub sched_wall: Nanos,
    /// Transfer retries caused by injected transient faults (0 without
    /// fault injection).
    #[serde(default)]
    pub transfer_retries: u64,
    /// GPUs lost to injected fail-stop faults during the run.
    #[serde(default)]
    pub gpu_failures: u64,
    /// Tasks returned to the scheduler by fail-stop faults and executed
    /// elsewhere.
    #[serde(default)]
    pub tasks_redispatched: u64,
    /// Serving statistics of an online run (`None` for batch runs, so
    /// batch reports serialize unchanged).
    #[serde(default)]
    pub online: Option<OnlineStats>,
    /// Rolling FNV-1a checksum of the trace-event stream when the run
    /// recorded with [`crate::TraceMode::Checksum`]; `None` under `Full`
    /// and `Off`, keeping previously serialized reports stable.
    #[serde(default)]
    pub trace_checksum: Option<u64>,
    /// Nanoseconds each PCI bus spent moving data, indexed by bus id
    /// (one entry on single-bus platforms). Empty in reports serialized
    /// before the multi-bus extension.
    #[serde(default)]
    pub bus_busy_ns: Vec<u64>,
    /// Statistics of the sharded simulation tier (`None` for runs on
    /// the serial core).
    #[serde(default)]
    pub sharding: Option<ShardingStats>,
}

/// How a sharded-tier run (`memsched_platform::shard`) was executed.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardingStats {
    /// Worker threads requested by the caller.
    pub requested_shards: usize,
    /// Independent shards actually simulated (the number of bus groups
    /// when sharding engaged; 1 on a serial fallback).
    pub shards_used: usize,
    /// Conservative time-window barriers crossed by the coordinator.
    pub windows: u64,
    /// Why the run fell back to the serial core (`None` when sharding
    /// engaged).
    #[serde(default)]
    pub fallback_reason: Option<String>,
}

/// Serving statistics of one online (admission-loop) run.
///
/// *Latency* is completion minus arrival of a task; *queueing delay* is
/// compute start minus arrival (latency minus service). Quantiles are
/// nearest-rank over the whole run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    /// Tasks admitted (released to the scheduler).
    pub tasks_admitted: u64,
    /// Arrivals deferred at least once by the admission check.
    pub tasks_deferred: u64,
    /// Median task latency in nanoseconds.
    pub p50_latency: Nanos,
    /// 99th-percentile task latency in nanoseconds.
    pub p99_latency: Nanos,
    /// Mean task latency in nanoseconds.
    pub mean_latency: Nanos,
    /// Median queueing delay in nanoseconds.
    pub p50_queueing: Nanos,
    /// 99th-percentile queueing delay in nanoseconds.
    pub p99_queueing: Nanos,
    /// Sustained throughput in completed tasks per second of simulated
    /// time.
    pub throughput_tps: f64,
    /// Arrivals rejected by the overload-control policy (never released
    /// to a scheduler). 0 under [`crate::ShedPolicy::DeferOnly`].
    #[serde(default)]
    pub tasks_shed: u64,
    /// Deferred tasks dropped after sitting in the admission queue past
    /// their deadline. Disjoint from `tasks_shed`.
    #[serde(default)]
    pub deadline_expired: u64,
    /// Tasks shed or expired, by tenant class (index = class). Empty
    /// when nothing was dropped.
    #[serde(default)]
    pub shed_per_class: Vec<u64>,
    /// Tasks completed, by tenant class (index = class). Empty on
    /// class-less runs that dropped nothing.
    #[serde(default)]
    pub completed_per_class: Vec<u64>,
    /// Completed tasks that finished after their deadline (tasks without
    /// a deadline never violate).
    #[serde(default)]
    pub deadline_violations: u64,
    /// Completed-within-deadline tasks per second of simulated time:
    /// the useful share of `throughput_tps` (equal when nothing carried
    /// a deadline or nothing violated).
    #[serde(default)]
    pub goodput_tps: f64,
}

impl RunReport {
    /// Throughput in GFlop/s, ignoring scheduling cost (the paper's
    /// "no sched. time" curves).
    pub fn gflops(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.total_flops / (self.makespan as f64 / 1e9) / 1e9
    }

    /// Estimated makespan including scheduling cost: the static phase runs
    /// before any task, and each worker is delayed by the wall time its
    /// own scheduling decisions took (we charge the maximum over workers,
    /// matching the paper's observation that scheduling time sits on the
    /// critical path).
    pub fn makespan_with_sched(&self) -> Nanos {
        let max_worker_sched = self.per_gpu.iter().map(|g| g.sched_wall).max().unwrap_or(0);
        self.makespan + self.prepare_wall + max_worker_sched
    }

    /// Throughput in GFlop/s including scheduling cost (the paper's
    /// default reporting: "the cost of computing the schedule is
    /// considered unless specified otherwise").
    pub fn gflops_with_sched(&self) -> f64 {
        let ms = self.makespan_with_sched();
        if ms == 0 {
            return 0.0;
        }
        self.total_flops / (ms as f64 / 1e9) / 1e9
    }

    /// Total data transferred in megabytes (the y axis of Figures 4 and
    /// 7). Includes NVLink traffic when the fabric is enabled; use
    /// [`RunReport::pci_transfers_mb`] for host-bus traffic only.
    pub fn transfers_mb(&self) -> f64 {
        self.total_load_bytes as f64 / 1e6
    }

    /// Bytes received over NVLink, in megabytes.
    pub fn nvlink_mb(&self) -> f64 {
        self.per_gpu.iter().map(|g| g.nvlink_bytes).sum::<u64>() as f64 / 1e6
    }

    /// Host→GPU traffic over the shared PCI bus, in megabytes.
    pub fn pci_transfers_mb(&self) -> f64 {
        self.transfers_mb() - self.nvlink_mb()
    }

    /// Fraction of placed input bytes already resident on the chosen
    /// GPU (`hit / (hit + miss)` over all placements; 1.0 for an empty
    /// run so a cache-free workload reads as "nothing missed").
    pub fn cache_hit_rate(&self) -> f64 {
        let hit: u64 = self.per_gpu.iter().map(|g| g.cache_hit_bytes).sum();
        let miss: u64 = self.per_gpu.iter().map(|g| g.cache_miss_bytes).sum();
        if hit + miss == 0 {
            return 1.0;
        }
        hit as f64 / (hit + miss) as f64
    }

    /// `max_k nb_k` — Objective 1.
    pub fn max_load(&self) -> usize {
        self.per_gpu.iter().map(|g| g.tasks).max().unwrap_or(0)
    }

    /// Degraded-mode slowdown versus a fault-free `baseline` run of the
    /// same workload: `makespan / baseline.makespan`. 1.0 means the
    /// faults cost nothing; 2.0 means the run took twice as long.
    pub fn degradation_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.makespan == 0 {
            return 1.0;
        }
        self.makespan as f64 / baseline.makespan as f64
    }
}

/// A timestamped record of everything the engine did; enabled through
/// [`crate::RunConfig::trace`] and used by tests and debugging.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A transfer of `data` to `gpu` was placed on the bus.
    LoadIssued {
        /// Simulation time.
        at: Nanos,
        /// Destination GPU index.
        gpu: usize,
        /// Data index.
        data: usize,
        /// Completion time granted by the bus.
        done_at: Nanos,
    },
    /// `data` became resident on `gpu`.
    LoadDone {
        /// Simulation time.
        at: Nanos,
        /// Destination GPU index.
        gpu: usize,
        /// Data index.
        data: usize,
    },
    /// `data` was evicted from `gpu`.
    Evicted {
        /// Simulation time.
        at: Nanos,
        /// GPU index.
        gpu: usize,
        /// Data index.
        data: usize,
    },
    /// `task` started executing on `gpu`.
    TaskStarted {
        /// Simulation time.
        at: Nanos,
        /// GPU index.
        gpu: usize,
        /// Task index.
        task: usize,
    },
    /// `task` finished on `gpu`.
    TaskFinished {
        /// Simulation time.
        at: Nanos,
        /// GPU index.
        gpu: usize,
        /// Task index.
        task: usize,
    },
    /// `gpu` suffered an injected fail-stop fault; its pipelined tasks
    /// were returned to the scheduler.
    GpuFailed {
        /// Simulation time.
        at: Nanos,
        /// GPU index.
        gpu: usize,
    },
    /// A transfer of `data` to `gpu` failed transiently; delivery attempt
    /// `attempt` was queued on the PCI bus after backoff.
    TransferRetry {
        /// Simulation time.
        at: Nanos,
        /// Destination GPU index.
        gpu: usize,
        /// Data index.
        data: usize,
        /// Attempt number about to run (2 = first retry).
        attempt: u32,
    },
    /// `gpu`'s memory capacity changed to `capacity` bytes (injected
    /// shrink; emitted per actual change, so a shrink blocked by pinned
    /// data appears again as it tightens).
    CapacityShrunk {
        /// Simulation time.
        at: Nanos,
        /// GPU index.
        gpu: usize,
        /// New capacity in bytes.
        capacity: u64,
    },
    /// `gpu`'s effective speed changed by an injected straggler fault.
    GpuSlowed {
        /// Simulation time.
        at: Nanos,
        /// GPU index.
        gpu: usize,
        /// Speed multiplier now in effect (< 1 is slower).
        factor: f64,
    },
    /// `task` arrived at the admission loop (online runs only).
    TaskArrived {
        /// Simulation time.
        at: Nanos,
        /// Task index.
        task: usize,
    },
    /// `task` was admitted — released to the scheduler (online runs
    /// only).
    TaskAdmitted {
        /// Simulation time.
        at: Nanos,
        /// Task index.
        task: usize,
    },
    /// `task` was deferred by the admission check; emitted once per
    /// arrival, at the first defer decision (online runs only).
    TaskDeferred {
        /// Simulation time.
        at: Nanos,
        /// Task index.
        task: usize,
    },
    /// `task` was rejected by the overload-control policy — it is never
    /// released to a scheduler and never executes (online runs under a
    /// shedding [`crate::ShedPolicy`] only).
    TaskShed {
        /// Simulation time.
        at: Nanos,
        /// Task index.
        task: usize,
    },
    /// A deferred `task` sat in the admission queue past its completion
    /// deadline and was dropped (online runs under a shedding
    /// [`crate::ShedPolicy`] only).
    DeadlineExpired {
        /// Simulation time.
        at: Nanos,
        /// Task index.
        task: usize,
    },
}
