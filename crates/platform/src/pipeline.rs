//! Flat per-GPU pipeline rings.
//!
//! Each GPU's prefetch pipeline is a bounded FIFO of at most
//! `pipeline_depth` task handles. Instead of one `VecDeque` per GPU, all
//! rings live in a single `k × depth` arena indexed by GPU id — no
//! per-GPU allocation, cache-friendly iteration, and a `Clone`-able
//! cursor iterator for scheduler views.

use memsched_model::TaskId;

/// All GPUs' prefetch pipelines in one flat ring arena.
pub(crate) struct Pipelines {
    depth: usize,
    buf: Vec<TaskId>,
    head: Vec<u32>,
    len: Vec<u32>,
}

impl Pipelines {
    pub(crate) fn new(num_gpus: usize, depth: usize) -> Self {
        Self {
            depth,
            buf: vec![TaskId(0); num_gpus * depth],
            head: vec![0; num_gpus],
            len: vec![0; num_gpus],
        }
    }

    #[inline]
    pub(crate) fn len(&self, g: usize) -> usize {
        self.len[g] as usize
    }

    #[inline]
    pub(crate) fn front(&self, g: usize) -> Option<TaskId> {
        (self.len[g] > 0).then(|| self.buf[g * self.depth + self.head[g] as usize])
    }

    /// The `i`-th queued task of GPU `g` in FIFO order.
    #[inline]
    pub(crate) fn get(&self, g: usize, i: usize) -> TaskId {
        debug_assert!(i < self.len(g));
        self.buf[g * self.depth + (self.head[g] as usize + i) % self.depth]
    }

    pub(crate) fn push_back(&mut self, g: usize, t: TaskId) {
        debug_assert!(self.len(g) < self.depth, "pipeline overflow on gpu {g}");
        let pos = (self.head[g] as usize + self.len[g] as usize) % self.depth;
        self.buf[g * self.depth + pos] = t;
        self.len[g] += 1;
    }

    pub(crate) fn pop_front(&mut self, g: usize) -> Option<TaskId> {
        if self.len[g] == 0 {
            return None;
        }
        let t = self.buf[g * self.depth + self.head[g] as usize];
        self.head[g] = ((self.head[g] as usize + 1) % self.depth) as u32;
        self.len[g] -= 1;
        Some(t)
    }

    /// Empty GPU `g`'s pipeline into `out` in FIFO order (fail-stop path).
    pub(crate) fn drain_into(&mut self, g: usize, out: &mut Vec<TaskId>) {
        while let Some(t) = self.pop_front(g) {
            out.push(t);
        }
    }

    /// FIFO-order cursor over GPU `g`'s queued tasks.
    #[inline]
    pub(crate) fn iter(&self, g: usize) -> PipelineIter<'_> {
        PipelineIter {
            ring: &self.buf[g * self.depth..(g + 1) * self.depth],
            head: self.head[g] as usize,
            len: self.len[g] as usize,
        }
    }
}

/// Borrowing FIFO iterator over one GPU's ring (see [`Pipelines::iter`]).
#[derive(Clone)]
pub struct PipelineIter<'a> {
    ring: &'a [TaskId],
    head: usize,
    len: usize,
}

impl Iterator for PipelineIter<'_> {
    type Item = TaskId;

    #[inline]
    fn next(&mut self) -> Option<TaskId> {
        if self.len == 0 {
            return None;
        }
        let t = self.ring[self.head];
        self.head = (self.head + 1) % self.ring.len();
        self.len -= 1;
        Some(t)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len, Some(self.len))
    }
}

impl ExactSizeIterator for PipelineIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_iterates_in_fifo_order() {
        let mut p = Pipelines::new(2, 3);
        for i in 0..3u32 {
            p.push_back(1, TaskId(i));
        }
        assert_eq!(p.len(1), 3);
        assert_eq!(p.len(0), 0);
        assert_eq!(p.pop_front(1), Some(TaskId(0)));
        p.push_back(1, TaskId(3)); // wraps around the ring
        let got: Vec<TaskId> = p.iter(1).collect();
        assert_eq!(got, vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(p.iter(1).len(), 3);
        assert_eq!(p.front(1), Some(TaskId(1)));
        let mut lost = Vec::new();
        p.drain_into(1, &mut lost);
        assert_eq!(lost, vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(p.front(1), None);
        assert_eq!(p.pop_front(1), None);
    }
}
