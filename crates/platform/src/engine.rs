//! The discrete-event runtime engine.
//!
//! A faithful-in-spirit miniature of StarPU's execution model, which is
//! what the paper's evaluation runs on (natively and over SimGrid):
//!
//! * **pull-mode workers** — whenever a GPU has room in its execution
//!   pipeline it asks the scheduling policy for a task
//!   ([`Scheduler::pop_task`]);
//! * **prefetching** — inputs of queued tasks are fetched ahead of time so
//!   transfers overlap the current execution;
//! * **a shared PCI bus** — all host→GPU transfers are serialized through
//!   one FIFO bus of fixed bandwidth (the topology of Figure 2);
//! * **bounded GPU memory with eviction** — when a fetch does not fit, a
//!   victim is chosen (scheduler hook first — that is how DARTS installs
//!   LUF — with LRU as the default, like StarPU);
//! * **pinning** — inputs of the running task and in-flight transfers are
//!   not evictable, which both matches the model's
//!   `V(k,i) ∩ D(σ(k,i)) = ∅` constraint and makes the engine
//!   deadlock-free.
//!
//! The engine is single-threaded and fully deterministic: identical
//! inputs produce identical reports, event ties are broken by issue
//! order.
//!
//! **Fault injection.** A [`FaultPlan`] in [`RunConfig`] injects
//! fail-stop GPU deaths, transient transfer faults with bounded
//! retry/backoff, mid-run capacity shrinks and straggler slowdowns, all
//! keyed to the simulated clock so faulty runs replay identically. With
//! the default empty plan no fault events are seeded, so event sequence
//! numbers — and therefore traces and reports — are byte-identical to a
//! build without the subsystem.

use crate::equeue::EventQueue;
use crate::fault::FaultPlan;
use crate::memory::GpuMemory;
use crate::pipeline::Pipelines;
use crate::report::{GpuRunStats, OnlineStats, RunReport, TraceEvent};
use crate::scheduler::{MissingCache, RuntimeView, Scheduler};
use crate::spec::{Nanos, PlatformSpec};
use crate::trace::{TraceMode, TraceSink};
use memsched_model::{DataId, GpuId, TaskId, TaskSet};
use memsched_obs::{GaugeKind, ObsEvent, Probe};
use std::collections::VecDeque;
use std::time::Instant;

/// Engine options.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// How to record the run's [`TraceEvent`] stream: `Off` (default,
    /// fastest), `Full` (materialize the log `run_with_config` returns),
    /// or `Checksum` (stream into `RunReport::trace_checksum` at O(1)
    /// memory — the million-task mode).
    pub trace: TraceMode,
    /// Abort after this many processed events (safety net against buggy
    /// scheduling policies; the default is generous).
    pub max_events: u64,
    /// Faults to inject during the run. The default ([`FaultPlan::none`])
    /// injects nothing and leaves every run byte-identical to a fault-free
    /// build.
    pub faults: FaultPlan,
    /// Online serving mode. `None` (the default) is batch mode: every
    /// task is handed to the scheduler up front via
    /// [`Scheduler::prepare`] and the run is byte-identical to a build
    /// without the admission subsystem. `Some` switches the engine to an
    /// admission loop that releases tasks as their
    /// [`TaskSet::arrival`](memsched_model::TaskSet::arrival) times pass,
    /// calling [`Scheduler::prepare_stream`] /
    /// [`Scheduler::on_task_arrival`] instead.
    pub admission: Option<AdmissionConfig>,
    /// Drive the run on the pre-refactor reference engine core — binary
    /// heap event queue, scan-every-GPU progress loop — instead of the
    /// flat calendar-queue core. Decisions, traces and reports are
    /// byte-identical either way (differential-proptested); only the
    /// engine's own wall time differs. Compiled in by the `naive`
    /// feature for differential tests and the engine-scale bench.
    #[cfg(feature = "naive")]
    pub naive_core: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            trace: TraceMode::Off,
            max_events: u64::MAX,
            faults: FaultPlan::none(),
            admission: None,
            #[cfg(feature = "naive")]
            naive_core: false,
        }
    }
}

impl RunConfig {
    /// Whether the reference (pre-refactor) engine core drives this run.
    #[inline]
    pub(crate) fn use_naive_core(&self) -> bool {
        #[cfg(feature = "naive")]
        {
            self.naive_core
        }
        #[cfg(not(feature = "naive"))]
        {
            false
        }
    }
}

/// Options of the online admission loop (see [`RunConfig::admission`]).
///
/// An arriving task is **admitted** — released to the scheduler — when
/// it is *feasible* (its input footprint fits the current capacity of at
/// least one alive GPU), the backlog bound below has room, and no
/// earlier arrival is still waiting; otherwise it is **deferred** into a
/// FIFO queue that is retried, strictly in order, whenever a task
/// completion frees backlog or pinned memory. A deferred task whose
/// footprint can never fit again (after fault shrinks) surfaces as
/// [`RunError::SchedulerStuck`] once the event queue drains — unless a
/// shedding [`ShedPolicy`] is active, in which case it is dropped with a
/// [`TraceEvent::TaskShed`] and the run completes gracefully.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum number of admitted-but-unfinished tasks. Arrivals beyond
    /// the bound are deferred until completions make room. `None`
    /// (default) admits every feasible arrival immediately. Under
    /// [`ShedPolicy::PriorityShed`] the same bound also caps the
    /// *deferred* queue: an overflow sheds the lowest-class task.
    pub max_backlog: Option<usize>,
    /// Overload-control policy. The default, [`ShedPolicy::DeferOnly`],
    /// takes no shedding branch at all and pins today's byte-identical
    /// defer-forever behavior.
    pub policy: ShedPolicy,
}

/// How the admission loop reacts to overload (see [`AdmissionConfig`]).
///
/// Deadlines are per-task *relative completion budgets* carried by the
/// [`TaskSet`] ([`TaskSet::deadline`], 0 = none); classes are per-task
/// tenant priorities ([`TaskSet::class_of`], higher = more important).
/// All decisions are functions of simulated state only, so same-seed
/// runs shed identically at any worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Never shed: every arrival is admitted or deferred forever
    /// (today's behavior, byte-identical to builds without the
    /// overload-control subsystem).
    #[default]
    DeferOnly,
    /// Deadline-aware shedding: reject an arrival whose estimated
    /// queueing delay (mean observed queueing delay plus the deferred
    /// backlog times the mean service time) already exceeds its
    /// deadline, and lazily expire deferred tasks that sit past their
    /// deadline. Tasks without a deadline are never shed this way.
    DeadlineShed,
    /// Everything [`ShedPolicy::DeadlineShed`] does, plus a bounded
    /// deferred queue: when deferring would push the queue past
    /// [`AdmissionConfig::max_backlog`], the lowest-class task among
    /// the queue and the new arrival is shed (ties drop the oldest).
    PriorityShed,
}

impl ShedPolicy {
    /// Parse a `--shed` command-line value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "defer" | "defer-only" | "deferonly" => Ok(Self::DeferOnly),
            "deadline" | "deadline-shed" => Ok(Self::DeadlineShed),
            "priority" | "priority-shed" => Ok(Self::PriorityShed),
            other => Err(format!(
                "--shed {other:?}: expected \"defer\", \"deadline\" or \"priority\""
            )),
        }
    }

    /// Stable lowercase name (CSV columns, bench JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::DeferOnly => "defer",
            Self::DeadlineShed => "deadline",
            Self::PriorityShed => "priority",
        }
    }
}

/// The active shed policy of a run (`DeferOnly` for batch runs).
#[inline]
fn shed_policy(config: &RunConfig) -> ShedPolicy {
    config
        .admission
        .as_ref()
        .map_or(ShedPolicy::DeferOnly, |a| a.policy)
}

/// Failure modes of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// A task's inputs do not fit in a GPU memory at all.
    TaskTooLarge {
        /// The offending task.
        task: TaskId,
        /// Its input footprint.
        footprint: u64,
        /// The per-GPU memory capacity.
        capacity: u64,
    },
    /// The scheduler stopped producing tasks while some remain unfinished.
    SchedulerStuck {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// `max_events` exceeded.
    EventBudgetExceeded,
    /// A transfer failed on every attempt of its retry budget (transient
    /// transfer faults, see [`FaultPlan`]).
    TransferFailed {
        /// Destination GPU of the doomed transfer.
        gpu: usize,
        /// The data item that could not be delivered.
        data: DataId,
        /// Attempts made (the configured `max_attempts`).
        attempts: u32,
    },
    /// Every GPU suffered a fail-stop fault before the task set finished.
    AllGpusFailed {
        /// Tasks completed before the last GPU died.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The fault plan does not fit the platform (bad GPU index, zero
    /// retry budget, …). The message pinpoints the offending clause.
    InvalidFaultPlan(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::TaskTooLarge {
                task,
                footprint,
                capacity,
            } => write!(
                f,
                "task {task} needs {footprint} B of inputs but GPUs only have {capacity} B"
            ),
            RunError::SchedulerStuck { completed, total } => write!(
                f,
                "scheduler stalled after {completed}/{total} tasks completed"
            ),
            RunError::EventBudgetExceeded => write!(f, "event budget exceeded"),
            RunError::TransferFailed {
                gpu,
                data,
                attempts,
            } => write!(
                f,
                "transfer of data {data} to GPU {gpu} failed {attempts} times (retry budget exhausted)"
            ),
            RunError::AllGpusFailed { completed, total } => write!(
                f,
                "all GPUs failed with {completed}/{total} tasks completed"
            ),
            RunError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A transfer to `gpu` completed; `src` is the peer GPU for NVLink
    /// transfers (`u32::MAX` = host memory over the PCI bus). `attempt`
    /// numbers the delivery attempt (1 unless transfer faults retried it).
    TransferDone {
        gpu: u32,
        data: u32,
        src: u32,
        attempt: u32,
    },
    TaskDone { gpu: u32, task: u32 },
    /// Fail-stop death; index into `FaultPlan::gpu_failures`.
    GpuFail { idx: u32 },
    /// Capacity shrink; index into `FaultPlan::capacity_shrinks`.
    Shrink { idx: u32 },
    /// Straggler onset; index into `FaultPlan::stragglers`.
    Straggle { idx: u32 },
    /// Online arrival of a task (admission loop only; batch runs and
    /// tasks arriving at t = 0 never seed one, keeping their event
    /// sequence numbering — and all tie-breaks — byte-identical to a
    /// batch build).
    Arrive { task: u32 },
}

/// `src` sentinel for host→GPU transfers.
const FROM_HOST: u32 = u32::MAX;

/// Run `scheduler` over `ts` on `spec`, returning the execution report.
pub fn run(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
) -> Result<RunReport, RunError> {
    run_with_config(ts, spec, scheduler, &RunConfig::default()).map(|(r, _)| r)
}

/// As [`run`], with engine options; also returns the trace when enabled.
pub fn run_with_config(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    config: &RunConfig,
) -> Result<(RunReport, Vec<TraceEvent>), RunError> {
    run_inner(ts, spec, scheduler, config, None)
}

/// As [`run_with_config`], additionally streaming typed
/// [`ObsEvent`]s into `probe`: transfer and compute spans, evictions
/// with the victim policy, per-decision wall times, fault instants and
/// occupancy gauges. The probe is also attached to the scheduler
/// (via [`Scheduler::attach_probe`], before `prepare`) so policies can
/// emit their own events — queue-depth gauges, steals.
///
/// The observed run takes exactly the same decisions as the unobserved
/// one: reports and engine traces are identical, only the side channel
/// differs. On an `Err` return the probe may hold transfer spans whose
/// end was never reached; successful runs always produce a well-formed
/// stream (see `memsched_obs::check_well_formed`).
pub fn run_observed(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    config: &RunConfig,
    probe: &Probe,
) -> Result<(RunReport, Vec<TraceEvent>), RunError> {
    scheduler.attach_probe(probe.clone());
    run_inner(ts, spec, scheduler, config, Some(probe.clone()))
}

fn run_inner(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    config: &RunConfig,
    obs: Option<Probe>,
) -> Result<(RunReport, Vec<TraceEvent>), RunError> {
    let k = spec.num_gpus;
    let m = ts.num_tasks();

    // Reject tasks that can never run before starting the clock.
    for t in ts.tasks() {
        if ts.task_footprint(t) > spec.memory_bytes {
            return Err(RunError::TaskTooLarge {
                task: t,
                footprint: ts.task_footprint(t),
                capacity: spec.memory_bytes,
            });
        }
    }

    let online = config.admission.is_some();
    let prepare_started = Instant::now();
    if online {
        scheduler.prepare_stream(ts, spec);
    } else {
        scheduler.prepare(ts, spec);
    }
    let prepare_wall = prepare_started.elapsed().as_nanos() as Nanos;

    let mut st = new_state(ts, spec, config, online, config.trace, obs);

    // Seed the fault timeline. With the default empty plan this pushes
    // nothing, so event sequence numbering — and therefore every
    // deterministic tie-break downstream — is untouched: a fault-free run
    // is byte-identical to one on a build without the subsystem.
    if !config.faults.is_empty() {
        config
            .faults
            .validate(k)
            .map_err(RunError::InvalidFaultPlan)?;
        seed_faults(&mut st, config, |_| true);
    }

    let mut sched_wall: Vec<Nanos> = vec![0; k];

    // Online mode: seed future arrivals on the event timeline, then hand
    // the t = 0 arrivals through the admission loop before the clock
    // starts. Tasks arriving at t = 0 deliberately get *no* event of
    // their own: with every arrival at zero the event heap's sequence
    // numbering is untouched, so an all-t=0 online run takes the exact
    // tie-breaks of a batch run (the zero-cost-admission guarantee the
    // golden tests pin).
    if online {
        for t in ts.tasks() {
            let at = ts.arrival(t);
            if at > 0 {
                st.push_event(at, Event::Arrive { task: t.0 });
            }
        }
        for t in ts.tasks() {
            if ts.arrival(t) == 0 {
                arrive(ts, spec, scheduler, &mut st, &mut sched_wall, config, t);
            }
        }
    }
    let naive_core = config.use_naive_core();
    let gpu_ids: Vec<usize> = (0..k).collect();
    let mut processed: u64 = 0;
    loop {
        sweep(ts, spec, scheduler, &mut st, &mut sched_wall, naive_core, &gpu_ids)?;
        if st.completed + st.dropped() == m {
            break;
        }
        let Some((time, _, ev)) = st.events.pop() else {
            // No pending events and tasks remain. Under a shedding
            // policy, deferred tasks that nothing can ever admit again
            // (their only fitting GPU died or shrank away) are shed in
            // queue order and the run completes gracefully; otherwise —
            // every worker was given a chance to make progress above —
            // the schedule is stuck.
            if shed_policy(config) != ShedPolicy::DeferOnly && !st.deferred.is_empty() {
                while let Some(raw) = st.deferred.pop_front() {
                    drop_task(ts, &mut st, TaskId(raw), false);
                }
                continue;
            }
            return Err(RunError::SchedulerStuck {
                completed: st.completed,
                total: m,
            });
        };
        st.now = time;
        processed += 1;
        if processed > config.max_events {
            return Err(RunError::EventBudgetExceeded);
        }
        handle_event(ts, spec, scheduler, &mut st, &mut sched_wall, config, m, ev)?;
    }
    Ok(finish_run(ts, spec, scheduler, st, sched_wall, prepare_wall, online))
}

/// Dispatch one popped event at `st.now`: the body of the serial event
/// loop, factored out so the sharded tier ([`ShardSim`]) drives the
/// byte-identical code path. `total` is the run's task count, consulted
/// by the all-GPUs-failed early exit.
#[allow(clippy::too_many_arguments)]
fn handle_event(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    config: &RunConfig,
    total: usize,
    ev: Event,
) -> Result<(), RunError> {
    match ev {
            Event::TransferDone {
                gpu,
                data,
                src,
                attempt,
            } => {
                let g = gpu as usize;
                let d = DataId(data);
                if let Some(tf) = &config.faults.transfer_faults {
                    let serial = st.transfer_checks;
                    st.transfer_checks += 1;
                    if tf.faulty(serial) {
                        // The delivery failed in flight. A peer read is
                        // abandoned (release the source pin); retries
                        // always re-fetch from host over the PCI bus.
                        if src != FROM_HOST {
                            st.mem[src as usize].unpin(d);
                            st.dirty[src as usize] = true;
                        }
                        if attempt >= tf.max_attempts {
                            return Err(RunError::TransferFailed {
                                gpu: g,
                                data: d,
                                attempts: attempt,
                            });
                        }
                        st.retries += 1;
                        let size = ts.data_size(d);
                        let bus = spec.bus_of(g);
                        let start = st.buses[bus].max(st.now + tf.backoff(attempt));
                        let done = start + spec.transfer_time(size);
                        st.buses[bus] = done;
                        st.bus_busy[bus] += done - start;
                        st.push_event(
                            done,
                            Event::TransferDone {
                                gpu,
                                data,
                                src: FROM_HOST,
                                attempt: attempt + 1,
                            },
                        );
                        if st.trace.enabled() {
                            st.trace.push(TraceEvent::TransferRetry {
                                at: st.now,
                                gpu: g,
                                data: data as usize,
                                attempt: attempt + 1,
                            });
                        }
                        // The failed attempt's span closes undelivered and
                        // the retry opens a fresh span — always from host,
                        // matching the engine's re-fetch rule. The GPU's
                        // in-flight count is unchanged: the data stays
                        // `Loading` across the retry.
                        if st.observed() {
                            st.emit(ObsEvent::TransferEnd {
                                t: st.now,
                                gpu,
                                data,
                                bytes: size,
                                bus: bus as u32,
                                peer: (src != FROM_HOST).then_some(src),
                                attempt,
                                delivered: false,
                            });
                            st.emit(ObsEvent::TransferRetry {
                                t: st.now,
                                gpu,
                                data,
                                attempt: attempt + 1,
                            });
                            st.emit(ObsEvent::TransferBegin {
                                t: start,
                                gpu,
                                data,
                                bytes: size,
                                bus_wait: start - st.now,
                                bus: bus as u32,
                                peer: None,
                                attempt: attempt + 1,
                            });
                        }
                        let view = st.view(ts, spec);
                        timed(sched_wall, g, || {
                            scheduler.on_transfer_retry(GpuId(gpu), d, attempt + 1, &view)
                        });
                        return Ok(());
                    }
                }
                st.lane_advance(g);
                st.inflight[g] -= 1;
                st.dirty[g] = true;
                st.mem[g].finish_load(d, ts.data_size(d), st.now);
                if src != FROM_HOST {
                    // Release the read pin on the NVLink source replica.
                    st.mem[src as usize].unpin(d);
                    st.dirty[src as usize] = true;
                    st.nvlink_loads[g] += 1;
                    st.nvlink_bytes[g] += ts.data_size(d);
                }
                if st.trace.enabled() {
                    st.trace.push(TraceEvent::LoadDone {
                        at: st.now,
                        gpu: g,
                        data: data as usize,
                    });
                }
                if st.observed() {
                    st.emit(ObsEvent::TransferEnd {
                        t: st.now,
                        gpu,
                        data,
                        bytes: ts.data_size(d),
                        bus: spec.bus_of(g) as u32,
                        peer: (src != FROM_HOST).then_some(src),
                        attempt,
                        delivered: true,
                    });
                    st.emit_occupancy(g);
                }
                // New residency can unblock pops (e.g. DARTS's free-task
                // counts change when a load lands).
                st.wake_all();
                let view = st.view(ts, spec);
                timed(sched_wall, g, || {
                    scheduler.on_data_loaded(GpuId(gpu), d, &view)
                });
                // The load turned Loading bytes into evictable Resident
                // bytes: a deferred fault shrink may now complete.
                retry_pending_shrinks(ts, spec, scheduler, st, sched_wall, g);
            }
            Event::TaskDone { gpu, task } => {
                let g = gpu as usize;
                if st.dead[g] {
                    // Stale completion of a task lost to a fail-stop
                    // fault: the task was returned to the scheduler when
                    // the GPU died and will run elsewhere.
                    return Ok(());
                }
                let t = TaskId(task);
                debug_assert!(st.running[g] && st.pipeline.front(g) == Some(t));
                st.lane_advance(g);
                st.pipeline.pop_front(g);
                st.running[g] = false;
                st.dirty[g] = true;
                if st.observed() {
                    st.emit(ObsEvent::ComputeEnd {
                        t: st.now,
                        gpu,
                        task,
                        interrupted: false,
                    });
                }
                for d in ts.input_ids(t) {
                    st.mem[g].unpin(d);
                    st.mem[g].touch(d, st.now);
                }
                st.completed += 1;
                st.tasks_done[g] += 1;
                st.flops_done += ts.flops(t);
                if st.online {
                    st.backlog -= 1;
                    let latency = st.now - ts.arrival(t);
                    st.latencies.push(latency);
                    bump_class(&mut st.done_per_class, ts.class_of(t));
                    let dl = ts.deadline(t);
                    if dl > 0 && latency > dl {
                        st.deadline_violations += 1;
                    } else {
                        st.good_completed += 1;
                    }
                }
                if st.trace.enabled() {
                    st.trace.push(TraceEvent::TaskFinished {
                        at: st.now,
                        gpu: g,
                        task: task as usize,
                    });
                }
                // A completion anywhere may unblock pops everywhere
                // (stealing, shared queues).
                st.wake_all();
                let view = st.view(ts, spec);
                timed(sched_wall, g, || {
                    scheduler.on_task_complete(GpuId(gpu), t, &view)
                });
                // The completion released pins: a deferred fault shrink
                // may now complete.
                retry_pending_shrinks(ts, spec, scheduler, st, sched_wall, g);
                // The completion freed backlog (and possibly memory): the
                // deferred-arrival queue may admit again. Completions are
                // the only event that can improve admissibility —
                // capacities only ever shrink — so this is the sole retry
                // point.
                retry_deferred(ts, spec, scheduler, st, sched_wall, config);
            }
            Event::GpuFail { idx } => {
                let g = config.faults.gpu_failures[idx as usize].gpu;
                if st.dead[g] {
                    return Ok(());
                }
                st.lane_advance(g);
                st.dead[g] = true;
                st.failures += 1;
                if st.running[g] {
                    // The interrupted task never completes: release its
                    // pins and refund the unexecuted tail of its busy
                    // charge (its stale TaskDone event is dropped on
                    // arrival by the dead-GPU guard above).
                    let head = st.pipeline.get(g, 0);
                    for d in ts.input_ids(head) {
                        st.mem[g].unpin(d);
                    }
                    let rem = st.gpu_free_at[g].saturating_sub(st.now);
                    st.busy[g] = st.busy[g].saturating_sub(rem);
                    st.running[g] = false;
                    if st.observed() {
                        st.emit(ObsEvent::ComputeEnd {
                            t: st.now,
                            gpu: g as u32,
                            task: head.0,
                            interrupted: true,
                        });
                    }
                }
                if st.observed() {
                    st.emit(ObsEvent::GpuFailed { t: st.now, gpu: g as u32 });
                }
                st.gpu_free_at[g] = st.now;
                st.pending_shrinks.retain(|&(gg, _)| gg != g);
                let mut lost: Vec<TaskId> = Vec::with_capacity(st.pipeline.len(g));
                st.pipeline.drain_into(g, &mut lost);
                st.redispatched += lost.len() as u64;
                if st.trace.enabled() {
                    st.trace.push(TraceEvent::GpuFailed { at: st.now, gpu: g });
                }
                // Survivors must re-pop: the failure changes every
                // policy's routing state.
                st.wake_all();
                let view = st.view(ts, spec);
                timed(sched_wall, g, || {
                    scheduler.on_gpu_failed(GpuId(g as u32), &lost, &view)
                });
                if st.dead.iter().all(|&x| x) && st.completed < total {
                    return Err(RunError::AllGpusFailed {
                        completed: st.completed,
                        total,
                    });
                }
                // The failure changed the platform under the admission
                // loop's feet: re-check the deferred queue. The lost
                // tasks stay admitted (the scheduler requeued them and
                // they run elsewhere — the backlog still counts them),
                // but deferred tasks whose footprint no longer fits any
                // survivor are shed under a shedding policy, and the
                // FIFO retry keeps the queue consistent with the new
                // capacity picture. Under `DeferOnly` this is a provable
                // no-op — a failure never improves admissibility — so
                // fault-injected golden traces stay byte-identical.
                if st.online {
                    recheck_deferred_after_fault(ts, spec, scheduler, st, sched_wall, config);
                }
            }
            Event::Shrink { idx } => {
                let s = config.faults.capacity_shrinks[idx as usize];
                if st.dead[s.gpu] {
                    return Ok(());
                }
                let fully = apply_shrink(
                    ts,
                    spec,
                    scheduler,
                    st,
                    sched_wall,
                    s.gpu,
                    s.new_capacity,
                );
                if !fully {
                    // Pinned or in-flight data blocked part of the
                    // shrink; tighten further as the GPU's pins release.
                    st.pending_shrinks.push((s.gpu, s.new_capacity));
                }
                // A shrink, like a failure, can strand deferred tasks
                // (see the GpuFail arm). No-op under `DeferOnly`.
                if st.online {
                    recheck_deferred_after_fault(ts, spec, scheduler, st, sched_wall, config);
                }
            }
            Event::Straggle { idx } => {
                let s = config.faults.stragglers[idx as usize];
                if st.dead[s.gpu] {
                    return Ok(());
                }
                st.speed[s.gpu] = s.factor;
                st.dirty[s.gpu] = true;
                if st.trace.enabled() {
                    st.trace.push(TraceEvent::GpuSlowed {
                        at: st.now,
                        gpu: s.gpu,
                        factor: s.factor,
                    });
                }
                if st.observed() {
                    st.emit(ObsEvent::GpuSlowed {
                        t: st.now,
                        gpu: s.gpu as u32,
                        factor: s.factor,
                    });
                }
            }
            Event::Arrive { task } => {
                arrive(ts, spec, scheduler, st, sched_wall, config, TaskId(task));
            }
    }
    Ok(())
}

/// Per-round worklist sweep over `gpus`: only GPUs whose local state
/// changed since their last pass can act (an event touched them, a wake
/// cleared their stall latch, or a memory-blocked prefetch must re-ask
/// for a victim). A clean GPU's pipeline is full-or-stalled and its last
/// pass already issued every issuable prefetch, so skipping it takes the
/// exact same decisions as the reference core's full scan — the
/// differential proptests pin this. The naive core scans all. The serial
/// loop sweeps every GPU; a [`ShardSim`] sweeps its bus group only.
fn sweep(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    naive_core: bool,
    gpus: &[usize],
) -> Result<(), RunError> {
    for &g in gpus {
        if st.dead[g] || !(naive_core || st.dirty[g]) {
            continue;
        }
        st.dirty[g] = false;
        progress(ts, spec, scheduler, st, sched_wall, g)?;
    }
    Ok(())
}

/// Close the run's accounting and assemble the report: the serial core's
/// epilogue, shared verbatim between [`run_inner`] and the sharded
/// tier's per-shard finalization.
#[allow(clippy::too_many_arguments)]
fn finish_run(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    mut st: State,
    sched_wall: Vec<Nanos>,
    prepare_wall: Nanos,
    online: bool,
) -> (RunReport, Vec<TraceEvent>) {
    let k = spec.num_gpus;
    // Close the stall accounting at the makespan, then close transfer
    // spans still in flight (prefetches issued for tasks that were no
    // longer needed once the last task finished). The event heap pops in
    // completion order, which on each link equals grant order, so the
    // probe's FIFO span pairing stays valid.
    for g in 0..k {
        st.lane_advance(g);
    }
    if st.observed() {
        while let Some((time, _, ev)) = st.events.pop() {
            if let Event::TransferDone {
                gpu,
                data,
                src,
                attempt,
            } = ev
            {
                st.emit(ObsEvent::TransferEnd {
                    t: time,
                    gpu,
                    data,
                    bytes: ts.data_size(DataId(data)),
                    bus: spec.bus_of(gpu as usize) as u32,
                    peer: (src != FROM_HOST).then_some(src),
                    attempt,
                    delivered: false,
                });
            }
        }
    }

    let per_gpu: Vec<GpuRunStats> = (0..k)
        .map(|g| gpu_stats(&st, &sched_wall, st.now, g))
        .collect();
    let sink = std::mem::replace(&mut st.trace, TraceSink::Off);
    let (trace, trace_checksum) = sink.finish();
    let report = RunReport {
        scheduler: scheduler.name(),
        makespan: st.now,
        total_flops: st.flops_done,
        total_load_bytes: per_gpu.iter().map(|g| g.load_bytes).sum(),
        total_loads: per_gpu.iter().map(|g| g.loads).sum(),
        total_evictions: per_gpu.iter().map(|g| g.evictions).sum(),
        per_gpu,
        prepare_wall,
        sched_wall: sched_wall.iter().sum(),
        transfer_retries: st.retries,
        gpu_failures: st.failures,
        tasks_redispatched: st.redispatched,
        bus_busy_ns: st.bus_busy.clone(),
        sharding: None,
        online: online.then(|| {
            st.latencies.sort_unstable();
            st.queueing.sort_unstable();
            // Per-class vectors are only materialized when classes are in
            // play or something was dropped, so class-less `DeferOnly`
            // reports serialize exactly as before this field existed.
            let dropped = st.dropped() as u64;
            let per_class = ts.num_classes() > 1 || dropped > 0;
            OnlineStats {
                tasks_admitted: st.admitted,
                tasks_deferred: st.deferrals,
                tasks_shed: st.shed_tasks,
                deadline_expired: st.expired_tasks,
                shed_per_class: if per_class {
                    st.shed_per_class.clone()
                } else {
                    Vec::new()
                },
                completed_per_class: if per_class {
                    st.done_per_class.clone()
                } else {
                    Vec::new()
                },
                deadline_violations: st.deadline_violations,
                p50_latency: quantile(&st.latencies, 0.50),
                p99_latency: quantile(&st.latencies, 0.99),
                mean_latency: if st.latencies.is_empty() {
                    0
                } else {
                    st.latencies.iter().sum::<Nanos>() / st.latencies.len() as Nanos
                },
                p50_queueing: quantile(&st.queueing, 0.50),
                p99_queueing: quantile(&st.queueing, 0.99),
                throughput_tps: if st.now == 0 {
                    0.0
                } else {
                    st.completed as f64 / (st.now as f64 / 1e9)
                },
                goodput_tps: if st.now == 0 {
                    0.0
                } else {
                    st.good_completed as f64 / (st.now as f64 / 1e9)
                },
            }
        }),
        trace_checksum,
    };
    (report, trace)
}

/// One GPU's [`GpuRunStats`] snapshot; `makespan` is the run's global
/// makespan (a shard's local clock stops early, so the sharded merge
/// recomputes idle time against the coordinator's global makespan).
fn gpu_stats(st: &State, sched_wall: &[Nanos], makespan: Nanos, g: usize) -> GpuRunStats {
    GpuRunStats {
        tasks: st.tasks_done[g],
        loads: st.mem[g].loads,
        load_bytes: st.mem[g].load_bytes,
        evictions: st.mem[g].evictions,
        busy: st.busy[g],
        stall: st.stall[g],
        idle: makespan.saturating_sub(st.busy[g] + st.stall[g]),
        sched_wall: sched_wall[g],
        nvlink_loads: st.nvlink_loads[g],
        nvlink_bytes: st.nvlink_bytes[g],
        cache_hit_bytes: st.cache_hit_bytes[g],
        cache_miss_bytes: st.cache_miss_bytes[g],
    }
}

/// Fresh engine state for `ts` on `spec`. `trace` is passed separately
/// from `config.trace` because sharded runs record `Full` internally
/// even in `Checksum` mode (the checksum folds over the canonically
/// merged stream, see `crate::shard`).
fn new_state(
    ts: &TaskSet,
    spec: &PlatformSpec,
    config: &RunConfig,
    online: bool,
    trace: TraceMode,
    obs: Option<Probe>,
) -> State {
    let k = spec.num_gpus;
    let m = ts.num_tasks();
    State {
        now: 0,
        seq: 0,
        events: EventQueue::new(config.use_naive_core()),
        mem: (0..k)
            .map(|_| GpuMemory::new(spec.memory_bytes, ts.num_data()))
            .collect(),
        missing: MissingCache::new(ts, k),
        pipeline: Pipelines::new(k, spec.pipeline_depth),
        running: vec![false; k],
        stalled_pop: vec![false; k],
        dirty: vec![true; k],
        reference_core: config.use_naive_core(),
        gpu_free_at: vec![0; k],
        buses: vec![0; spec.num_buses()],
        bus_busy: vec![0; spec.num_buses()],
        nvlink_free_at: 0,
        busy: vec![0; k],
        tasks_done: vec![0; k],
        nvlink_loads: vec![0; k],
        nvlink_bytes: vec![0; k],
        cache_hit_bytes: vec![0; k],
        cache_miss_bytes: vec![0; k],
        completed: 0,
        flops_done: 0.0,
        // A batch run emits one LoadIssued+LoadDone pair per load plus a
        // TaskStarted/TaskFinished pair per task; 4·m is a generous head
        // start that kills reallocation churn in `Full` mode.
        trace: TraceSink::new(trace, 4 * m + 64),
        dead: vec![false; k],
        speed: vec![1.0; k],
        pending_shrinks: Vec::new(),
        transfer_checks: 0,
        retries: 0,
        redispatched: 0,
        failures: 0,
        lane_last: vec![0; k],
        inflight: vec![0; k],
        stall: vec![0; k],
        online,
        released: if online { vec![false; m] } else { Vec::new() },
        backlog: 0,
        deferred: VecDeque::new(),
        latencies: Vec::with_capacity(if online { m } else { 0 }),
        queueing: Vec::with_capacity(if online { m } else { 0 }),
        admitted: 0,
        deferrals: 0,
        shed_tasks: 0,
        expired_tasks: 0,
        shed_per_class: Vec::new(),
        done_per_class: Vec::new(),
        deadline_violations: 0,
        good_completed: 0,
        queueing_sum: 0,
        service_sum: 0,
        protect: Vec::new(),
        merge_scratch: Vec::new(),
        obs,
    }
}

/// Seed the fault timeline for every fault whose GPU satisfies `keep`,
/// preserving plan indices (events reference the plan by index) and the
/// plan-order seeding sequence — so a shard's same-time fault tie-breaks
/// match the serial run's restriction to that shard's GPUs.
fn seed_faults(st: &mut State, config: &RunConfig, keep: impl Fn(usize) -> bool) {
    for (i, f) in config.faults.gpu_failures.iter().enumerate() {
        if keep(f.gpu) {
            st.push_event(f.at, Event::GpuFail { idx: i as u32 });
        }
    }
    for (i, s) in config.faults.capacity_shrinks.iter().enumerate() {
        if keep(s.gpu) {
            st.push_event(s.at, Event::Shrink { idx: i as u32 });
        }
    }
    for (i, s) in config.faults.stragglers.iter().enumerate() {
        if keep(s.gpu) {
            st.push_event(s.at, Event::Straggle { idx: i as u32 });
        }
    }
}

/// Nearest-rank quantile of an ascending-sorted sample (0 when empty).
fn quantile(sorted: &[Nanos], q: f64) -> Nanos {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

struct State {
    now: Nanos,
    seq: u64,
    events: EventQueue<Event>,
    mem: Vec<GpuMemory>,
    /// Missing-input counters per (GPU, task), kept in sync with `mem`
    /// residency transitions; serves O(1) `RuntimeView::missing_bytes`.
    missing: MissingCache,
    /// Per GPU: popped-but-unfinished tasks in execution order. When
    /// `running[g]` is true, `pipeline.front(g)` is executing. One flat
    /// ring arena for all GPUs.
    pipeline: Pipelines,
    running: Vec<bool>,
    /// The scheduler returned `None` for this GPU and nothing changed
    /// since — do not hammer `pop_task` until the next event.
    stalled_pop: Vec<bool>,
    /// Worklist flag: GPU `g`'s local state changed since its last
    /// `progress` pass, so the pass could act. Set by events touching the
    /// GPU, by [`State::wake_all`] clearing a stall latch, and by a
    /// memory-blocked prefetch (which must re-ask for a victim every
    /// pass, exactly as the reference core's full scan does).
    dirty: Vec<bool>,
    /// Running under `RunConfig::naive_core`: execute the pre-refactor
    /// reference control flow (full per-event progress scans, no
    /// all-resident fast path). `false` selects the flat core.
    reference_core: bool,
    gpu_free_at: Vec<Nanos>,
    /// Per-bus drain time: when PCI bus `b` finishes its queued
    /// transfers (index [`PlatformSpec::bus_of`]). Single-bus platforms
    /// use one slot, so the arithmetic is bit-identical to the
    /// historical scalar field.
    buses: Vec<Nanos>,
    /// Per-bus occupied time (sum of granted transfer durations) —
    /// the report's `bus_busy_ns`.
    bus_busy: Vec<Nanos>,
    nvlink_free_at: Nanos,
    busy: Vec<Nanos>,
    tasks_done: Vec<usize>,
    nvlink_loads: Vec<u64>,
    nvlink_bytes: Vec<u64>,
    /// Per-GPU input bytes resident/in-flight at placement time, summed
    /// over placements (and its complement). Counted once per pop, when
    /// the task commits to a pipeline.
    cache_hit_bytes: Vec<u64>,
    cache_miss_bytes: Vec<u64>,
    completed: usize,
    flops_done: f64,
    trace: TraceSink,
    /// Per-GPU fail-stop flag (all false without faults).
    dead: Vec<bool>,
    /// Per-GPU speed factor applied to compute times (all 1.0 without
    /// faults; a straggler fault lowers it).
    speed: Vec<f64>,
    /// Fault shrinks blocked by pinned/in-flight data: `(gpu, target)`
    /// pairs re-attempted whenever that GPU releases pins.
    pending_shrinks: Vec<(usize, u64)>,
    /// Serial number of the next transfer-fault decision.
    transfer_checks: u64,
    /// Transfer retries performed (fault injection).
    retries: u64,
    /// Tasks re-dispatched after fail-stop faults.
    redispatched: u64,
    /// GPUs lost to fail-stop faults.
    failures: u64,
    /// Per-GPU time of the last stall-accounting transition (see
    /// [`State::lane_advance`]).
    lane_last: Vec<Nanos>,
    /// Per-GPU number of in-flight transfers (issued, not yet done).
    inflight: Vec<u32>,
    /// Per-GPU accumulated transfer-stall time: not computing, alive,
    /// and at least one transfer in flight. Always maintained (a few
    /// integer ops per transition) so every report carries the
    /// busy/stall/idle split without observation enabled.
    stall: Vec<Nanos>,
    /// Online serving mode (`RunConfig::admission` is set). All the
    /// admission fields below stay empty in batch runs.
    online: bool,
    /// Per-task admitted flag: `pop_task` may only return released
    /// tasks (debug-asserted in `progress`).
    released: Vec<bool>,
    /// Admitted-but-unfinished task count, bounded by
    /// [`AdmissionConfig::max_backlog`].
    backlog: usize,
    /// Arrived tasks awaiting admission, strictly FIFO.
    deferred: VecDeque<u32>,
    /// Per-completion task latency samples (completion − arrival).
    latencies: Vec<Nanos>,
    /// Per-start queueing-delay samples (compute start − arrival).
    queueing: Vec<Nanos>,
    /// Admission decisions taken.
    admitted: u64,
    /// Arrivals deferred at least once.
    deferrals: u64,
    /// Arrivals rejected by the shedding policy (never admitted).
    shed_tasks: u64,
    /// Deferred tasks dropped because their deadline lapsed while
    /// queued. Disjoint from `shed_tasks`.
    expired_tasks: u64,
    /// Dropped (shed + expired) tasks per tenant class.
    shed_per_class: Vec<u64>,
    /// Completed tasks per tenant class.
    done_per_class: Vec<u64>,
    /// Completions that finished past their deadline.
    deadline_violations: u64,
    /// Completions within their deadline (tasks without one always
    /// count) — the goodput numerator.
    good_completed: u64,
    /// Running sum of `queueing` samples (delay-estimator numerator).
    queueing_sum: Nanos,
    /// Running sum of started-task compute durations (delay-estimator
    /// service term).
    service_sum: Nanos,
    /// Reusable protected-prefix buffer of the prefetch loop (the union
    /// of input sets of earlier pipeline tasks, sorted unique).
    protect: Vec<u32>,
    /// Reusable merge scratch paired with `protect`; together they make
    /// the steady-state prefetch loop allocation-free.
    merge_scratch: Vec<u32>,
    /// Observability side channel; `None` keeps the legacy path.
    obs: Option<Probe>,
}

impl State {
    /// Tasks dropped from the admission path (shed + expired) — the
    /// termination condition counts them alongside completions.
    fn dropped(&self) -> usize {
        (self.shed_tasks + self.expired_tasks) as usize
    }

    fn view<'a>(&'a self, ts: &'a TaskSet, spec: &'a PlatformSpec) -> RuntimeView<'a> {
        RuntimeView {
            ts,
            spec,
            now: self.now,
            memories: &self.mem,
            buffers: &self.pipeline,
            missing: &self.missing,
            buses: &self.buses,
            gpu_free_at: &self.gpu_free_at,
            dead: &self.dead,
        }
    }

    fn push_event(&mut self, at: Nanos, ev: Event) {
        self.seq += 1;
        self.events.push(at, self.seq, ev);
    }

    /// Clear every worker's stalled-pop latch and mark the previously
    /// stalled ones dirty. Only they can act on the change: a non-stalled
    /// worker's pipeline is full, so its last `progress` pass already
    /// issued everything issuable.
    fn wake_all(&mut self) {
        for g in 0..self.stalled_pop.len() {
            if self.stalled_pop[g] {
                self.stalled_pop[g] = false;
                self.dirty[g] = true;
            }
        }
    }

    /// Bucket the time since the last transition for GPU `g`. Only the
    /// stall bucket needs explicit accounting: busy time is already
    /// charged per task, and idle is derived at report time as
    /// `makespan − busy − stall`. Called at every transition of the
    /// predicate (task start/end, transfer issue/completion, death).
    fn lane_advance(&mut self, g: usize) {
        let dt = self.now - self.lane_last[g];
        if dt > 0 && !self.running[g] && !self.dead[g] && self.inflight[g] > 0 {
            self.stall[g] += dt;
        }
        self.lane_last[g] = self.now;
    }

    /// Emit into the probe, if one is attached.
    fn emit(&self, ev: ObsEvent) {
        if let Some(p) = &self.obs {
            p.emit(ev);
        }
    }

    /// True when an observation probe is attached.
    fn observed(&self) -> bool {
        self.obs.is_some()
    }

    /// Emit a fresh occupancy sample for GPU `g` (after a residency
    /// change); no-op without a probe.
    fn emit_occupancy(&self, g: usize) {
        if self.observed() {
            let cap = self.mem[g].capacity().max(1);
            self.emit(ObsEvent::Gauge {
                t: self.now,
                gpu: Some(g as u32),
                kind: GaugeKind::Occupancy,
                value: self.mem[g].used_bytes() as f64 / cap as f64,
            });
        }
    }
}

fn timed<R>(wall: &mut [Nanos], gpu: usize, f: impl FnOnce() -> R) -> R {
    timed_with(wall, gpu, f).0
}

/// As [`timed`], also returning the elapsed wall nanoseconds (used to
/// stamp per-decision latency onto [`ObsEvent::Decision`]).
fn timed_with<R>(wall: &mut [Nanos], gpu: usize, f: impl FnOnce() -> R) -> (R, Nanos) {
    let start = Instant::now();
    let r = f();
    let dt = start.elapsed().as_nanos() as Nanos;
    wall[gpu] += dt;
    (r, dt)
}

/// Give GPU `g` every chance to advance: refill its pipeline from the
/// scheduler, issue prefetches, and start the head task. Errs when a
/// popped task can no longer fit the GPU's (possibly fault-shrunk)
/// capacity.
#[allow(clippy::too_many_arguments)]
fn progress(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    g: usize,
) -> Result<(), RunError> {
    // 1. Refill the pipeline.
    while st.pipeline.len(g) < spec.pipeline_depth && !st.stalled_pop[g] {
        let view = st.view(ts, spec);
        let (popped, pop_wall) = timed_with(sched_wall, g, || {
            scheduler.pop_task(GpuId(g as u32), &view)
        });
        if st.observed() {
            st.emit(ObsEvent::Decision {
                t: st.now,
                gpu: g as u32,
                task: popped.map(|t| t.0),
                wall_ns: pop_wall,
            });
        }
        match popped {
            Some(t) => {
                debug_assert!(
                    !st.online || st.released[t.index()],
                    "online scheduler popped task {t:?} before its admission"
                );
                // The upfront feasibility check used the nominal capacity;
                // a fault shrink may have lowered this GPU's since. A task
                // that cannot ever fit must fail loudly, not stall.
                if ts.task_footprint(t) > st.mem[g].capacity() {
                    return Err(RunError::TaskTooLarge {
                        task: t,
                        footprint: ts.task_footprint(t),
                        capacity: st.mem[g].capacity(),
                    });
                }
                // Residency split of the placement, counted exactly once
                // per pop: missing bytes still need a fetch, the rest of
                // the footprint is a prefix-cache hit.
                let miss = st.missing.bytes(g, t.index());
                let hit = ts.task_footprint(t).saturating_sub(miss);
                st.cache_hit_bytes[g] += hit;
                st.cache_miss_bytes[g] += miss;
                if st.observed() {
                    st.emit(ObsEvent::CacheAccess {
                        t: st.now,
                        gpu: g as u32,
                        task: t.0,
                        hit_bytes: hit,
                        miss_bytes: miss,
                    });
                }
                st.pipeline.push_back(g, t)
            }
            None => {
                st.stalled_pop[g] = true;
            }
        }
    }

    // 2. Start the head task before touching memory, so its inputs are
    //    pinned against the prefetches issued below.
    try_start(ts, spec, st, g);

    // Flat-core fast path: when no queued task misses any input, the
    // whole issue loop below is a provable no-op (every residency check
    // takes the `continue`, nothing is evicted or loaded), so the prefix
    // merges can be skipped on the strength of O(1) missing-count reads.
    // The reference core executes the full pass unconditionally.
    if !st.reference_core
        && (0..st.pipeline.len(g)).all(|i| st.missing.cnt(g, st.pipeline.get(g, i).index()) == 0)
    {
        return Ok(());
    }

    // 3. Issue prefetches in pipeline order. Stop at the first fetch that
    //    does not fit to preserve the intended load order. A fetch for the
    //    idx-th queued task may never evict data needed by an earlier
    //    pipeline task (`protect` accumulates the prefix of input sets):
    //    those tasks run first, so evicting their data would only create
    //    reload churn — the livelock-free guarantee of the engine.
    // Both buffers live on `State` so the steady-state loop reuses their
    // capacity; they are taken out for the duration of the pass because
    // `pick_victim` borrows all of `st`.
    let mut protect = std::mem::take(&mut st.protect);
    let mut scratch = std::mem::take(&mut st.merge_scratch);
    protect.clear();
    'issue: for idx in 0..st.pipeline.len(g) {
        let t = st.pipeline.get(g, idx);
        let inputs = ts.inputs(t);
        if st.reference_core {
            // The pre-refactor `merge_sorted` allocated a fresh vector
            // per merge and dropped the previous prefix; reproduce that
            // cost profile instead of borrowing the flat core's scratch.
            scratch = Vec::with_capacity(protect.len() + inputs.len());
        }
        merge_sorted_into(&protect, inputs, &mut scratch);
        std::mem::swap(&mut protect, &mut scratch);
        for &raw in inputs {
            let d = DataId(raw);
            if st.mem[g].is_resident_or_loading(d) {
                continue;
            }
            let size = ts.data_size(d);
            // Make room, never evicting protected inputs.
            while st.mem[g].free_bytes() < size {
                let victim = pick_victim(ts, spec, scheduler, st, sched_wall, g, &protect);
                match victim {
                    Some((v, by_scheduler)) => {
                        st.mem[g].evict(v, ts.data_size(v));
                        st.missing.evicted(ts, g, v);
                        if st.trace.enabled() {
                            st.trace.push(TraceEvent::Evicted {
                                at: st.now,
                                gpu: g,
                                data: v.index(),
                            });
                        }
                        if st.observed() {
                            st.emit(ObsEvent::Eviction {
                                t: st.now,
                                gpu: g as u32,
                                data: v.0,
                                bytes: ts.data_size(v),
                                by_scheduler,
                            });
                            st.emit_occupancy(g);
                        }
                        let view = st.view(ts, spec);
                        timed(sched_wall, g, || {
                            scheduler.on_data_evicted(GpuId(g as u32), v, &view)
                        });
                    }
                    None => {
                        // Nothing evictable. If the task's footprint
                        // exceeds the (possibly fault-shrunk) capacity it
                        // can never fit — fail loudly. Otherwise the
                        // blockage is transient pins: retry later.
                        if ts.task_footprint(t) > st.mem[g].capacity() {
                            return Err(RunError::TaskTooLarge {
                                task: t,
                                footprint: ts.task_footprint(t),
                                capacity: st.mem[g].capacity(),
                            });
                        }
                        // Stay on the worklist: the reference core asks
                        // for a victim again on every pass while blocked
                        // (`choose_victim` may mutate policy state), so
                        // the worklist core must repeat the pass too.
                        st.dirty[g] = true;
                        break 'issue;
                    }
                }
            }
            st.mem[g].begin_load(d, size);
            st.missing.load_issued(ts, g, d);
            // Prefer a peer replica over the NVLink fabric when available
            // (the §VI extension); otherwise cross the shared PCI bus.
            // Replicas on fault-killed GPUs are unreachable.
            let peer = spec.nvlink_bandwidth.and_then(|_| {
                (0..st.mem.len()).find(|&h| h != g && !st.dead[h] && st.mem[h].is_resident(d))
            });
            let (done_at, start, src) = match peer {
                Some(h) => {
                    // Pin the source replica for the transfer duration so
                    // it cannot be evicted mid-copy.
                    st.mem[h].pin(d);
                    let start = st.nvlink_free_at.max(st.now);
                    let done = start + spec.nvlink_time(size);
                    st.nvlink_free_at = done;
                    (done, start, h as u32)
                }
                None => {
                    let bus = spec.bus_of(g);
                    let start = st.buses[bus].max(st.now);
                    let done = start + spec.transfer_time(size);
                    st.buses[bus] = done;
                    st.bus_busy[bus] += done - start;
                    (done, start, FROM_HOST)
                }
            };
            st.push_event(
                done_at,
                Event::TransferDone {
                    gpu: g as u32,
                    data: raw,
                    src,
                    attempt: 1,
                },
            );
            if st.trace.enabled() {
                st.trace.push(TraceEvent::LoadIssued {
                    at: st.now,
                    gpu: g,
                    data: raw as usize,
                    done_at,
                });
            }
            // The span begins when the link grants the transfer, but the
            // GPU is starved from the issue instant — `bus_wait` carries
            // the queueing delay so the stall breakdown can recover it.
            if st.observed() {
                st.emit(ObsEvent::TransferBegin {
                    t: start,
                    gpu: g as u32,
                    data: raw,
                    bytes: size,
                    bus_wait: start - st.now,
                    bus: spec.bus_of(g) as u32,
                    peer: (src != FROM_HOST).then_some(src),
                    attempt: 1,
                });
            }
            st.lane_advance(g);
            st.inflight[g] += 1;
            // Notify the policy at issue time: `is_resident_or_loading`
            // already counts this data, so policies maintaining free-task
            // state incrementally must observe the transition now, not at
            // transfer completion.
            let view = st.view(ts, spec);
            timed(sched_wall, g, || {
                scheduler.on_load_issued(GpuId(g as u32), d, &view)
            });
        }
    }
    st.protect = protect;
    st.merge_scratch = scratch;

    // 4. The prefetches above may have completed synchronously-needed
    //    state changes; give the head another chance to start.
    try_start(ts, spec, st, g);
    Ok(())
}

/// Start the head task of GPU `g` if it is not running and all its inputs
/// are resident; pins its inputs for the duration of the execution.
fn try_start(ts: &TaskSet, spec: &PlatformSpec, st: &mut State, g: usize) {
    if st.running[g] {
        return;
    }
    let Some(head) = st.pipeline.front(g) else {
        return;
    };
    if !ts.input_ids(head).all(|d| st.mem[g].is_resident(d)) {
        return;
    }
    for d in ts.input_ids(head) {
        st.mem[g].pin(d);
        st.mem[g].touch(d, st.now);
    }
    st.lane_advance(g);
    st.running[g] = true;
    if st.online {
        let q = st.now - ts.arrival(head);
        st.queueing.push(q);
        st.queueing_sum += q;
    }
    if st.observed() {
        st.emit(ObsEvent::ComputeBegin {
            t: st.now,
            gpu: g as u32,
            task: head.0,
        });
    }
    let base = spec.compute_time_on(g, ts.flops(head));
    // A straggler fault divides the GPU's effective speed; the untouched
    // 1.0 path preserves the fault-free durations bit-for-bit.
    let dur = if st.speed[g] == 1.0 {
        base
    } else {
        (base as f64 / st.speed[g]).ceil() as Nanos
    };
    st.busy[g] += dur;
    if st.online {
        st.service_sum += dur;
    }
    let end = st.now + dur;
    st.gpu_free_at[g] = end;
    st.push_event(
        end,
        Event::TaskDone {
            gpu: g as u32,
            task: head.0,
        },
    );
    if st.trace.enabled() {
        st.trace.push(TraceEvent::TaskStarted {
            at: st.now,
            gpu: g,
            task: head.index(),
        });
    }
}

/// Merge two sorted-unique id slices into `out` (cleared first). `out` is
/// a scratch buffer owned by [`State`], so the steady-state prefetch loop
/// reuses its capacity instead of allocating per call.
fn merge_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Choose an eviction victim on GPU `g`: ask the scheduler first (LUF),
/// validate its answer, fall back to LRU. `protect` holds the inputs of
/// the task the fetch is for. The flag in the result records whether
/// the scheduler's choice was used (`true`) or the LRU fallback
/// (`false`) — the eviction-policy tag on [`ObsEvent::Eviction`].
#[allow(clippy::too_many_arguments)]
fn pick_victim(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    g: usize,
    protect: &[u32],
) -> Option<(DataId, bool)> {
    let evictable = |mem: &GpuMemory, d: DataId| {
        mem.is_resident(d) && !mem.is_pinned(d) && protect.binary_search(&d.0).is_err()
    };
    let view = st.view(ts, spec);
    let choice = timed(sched_wall, g, || {
        scheduler.choose_victim(GpuId(g as u32), &view)
    });
    if let Some(v) = choice {
        if evictable(&st.mem[g], v) {
            return Some((v, true));
        }
    }
    // LRU fallback, skipping protected items: walk the memory's intrusive
    // LRU list from the oldest end (equivalent to the old key-argmin scan
    // because touch keys are unique) instead of scanning all data.
    st.mem[g]
        .lru_victim_where(|d| protect.binary_search(&d.0).is_err())
        .map(|v| (v, false))
}

/// Apply a fault-induced capacity shrink on GPU `g`: evict down to
/// `target` bytes (scheduler victim choice first, LRU fallback — the same
/// policy path as memory-pressure eviction), then lower the capacity as
/// far as the evictions allow. Pinned and in-flight data cannot be freed,
/// so the capacity may land above `target`; returns whether the target
/// was fully reached. Every actual capacity change emits
/// [`TraceEvent::CapacityShrunk`] and fires
/// [`Scheduler::on_capacity_changed`].
#[allow(clippy::too_many_arguments)]
fn apply_shrink(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    g: usize,
    target: u64,
) -> bool {
    let mut evicted_any = false;
    st.dirty[g] = true;
    while st.mem[g].used_bytes() > target {
        let Some((v, by_scheduler)) = pick_victim(ts, spec, scheduler, st, sched_wall, g, &[])
        else {
            break;
        };
        st.mem[g].evict(v, ts.data_size(v));
        st.missing.evicted(ts, g, v);
        evicted_any = true;
        if st.trace.enabled() {
            st.trace.push(TraceEvent::Evicted {
                at: st.now,
                gpu: g,
                data: v.index(),
            });
        }
        if st.observed() {
            st.emit(ObsEvent::Eviction {
                t: st.now,
                gpu: g as u32,
                data: v.0,
                bytes: ts.data_size(v),
                by_scheduler,
            });
            st.emit_occupancy(g);
        }
        let view = st.view(ts, spec);
        timed(sched_wall, g, || {
            scheduler.on_data_evicted(GpuId(g as u32), v, &view)
        });
    }
    let effective = target.max(st.mem[g].used_bytes());
    if effective != st.mem[g].capacity() {
        st.mem[g].set_capacity(effective);
        if st.trace.enabled() {
            st.trace.push(TraceEvent::CapacityShrunk {
                at: st.now,
                gpu: g,
                capacity: effective,
            });
        }
        if st.observed() {
            st.emit(ObsEvent::CapacityShrunk {
                t: st.now,
                gpu: g as u32,
                capacity: effective,
            });
            st.emit_occupancy(g);
        }
        let view = st.view(ts, spec);
        timed(sched_wall, g, || {
            scheduler.on_capacity_changed(GpuId(g as u32), effective, &view)
        });
    }
    if evicted_any {
        // Residency changed under the schedulers' feet: let them re-pop.
        st.wake_all();
    }
    effective <= target
}

/// Re-attempt the deferred fault shrinks of GPU `g` (pins may have just
/// been released by a completion or a finished load).
#[allow(clippy::too_many_arguments)]
fn retry_pending_shrinks(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    g: usize,
) {
    if st.pending_shrinks.is_empty() {
        return;
    }
    let targets: Vec<u64> = st
        .pending_shrinks
        .iter()
        .filter(|&&(gg, _)| gg == g)
        .map(|&(_, t)| t)
        .collect();
    let mut reached: Vec<u64> = Vec::new();
    for target in targets {
        if apply_shrink(ts, spec, scheduler, st, sched_wall, g, target) {
            reached.push(target);
        }
    }
    st.pending_shrinks
        .retain(|&(gg, t)| gg != g || !reached.contains(&t));
}

/// Process the online arrival of task `t`: record it, then admit it to
/// the scheduler, defer it into the FIFO queue, or — under a shedding
/// [`ShedPolicy`] — reject it outright. Admission is strictly
/// first-come-first-served — a feasible arrival still queues behind
/// earlier deferred tasks. With the default `DeferOnly` policy no
/// shedding branch is ever taken, keeping the event stream
/// byte-identical to the pre-overload-control engine.
#[allow(clippy::too_many_arguments)]
fn arrive(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    config: &RunConfig,
    t: TaskId,
) {
    if st.trace.enabled() {
        st.trace.push(TraceEvent::TaskArrived {
            at: st.now,
            task: t.index(),
        });
    }
    if st.observed() {
        st.emit(ObsEvent::TaskArrived { t: st.now, task: t.0 });
    }
    let policy = shed_policy(config);
    if policy != ShedPolicy::DeferOnly {
        // Lazy expiry: an arrival is the clock tick on which deferred
        // tasks past their deadline are dropped (no timer events are
        // seeded, so event sequence numbers — and every tie-break
        // downstream — are untouched).
        expire_deferred(ts, st);
        // Predictive shed: reject now if the estimated queueing delay
        // already blows the arrival's completion budget.
        let dl = ts.deadline(t);
        if dl > 0 && estimated_delay(st) > dl {
            drop_task(ts, st, t, false);
            return;
        }
    }
    if st.deferred.is_empty() && admissible(ts, st, config, t) {
        admit(ts, spec, scheduler, st, sched_wall, t);
    } else {
        // PriorityShed bounds the deferred queue by `max_backlog`: an
        // overflow sheds the lowest-class task among the queue and the
        // new arrival (ties drop the oldest, i.e. the front-most).
        if policy == ShedPolicy::PriorityShed {
            if let Some(bound) = config.admission.as_ref().and_then(|a| a.max_backlog) {
                if st.deferred.len() >= bound {
                    let victim = st
                        .deferred
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &raw)| ts.class_of(TaskId(raw)))
                        .map(|(i, &raw)| (i, raw))
                        .expect("deferred queue non-empty at overflow");
                    if ts.class_of(TaskId(victim.1)) <= ts.class_of(t) {
                        st.deferred.remove(victim.0);
                        drop_task(ts, st, TaskId(victim.1), false);
                    } else {
                        drop_task(ts, st, t, false);
                        return;
                    }
                }
            }
        }
        st.deferrals += 1;
        st.deferred.push_back(t.0);
        if st.trace.enabled() {
            st.trace.push(TraceEvent::TaskDeferred {
                at: st.now,
                task: t.index(),
            });
        }
        if st.observed() {
            st.emit(ObsEvent::TaskDeferred { t: st.now, task: t.0 });
        }
    }
}

/// Deterministic queueing-delay estimate for an arrival, from simulated
/// state only: the mean observed queueing delay so far plus the deferred
/// backlog times the mean observed service time (integer arithmetic, so
/// worker counts and wall clocks cannot perturb it). Cold start — before
/// any task started — estimates 0.
fn estimated_delay(st: &State) -> Nanos {
    let started = st.queueing.len() as Nanos;
    if started == 0 {
        return 0;
    }
    let mean_q = st.queueing_sum / started;
    let mean_s = st.service_sum / started;
    mean_q + st.deferred.len() as Nanos * mean_s
}

/// Grow-and-bump a per-class counter vector.
fn bump_class(v: &mut Vec<u64>, class: u32) {
    let c = class as usize;
    if v.len() <= c {
        v.resize(c + 1, 0);
    }
    v[c] += 1;
}

/// Drop task `t` from the admission path: `expired` distinguishes a
/// deferred task that sat past its deadline ([`TraceEvent::DeadlineExpired`])
/// from a policy rejection ([`TraceEvent::TaskShed`]). The task is never
/// released, so no scheduler ever sees it — the engine-side guarantee
/// behind the chaos harness's "no shed task ever executes" invariant.
fn drop_task(ts: &TaskSet, st: &mut State, t: TaskId, expired: bool) {
    debug_assert!(!st.released[t.index()], "dropped an admitted task {t:?}");
    bump_class(&mut st.shed_per_class, ts.class_of(t));
    if expired {
        st.expired_tasks += 1;
        if st.trace.enabled() {
            st.trace.push(TraceEvent::DeadlineExpired {
                at: st.now,
                task: t.index(),
            });
        }
        if st.observed() {
            st.emit(ObsEvent::DeadlineExpired { t: st.now, task: t.0 });
        }
    } else {
        st.shed_tasks += 1;
        if st.trace.enabled() {
            st.trace.push(TraceEvent::TaskShed {
                at: st.now,
                task: t.index(),
            });
        }
        if st.observed() {
            st.emit(ObsEvent::TaskShed { t: st.now, task: t.0 });
        }
    }
}

/// Lazily expire deferred tasks whose completion deadline has passed
/// (`now` strictly beyond `arrival + deadline`). Only called under a
/// shedding policy, from existing event handlers — never from a timer —
/// so it cannot perturb event sequence numbering.
fn expire_deferred(ts: &TaskSet, st: &mut State) {
    let mut i = 0;
    while i < st.deferred.len() {
        let t = TaskId(st.deferred[i]);
        let dl = ts.deadline(t);
        if dl > 0 && st.now > ts.arrival(t).saturating_add(dl) {
            st.deferred.remove(i);
            drop_task(ts, st, t, true);
        } else {
            i += 1;
        }
    }
}

/// Shed deferred tasks whose footprint no longer fits any alive GPU —
/// they can never be admitted again after a fail-stop or shrink fault.
fn shed_unfit_deferred(ts: &TaskSet, st: &mut State) {
    let mut i = 0;
    while i < st.deferred.len() {
        let t = TaskId(st.deferred[i]);
        let fits = (0..st.mem.len())
            .any(|g| !st.dead[g] && ts.task_footprint(t) <= st.mem[g].capacity());
        if !fits {
            st.deferred.remove(i);
            drop_task(ts, st, t, false);
        } else {
            i += 1;
        }
    }
}

/// Re-check the admission state after a fail-stop or shrink fault
/// (the `serve --faults` composition fix): under a shedding policy,
/// expire overdue deferrals and shed the ones stranded by the lost
/// capacity; then retry the FIFO as a completion would. Under
/// `DeferOnly` the whole pass is a provable no-op — faults never
/// improve admissibility, so the FIFO head stays inadmissible and no
/// event is emitted — keeping fault-injected golden traces
/// byte-identical.
fn recheck_deferred_after_fault(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    config: &RunConfig,
) {
    if shed_policy(config) != ShedPolicy::DeferOnly {
        expire_deferred(ts, st);
        shed_unfit_deferred(ts, st);
    }
    retry_deferred(ts, spec, scheduler, st, sched_wall, config);
}

/// Whether task `t` can be admitted right now: its inputs fit the
/// current capacity of at least one alive GPU and the backlog bound has
/// room.
fn admissible(ts: &TaskSet, st: &State, config: &RunConfig, t: TaskId) -> bool {
    let fits = (0..st.mem.len())
        .any(|g| !st.dead[g] && ts.task_footprint(t) <= st.mem[g].capacity());
    let backlog_ok = config
        .admission
        .as_ref()
        .and_then(|a| a.max_backlog)
        .is_none_or(|b| st.backlog < b);
    fits && backlog_ok
}

/// Release task `t` to the scheduler: mark it poppable, notify the
/// policy, and wake every worker.
#[allow(clippy::too_many_arguments)]
fn admit(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    t: TaskId,
) {
    st.released[t.index()] = true;
    st.backlog += 1;
    st.admitted += 1;
    if st.trace.enabled() {
        st.trace.push(TraceEvent::TaskAdmitted {
            at: st.now,
            task: t.index(),
        });
    }
    if st.observed() {
        st.emit(ObsEvent::TaskAdmitted {
            t: st.now,
            task: t.0,
            wait: st.now - ts.arrival(t),
        });
    }
    // A release can unblock pops on every worker.
    st.wake_all();
    // Admission has no owning worker; charge the callback to worker 0 so
    // `sched_wall` still sums every scheduler invocation.
    let view = st.view(ts, spec);
    timed(sched_wall, 0, || scheduler.on_task_arrival(t, &view));
}

/// Re-try the deferred FIFO after a completion freed backlog or pinned
/// memory; stops at the first still-inadmissible head to preserve
/// arrival order. Under a shedding policy, overdue deferrals expire
/// first so a stale head can never be admitted past its deadline.
fn retry_deferred(
    ts: &TaskSet,
    spec: &PlatformSpec,
    scheduler: &mut dyn Scheduler,
    st: &mut State,
    sched_wall: &mut [Nanos],
    config: &RunConfig,
) {
    if shed_policy(config) != ShedPolicy::DeferOnly {
        expire_deferred(ts, st);
    }
    while let Some(&raw) = st.deferred.front() {
        let t = TaskId(raw);
        if !admissible(ts, st, config, t) {
            break;
        }
        st.deferred.pop_front();
        admit(ts, spec, scheduler, st, sched_wall, t);
    }
}

/// Why a [`ShardSim::advance`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ShardStep {
    /// The shard completed its share of tasks (and, exactly like the
    /// serial core, ran one more worklist sweep after the final
    /// completion before stopping).
    Done,
    /// The next event lies beyond the window horizon, or the event queue
    /// drained without reaching the completion target (the coordinator
    /// distinguishes the two via [`ShardSim::next_event_time`]).
    Horizon,
}

/// One bus-group shard of the sharded simulation tier: the flat serial
/// engine core restricted to a subset of GPUs, advanced incrementally
/// under the coordinator's conservative time windows (`crate::shard`).
///
/// A shard owns a full-size [`State`] (GPU-indexed vectors cover the
/// whole platform) but only its own GPUs ever receive events, sweeps or
/// faults, so the state it evolves is exactly the serial run's state
/// projected onto the shard — the invariant behind the byte-identical
/// merge. Batch mode only; the coordinator falls back to the serial
/// core for anything this struct does not model (admission loops,
/// transfer faults, NVLink, probes, the naive reference core).
pub(crate) struct ShardSim {
    st: State,
    sched_wall: Vec<Nanos>,
    /// GPUs of this shard's bus group, in ascending index order (sweep
    /// order must match the serial core's `0..k` scan restricted to the
    /// group).
    gpus: Vec<usize>,
    /// Events processed by this shard (the coordinator sums shards
    /// against `RunConfig::max_events`).
    processed: u64,
}

impl ShardSim {
    /// Build the shard over `gpus`, seeding only faults that target its
    /// GPUs. The caller has already validated the fault plan and
    /// guaranteed batch mode.
    pub(crate) fn new(
        ts: &TaskSet,
        spec: &PlatformSpec,
        config: &RunConfig,
        trace: TraceMode,
        gpus: Vec<usize>,
    ) -> Self {
        let k = spec.num_gpus;
        let mut st = new_state(ts, spec, config, false, trace, None);
        if !config.faults.is_empty() {
            let mut mine = vec![false; k];
            for &g in &gpus {
                mine[g] = true;
            }
            seed_faults(&mut st, config, |g| mine[g]);
        }
        Self {
            st,
            sched_wall: vec![0; k],
            gpus,
            processed: 0,
        }
    }

    /// Run the serial loop restricted to this shard until the shard has
    /// completed `stop_at` tasks or its next event passes `horizon`
    /// (inclusive). Mirrors `run_inner` exactly: sweep, check the
    /// completion target, pop, dispatch.
    pub(crate) fn advance(
        &mut self,
        ts: &TaskSet,
        spec: &PlatformSpec,
        scheduler: &mut dyn Scheduler,
        config: &RunConfig,
        horizon: Nanos,
        stop_at: usize,
    ) -> Result<ShardStep, RunError> {
        let total = ts.num_tasks();
        loop {
            sweep(
                ts,
                spec,
                scheduler,
                &mut self.st,
                &mut self.sched_wall,
                false,
                &self.gpus,
            )?;
            if self.st.completed >= stop_at {
                return Ok(ShardStep::Done);
            }
            let Some(t) = self.st.events.peek_time() else {
                return Ok(ShardStep::Horizon);
            };
            if t > horizon {
                return Ok(ShardStep::Horizon);
            }
            let (time, _, ev) = self.st.events.pop().expect("peeked event present");
            self.st.now = time;
            self.processed += 1;
            if self.processed > config.max_events {
                return Err(RunError::EventBudgetExceeded);
            }
            handle_event(
                ts,
                spec,
                scheduler,
                &mut self.st,
                &mut self.sched_wall,
                config,
                total,
                ev,
            )?;
        }
    }

    /// Timestamp of the shard's next pending event, if any.
    pub(crate) fn next_event_time(&mut self) -> Option<Nanos> {
        self.st.events.peek_time()
    }

    /// The shard's local clock (time of its last processed event).
    pub(crate) fn now(&self) -> Nanos {
        self.st.now
    }

    /// Events processed by this shard so far.
    pub(crate) fn processed(&self) -> u64 {
        self.processed
    }

    /// Close the shard's stall accounting at the global `makespan`,
    /// exactly as the serial epilogue does at its final clock.
    pub(crate) fn finalize(&mut self, makespan: Nanos) {
        self.st.now = makespan;
        for &g in &self.gpus {
            self.st.lane_advance(g);
        }
    }

    /// Per-GPU stats against the global `makespan` (see [`gpu_stats`]).
    pub(crate) fn gpu_stats(&self, makespan: Nanos, g: usize) -> GpuRunStats {
        gpu_stats(&self.st, &self.sched_wall, makespan, g)
    }

    /// Take the shard's recorded trace (always recorded `Full` or `Off`;
    /// the coordinator folds checksums after the canonical merge).
    pub(crate) fn take_trace(&mut self) -> Vec<TraceEvent> {
        let sink = std::mem::replace(&mut self.st.trace, TraceSink::Off);
        sink.finish().0
    }

    /// Aggregate counters the coordinator sums into the merged report:
    /// `(flops_done, retries, failures, redispatched)`.
    pub(crate) fn totals(&self) -> (f64, u64, u64, u64) {
        (
            self.st.flops_done,
            self.st.retries,
            self.st.failures,
            self.st.redispatched,
        )
    }

    /// Per-bus busy nanoseconds (only this shard's buses are nonzero;
    /// the coordinator sums element-wise).
    pub(crate) fn bus_busy(&self) -> &[Nanos] {
        &self.st.bus_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::TaskSetBuilder;

    /// Trivial FIFO scheduler for engine tests.
    struct Fifo {
        next: u32,
        total: u32,
    }

    impl Fifo {
        fn new(ts: &TaskSet) -> Self {
            Self {
                next: 0,
                total: ts.num_tasks() as u32,
            }
        }
    }

    impl Scheduler for Fifo {
        fn name(&self) -> String {
            "fifo-test".into()
        }
        fn pop_task(&mut self, _gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
            if self.next < self.total {
                self.next += 1;
                Some(TaskId(self.next - 1))
            } else {
                None
            }
        }
    }

    fn tiny_spec(k: usize, mem: u64) -> PlatformSpec {
        PlatformSpec {
            num_gpus: k,
            memory_bytes: mem,
            bus_bandwidth: 1e9, // 1 GB/s
            transfer_latency: 0,
            gpu_gflops: 1.0, // 1 GFlop/s => flops == nanoseconds
            pipeline_depth: 2,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        }
    }

    fn two_task_set() -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(1000);
        let d1 = b.add_data(1000);
        b.add_task(&[d0], 5000.0);
        b.add_task(&[d0, d1], 5000.0);
        b.build()
    }

    #[test]
    fn executes_all_tasks_once() {
        let ts = two_task_set();
        let mut sched = Fifo::new(&ts);
        let report = run(&ts, &tiny_spec(1, 10_000), &mut sched).unwrap();
        assert_eq!(report.per_gpu[0].tasks, 2);
        assert_eq!(report.total_loads, 2);
        assert_eq!(report.total_load_bytes, 2000);
        assert_eq!(report.total_evictions, 0);
        assert!(report.makespan >= 10_000, "two 5µs tasks back to back");
    }

    #[test]
    fn transfers_overlap_computation() {
        // Task 0 computes for 5000 ns; D1 (1000 B @ 1 GB/s = 1000 ns) is
        // prefetched during that time, so task 1 starts right after task 0.
        let ts = two_task_set();
        let mut sched = Fifo::new(&ts);
        let report = run(&ts, &tiny_spec(1, 10_000), &mut sched).unwrap();
        // load D0 (1000 ns) + task0 (5000) + task1 (5000) = 11_000, with
        // D1's transfer hidden behind task 0.
        assert_eq!(report.makespan, 11_000);
    }

    #[test]
    fn eviction_happens_under_memory_pressure() {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..3).map(|_| b.add_data(1000)).collect();
        b.add_task(&[d[0]], 100.0);
        b.add_task(&[d[1]], 100.0);
        b.add_task(&[d[2]], 100.0);
        let ts = b.build();
        let mut sched = Fifo::new(&ts);
        // Memory fits one data item only.
        let report = run(&ts, &tiny_spec(1, 1000), &mut sched).unwrap();
        assert_eq!(report.total_loads, 3);
        assert_eq!(report.total_evictions, 2);
    }

    #[test]
    fn task_too_large_is_rejected() {
        let ts = two_task_set();
        let mut sched = Fifo::new(&ts);
        let err = run(&ts, &tiny_spec(1, 1500), &mut sched).unwrap_err();
        assert!(matches!(err, RunError::TaskTooLarge { .. }));
    }

    #[test]
    fn stuck_scheduler_is_detected() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn name(&self) -> String {
                "lazy".into()
            }
            fn pop_task(&mut self, _: GpuId, _: &RuntimeView<'_>) -> Option<TaskId> {
                None
            }
        }
        let ts = two_task_set();
        let err = run(&ts, &tiny_spec(1, 10_000), &mut Lazy).unwrap_err();
        assert_eq!(
            err,
            RunError::SchedulerStuck {
                completed: 0,
                total: 2
            }
        );
    }

    #[test]
    fn shared_bus_serializes_transfers_across_gpus() {
        // Two GPUs, one task each on distinct data: the second GPU's load
        // waits for the first on the shared bus.
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(1000);
        let d1 = b.add_data(1000);
        b.add_task(&[d0], 100.0);
        b.add_task(&[d1], 100.0);
        let ts = b.build();

        struct Split {
            popped: [bool; 2],
        }
        impl Scheduler for Split {
            fn name(&self) -> String {
                "split".into()
            }
            fn pop_task(&mut self, gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
                // One task per GPU, popped exactly once.
                if self.popped[gpu.index()] {
                    None
                } else {
                    self.popped[gpu.index()] = true;
                    Some(TaskId(gpu.0))
                }
            }
        }
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(2, 10_000),
            &mut Split { popped: [false; 2] },
            &RunConfig {
                trace: TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        // GPU0's transfer: 0..1000; GPU1's: 1000..2000; tasks 100 ns each.
        assert_eq!(report.makespan, 2100);
        let issued: Vec<_> = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::LoadIssued { .. }))
            .collect();
        assert_eq!(issued.len(), 2);
        if let TraceEvent::LoadIssued { done_at, .. } = issued[1] {
            assert_eq!(*done_at, 2000, "second transfer queues behind the first");
        }
    }

    #[test]
    fn per_group_buses_carry_transfers_concurrently() {
        // Same workload as the shared-bus test, but each GPU sits on its
        // own PCI bus: the two loads proceed in parallel and both tasks
        // finish at 1100 instead of the serialized 2100.
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(1000);
        let d1 = b.add_data(1000);
        b.add_task(&[d0], 100.0);
        b.add_task(&[d1], 100.0);
        let ts = b.build();

        struct Split {
            popped: [bool; 2],
        }
        impl Scheduler for Split {
            fn name(&self) -> String {
                "split".into()
            }
            fn pop_task(&mut self, gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
                if self.popped[gpu.index()] {
                    None
                } else {
                    self.popped[gpu.index()] = true;
                    Some(TaskId(gpu.0))
                }
            }
        }
        let spec = tiny_spec(2, 10_000).with_bus_groups(vec![0, 1]);
        let (report, trace) = run_with_config(
            &ts,
            &spec,
            &mut Split { popped: [false; 2] },
            &RunConfig {
                trace: TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.makespan, 1100, "independent buses do not queue");
        for e in trace {
            if let TraceEvent::LoadIssued { done_at, .. } = e {
                assert_eq!(done_at, 1000, "both transfers start at t = 0");
            }
        }
        assert_eq!(report.bus_busy_ns, vec![1000, 1000]);
    }

    #[test]
    fn single_bus_grouping_matches_ungrouped_run_exactly() {
        // `bus_groups: Some(all zeros)` must be indistinguishable from
        // `None`: identical trace, report and per-bus accounting.
        let ts = two_task_set();
        let spec = tiny_spec(2, 10_000);
        let grouped = spec.clone().with_bus_groups(vec![0, 0]);
        let config = RunConfig {
            trace: TraceMode::Full,
            ..Default::default()
        };
        let a = run_with_config(&ts, &spec, &mut Fifo::new(&ts), &config).unwrap();
        let b = run_with_config(&ts, &grouped, &mut Fifo::new(&ts), &config).unwrap();
        assert_eq!(a.1, b.1, "one explicit bus must replay the None path");
        // Wall-clock measurements differ between runs; everything
        // simulated must match.
        let strip = |mut r: RunReport| {
            r.prepare_wall = 0;
            r.sched_wall = 0;
            for g in &mut r.per_gpu {
                g.sched_wall = 0;
            }
            r
        };
        assert_eq!(strip(a.0), strip(b.0));
    }

    #[test]
    fn pop_is_not_hammered_when_stalled() {
        // A scheduler that panics if popped more than N+1 times per event
        // would catch regressions; here we just count.
        struct Counting {
            pops: u32,
            inner: Fifo,
        }
        impl Scheduler for Counting {
            fn name(&self) -> String {
                "counting".into()
            }
            fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
                self.pops += 1;
                self.inner.pop_task(gpu, view)
            }
        }
        let ts = two_task_set();
        let mut sched = Counting {
            pops: 0,
            inner: Fifo::new(&ts),
        };
        run(&ts, &tiny_spec(1, 10_000), &mut sched).unwrap();
        // 2 successful pops + one None per event at most.
        assert!(sched.pops < 20, "pops = {}", sched.pops);
    }

    #[test]
    fn nvlink_serves_peer_replicas() {
        // Both GPUs need the same data item: with NVLink the second copy
        // comes from the peer, not the host bus.
        let mut b = TaskSetBuilder::new();
        let d0 = b.add_data(1000);
        b.add_task(&[d0], 100.0);
        b.add_task(&[d0], 100.0);
        let ts = b.build();

        struct OnePerGpu {
            popped: [bool; 2],
        }
        impl Scheduler for OnePerGpu {
            fn name(&self) -> String {
                "one-per-gpu".into()
            }
            fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
                if self.popped[gpu.index()] {
                    return None;
                }
                // GPU1 waits until the replica is resident on GPU0, so its
                // copy can travel over the peer link when one exists.
                if gpu.0 == 1 && !view.is_resident(GpuId(0), memsched_model::DataId(0)) {
                    return None;
                }
                self.popped[gpu.index()] = true;
                Some(TaskId(gpu.0))
            }
        }

        let mut spec = tiny_spec(2, 10_000);
        // Without NVLink: two host loads.
        let r = run(&ts, &spec, &mut OnePerGpu { popped: [false; 2] }).unwrap();
        assert_eq!(r.total_loads, 2);
        assert_eq!(r.nvlink_mb(), 0.0);
        assert_eq!(r.pci_transfers_mb(), r.transfers_mb());

        // With NVLink: GPU0 loads from host, GPU1 peers once the replica
        // is resident (it may race host transfer; allow either but check
        // accounting consistency).
        spec.nvlink_bandwidth = Some(10e9);
        let r = run(&ts, &spec, &mut OnePerGpu { popped: [false; 2] }).unwrap();
        assert_eq!(r.total_loads, 2);
        let nv: u64 = r.per_gpu.iter().map(|g| g.nvlink_loads).sum();
        assert_eq!(nv, 1, "one copy should travel over NVLink");
        assert_eq!(r.pci_transfers_mb(), 0.001, "one 1000-byte host load");
    }

    #[test]
    fn report_gflops_accounts_total_flops() {
        let ts = two_task_set();
        let mut sched = Fifo::new(&ts);
        let report = run(&ts, &tiny_spec(1, 10_000), &mut sched).unwrap();
        assert_eq!(report.total_flops, 10_000.0);
        let expected = 10_000.0 / (report.makespan as f64 / 1e9) / 1e9;
        assert!((report.gflops() - expected).abs() < 1e-9);
        assert!(report.gflops_with_sched() <= report.gflops());
    }

    // ---- fault injection -------------------------------------------------

    use crate::fault::{FaultPlan, TransferFaultSpec};

    /// FIFO that requeues tasks lost to a fail-stop (minimal recovery).
    struct Recovering {
        queue: std::collections::VecDeque<TaskId>,
    }

    impl Recovering {
        fn new(ts: &TaskSet) -> Self {
            Self {
                queue: ts.tasks().collect(),
            }
        }
    }

    impl Scheduler for Recovering {
        fn name(&self) -> String {
            "recovering-fifo".into()
        }
        fn pop_task(&mut self, _gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
            self.queue.pop_front()
        }
        fn on_gpu_failed(&mut self, _gpu: GpuId, lost: &[TaskId], _view: &RuntimeView<'_>) {
            for &t in lost.iter().rev() {
                self.queue.push_front(t);
            }
        }
    }

    fn four_task_set() -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..4).map(|_| b.add_data(1000)).collect();
        for &di in &d {
            b.add_task(&[di], 5000.0);
        }
        b.build()
    }

    fn faulty_config(faults: FaultPlan) -> RunConfig {
        RunConfig {
            trace: TraceMode::Full,
            faults,
            ..Default::default()
        }
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let ts = two_task_set();
        let spec = tiny_spec(1, 10_000);
        let base = run_with_config(
            &ts,
            &spec,
            &mut Fifo::new(&ts),
            &RunConfig {
                trace: TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        let explicit = run_with_config(
            &ts,
            &spec,
            &mut Fifo::new(&ts),
            &faulty_config(FaultPlan::none()),
        )
        .unwrap();
        assert_eq!(base.1, explicit.1, "trace must be identical with faults off");
        assert_eq!(base.0.makespan, explicit.0.makespan);
        assert_eq!(explicit.0.gpu_failures, 0);
        assert_eq!(explicit.0.transfer_retries, 0);
        assert_eq!(explicit.0.tasks_redispatched, 0);
    }

    #[test]
    fn gpu_failure_redispatches_lost_tasks() {
        let ts = four_task_set();
        let spec = tiny_spec(2, 10_000);
        // GPU 1 dies mid-first-task; its pipeline (2 tasks) reroutes.
        let plan = FaultPlan::none().with_gpu_failure(1, 2_500);
        let (report, trace) =
            run_with_config(&ts, &spec, &mut Recovering::new(&ts), &faulty_config(plan))
                .unwrap();
        let finished = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TaskFinished { .. }))
            .count();
        assert_eq!(finished, 4, "every task completes exactly once");
        assert_eq!(report.per_gpu[1].tasks, 0, "GPU 1 died before finishing any");
        assert_eq!(report.per_gpu[0].tasks, 4);
        assert_eq!(report.gpu_failures, 1);
        assert_eq!(report.tasks_redispatched, 2);
        assert!(
            trace.iter().any(|e| matches!(
                e,
                TraceEvent::GpuFailed { gpu: 1, .. }
            )),
            "failure must be traced"
        );
        // Survivor-only execution is slower than the fault-free run.
        let healthy = run(&ts, &spec, &mut Recovering::new(&ts)).unwrap();
        assert!(report.makespan > healthy.makespan);
        assert!(report.degradation_vs(&healthy) > 1.0);
    }

    #[test]
    fn all_gpus_failed_aborts_the_run() {
        let ts = two_task_set();
        let plan = FaultPlan::none().with_gpu_failure(0, 100);
        let err = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut Recovering::new(&ts),
            &faulty_config(plan),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::AllGpusFailed {
                completed: 0,
                total: 2
            }
        );
    }

    #[test]
    fn straggler_stretches_compute_deterministically() {
        // Factor 0.5 from t = 0 doubles both 5000-ns tasks:
        // load D0 (1000) + 10_000 + 10_000 = 21_000.
        let ts = two_task_set();
        let plan = FaultPlan::none().with_straggler(0, 0, 0.5);
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut Fifo::new(&ts),
            &faulty_config(plan),
        )
        .unwrap();
        assert_eq!(report.makespan, 21_000);
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::GpuSlowed { factor, .. } if *factor == 0.5)));
    }

    #[test]
    fn exhausted_transfer_retries_fail_the_run() {
        let ts = two_task_set();
        let plan = FaultPlan::none().with_transfer_faults(TransferFaultSpec {
            seed: 7,
            fault_ppm: 1_000_000, // every delivery attempt faults
            max_attempts: 3,
            backoff_base: 100,
        });
        let err = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut Fifo::new(&ts),
            &faulty_config(plan),
        )
        .unwrap_err();
        assert!(
            matches!(err, RunError::TransferFailed { attempts: 3, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn transfer_retries_recover_and_replay_identically() {
        let ts = two_task_set();
        let spec = tiny_spec(1, 10_000);
        // seed 2 faults the very first delivery check of this run shape.
        let plan = FaultPlan::none().with_transfer_faults(TransferFaultSpec {
            seed: 2,
            fault_ppm: 500_000,
            max_attempts: 32,
            backoff_base: 100,
        });
        let a = run_with_config(
            &ts,
            &spec,
            &mut Fifo::new(&ts),
            &faulty_config(plan.clone()),
        )
        .unwrap();
        let b = run_with_config(&ts, &spec, &mut Fifo::new(&ts), &faulty_config(plan)).unwrap();
        assert_eq!(a.1, b.1, "same seed must replay the same fault stream");
        assert_eq!(a.0.makespan, b.0.makespan);
        assert!(a.0.transfer_retries >= 1, "ppm 500k over 2 loads must retry");
        let retries_in_trace = a
            .1
            .iter()
            .filter(|e| matches!(e, TraceEvent::TransferRetry { .. }))
            .count() as u64;
        assert_eq!(a.0.transfer_retries, retries_in_trace);
        // Faulted deliveries only delay the run, they never lose work.
        assert_eq!(a.0.per_gpu[0].tasks, 2);
    }

    #[test]
    fn capacity_shrink_forces_evictions() {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..3).map(|_| b.add_data(1000)).collect();
        for &di in &d {
            b.add_task(&[di], 5000.0);
        }
        let ts = b.build();
        // Starts with room for all three items; shrinks to one mid-run.
        let plan = FaultPlan::none().with_capacity_shrink(0, 4_000, 1000);
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 3000),
            &mut Fifo::new(&ts),
            &faulty_config(plan),
        )
        .unwrap();
        assert_eq!(report.per_gpu[0].tasks, 3, "all tasks still complete");
        assert!(report.total_evictions >= 1, "shrink must evict residents");
        assert!(trace.iter().any(|e| matches!(
            e,
            TraceEvent::CapacityShrunk { capacity: 1000, .. }
        )));
    }

    #[test]
    fn post_shrink_infeasible_task_is_a_structured_error() {
        // Task 1 needs 2000 B; the shrink (processed at t = 0, before any
        // transfer) caps GPU 0 at 1500 B, so the pop-time check fires.
        let ts = two_task_set();
        let plan = FaultPlan::none().with_capacity_shrink(0, 0, 1500);
        let err = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut Fifo::new(&ts),
            &faulty_config(plan),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RunError::TaskTooLarge {
                task: TaskId(1),
                footprint: 2000,
                capacity: 1500
            }
        );
    }

    #[test]
    fn fault_error_messages_are_readable() {
        let e = RunError::TransferFailed {
            gpu: 1,
            data: memsched_model::DataId(3),
            attempts: 4,
        };
        assert!(e.to_string().contains("retry budget"));
        let e = RunError::AllGpusFailed {
            completed: 5,
            total: 9,
        };
        assert!(e.to_string().contains("5/9"));
        let e = RunError::InvalidFaultPlan("fail: GPU 7 out of range".into());
        assert!(e.to_string().contains("GPU 7"));
    }

    #[test]
    fn observed_run_is_decision_identical_and_well_formed() {
        let ts = two_task_set();
        let spec = tiny_spec(1, 10_000);
        let config = RunConfig {
            trace: TraceMode::Full,
            ..Default::default()
        };
        let base = run_with_config(&ts, &spec, &mut Fifo::new(&ts), &config).unwrap();
        let probe = Probe::unbounded();
        let obs = run_observed(&ts, &spec, &mut Fifo::new(&ts), &config, &probe).unwrap();
        // Wall-clock measurements (sched_wall, prepare_wall) are real
        // time and differ between runs; everything simulated must match.
        let strip = |mut r: RunReport| {
            r.prepare_wall = 0;
            r.sched_wall = 0;
            for g in &mut r.per_gpu {
                g.sched_wall = 0;
            }
            r
        };
        assert_eq!(strip(base.0.clone()), strip(obs.0), "probe must not change the report");
        assert_eq!(base.1, obs.1, "probe must not change the trace");

        let events = probe.events();
        let timeline = memsched_obs::check_well_formed(&events).unwrap();
        // One compute span per task, one transfer span per load.
        let computes = timeline
            .spans
            .iter()
            .filter(|s| matches!(s.kind, memsched_obs::SpanKind::Compute { .. }))
            .count();
        assert_eq!(computes, 2);
        let transfers = timeline
            .spans
            .iter()
            .filter(|s| matches!(s.kind, memsched_obs::SpanKind::Transfer { .. }))
            .count();
        assert_eq!(transfers as u64, base.0.total_loads);
    }

    #[test]
    fn lane_accounting_sums_to_makespan_and_matches_derived_breakdown() {
        let ts = two_task_set();
        let spec = tiny_spec(1, 10_000);
        let probe = Probe::unbounded();
        let (report, _) = run_observed(
            &ts,
            &spec,
            &mut Fifo::new(&ts),
            &RunConfig::default(),
            &probe,
        )
        .unwrap();
        for g in &report.per_gpu {
            assert_eq!(g.busy + g.stall + g.idle, report.makespan);
        }
        // D0's initial load (1000 ns) is the only stall; D1 prefetches
        // under task 0's compute.
        assert_eq!(report.per_gpu[0].stall, 1000);
        let derived =
            memsched_obs::gpu_breakdowns(&probe.events(), 1, report.makespan).unwrap();
        assert_eq!(derived[0].busy, report.per_gpu[0].busy);
        assert_eq!(derived[0].stall, report.per_gpu[0].stall);
        assert_eq!(derived[0].idle, report.per_gpu[0].idle);
    }

    #[test]
    fn faulted_observed_run_closes_interrupted_spans() {
        let ts = four_task_set();
        let spec = tiny_spec(2, 10_000);
        // GPU 1's queued bus loads land at 3000; it computes 3000..8000,
        // so a failure at 5000 interrupts it mid-task.
        let plan = FaultPlan::none().with_gpu_failure(1, 5_000);
        let probe = Probe::unbounded();
        let (report, _) = run_observed(
            &ts,
            &spec,
            &mut Recovering::new(&ts),
            &faulty_config(plan),
            &probe,
        )
        .unwrap();
        let events = probe.events();
        let timeline = memsched_obs::check_well_formed(&events).unwrap();
        let interrupted = timeline
            .spans
            .iter()
            .filter(
                |s| matches!(s.kind, memsched_obs::SpanKind::Compute { interrupted: true, .. }),
            )
            .count();
        assert_eq!(interrupted, 1, "GPU 1's running task ends interrupted");
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ObsEvent::GpuFailed { .. }))
                .count() as u64,
            report.gpu_failures
        );
        for g in &report.per_gpu {
            assert_eq!(g.busy + g.stall + g.idle, report.makespan);
        }
    }

    /// FIFO scheduler that only pops tasks the admission loop has
    /// released — the contract online schedulers must follow.
    struct StreamFifo {
        q: std::collections::VecDeque<TaskId>,
    }

    impl Scheduler for StreamFifo {
        fn name(&self) -> String {
            "stream-fifo-test".into()
        }
        fn prepare_stream(&mut self, _ts: &TaskSet, _spec: &PlatformSpec) {
            self.q.clear();
        }
        fn on_task_arrival(&mut self, task: TaskId, _view: &RuntimeView<'_>) {
            self.q.push_back(task);
        }
        fn pop_task(&mut self, _gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
            self.q.pop_front()
        }
    }

    fn traced_online_config(max_backlog: Option<usize>) -> RunConfig {
        RunConfig {
            trace: TraceMode::Full,
            admission: Some(AdmissionConfig {
                max_backlog,
                ..AdmissionConfig::default()
            }),
            ..RunConfig::default()
        }
    }

    #[test]
    fn admission_none_ignores_arrival_stamps() {
        // With `admission: None` the engine takes the batch path even if
        // the task set carries arrival times: identical trace, no
        // admission events, no online stats.
        let ts = two_task_set();
        let stamped = ts.clone().with_arrivals(vec![0, 7_000]);
        let config = RunConfig {
            trace: TraceMode::Full,
            ..RunConfig::default()
        };
        let (r1, t1) =
            run_with_config(&ts, &tiny_spec(1, 10_000), &mut Fifo::new(&ts), &config).unwrap();
        let (r2, t2) = run_with_config(
            &stamped,
            &tiny_spec(1, 10_000),
            &mut Fifo::new(&stamped),
            &config,
        )
        .unwrap();
        assert_eq!(t1, t2, "batch runs must ignore arrival stamps");
        assert_eq!(r1.makespan, r2.makespan);
        assert!(r2.online.is_none());
    }

    #[test]
    fn backlog_cap_defers_and_retries_in_fcfs_order() {
        // Three independent tasks all arrive at t = 0 under a backlog
        // bound of 1: task 0 is admitted up front, 1 and 2 defer and are
        // re-admitted one completion at a time, in arrival order.
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..3).map(|_| b.add_data(1000)).collect();
        for &x in &d {
            b.add_task(&[x], 5000.0);
        }
        let ts = b.build().with_arrivals(vec![0; 3]);
        let mut sched = StreamFifo {
            q: Default::default(),
        };
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 3000),
            &mut sched,
            &traced_online_config(Some(1)),
        )
        .unwrap();
        let stats = report.online.expect("online stats");
        assert_eq!(stats.tasks_admitted, 3);
        assert_eq!(stats.tasks_deferred, 2, "tasks 1 and 2 defer once each");
        let admitted: Vec<usize> = trace
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::TaskAdmitted { task, .. } => Some(task),
                _ => None,
            })
            .collect();
        assert_eq!(admitted, vec![0, 1, 2], "FCFS admission order");
        // Each later admission happens at a completion, not before.
        let mut done = 0;
        for ev in &trace {
            match *ev {
                TraceEvent::TaskFinished { .. } => done += 1,
                TraceEvent::TaskAdmitted { task, .. } => {
                    assert_eq!(task, done, "admission #{task} must wait for {task} completions")
                }
                _ => {}
            }
        }
        assert_eq!(report.per_gpu[0].tasks, 3);
    }

    #[test]
    fn staggered_arrivals_gate_task_starts() {
        let ts = two_task_set().with_arrivals(vec![0, 9_000]);
        let mut sched = StreamFifo {
            q: Default::default(),
        };
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut sched,
            &traced_online_config(None),
        )
        .unwrap();
        for ev in &trace {
            match *ev {
                TraceEvent::TaskAdmitted { at, task } => {
                    assert_eq!(at, ts.arrival(TaskId(task as u32)), "uncontended admit is immediate")
                }
                TraceEvent::TaskStarted { at, task, .. } => {
                    assert!(at >= ts.arrival(TaskId(task as u32)))
                }
                _ => {}
            }
        }
        let stats = report.online.expect("online stats");
        assert_eq!(stats.tasks_admitted, 2);
        assert_eq!(stats.tasks_deferred, 0);
        assert!(stats.throughput_tps > 0.0);
    }

    fn shed_config(policy: ShedPolicy, max_backlog: Option<usize>) -> RunConfig {
        RunConfig {
            trace: TraceMode::Full,
            admission: Some(AdmissionConfig { max_backlog, policy }),
            ..RunConfig::default()
        }
    }

    #[test]
    fn shed_policy_parses_and_labels() {
        for (s, want) in [
            ("defer", ShedPolicy::DeferOnly),
            ("defer-only", ShedPolicy::DeferOnly),
            ("deadline", ShedPolicy::DeadlineShed),
            ("deadline-shed", ShedPolicy::DeadlineShed),
            ("priority", ShedPolicy::PriorityShed),
            ("priority-shed", ShedPolicy::PriorityShed),
        ] {
            assert_eq!(ShedPolicy::parse(s).unwrap(), want, "{s}");
        }
        assert!(ShedPolicy::parse("drop-everything").is_err());
        assert_eq!(ShedPolicy::default(), ShedPolicy::DeferOnly);
        assert_eq!(ShedPolicy::DeadlineShed.as_str(), "deadline");
    }

    /// Predictive shed: once the delay estimator has samples, an arrival
    /// whose deadline is already blown by the estimated wait is rejected
    /// at arrival time and never reaches a scheduler.
    #[test]
    fn deadline_shed_rejects_hopeless_arrival() {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..3).map(|_| b.add_data(1000)).collect();
        for &x in &d {
            b.add_task(&[x], 5000.0);
        }
        // Task 0 starts at t=1000 (its load), so by task 1's arrival at
        // t=2000 the estimator holds mean_q = 1000 > deadline 500.
        let ts = b
            .build()
            .with_arrivals(vec![0, 2000, 2500])
            .with_deadlines(vec![0, 500, 0]);
        let mut sched = StreamFifo {
            q: Default::default(),
        };
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut sched,
            &shed_config(ShedPolicy::DeadlineShed, Some(1)),
        )
        .unwrap();
        let stats = report.online.expect("online stats");
        assert_eq!(stats.tasks_shed, 1);
        assert_eq!(stats.deadline_expired, 0);
        assert_eq!(stats.tasks_admitted, 2);
        assert_eq!(report.per_gpu[0].tasks, 2, "shed task never executes");
        assert_eq!(stats.shed_per_class, vec![1], "class-less drop lands in class 0");
        assert_eq!(stats.deadline_violations, 0);
        assert!(stats.goodput_tps > 0.0);
        assert!(
            trace.iter().any(|ev| matches!(
                *ev,
                TraceEvent::TaskShed { at: 2000, task: 1 }
            )),
            "shed instant recorded at the arrival"
        );
        assert!(
            !trace
                .iter()
                .any(|ev| matches!(*ev, TraceEvent::TaskStarted { task: 1, .. })),
            "no shed task ever starts"
        );
    }

    /// Lazy expiry: deferred tasks whose deadline lapses while queued are
    /// dropped at the next admission activity, not admitted stale.
    #[test]
    fn deadline_shed_expires_stale_deferrals() {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..3).map(|_| b.add_data(1000)).collect();
        for &x in &d {
            b.add_task(&[x], 5000.0);
        }
        // Tasks 1 and 2 defer behind the backlog cap with 1µs deadlines;
        // task 0 completes at t=6000, far past both budgets.
        let ts = b
            .build()
            .with_arrivals(vec![0, 100, 200])
            .with_deadlines(vec![0, 1000, 1000]);
        let mut sched = StreamFifo {
            q: Default::default(),
        };
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut sched,
            &shed_config(ShedPolicy::DeadlineShed, Some(1)),
        )
        .unwrap();
        let stats = report.online.expect("online stats");
        assert_eq!(stats.deadline_expired, 2);
        assert_eq!(stats.tasks_shed, 0);
        assert_eq!(report.per_gpu[0].tasks, 1);
        let expired: Vec<usize> = trace
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::DeadlineExpired { task, .. } => Some(task),
                _ => None,
            })
            .collect();
        assert_eq!(expired, vec![1, 2], "FIFO-order expiry");
        // Exactly-once: every arrival is admitted xor dropped.
        assert_eq!(
            stats.tasks_admitted + stats.tasks_shed + stats.deadline_expired,
            3
        );
    }

    /// PriorityShed bounds the deferred queue at `max_backlog` and evicts
    /// the lowest class first (ties drop the oldest).
    #[test]
    fn priority_shed_evicts_lowest_class_first() {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..4).map(|_| b.add_data(1000)).collect();
        for &x in &d {
            b.add_task(&[x], 5000.0);
        }
        let ts = b
            .build()
            .with_arrivals(vec![0, 10, 20, 30])
            .with_classes(vec![1, 0, 1, 1]);
        let mut sched = StreamFifo {
            q: Default::default(),
        };
        let (report, trace) = run_with_config(
            &ts,
            &tiny_spec(1, 10_000),
            &mut sched,
            &shed_config(ShedPolicy::PriorityShed, Some(1)),
        )
        .unwrap();
        let stats = report.online.expect("online stats");
        // Task 0 admits; task 1 (class 0) defers; task 2's overflow sheds
        // class-0 task 1; task 3's overflow sheds task 2 (tie → oldest).
        let shed: Vec<usize> = trace
            .iter()
            .filter_map(|ev| match *ev {
                TraceEvent::TaskShed { task, .. } => Some(task),
                _ => None,
            })
            .collect();
        assert_eq!(shed, vec![1, 2]);
        assert_eq!(stats.tasks_shed, 2);
        assert_eq!(stats.shed_per_class, vec![1, 1]);
        assert_eq!(report.per_gpu[0].tasks, 2);
        assert_eq!(stats.completed_per_class, vec![0, 2]);
        // The deferred queue never exceeds the bound.
        let mut waiting = 0i64;
        for ev in &trace {
            match *ev {
                TraceEvent::TaskDeferred { .. } => waiting += 1,
                TraceEvent::TaskAdmitted { at, .. } if at > 0 => waiting -= 1,
                TraceEvent::TaskShed { at, .. } if at > 0 => {
                    // Only queue evictions decrement; arrival-time sheds
                    // never entered the queue. Here every shed is a queue
                    // eviction (both victims were deferred first).
                    waiting -= 1;
                }
                _ => {}
            }
            assert!(waiting <= 1, "deferred backlog exceeded the bound");
        }
    }

    /// A shedding policy with nothing to shed — no deadlines, no queue
    /// overflow — replays the DeferOnly event stream byte-for-byte, and
    /// DeferOnly ignores deadline stamps entirely.
    #[test]
    fn shed_policies_are_conservative_extensions() {
        let mut b = TaskSetBuilder::new();
        let d: Vec<_> = (0..3).map(|_| b.add_data(1000)).collect();
        for &x in &d {
            b.add_task(&[x], 5000.0);
        }
        let plain = b.build().with_arrivals(vec![0, 100, 200]);
        let stamped = plain.clone().with_deadlines(vec![u64::MAX, u64::MAX, u64::MAX]);
        let run = |ts: &TaskSet, config: &RunConfig| {
            let mut sched = StreamFifo {
                q: Default::default(),
            };
            run_with_config(ts, &tiny_spec(1, 10_000), &mut sched, config)
                .unwrap()
                .1
        };
        let defer_only = run(&plain, &traced_online_config(Some(2)));
        assert_eq!(
            run(&plain, &shed_config(ShedPolicy::DeadlineShed, Some(2))),
            defer_only,
            "DeadlineShed without deadlines must match DeferOnly"
        );
        assert_eq!(
            run(&stamped, &shed_config(ShedPolicy::DeadlineShed, Some(2))),
            defer_only,
            "unreachable deadlines must not perturb the stream"
        );
        assert_eq!(
            run(&stamped, &traced_online_config(Some(2))),
            defer_only,
            "DeferOnly ignores deadline stamps"
        );
    }
}
