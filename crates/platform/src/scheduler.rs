//! The scheduler interface: the contract between the runtime engine and
//! the scheduling policies of `memsched-schedulers`.
//!
//! Mirrors the structure of a StarPU scheduling policy: a static
//! preparation phase ([`Scheduler::prepare`]), a pull-mode task source
//! ([`Scheduler::pop_task`], called whenever a worker has pipeline room),
//! an eviction hook ([`Scheduler::choose_victim`], how DARTS installs LUF)
//! and event notifications.

use crate::memory::GpuMemory;
use crate::spec::{Nanos, PlatformSpec};
use memsched_model::{DataId, GpuId, TaskId, TaskSet};

/// Read-only view of the runtime state, handed to scheduler callbacks.
///
/// Everything a dynamic policy may legitimately observe: data residency
/// per GPU, the worker pipelines (`taskBuffer_k`), clock and busy-ness
/// estimates. Schedulers must not assume anything else about the engine.
pub struct RuntimeView<'a> {
    pub(crate) ts: &'a TaskSet,
    pub(crate) spec: &'a PlatformSpec,
    pub(crate) now: Nanos,
    pub(crate) memories: &'a [GpuMemory],
    /// Per-GPU pipeline: tasks popped from the scheduler but not finished,
    /// in execution order (index 0 runs first). Includes the running task.
    pub(crate) buffers: &'a [Vec<TaskId>],
    /// Simulated time at which the shared bus finishes its current queue.
    pub(crate) bus_free_at: Nanos,
    /// Simulated time at which each GPU finishes its queued work.
    pub(crate) gpu_free_at: &'a [Nanos],
}

impl<'a> RuntimeView<'a> {
    /// The task set being executed.
    pub fn task_set(&self) -> &'a TaskSet {
        self.ts
    }

    /// The platform description.
    pub fn spec(&self) -> &'a PlatformSpec {
        self.spec
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// True if `d` is usable by a task on `gpu` right now.
    pub fn is_resident(&self, gpu: GpuId, d: DataId) -> bool {
        self.memories[gpu.index()].is_resident(d)
    }

    /// True if `d` is resident on `gpu` or already being transferred there
    /// (the `InMem(k)` set of DMDA's Eq. (1) at runtime).
    pub fn is_resident_or_loading(&self, gpu: GpuId, d: DataId) -> bool {
        self.memories[gpu.index()].is_resident_or_loading(d)
    }

    /// True if `d` may not be evicted from `gpu` (pinned or in flight).
    pub fn is_pinned(&self, gpu: GpuId, d: DataId) -> bool {
        self.memories[gpu.index()].is_pinned(d)
    }

    /// Iterate over the data currently resident on `gpu`.
    pub fn resident(&self, gpu: GpuId) -> impl Iterator<Item = DataId> + 'a {
        self.memories[gpu.index()].resident()
    }

    /// Bytes currently used (resident + in flight) on `gpu`.
    pub fn used_bytes(&self, gpu: GpuId) -> u64 {
        self.memories[gpu.index()].used_bytes()
    }

    /// Memory capacity of `gpu` in bytes.
    pub fn capacity(&self, gpu: GpuId) -> u64 {
        self.memories[gpu.index()].capacity()
    }

    /// The worker pipeline of `gpu` (`taskBuffer_k`): popped but
    /// unfinished tasks in execution order.
    pub fn task_buffer(&self, gpu: GpuId) -> &'a [TaskId] {
        &self.buffers[gpu.index()]
    }

    /// Bytes of `task`'s inputs that are neither resident on `gpu` nor in
    /// flight to it — what the Ready heuristic minimizes.
    pub fn missing_bytes(&self, gpu: GpuId, task: TaskId) -> u64 {
        self.ts
            .input_ids(task)
            .filter(|&d| !self.is_resident_or_loading(gpu, d))
            .map(|d| self.ts.data_size(d))
            .sum()
    }

    /// Number of `task`'s inputs that are neither resident nor in flight.
    pub fn missing_inputs(&self, gpu: GpuId, task: TaskId) -> usize {
        self.ts
            .input_ids(task)
            .filter(|&d| !self.is_resident_or_loading(gpu, d))
            .count()
    }

    /// Simulated time at which the shared bus drains its current queue.
    pub fn bus_free_at(&self) -> Nanos {
        self.bus_free_at
    }

    /// Simulated time at which `gpu` finishes its queued work.
    pub fn gpu_free_at(&self, gpu: GpuId) -> Nanos {
        self.gpu_free_at[gpu.index()]
    }
}

/// A scheduling policy driven by the runtime engine.
///
/// All methods take `&mut self`; the engine serializes calls (the
/// simulation is single-threaded and deterministic).
pub trait Scheduler {
    /// Human-readable name used in reports ("DARTS+LUF", "DMDAR", …).
    fn name(&self) -> String;

    /// Static phase run once before the clock starts: partitioning
    /// (hMETIS+R), packing (HFP), or the DMDA allocation loop. The wall
    /// time spent here is measured by the engine and optionally charged
    /// to the makespan.
    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let _ = (ts, spec);
    }

    /// A worker on `gpu` has pipeline room and requests a task. Return
    /// `None` if no task should run on this GPU right now (the engine
    /// retries after the next state change).
    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId>;

    /// The engine must evict data from `gpu` to make room. Return a
    /// victim (must be resident and unpinned — the engine validates and
    /// falls back to LRU on `None` or invalid choices). This is how
    /// DARTS installs its LUF policy; the default defers to LRU.
    fn choose_victim(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<DataId> {
        let _ = (gpu, view);
        None
    }

    /// `task` finished on `gpu`.
    fn on_task_complete(&mut self, gpu: GpuId, task: TaskId, view: &RuntimeView<'_>) {
        let _ = (gpu, task, view);
    }

    /// A transfer of `data` to `gpu` completed.
    fn on_data_loaded(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let _ = (gpu, data, view);
    }

    /// `data` was evicted from `gpu`.
    fn on_data_evicted(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let _ = (gpu, data, view);
    }
}
