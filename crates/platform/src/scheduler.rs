//! The scheduler interface: the contract between the runtime engine and
//! the scheduling policies of `memsched-schedulers`.
//!
//! Mirrors the structure of a StarPU scheduling policy: a static
//! preparation phase ([`Scheduler::prepare`]), a pull-mode task source
//! ([`Scheduler::pop_task`], called whenever a worker has pipeline room),
//! an eviction hook ([`Scheduler::choose_victim`], how DARTS installs LUF)
//! and event notifications ([`Scheduler::on_load_issued`],
//! [`Scheduler::on_data_loaded`], [`Scheduler::on_data_evicted`],
//! [`Scheduler::on_task_complete`]) so policies can maintain incremental
//! state instead of re-scanning the runtime view on every decision.

use crate::memory::GpuMemory;
use crate::pipeline::Pipelines;
use crate::spec::{Nanos, PlatformSpec};
use memsched_model::{DataId, GpuId, TaskId, TaskSet};

/// Engine-maintained cache of the *missing inputs* of every task on every
/// GPU: how many of a task's inputs are absent (neither resident nor in
/// flight), how many bytes they amount to, and the sum of their ids (which
/// recovers the identity of the sole missing input when only one is left).
///
/// Invalidated incrementally on every residency transition — a load issue
/// decrements the counters of the data's consumers, an eviction increments
/// them — so [`RuntimeView::missing_bytes`] is O(1) instead of re-walking
/// the task's input list. The cost is O(consumers(d)) per residency event,
/// amortized over the decisions that would otherwise each rescan.
///
/// Stored struct-of-arrays: one flat stride-`m` array per counter, indexed
/// `gpu * m + task`, so a million-task cache is three allocations total
/// and the per-consumer update loop walks contiguous memory.
#[derive(Clone, Debug)]
pub(crate) struct MissingCache {
    /// Row stride: number of tasks (one row per GPU).
    m: usize,
    /// Per (GPU, task): number of inputs absent on that GPU.
    cnt: Vec<u32>,
    /// Per (GPU, task): bytes of absent inputs.
    bytes: Vec<u64>,
    /// Per (GPU, task): sum of absent input ids (`u64` so sums of many
    /// `u32` ids cannot overflow).
    id_sum: Vec<u64>,
}

impl MissingCache {
    /// Initial state: everything absent everywhere.
    pub(crate) fn new(ts: &TaskSet, num_gpus: usize) -> Self {
        let m = ts.num_tasks();
        let (offsets, ids) = ts.input_slab();
        let mut cnt = Vec::with_capacity(m * num_gpus);
        let mut bytes = Vec::with_capacity(m * num_gpus);
        let mut id_sum = Vec::with_capacity(m * num_gpus);
        for t in 0..m {
            let row = &ids[offsets[t] as usize..offsets[t + 1] as usize];
            cnt.push(row.len() as u32);
            bytes.push(ts.task_footprint(TaskId(t as u32)));
            id_sum.push(row.iter().map(|&d| d as u64).sum());
        }
        for _ in 1..num_gpus {
            cnt.extend_from_within(0..m);
            bytes.extend_from_within(0..m);
            id_sum.extend_from_within(0..m);
        }
        Self {
            m,
            cnt,
            bytes,
            id_sum,
        }
    }

    #[inline]
    pub(crate) fn cnt(&self, gpu: usize, task: usize) -> u32 {
        self.cnt[gpu * self.m + task]
    }

    #[inline]
    pub(crate) fn bytes(&self, gpu: usize, task: usize) -> u64 {
        self.bytes[gpu * self.m + task]
    }

    #[inline]
    pub(crate) fn id_sum(&self, gpu: usize, task: usize) -> u64 {
        self.id_sum[gpu * self.m + task]
    }

    /// A transfer of `d` to `gpu` was issued (Absent → Loading).
    pub(crate) fn load_issued(&mut self, ts: &TaskSet, gpu: usize, d: DataId) {
        let size = ts.data_size(d);
        let base = gpu * self.m;
        for &t in ts.consumers(d) {
            let i = base + t as usize;
            debug_assert!(self.cnt[i] > 0);
            self.cnt[i] -= 1;
            self.bytes[i] -= size;
            self.id_sum[i] -= d.0 as u64;
        }
    }

    /// `d` was evicted from `gpu` (Resident → Absent).
    pub(crate) fn evicted(&mut self, ts: &TaskSet, gpu: usize, d: DataId) {
        let size = ts.data_size(d);
        let base = gpu * self.m;
        for &t in ts.consumers(d) {
            let i = base + t as usize;
            self.cnt[i] += 1;
            self.bytes[i] += size;
            self.id_sum[i] += d.0 as u64;
        }
    }
}

/// Read-only view of the runtime state, handed to scheduler callbacks.
///
/// Everything a dynamic policy may legitimately observe: data residency
/// per GPU, the worker pipelines (`taskBuffer_k`), clock and busy-ness
/// estimates. Schedulers must not assume anything else about the engine.
pub struct RuntimeView<'a> {
    pub(crate) ts: &'a TaskSet,
    pub(crate) spec: &'a PlatformSpec,
    pub(crate) now: Nanos,
    pub(crate) memories: &'a [GpuMemory],
    /// Per-GPU pipelines: tasks popped from the scheduler but not
    /// finished, in execution order (index 0 runs first). Includes the
    /// running task. One flat ring arena for all GPUs.
    pub(crate) buffers: &'a Pipelines,
    /// Incrementally-maintained missing-input counters per (GPU, task).
    pub(crate) missing: &'a MissingCache,
    /// Simulated time at which each PCI bus finishes its current queue,
    /// indexed by [`PlatformSpec::bus_of`] (one slot on single-bus
    /// platforms).
    pub(crate) buses: &'a [Nanos],
    /// Simulated time at which each GPU finishes its queued work.
    pub(crate) gpu_free_at: &'a [Nanos],
    /// Per-GPU fail-stop flag: `true` once the GPU died. All-`false` in a
    /// fault-free run.
    pub(crate) dead: &'a [bool],
}

impl<'a> RuntimeView<'a> {
    /// The task set being executed.
    pub fn task_set(&self) -> &'a TaskSet {
        self.ts
    }

    /// The platform description.
    pub fn spec(&self) -> &'a PlatformSpec {
        self.spec
    }

    /// Current simulated time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// True if `d` is usable by a task on `gpu` right now.
    pub fn is_resident(&self, gpu: GpuId, d: DataId) -> bool {
        self.memories[gpu.index()].is_resident(d)
    }

    /// True if `d` is resident on `gpu` or already being transferred there
    /// (the `InMem(k)` set of DMDA's Eq. (1) at runtime).
    pub fn is_resident_or_loading(&self, gpu: GpuId, d: DataId) -> bool {
        self.memories[gpu.index()].is_resident_or_loading(d)
    }

    /// True if `d` may not be evicted from `gpu` (pinned or in flight).
    pub fn is_pinned(&self, gpu: GpuId, d: DataId) -> bool {
        self.memories[gpu.index()].is_pinned(d)
    }

    /// Iterate over the data currently resident on `gpu`, in ascending id
    /// order (schedulers scanning this break score ties towards the
    /// smallest id, so the order is part of the determinism contract).
    pub fn resident(&self, gpu: GpuId) -> impl Iterator<Item = DataId> + 'a {
        self.memories[gpu.index()].resident()
    }

    /// Bytes currently used (resident + in flight) on `gpu`.
    pub fn used_bytes(&self, gpu: GpuId) -> u64 {
        self.memories[gpu.index()].used_bytes()
    }

    /// Memory capacity of `gpu` in bytes.
    pub fn capacity(&self, gpu: GpuId) -> u64 {
        self.memories[gpu.index()].capacity()
    }

    /// The worker pipeline of `gpu` (`taskBuffer_k`): popped but
    /// unfinished tasks in execution order. An iterator because the
    /// engine's pipeline is a ring buffer and need not be contiguous.
    pub fn task_buffer(&self, gpu: GpuId) -> impl ExactSizeIterator<Item = TaskId> + Clone + 'a {
        self.buffers.iter(gpu.index())
    }

    /// Bytes of `task`'s inputs that are neither resident on `gpu` nor in
    /// flight to it — what the Ready heuristic minimizes. O(1): served
    /// from the engine's incrementally-maintained [`MissingCache`].
    pub fn missing_bytes(&self, gpu: GpuId, task: TaskId) -> u64 {
        self.missing.bytes(gpu.index(), task.index())
    }

    /// Number of `task`'s inputs that are neither resident nor in flight.
    /// O(1): served from the engine's [`MissingCache`].
    pub fn missing_inputs(&self, gpu: GpuId, task: TaskId) -> usize {
        self.missing.cnt(gpu.index(), task.index()) as usize
    }

    /// When exactly one input of `task` is missing on `gpu`, its id.
    /// O(1): recovered from the cached missing-id sum.
    pub fn sole_missing_input(&self, gpu: GpuId, task: TaskId) -> Option<DataId> {
        let (g, i) = (gpu.index(), task.index());
        (self.missing.cnt(g, i) == 1).then(|| DataId(self.missing.id_sum(g, i) as u32))
    }

    /// When exactly two inputs of `task` are missing on `gpu` and `d` is
    /// known to be one of them, the other one. O(1): recovered from the
    /// cached missing-id sum. Used by event-driven policies to re-aim a
    /// "one more load frees this task" contribution when `d` is evicted.
    pub fn missing_pair_partner(&self, gpu: GpuId, task: TaskId, d: DataId) -> Option<DataId> {
        let (g, i) = (gpu.index(), task.index());
        (self.missing.cnt(g, i) == 2).then(|| DataId((self.missing.id_sum(g, i) - d.0 as u64) as u32))
    }

    /// Reference implementation of [`missing_bytes`](Self::missing_bytes):
    /// re-walks the task's input list. Kept for the naive differential
    /// configurations and cache-consistency tests.
    pub fn missing_bytes_scan(&self, gpu: GpuId, task: TaskId) -> u64 {
        self.ts
            .input_ids(task)
            .filter(|&d| !self.is_resident_or_loading(gpu, d))
            .map(|d| self.ts.data_size(d))
            .sum()
    }

    /// Reference implementation of
    /// [`missing_inputs`](Self::missing_inputs) by input-list scan.
    pub fn missing_inputs_scan(&self, gpu: GpuId, task: TaskId) -> usize {
        self.ts
            .input_ids(task)
            .filter(|&d| !self.is_resident_or_loading(gpu, d))
            .count()
    }

    /// Simulated time at which the shared bus drains its current queue.
    /// On a multi-bus platform this reads bus 0; use
    /// [`bus_free_at_of`](Self::bus_free_at_of) for the bus serving a
    /// specific GPU.
    pub fn bus_free_at(&self) -> Nanos {
        self.buses[0]
    }

    /// Simulated time at which the PCI bus serving `gpu` drains its
    /// queue. Equals [`bus_free_at`](Self::bus_free_at) on single-bus
    /// platforms.
    pub fn bus_free_at_of(&self, gpu: GpuId) -> Nanos {
        self.buses[self.spec.bus_of(gpu.index())]
    }

    /// Index of the PCI bus serving `gpu` (always 0 on single-bus
    /// platforms).
    pub fn bus_of(&self, gpu: GpuId) -> usize {
        self.spec.bus_of(gpu.index())
    }

    /// Simulated time at which `gpu` finishes its queued work.
    pub fn gpu_free_at(&self, gpu: GpuId) -> Nanos {
        self.gpu_free_at[gpu.index()]
    }

    /// False once `gpu` suffered a fail-stop fault (see
    /// [`crate::FaultPlan`]). Always true in a fault-free run. Recovery
    /// logic re-routing orphaned tasks must only target alive GPUs.
    pub fn is_alive(&self, gpu: GpuId) -> bool {
        !self.dead[gpu.index()]
    }
}

/// A scheduling policy driven by the runtime engine.
///
/// All methods take `&mut self`; the engine serializes calls (the
/// simulation is single-threaded and deterministic).
pub trait Scheduler {
    /// Human-readable name used in reports ("DARTS+LUF", "DMDAR", …).
    fn name(&self) -> String;

    /// Static phase run once before the clock starts: partitioning
    /// (hMETIS+R), packing (HFP), or the DMDA allocation loop. The wall
    /// time spent here is measured by the engine and optionally charged
    /// to the makespan.
    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let _ = (ts, spec);
    }

    /// Static phase of an **online** run: called instead of
    /// [`prepare`](Self::prepare) when the engine serves a task stream.
    /// The scheduler must start with an *empty* visible horizon — every
    /// task (including those arriving at t = 0) is delivered through
    /// [`on_task_arrival`](Self::on_task_arrival), in admission order.
    ///
    /// The default delegates to `prepare`, which makes the whole set
    /// visible up front: correct only for policies that tolerate popping
    /// unarrived tasks never happening (the engine asserts released-only
    /// pops in debug builds). All built-in families override this.
    fn prepare_stream(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        self.prepare(ts, spec);
    }

    /// `task` was admitted into the visible horizon of an online run
    /// (either at t = 0 before the clock starts, or mid-stream when its
    /// arrival event fires and the admission check passes). The scheduler
    /// must make the task poppable; tasks never delivered here must never
    /// be returned from [`pop_task`](Self::pop_task) in an online run.
    fn on_task_arrival(&mut self, task: TaskId, view: &RuntimeView<'_>) {
        let _ = (task, view);
    }

    /// A worker on `gpu` has pipeline room and requests a task. Return
    /// `None` if no task should run on this GPU right now (the engine
    /// retries after the next state change).
    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId>;

    /// The engine must evict data from `gpu` to make room. Return a
    /// victim (must be resident and unpinned — the engine validates and
    /// falls back to LRU on `None` or invalid choices). This is how
    /// DARTS installs its LUF policy; the default defers to LRU.
    fn choose_victim(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<DataId> {
        let _ = (gpu, view);
        None
    }

    /// `task` finished on `gpu`.
    fn on_task_complete(&mut self, gpu: GpuId, task: TaskId, view: &RuntimeView<'_>) {
        let _ = (gpu, task, view);
    }

    /// A transfer of `data` to `gpu` was **issued** (the data is now
    /// `Loading`: reserved in memory and counted by
    /// [`RuntimeView::is_resident_or_loading`]). Fired before the
    /// matching [`on_data_loaded`](Self::on_data_loaded). Policies that
    /// maintain per-data "free task" state incrementally (DARTS) update
    /// it here, since their decision rules already treat in-flight data
    /// as available.
    fn on_load_issued(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let _ = (gpu, data, view);
    }

    /// A transfer of `data` to `gpu` completed.
    fn on_data_loaded(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let _ = (gpu, data, view);
    }

    /// `data` was evicted from `gpu`.
    fn on_data_evicted(&mut self, gpu: GpuId, data: DataId, view: &RuntimeView<'_>) {
        let _ = (gpu, data, view);
    }

    /// `gpu` suffered a fail-stop fault. `lost` is its pipeline at the
    /// time of death in execution order (the interrupted running task
    /// first); these tasks never completed and must be made poppable
    /// again, or they are lost and the run ends in
    /// [`crate::RunError::SchedulerStuck`]. `view` already reports the
    /// GPU as dead ([`RuntimeView::is_alive`] is false) and its pipeline
    /// as empty. The engine never calls `pop_task` for a dead GPU again.
    fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
        let _ = (gpu, lost, view);
    }

    /// A transfer of `data` to `gpu` failed transiently and was re-queued
    /// (attempt number `attempt` is about to run). Informational: the
    /// engine owns the retry; the data stays `Loading` throughout.
    fn on_transfer_retry(&mut self, gpu: GpuId, data: DataId, attempt: u32, view: &RuntimeView<'_>) {
        let _ = (gpu, data, attempt, view);
    }

    /// `gpu`'s memory capacity changed to `capacity` bytes (fault-induced
    /// shrink). Evictions forced by the shrink have already fired their
    /// own [`on_data_evicted`](Self::on_data_evicted) notifications.
    fn on_capacity_changed(&mut self, gpu: GpuId, capacity: u64, view: &RuntimeView<'_>) {
        let _ = (gpu, capacity, view);
    }

    /// Whether this policy's dispatch decomposes per PCI-bus group in
    /// **batch** mode: after [`prepare`](Self::prepare), every
    /// [`pop_task`](Self::pop_task) answer for a GPU must depend only on
    /// prepare-time state and on events of GPUs sharing that GPU's bus
    /// group. Decomposable policies are eligible for the sharded
    /// simulation tier (one independent sub-simulation per bus group);
    /// globally-coupled ones — a shared central queue, cross-group
    /// stealing or work counters — must keep the default `false` and run
    /// on the serial core.
    fn decomposes_per_group(&self) -> bool {
        false
    }

    /// For a decomposable policy (see
    /// [`decomposes_per_group`](Self::decomposes_per_group)), after a
    /// batch [`prepare`](Self::prepare): how many tasks this policy will
    /// dispatch to each bus group. `groups` maps GPU index → group id
    /// (`0..num_groups`). Group shares must be prepare-static — fault
    /// redispatch may move tasks between GPUs of a group but never
    /// across groups. The sharded tier needs the counts to stop each
    /// shard at exactly the event where the serial core would stop it;
    /// `None` (the default) keeps the run on the serial core.
    fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Option<Vec<usize>> {
        let _ = (groups, num_groups);
        None
    }

    /// An observability probe was attached for this run
    /// ([`crate::run_observed`]). Schedulers that emit their own events
    /// (queue-depth gauges, steal records) keep the clone; the default
    /// ignores it, so policies without internal state to expose need no
    /// changes. Never called on the unobserved path, which therefore
    /// stays byte-identical.
    fn attach_probe(&mut self, probe: memsched_obs::Probe) {
        let _ = probe;
    }
}
