//! Trace capture modes and the streaming trace checksum.
//!
//! A million-task run emits a few million [`TraceEvent`]s; materializing
//! them costs hundreds of megabytes. [`TraceMode::Checksum`] streams every
//! event into a rolling 64-bit FNV-1a hash instead, so determinism stays
//! checkable (`RunReport::trace_checksum` pins same-seed runs byte-for-byte)
//! at O(1) memory. [`trace_checksum`] computes the identical value from a
//! fully materialized trace, which is how the tests cross-check the two
//! modes against each other.

use crate::report::TraceEvent;

/// How a run records its [`TraceEvent`] stream (`RunConfig::trace`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing (fastest; the default).
    #[default]
    Off,
    /// Materialize the full `Vec<TraceEvent>` returned by
    /// `run_with_config` — what tests and golden snapshots use.
    Full,
    /// Stream every event into a rolling FNV-1a checksum: the run returns
    /// no events, but `RunReport::trace_checksum` is set. The checksum
    /// equals [`trace_checksum`] over the `Full` trace of the same run.
    Checksum,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seed of the rolling checksum (the FNV-1a offset basis).
pub(crate) const CHECKSUM_SEED: u64 = FNV_OFFSET;

#[inline]
fn word(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold one event into the rolling checksum: a discriminant tag plus the
/// canonical little-endian encoding of every field, floats via `to_bits`,
/// so the fold is bit-exact and platform-independent.
pub(crate) fn fold_event(h: u64, ev: &TraceEvent) -> u64 {
    match *ev {
        TraceEvent::LoadIssued {
            at,
            gpu,
            data,
            done_at,
        } => word(word(word(word(word(h, 0), at), gpu as u64), data as u64), done_at),
        TraceEvent::LoadDone { at, gpu, data } => {
            word(word(word(word(h, 1), at), gpu as u64), data as u64)
        }
        TraceEvent::Evicted { at, gpu, data } => {
            word(word(word(word(h, 2), at), gpu as u64), data as u64)
        }
        TraceEvent::TaskStarted { at, gpu, task } => {
            word(word(word(word(h, 3), at), gpu as u64), task as u64)
        }
        TraceEvent::TaskFinished { at, gpu, task } => {
            word(word(word(word(h, 4), at), gpu as u64), task as u64)
        }
        TraceEvent::GpuFailed { at, gpu } => word(word(word(h, 5), at), gpu as u64),
        TraceEvent::TransferRetry {
            at,
            gpu,
            data,
            attempt,
        } => word(
            word(word(word(word(h, 6), at), gpu as u64), data as u64),
            attempt as u64,
        ),
        TraceEvent::CapacityShrunk { at, gpu, capacity } => {
            word(word(word(word(h, 7), at), gpu as u64), capacity)
        }
        TraceEvent::GpuSlowed { at, gpu, factor } => {
            word(word(word(word(h, 8), at), gpu as u64), factor.to_bits())
        }
        TraceEvent::TaskArrived { at, task } => word(word(word(h, 9), at), task as u64),
        TraceEvent::TaskAdmitted { at, task } => word(word(word(h, 10), at), task as u64),
        TraceEvent::TaskDeferred { at, task } => word(word(word(h, 11), at), task as u64),
        TraceEvent::TaskShed { at, task } => word(word(word(h, 12), at), task as u64),
        TraceEvent::DeadlineExpired { at, task } => word(word(word(h, 13), at), task as u64),
    }
}

/// Checksum of a materialized trace; equals the rolling checksum a
/// [`TraceMode::Checksum`] run of the same execution reports.
pub fn trace_checksum(trace: &[TraceEvent]) -> u64 {
    trace.iter().fold(CHECKSUM_SEED, fold_event)
}

/// Where the engine streams trace events during a run.
pub(crate) enum TraceSink {
    Off,
    Full(Vec<TraceEvent>),
    Checksum(u64),
}

impl TraceSink {
    pub(crate) fn new(mode: TraceMode, expected_events: usize) -> Self {
        match mode {
            TraceMode::Off => Self::Off,
            TraceMode::Full => Self::Full(Vec::with_capacity(expected_events)),
            TraceMode::Checksum => Self::Checksum(CHECKSUM_SEED),
        }
    }

    /// Whether `push` does anything — call sites guard on this so `Off`
    /// runs never even construct the event.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        !matches!(self, Self::Off)
    }

    #[inline]
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        match self {
            Self::Off => {}
            Self::Full(v) => v.push(ev),
            Self::Checksum(h) => *h = fold_event(*h, &ev),
        }
    }

    /// `(materialized trace, rolling checksum)` — at most one is non-empty.
    pub(crate) fn finish(self) -> (Vec<TraceEvent>, Option<u64>) {
        match self {
            Self::Off => (Vec::new(), None),
            Self::Full(v) => (v, None),
            Self::Checksum(h) => (Vec::new(), Some(h)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_sink_equals_materialized_checksum() {
        let evs = vec![
            TraceEvent::LoadIssued {
                at: 1,
                gpu: 0,
                data: 3,
                done_at: 10,
            },
            TraceEvent::TaskStarted {
                at: 10,
                gpu: 0,
                task: 7,
            },
            TraceEvent::GpuSlowed {
                at: 12,
                gpu: 1,
                factor: 0.5,
            },
        ];
        let mut sink = TraceSink::new(TraceMode::Checksum, 0);
        for ev in &evs {
            sink.push(*ev);
        }
        let (trace, sum) = sink.finish();
        assert!(trace.is_empty());
        assert_eq!(sum, Some(trace_checksum(&evs)));
    }

    #[test]
    fn distinct_variants_hash_differently() {
        // Same field values, different discriminants.
        let a = trace_checksum(&[TraceEvent::TaskArrived { at: 5, task: 1 }]);
        let b = trace_checksum(&[TraceEvent::TaskAdmitted { at: 5, task: 1 }]);
        let c = trace_checksum(&[TraceEvent::TaskDeferred { at: 5, task: 1 }]);
        let d = trace_checksum(&[TraceEvent::TaskShed { at: 5, task: 1 }]);
        let e = trace_checksum(&[TraceEvent::DeadlineExpired { at: 5, task: 1 }]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(c, d);
        assert_ne!(d, e);
        assert_eq!(trace_checksum(&[]), super::CHECKSUM_SEED);
    }
}
