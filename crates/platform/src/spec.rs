//! Platform description: the topology of Figure 2 — host memory connected
//! to `K` GPU memories through one shared PCI-Express bus.

use serde::{Deserialize, Serialize};

/// Nanosecond simulation timestamps.
pub type Nanos = u64;

/// Description of the simulated machine.
///
/// The defaults mirror the paper's experimental platform: Tesla V100 GPUs
/// (13 253 GFlop/s of SGEMM throughput each — the "GFlop/s max" roofline of
/// Figure 3), a shared PCIe 3.0 ×16 bus at ~12 GB/s, and a GPU memory
/// clamped to 500 MB "to better distinguish the performance of different
/// strategies even on small datasets" (§V-A).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of GPUs `K`.
    pub num_gpus: usize,
    /// Usable memory per GPU, in bytes.
    pub memory_bytes: u64,
    /// Shared host↔GPU bus bandwidth in bytes per second.
    pub bus_bandwidth: f64,
    /// Fixed per-transfer latency in nanoseconds (DMA setup, driver call).
    pub transfer_latency: Nanos,
    /// Sustained compute throughput per GPU in GFlop/s.
    pub gpu_gflops: f64,
    /// How many tasks a worker holds in its execution pipeline
    /// (`taskBuffer_k` in the paper): inputs of queued tasks are prefetched
    /// so transfers overlap the current execution.
    pub pipeline_depth: usize,
    /// Optional per-GPU throughput overrides in GFlop/s (heterogeneous
    /// platform, the §III extension; DMDA was designed for exactly this).
    /// `None` = all GPUs run at `gpu_gflops`. When set, the length must
    /// equal `num_gpus`.
    pub gpu_gflops_override: Option<Vec<f64>>,
    /// Optional GPU↔GPU interconnect bandwidth in bytes per second
    /// (NVLink). When set, a fetch whose data is already resident on a
    /// peer GPU uses this dedicated fabric instead of the shared PCI bus —
    /// the extension the paper lists as future work (§VI). `None` models
    /// the paper's PCI-only platform.
    pub nvlink_bandwidth: Option<f64>,
    /// Optional PCI bus topology: `bus_groups[g]` is the bus index GPU `g`
    /// hangs off, so GPUs sharing an index contend for one bus while GPUs
    /// on different buses transfer concurrently (real nodes are
    /// hierarchical — a DGX hangs 4 GPUs off each of 2 PCIe switches).
    /// Bus indices must be contiguous starting at 0. `None` = every GPU
    /// shares one bus, byte-identical to the pre-topology platform.
    pub bus_groups: Option<Vec<usize>>,
}

/// 500 MB — the paper's clamped GPU memory.
pub const PAPER_MEMORY_BYTES: u64 = 500_000_000;

/// 32 GB — the "without memory limitation" setting of Figure 13.
pub const UNLIMITED_MEMORY_BYTES: u64 = 32_000_000_000;

/// The V100 SGEMM roofline reported in the paper (Figure 3).
pub const V100_GFLOPS: f64 = 13_253.0;

/// Effective PCIe 3.0 ×16 bandwidth.
pub const PCIE_BANDWIDTH: f64 = 12.0e9;

/// Effective NVLink 2.0 bandwidth between V100 pairs.
pub const NVLINK_BANDWIDTH: f64 = 50.0e9;

impl PlatformSpec {
    /// The paper's platform: `k` Tesla V100s with 500 MB of usable memory
    /// each, sharing a 12 GB/s PCIe bus.
    pub fn v100(k: usize) -> Self {
        assert!(k > 0, "need at least one GPU");
        Self {
            num_gpus: k,
            memory_bytes: PAPER_MEMORY_BYTES,
            bus_bandwidth: PCIE_BANDWIDTH,
            transfer_latency: 10_000, // 10 µs
            gpu_gflops: V100_GFLOPS,
            pipeline_depth: 4,
            gpu_gflops_override: None,
            nvlink_bandwidth: None,
            bus_groups: None,
        }
    }

    /// Figure 13's variant: V100s with the full 32 GB of memory.
    pub fn v100_unlimited(k: usize) -> Self {
        Self {
            memory_bytes: UNLIMITED_MEMORY_BYTES,
            ..Self::v100(k)
        }
    }

    /// The §VI future-work platform: V100s joined by an NVLink fabric
    /// (~50 GB/s effective), so data can move between GPUs without
    /// crossing the PCI bus.
    pub fn v100_nvlink(k: usize) -> Self {
        Self {
            nvlink_bandwidth: Some(NVLINK_BANDWIDTH),
            ..Self::v100(k)
        }
    }

    /// A multi-bus node: `k` V100s spread across `buses` PCI buses
    /// round-robin by contiguous blocks (GPUs `0..k/buses` on bus 0, the
    /// next block on bus 1, …), the DGX-style hierarchy of ROADMAP item 3.
    pub fn v100_multibus(k: usize, buses: usize) -> Self {
        assert!(buses > 0, "need at least one bus");
        assert!(buses <= k, "more buses than GPUs");
        // Balanced block partition: bus b owns GPUs [b*k/buses, (b+1)*k/buses).
        Self::v100(k).with_bus_groups((0..k).map(|g| g * buses / k).collect())
    }

    /// Bus-topology builder: `groups[g]` is the PCI bus of GPU `g`. Bus
    /// indices must be contiguous from 0 (every bus below the max index
    /// must own at least one GPU).
    pub fn with_bus_groups(mut self, groups: Vec<usize>) -> Self {
        assert_eq!(groups.len(), self.num_gpus, "one bus index per GPU required");
        let buses = groups.iter().max().map_or(0, |&m| m + 1);
        for b in 0..buses {
            assert!(
                groups.contains(&b),
                "bus indices must be contiguous from 0 (bus {b} owns no GPU)"
            );
        }
        self.bus_groups = Some(groups);
        self
    }

    /// The PCI bus GPU `g` hangs off (0 when the node has one shared bus).
    #[inline]
    pub fn bus_of(&self, gpu: usize) -> usize {
        match &self.bus_groups {
            Some(groups) => groups[gpu],
            None => 0,
        }
    }

    /// Number of distinct PCI buses (1 when `bus_groups` is unset).
    pub fn num_buses(&self) -> usize {
        match &self.bus_groups {
            Some(groups) => groups.iter().max().map_or(1, |&m| m + 1),
            None => 1,
        }
    }

    /// Override the per-GPU memory (builder style).
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Heterogeneous builder: give each GPU its own throughput.
    pub fn with_heterogeneous_gflops(mut self, gflops: Vec<f64>) -> Self {
        assert_eq!(
            gflops.len(),
            self.num_gpus,
            "one throughput per GPU required"
        );
        assert!(gflops.iter().all(|&g| g > 0.0), "throughputs must be positive");
        self.gpu_gflops_override = Some(gflops);
        self
    }

    /// Throughput of one specific GPU in GFlop/s.
    pub fn gflops_of(&self, gpu: usize) -> f64 {
        match &self.gpu_gflops_override {
            Some(v) => v[gpu],
            None => self.gpu_gflops,
        }
    }

    /// Aggregate platform throughput (the roofline of the figures).
    pub fn total_gflops(&self) -> f64 {
        match &self.gpu_gflops_override {
            Some(v) => v.iter().sum(),
            None => self.num_gpus as f64 * self.gpu_gflops,
        }
    }

    /// Time to execute `flops` on a specific GPU.
    pub fn compute_time_on(&self, gpu: usize, flops: f64) -> Nanos {
        (flops / self.gflops_of(gpu)).max(0.0) as Nanos
    }

    /// Override the pipeline depth (builder style).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = depth;
        self
    }

    /// Time for one host→GPU transfer of `bytes` (latency + serialization).
    pub fn transfer_time(&self, bytes: u64) -> Nanos {
        self.transfer_latency + (bytes as f64 / self.bus_bandwidth * 1e9) as Nanos
    }

    /// Predicted communication time used by DMDA's Eq. (1).
    pub fn comm_estimate(&self, bytes: u64) -> Nanos {
        self.transfer_time(bytes)
    }

    /// Time for one GPU→GPU transfer of `bytes` over the NVLink fabric.
    /// Panics if the platform has no NVLink.
    pub fn nvlink_time(&self, bytes: u64) -> Nanos {
        let bw = self
            .nvlink_bandwidth
            .expect("platform has no NVLink fabric");
        self.transfer_latency + (bytes as f64 / bw * 1e9) as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_is_flops_over_gflops() {
        let spec = PlatformSpec::v100(1);
        // 13 253 GFlop should take exactly one second = 1e9 ns.
        let ns = spec.compute_time_on(0, 13_253.0 * 1e9);
        assert!((ns as f64 - 1e9).abs() < 1e3, "ns = {ns}");
        // The per-GPU path honors heterogeneous overrides — the homogeneous
        // `compute_time` helper that silently ignored them is gone.
        let het = PlatformSpec::v100(1).with_heterogeneous_gflops(vec![13_253.0 / 2.0]);
        assert_eq!(het.compute_time_on(0, 13_253.0 * 1e9), 2 * ns);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let spec = PlatformSpec::v100(2);
        assert_eq!(spec.transfer_time(0), 10_000);
        // 12 GB at 12 GB/s = 1 s.
        let ns = spec.transfer_time(12_000_000_000);
        assert!((ns as f64 - 1.00001e9).abs() < 1e3, "ns = {ns}");
    }

    #[test]
    fn presets_match_paper() {
        let spec = PlatformSpec::v100(4);
        assert_eq!(spec.num_gpus, 4);
        assert_eq!(spec.memory_bytes, 500_000_000);
        let unlimited = PlatformSpec::v100_unlimited(4);
        assert_eq!(unlimited.memory_bytes, 32_000_000_000);
        assert_eq!(unlimited.gpu_gflops, spec.gpu_gflops);
    }

    #[test]
    fn nvlink_preset_and_timing() {
        let spec = PlatformSpec::v100_nvlink(2);
        assert_eq!(spec.nvlink_bandwidth, Some(50.0e9));
        // 50 GB at 50 GB/s = 1 s (+latency).
        let ns = spec.nvlink_time(50_000_000_000);
        assert!((ns as f64 - 1.00001e9).abs() < 1e3, "ns = {ns}");
        assert!(PlatformSpec::v100(2).nvlink_bandwidth.is_none());
    }

    #[test]
    #[should_panic(expected = "no NVLink")]
    fn nvlink_time_requires_fabric() {
        PlatformSpec::v100(1).nvlink_time(100);
    }

    #[test]
    fn heterogeneous_gflops_per_gpu() {
        let spec = PlatformSpec::v100(2).with_heterogeneous_gflops(vec![10_000.0, 5_000.0]);
        assert_eq!(spec.gflops_of(0), 10_000.0);
        assert_eq!(spec.gflops_of(1), 5_000.0);
        assert_eq!(spec.total_gflops(), 15_000.0);
        // Same flops take twice as long on the slow GPU.
        let flops = 1e12;
        assert_eq!(spec.compute_time_on(1, flops), 2 * spec.compute_time_on(0, flops));
        // Homogeneous default.
        let homo = PlatformSpec::v100(2);
        assert_eq!(homo.gflops_of(0), homo.gflops_of(1));
        assert_eq!(homo.total_gflops(), 2.0 * V100_GFLOPS);
    }

    #[test]
    #[should_panic(expected = "one throughput per GPU")]
    fn heterogeneous_wrong_arity_rejected() {
        PlatformSpec::v100(3).with_heterogeneous_gflops(vec![1.0]);
    }

    #[test]
    fn builders_override_fields() {
        let spec = PlatformSpec::v100(1).with_memory(1234).with_pipeline_depth(7);
        assert_eq!(spec.memory_bytes, 1234);
        assert_eq!(spec.pipeline_depth, 7);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_rejected() {
        PlatformSpec::v100(0);
    }

    #[test]
    fn multibus_preset_blocks_gpus_across_buses() {
        let spec = PlatformSpec::v100_multibus(8, 2);
        assert_eq!(spec.bus_groups, Some(vec![0, 0, 0, 0, 1, 1, 1, 1]));
        assert_eq!(spec.num_buses(), 2);
        assert_eq!(spec.bus_of(3), 0);
        assert_eq!(spec.bus_of(4), 1);
        // Uneven split: contiguous blocks, earlier buses take the remainder.
        let spec = PlatformSpec::v100_multibus(5, 2);
        assert_eq!(spec.bus_groups, Some(vec![0, 0, 0, 1, 1]));
        // Single shared bus stays the default.
        let flat = PlatformSpec::v100(4);
        assert_eq!(flat.bus_groups, None);
        assert_eq!(flat.num_buses(), 1);
        assert_eq!(flat.bus_of(3), 0);
        // One bus per GPU is the fully-disjoint extreme.
        let per_gpu = PlatformSpec::v100_multibus(3, 3);
        assert_eq!(per_gpu.bus_groups, Some(vec![0, 1, 2]));
        assert_eq!(per_gpu.num_buses(), 3);
    }

    #[test]
    #[should_panic(expected = "contiguous from 0")]
    fn bus_groups_must_be_contiguous() {
        PlatformSpec::v100(2).with_bus_groups(vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "one bus index per GPU")]
    fn bus_groups_wrong_arity_rejected() {
        PlatformSpec::v100(3).with_bus_groups(vec![0]);
    }

    #[test]
    #[should_panic(expected = "more buses than GPUs")]
    fn multibus_more_buses_than_gpus_rejected() {
        PlatformSpec::v100_multibus(2, 3);
    }
}
