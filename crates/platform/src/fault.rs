//! Deterministic fault injection: the [`FaultPlan`] describes what goes
//! wrong during a run, and when.
//!
//! Four fault kinds are modelled, all driven by the simulated clock so a
//! plan replays identically on every run:
//!
//! * **fail-stop GPU death** ([`GpuFailure`]) — at virtual time `at` the
//!   GPU stops executing; its pipelined tasks are handed back to the
//!   scheduler ([`crate::Scheduler::on_gpu_failed`]) for re-dispatch on
//!   the survivors;
//! * **transient transfer faults** ([`TransferFaultSpec`]) — each
//!   completing transfer fails with probability `fault_ppm / 1e6`,
//!   decided by a seeded hash of the completion serial; failed transfers
//!   retry over the PCI bus with exponential backoff up to
//!   `max_attempts`, then the run aborts with
//!   [`crate::RunError::TransferFailed`];
//! * **capacity shrink** ([`CapacityShrink`]) — mid-run loss of GPU
//!   memory (ECC page retirement): resident data is evicted until the
//!   new bound holds, creating eviction pressure;
//! * **straggler slowdown** ([`Straggler`]) — from time `at` the GPU's
//!   effective GFlop/s is multiplied by `factor` (< 1 slows it down),
//!   affecting tasks started after that point.
//!
//! An empty plan ([`FaultPlan::none`]) is the default and provably
//! zero-impact: the engine pushes no fault events, so event sequence
//! numbers, traces and reports are byte-identical to a build without the
//! subsystem (enforced by the golden-trace tests).

use crate::spec::Nanos;

/// Fail-stop death of one GPU at a chosen virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuFailure {
    /// Index of the GPU that dies.
    pub gpu: usize,
    /// Simulated time of death in nanoseconds.
    pub at: Nanos,
}

/// Mid-run reduction of one GPU's memory capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityShrink {
    /// Index of the affected GPU.
    pub gpu: usize,
    /// Simulated time the shrink takes effect.
    pub at: Nanos,
    /// New capacity in bytes. If pinned or in-flight data prevents the
    /// engine from evicting down to this bound immediately, the capacity
    /// tightens as pins release (each step emits
    /// [`crate::TraceEvent::CapacityShrunk`]).
    pub new_capacity: u64,
}

/// Per-GPU slowdown from a chosen virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// Index of the affected GPU.
    pub gpu: usize,
    /// Simulated time the slowdown starts.
    pub at: Nanos,
    /// Multiplier applied to the GPU's GFlop/s (0 < factor; < 1 slows it
    /// down). Affects tasks started after `at`.
    pub factor: f64,
}

/// Seeded transient transfer faults with bounded retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferFaultSpec {
    /// Seed of the fault stream; the same seed reproduces the same faults.
    pub seed: u64,
    /// Fault probability per completing transfer, in parts per million
    /// (1_000_000 = every transfer fails).
    pub fault_ppm: u32,
    /// Transfer attempts before the run aborts with
    /// [`crate::RunError::TransferFailed`]. Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub backoff_base: Nanos,
}

impl Default for TransferFaultSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            fault_ppm: 0,
            max_attempts: 4,
            backoff_base: 1_000,
        }
    }
}

impl TransferFaultSpec {
    /// Deterministic fault decision for the `serial`-th completion check.
    pub(crate) fn faulty(&self, serial: u64) -> bool {
        if self.fault_ppm == 0 {
            return false;
        }
        splitmix64(self.seed ^ serial.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 1_000_000
            < self.fault_ppm as u64
    }

    /// Exponential backoff before retry number `attempt + 1` (the shift is
    /// clamped so large attempt counts cannot overflow).
    pub(crate) fn backoff(&self, attempt: u32) -> Nanos {
        self.backoff_base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
    }
}

/// SplitMix64 finalizer: a well-distributed 64-bit mix, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Everything that goes wrong during one run. Part of
/// [`crate::RunConfig`]; the default is the empty plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Fail-stop GPU deaths.
    pub gpu_failures: Vec<GpuFailure>,
    /// Transient transfer faults (None disables the fault stream).
    pub transfer_faults: Option<TransferFaultSpec>,
    /// Mid-run capacity shrinks.
    pub capacity_shrinks: Vec<CapacityShrink>,
    /// Straggler slowdowns.
    pub stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// The empty plan: nothing is injected and the engine behaves
    /// byte-identically to a fault-free build.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.gpu_failures.is_empty()
            && self.transfer_faults.is_none()
            && self.capacity_shrinks.is_empty()
            && self.stragglers.is_empty()
    }

    /// Add a fail-stop GPU death.
    pub fn with_gpu_failure(mut self, gpu: usize, at: Nanos) -> Self {
        self.gpu_failures.push(GpuFailure { gpu, at });
        self
    }

    /// Enable the transient transfer-fault stream.
    pub fn with_transfer_faults(mut self, spec: TransferFaultSpec) -> Self {
        self.transfer_faults = Some(spec);
        self
    }

    /// Add a capacity shrink.
    pub fn with_capacity_shrink(mut self, gpu: usize, at: Nanos, new_capacity: u64) -> Self {
        self.capacity_shrinks.push(CapacityShrink {
            gpu,
            at,
            new_capacity,
        });
        self
    }

    /// Add a straggler slowdown.
    pub fn with_straggler(mut self, gpu: usize, at: Nanos, factor: f64) -> Self {
        self.stragglers.push(Straggler { gpu, at, factor });
        self
    }

    /// Check the plan against a platform of `num_gpus` GPUs.
    pub fn validate(&self, num_gpus: usize) -> Result<(), String> {
        for f in &self.gpu_failures {
            if f.gpu >= num_gpus {
                return Err(format!("fail: GPU {} out of range (< {num_gpus})", f.gpu));
            }
        }
        for s in &self.capacity_shrinks {
            if s.gpu >= num_gpus {
                return Err(format!("shrink: GPU {} out of range (< {num_gpus})", s.gpu));
            }
        }
        for s in &self.stragglers {
            if s.gpu >= num_gpus {
                return Err(format!("slow: GPU {} out of range (< {num_gpus})", s.gpu));
            }
            if s.factor <= 0.0 || !s.factor.is_finite() {
                return Err(format!("slow: factor {} must be finite and > 0", s.factor));
            }
        }
        if let Some(tf) = &self.transfer_faults {
            if tf.max_attempts == 0 {
                return Err("flaky: attempts must be at least 1".into());
            }
            if tf.fault_ppm > 1_000_000 {
                return Err(format!("flaky: ppm {} exceeds 1e6", tf.fault_ppm));
            }
        }
        Ok(())
    }

    /// Parse a fault specification string (the CLI's `--faults` argument).
    ///
    /// Semicolon-separated clauses:
    ///
    /// * `fail:<gpu>@<time>` — fail-stop death, e.g. `fail:1@5ms`;
    /// * `slow:<gpu>@<time>x<factor>` — straggler, e.g. `slow:0@1msx0.5`;
    /// * `shrink:<gpu>@<time>=<size>` — capacity shrink, e.g.
    ///   `shrink:0@2ms=250mb`;
    /// * `flaky:ppm=<n>[,seed=<n>][,attempts=<n>][,backoff=<time>]` —
    ///   transient transfer faults.
    ///
    /// Times take `ns`, `us`, `ms` or `s` suffixes (plain numbers are
    /// nanoseconds); sizes take `b`, `kb`, `mb` or `gb` (decimal).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause {clause:?} has no `kind:` prefix"))?;
            match kind {
                "fail" => {
                    let (gpu, at) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("fail clause {rest:?}: expected <gpu>@<time>"))?;
                    plan.gpu_failures.push(GpuFailure {
                        gpu: parse_gpu(gpu)?,
                        at: parse_time(at)?,
                    });
                }
                "slow" => {
                    let (gpu, rest) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("slow clause {rest:?}: expected <gpu>@<time>x<factor>"))?;
                    let (at, factor) = rest
                        .split_once('x')
                        .ok_or_else(|| format!("slow clause {rest:?}: expected <time>x<factor>"))?;
                    plan.stragglers.push(Straggler {
                        gpu: parse_gpu(gpu)?,
                        at: parse_time(at)?,
                        factor: factor
                            .parse::<f64>()
                            .map_err(|e| format!("slow factor {factor:?}: {e}"))?,
                    });
                }
                "shrink" => {
                    let (gpu, rest) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("shrink clause {rest:?}: expected <gpu>@<time>=<size>"))?;
                    let (at, size) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("shrink clause {rest:?}: expected <time>=<size>"))?;
                    plan.capacity_shrinks.push(CapacityShrink {
                        gpu: parse_gpu(gpu)?,
                        at: parse_time(at)?,
                        new_capacity: parse_size(size)?,
                    });
                }
                "flaky" => {
                    let mut tf = TransferFaultSpec::default();
                    for kv in rest.split(',') {
                        let (key, val) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("flaky option {kv:?}: expected key=value"))?;
                        match key.trim() {
                            "ppm" => {
                                tf.fault_ppm = val
                                    .parse()
                                    .map_err(|e| format!("flaky ppm {val:?}: {e}"))?
                            }
                            "seed" => {
                                tf.seed = val
                                    .parse()
                                    .map_err(|e| format!("flaky seed {val:?}: {e}"))?
                            }
                            "attempts" => {
                                tf.max_attempts = val
                                    .parse()
                                    .map_err(|e| format!("flaky attempts {val:?}: {e}"))?
                            }
                            "backoff" => tf.backoff_base = parse_time(val)?,
                            other => return Err(format!("flaky: unknown option {other:?}")),
                        }
                    }
                    plan.transfer_faults = Some(tf);
                }
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (expected fail, slow, shrink or flaky)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

fn parse_gpu(s: &str) -> Result<usize, String> {
    s.trim()
        .parse::<usize>()
        .map_err(|e| format!("GPU index {s:?}: {e}"))
}

/// `"5ms"` → 5_000_000 ns; plain numbers are nanoseconds.
fn parse_time(s: &str) -> Result<Nanos, String> {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|e| format!("time {s:?}: {e}"))?;
    if v < 0.0 {
        return Err(format!("time {s:?} must be non-negative"));
    }
    Ok((v * mult) as Nanos)
}

/// `"250mb"` → 250_000_000 bytes (decimal units); plain numbers are bytes.
fn parse_size(s: &str) -> Result<u64, String> {
    let lower = s.trim().to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("gb") {
        (n.to_string(), 1e9)
    } else if let Some(n) = lower.strip_suffix("mb") {
        (n.to_string(), 1e6)
    } else if let Some(n) = lower.strip_suffix("kb") {
        (n.to_string(), 1e3)
    } else if let Some(n) = lower.strip_suffix('b') {
        (n.to_string(), 1.0)
    } else {
        (lower, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|e| format!("size {s:?}: {e}"))?;
    if v < 0.0 {
        return Err(format!("size {s:?} must be non-negative"));
    }
    Ok((v * mult) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
        assert!(!FaultPlan::none().with_gpu_failure(0, 10).is_empty());
        assert!(!FaultPlan::none()
            .with_transfer_faults(TransferFaultSpec::default())
            .is_empty());
    }

    #[test]
    fn parse_every_clause_kind() {
        let plan = FaultPlan::parse(
            "fail:1@5ms; slow:0@1msx0.5; shrink:0@2ms=250mb; \
             flaky:ppm=1000,seed=7,attempts=6,backoff=2us",
        )
        .unwrap();
        assert_eq!(
            plan.gpu_failures,
            vec![GpuFailure {
                gpu: 1,
                at: 5_000_000
            }]
        );
        assert_eq!(
            plan.stragglers,
            vec![Straggler {
                gpu: 0,
                at: 1_000_000,
                factor: 0.5
            }]
        );
        assert_eq!(
            plan.capacity_shrinks,
            vec![CapacityShrink {
                gpu: 0,
                at: 2_000_000,
                new_capacity: 250_000_000
            }]
        );
        assert_eq!(
            plan.transfer_faults,
            Some(TransferFaultSpec {
                seed: 7,
                fault_ppm: 1000,
                max_attempts: 6,
                backoff_base: 2_000
            })
        );
        assert!(plan.validate(2).is_ok());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("boom:1@5ms").is_err());
        assert!(FaultPlan::parse("fail:1").is_err());
        assert!(FaultPlan::parse("slow:0@1ms").is_err());
        assert!(FaultPlan::parse("shrink:0@1ms").is_err());
        assert!(FaultPlan::parse("flaky:zzz=1").is_err());
        assert!(FaultPlan::parse("fail:x@5ms").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn validate_bounds_the_plan() {
        assert!(FaultPlan::none().with_gpu_failure(4, 0).validate(2).is_err());
        assert!(FaultPlan::none()
            .with_capacity_shrink(3, 0, 100)
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_straggler(0, 0, 0.0)
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_transfer_faults(TransferFaultSpec {
                max_attempts: 0,
                ..Default::default()
            })
            .validate(2)
            .is_err());
        assert!(FaultPlan::none()
            .with_transfer_faults(TransferFaultSpec {
                fault_ppm: 2_000_000,
                ..Default::default()
            })
            .validate(2)
            .is_err());
    }

    #[test]
    fn fault_stream_is_deterministic_and_calibrated() {
        let tf = TransferFaultSpec {
            seed: 42,
            fault_ppm: 250_000,
            ..Default::default()
        };
        let a: Vec<bool> = (0..1000).map(|i| tf.faulty(i)).collect();
        let b: Vec<bool> = (0..1000).map(|i| tf.faulty(i)).collect();
        assert_eq!(a, b, "same seed, same stream");
        let hits = a.iter().filter(|&&x| x).count();
        // 25 % nominal rate over 1000 draws: accept a generous band.
        assert!((150..350).contains(&hits), "hits = {hits}");
        // Different seed, different stream.
        let other = TransferFaultSpec { seed: 43, ..tf };
        assert_ne!(a, (0..1000).map(|i| other.faulty(i)).collect::<Vec<_>>());
        // ppm = 0 never faults.
        let off = TransferFaultSpec {
            fault_ppm: 0,
            ..tf
        };
        assert!((0..1000).all(|i| !off.faulty(i)));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let tf = TransferFaultSpec {
            backoff_base: 100,
            ..Default::default()
        };
        assert_eq!(tf.backoff(1), 100);
        assert_eq!(tf.backoff(2), 200);
        assert_eq!(tf.backoff(3), 400);
        // Clamped shift: huge attempt counts do not overflow.
        assert_eq!(tf.backoff(1000), 100 * (1 << 20));
    }

    #[test]
    fn time_and_size_suffixes() {
        assert_eq!(parse_time("1500").unwrap(), 1500);
        assert_eq!(parse_time("2us").unwrap(), 2_000);
        assert_eq!(parse_time("1.5ms").unwrap(), 1_500_000);
        assert_eq!(parse_time("1s").unwrap(), 1_000_000_000);
        assert_eq!(parse_size("123").unwrap(), 123);
        assert_eq!(parse_size("4kb").unwrap(), 4_000);
        assert_eq!(parse_size("0.5GB").unwrap(), 500_000_000);
        assert!(parse_time("abc").is_err());
        assert!(parse_size("xyz").is_err());
    }
}
