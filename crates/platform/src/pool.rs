//! Determinism-preserving worker pool.
//!
//! The pool fans independent work items over a fixed number of worker
//! threads pulling from a shared atomic index (global-queue stealing:
//! whichever worker is free next takes the next cell), and collects each
//! result into a slot keyed by the item's index. Because results are
//! gathered **by index** rather than by completion order, the output of
//! [`run_indexed`] is identical for any worker count — pool scheduling
//! can never leak into results.
//!
//! Two consumers share it: the experiment sweep harness (independent
//! (workload × scheduler) cells) and the sharded simulation tier
//! ([`crate::shard`], one item per bus-group shard per time window).
//! The flat serial engine core itself stays single-threaded.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// `--jobs` value is given.
pub const JOBS_ENV: &str = "MEMSCHED_JOBS";

/// Resolve the worker count: an explicit request (e.g. from `--jobs N`)
/// wins, then the `MEMSCHED_JOBS` environment variable, then the
/// machine's available parallelism. Always at least 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Apply `f` to every item and return the results **in item order**,
/// using up to `jobs` worker threads.
///
/// With `jobs <= 1` the items run inline on the caller's thread with no
/// thread machinery at all, which keeps single-worker runs trivially
/// deterministic and cheap. With more workers, each result lands in the
/// slot of its item index, so the returned `Vec` is byte-for-byte the
/// same regardless of how the pool interleaved the work.
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                *slots[i].lock() = Some(f(i, &items[i]));
            });
        }
    })
    .expect("worker pool panicked");

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot filled by a worker"))
        .collect()
}

/// Repeated barrier rounds over the same items on a **persistent** pool.
///
/// A coordinator that fans the same items out many times (the sharded
/// tier runs one round per conservative time window) would pay a full
/// thread spawn per [`run_indexed`] call; here the workers are spawned
/// once and parked on a barrier between rounds, so a round costs two
/// barrier waits.
///
/// Per round: the main thread calls `controller(round)`; returning
/// `false` ends the pool (no further rounds). Returning `true` releases
/// the workers, which claim items off a shared atomic index and apply
/// `body(index, &item)` to each — results are communicated by side
/// effect (e.g. interior mutability in the items). The next `controller`
/// call happens only after every item of the round was processed, so
/// the controller reads a quiescent state: round `r`'s effects are
/// visible to `controller(r + 1)`.
///
/// With `jobs <= 1` everything runs inline on the caller's thread, in
/// item order — the deterministic reference the multi-worker path must
/// match (and does: each round applies `body` to every item exactly
/// once, and item interactions go through their own synchronization).
pub fn run_rounds<T, C, B>(items: &[T], jobs: usize, mut controller: C, body: B)
where
    T: Sync,
    C: FnMut(u64) -> bool,
    B: Fn(usize, &T) + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        let mut round = 0;
        while controller(round) {
            for (i, t) in items.iter().enumerate() {
                body(i, t);
            }
            round += 1;
        }
        return;
    }

    // Two waits per round: one releasing the workers into the round,
    // one signalling the round complete (and ordering `next`'s reset).
    let barrier = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                barrier.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    body(i, &items[i]);
                }
                barrier.wait();
            });
        }
        let mut round = 0;
        loop {
            if !controller(round) {
                stop.store(true, Ordering::Release);
                barrier.wait();
                break;
            }
            next.store(0, Ordering::Relaxed);
            barrier.wait(); // release the round
            barrier.wait(); // all items processed
            round += 1;
        }
    })
    .expect("worker pool panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = run_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let reference = run_indexed(&items, 1, |i, &x| (i as u64) * 31 + x);
        for jobs in [2, 4, 16] {
            assert_eq!(run_indexed(&items, jobs, |i, &x| (i as u64) * 31 + x), reference);
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(run_indexed(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_indexed(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn rounds_apply_body_once_per_item_per_round() {
        for jobs in [1usize, 2, 4, 8] {
            let counters: Vec<Mutex<u64>> = (0..7).map(|_| Mutex::new(0)).collect();
            run_rounds(
                &counters,
                jobs,
                |round| round < 5,
                |_, c| *c.lock() += 1,
            );
            for c in &counters {
                assert_eq!(*c.lock(), 5, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn rounds_controller_sees_previous_round_complete() {
        // Each round adds round+1 to every cell; the controller checks
        // the running total before starting the next round, which is
        // only correct if rounds are real barriers.
        for jobs in [1usize, 3] {
            let cells: Vec<Mutex<u64>> = (0..11).map(|_| Mutex::new(0)).collect();
            let mut expected = 0u64;
            run_rounds(
                &cells,
                jobs,
                |round| {
                    for c in &cells {
                        assert_eq!(*c.lock(), expected, "jobs={jobs} round={round}");
                    }
                    expected += round + 1;
                    round < 4
                },
                |_, c| {
                    // The body can't see `round` directly; recover the
                    // increment from the cell's own history.
                    let mut v = c.lock();
                    *v += match *v {
                        0 => 1,
                        1 => 2,
                        3 => 3,
                        6 => 4,
                        other => panic!("unexpected cell value {other}"),
                    };
                },
            );
        }
    }

    #[test]
    fn rounds_stop_immediately_when_controller_declines() {
        let cells: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        run_rounds(&cells, 4, |_| false, |_, c| *c.lock() += 1);
        for c in &cells {
            assert_eq!(*c.lock(), 0);
        }
    }

    #[test]
    fn resolve_jobs_prefers_explicit_and_floors_at_one() {
        assert_eq!(resolve_jobs(Some(5)), 5);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
