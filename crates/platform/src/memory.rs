//! Per-GPU memory management: residency, pinning, LRU bookkeeping and
//! eviction.
//!
//! Each data item is, per GPU, in one of three states: **absent** (only in
//! host memory), **loading** (a bus transfer is in flight) or **resident**.
//! Loading data and data pinned by the running / head task cannot be
//! evicted — this enforces the paper's `V(k,i) ∩ D(σ(k,i)) = ∅` rule and
//! keeps the simulation deadlock-free (a running task always completes and
//! releases its pins).

use crate::spec::Nanos;
use memsched_model::DataId;

/// Residency state of one data item on one GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Residency {
    /// Only in host memory.
    #[default]
    Absent,
    /// Host→GPU transfer in flight.
    Loading,
    /// Usable by tasks on this GPU.
    Resident,
}

/// Memory manager of a single GPU.
#[derive(Clone, Debug)]
pub struct GpuMemory {
    capacity: u64,
    /// Residency state per data id.
    state: Vec<Residency>,
    /// Pin count per data id (running/head-task uses + loading).
    pins: Vec<u32>,
    /// Timestamp of the most recent touch (load completion or task use).
    last_use: Vec<Nanos>,
    /// Monotonic tiebreaker so equal timestamps evict deterministically.
    touch_seq: Vec<u64>,
    seq: u64,
    /// Bytes resident plus bytes reserved by in-flight loads.
    used_bytes: u64,
    /// Number of evictions performed on this GPU.
    pub evictions: u64,
    /// Number of load operations completed on this GPU.
    pub loads: u64,
    /// Bytes loaded onto this GPU.
    pub load_bytes: u64,
}

impl GpuMemory {
    /// A memory of `capacity` bytes tracking `num_data` data items.
    pub fn new(capacity: u64, num_data: usize) -> Self {
        Self {
            capacity,
            state: vec![Residency::Absent; num_data],
            pins: vec![0; num_data],
            last_use: vec![0; num_data],
            touch_seq: vec![0; num_data],
            seq: 0,
            used_bytes: 0,
            evictions: 0,
            loads: 0,
            load_bytes: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes resident or reserved by in-flight transfers.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes available for new loads without eviction.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used_bytes
    }

    /// Residency state of a data item.
    pub fn residency(&self, d: DataId) -> Residency {
        self.state[d.index()]
    }

    /// True if the data is usable by a task right now.
    pub fn is_resident(&self, d: DataId) -> bool {
        self.state[d.index()] == Residency::Resident
    }

    /// True if the data is resident or being transferred.
    pub fn is_resident_or_loading(&self, d: DataId) -> bool {
        self.state[d.index()] != Residency::Absent
    }

    /// Pin a data item (input of a running or imminent task).
    pub fn pin(&mut self, d: DataId) {
        self.pins[d.index()] += 1;
    }

    /// Release one pin.
    pub fn unpin(&mut self, d: DataId) {
        let p = &mut self.pins[d.index()];
        debug_assert!(*p > 0, "unpin of unpinned data {d}");
        *p = p.saturating_sub(1);
    }

    /// True if the data may not be evicted (pinned or in flight).
    pub fn is_pinned(&self, d: DataId) -> bool {
        self.pins[d.index()] > 0 || self.state[d.index()] == Residency::Loading
    }

    /// Record a use of the data (LRU bookkeeping).
    pub fn touch(&mut self, d: DataId, now: Nanos) {
        self.last_use[d.index()] = now;
        self.seq += 1;
        self.touch_seq[d.index()] = self.seq;
    }

    /// Begin a host→GPU transfer: reserves the bytes and marks the data
    /// `Loading`. The caller must have ensured `free_bytes() >= size`.
    pub fn begin_load(&mut self, d: DataId, size: u64) {
        debug_assert_eq!(self.state[d.index()], Residency::Absent);
        debug_assert!(self.free_bytes() >= size, "begin_load without room");
        self.state[d.index()] = Residency::Loading;
        self.used_bytes += size;
    }

    /// Complete a transfer: the data becomes `Resident`.
    pub fn finish_load(&mut self, d: DataId, size: u64, now: Nanos) {
        debug_assert_eq!(self.state[d.index()], Residency::Loading);
        self.state[d.index()] = Residency::Resident;
        self.loads += 1;
        self.load_bytes += size;
        self.touch(d, now);
    }

    /// Evict a resident, unpinned data item, freeing its bytes.
    pub fn evict(&mut self, d: DataId, size: u64) {
        debug_assert_eq!(self.state[d.index()], Residency::Resident);
        debug_assert!(!self.is_pinned(d), "evicting pinned data {d}");
        self.state[d.index()] = Residency::Absent;
        self.used_bytes -= size;
        self.evictions += 1;
    }

    /// The LRU victim among resident, unpinned data items: the one with
    /// the oldest `(last_use, touch_seq)` pair. `None` when everything is
    /// pinned or absent.
    pub fn lru_victim(&self) -> Option<DataId> {
        let mut best: Option<(usize, (Nanos, u64))> = None;
        for (i, &st) in self.state.iter().enumerate() {
            if st != Residency::Resident || self.pins[i] > 0 {
                continue;
            }
            let key = (self.last_use[i], self.touch_seq[i]);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((i, key));
            }
        }
        best.map(|(i, _)| DataId::from_usize(i))
    }

    /// The LRU ordering key of a data item: evict smaller keys first.
    pub fn lru_key(&self, d: DataId) -> (Nanos, u64) {
        (self.last_use[d.index()], self.touch_seq[d.index()])
    }

    /// Iterate over the resident data ids (unspecified order).
    pub fn resident(&self) -> impl Iterator<Item = DataId> + '_ {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == Residency::Resident)
            .map(|(i, _)| DataId::from_usize(i))
    }

    /// Number of resident data items.
    pub fn resident_count(&self) -> usize {
        self.state
            .iter()
            .filter(|&&s| s == Residency::Resident)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DataId {
        DataId(i)
    }

    #[test]
    fn load_lifecycle() {
        let mut m = GpuMemory::new(100, 4);
        assert_eq!(m.residency(d(0)), Residency::Absent);
        m.begin_load(d(0), 40);
        assert_eq!(m.residency(d(0)), Residency::Loading);
        assert!(m.is_pinned(d(0)), "loading data is not evictable");
        assert_eq!(m.free_bytes(), 60);
        m.finish_load(d(0), 40, 5);
        assert!(m.is_resident(d(0)));
        assert_eq!(m.loads, 1);
        assert_eq!(m.load_bytes, 40);
        m.evict(d(0), 40);
        assert_eq!(m.free_bytes(), 100);
        assert_eq!(m.evictions, 1);
    }

    #[test]
    fn pins_block_lru_victim() {
        let mut m = GpuMemory::new(100, 3);
        for i in 0..3 {
            m.begin_load(d(i), 10);
            m.finish_load(d(i), 10, i as Nanos);
        }
        m.pin(d(0));
        assert_eq!(m.lru_victim(), Some(d(1)), "oldest unpinned");
        m.pin(d(1));
        assert_eq!(m.lru_victim(), Some(d(2)));
        m.pin(d(2));
        assert_eq!(m.lru_victim(), None);
        m.unpin(d(1));
        assert_eq!(m.lru_victim(), Some(d(1)));
    }

    #[test]
    fn touch_updates_lru_order() {
        let mut m = GpuMemory::new(100, 2);
        m.begin_load(d(0), 10);
        m.finish_load(d(0), 10, 1);
        m.begin_load(d(1), 10);
        m.finish_load(d(1), 10, 2);
        assert_eq!(m.lru_victim(), Some(d(0)));
        m.touch(d(0), 3);
        assert_eq!(m.lru_victim(), Some(d(1)));
    }

    #[test]
    fn equal_timestamps_break_by_sequence() {
        let mut m = GpuMemory::new(100, 2);
        m.begin_load(d(1), 10);
        m.finish_load(d(1), 10, 7);
        m.begin_load(d(0), 10);
        m.finish_load(d(0), 10, 7);
        // d(1) finished first -> smaller sequence -> evicted first.
        assert_eq!(m.lru_victim(), Some(d(1)));
    }

    #[test]
    fn resident_iterator_and_count() {
        let mut m = GpuMemory::new(100, 4);
        m.begin_load(d(2), 10);
        m.finish_load(d(2), 10, 0);
        m.begin_load(d(0), 10);
        assert_eq!(m.resident_count(), 1);
        let ids: Vec<_> = m.resident().collect();
        assert_eq!(ids, vec![d(2)]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "begin_load without room")]
    fn over_reserving_panics_in_debug() {
        let mut m = GpuMemory::new(10, 1);
        m.begin_load(d(0), 20);
    }
}
