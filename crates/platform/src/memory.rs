//! Per-GPU memory management: residency, pinning, LRU bookkeeping and
//! eviction.
//!
//! Each data item is, per GPU, in one of three states: **absent** (only in
//! host memory), **loading** (a bus transfer is in flight) or **resident**.
//! Loading data and data pinned by the running / head task cannot be
//! evicted — this enforces the paper's `V(k,i) ∩ D(σ(k,i)) = ∅` rule and
//! keeps the simulation deadlock-free (a running task always completes and
//! releases its pins).
//!
//! Residency queries and victim selection are incremental: an intrusive
//! doubly-linked list keeps resident items in LRU order (touches move to
//! the tail in O(1), the victim walk starts at the head and only skips
//! pinned items), and a sorted resident-id index serves [`resident`]
//! iteration without scanning all `num_data` states. The straightforward
//! full-scan implementations are kept as `*_scan` methods; differential
//! tests assert both agree on arbitrary operation sequences.
//!
//! [`resident`]: GpuMemory::resident

use crate::spec::Nanos;
use memsched_model::DataId;

/// Residency state of one data item on one GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Residency {
    /// Only in host memory.
    #[default]
    Absent,
    /// Host→GPU transfer in flight.
    Loading,
    /// Usable by tasks on this GPU.
    Resident,
}

/// Sentinel for "no neighbour" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Memory manager of a single GPU.
#[derive(Clone, Debug)]
pub struct GpuMemory {
    capacity: u64,
    /// Residency state per data id.
    state: Vec<Residency>,
    /// Pin count per data id (running/head-task uses + loading).
    pins: Vec<u32>,
    /// Timestamp of the most recent touch (load completion or task use).
    last_use: Vec<Nanos>,
    /// Monotonic tiebreaker so equal timestamps evict deterministically.
    touch_seq: Vec<u64>,
    seq: u64,
    /// Bytes resident plus bytes reserved by in-flight loads.
    used_bytes: u64,
    /// Intrusive LRU list over **resident** items: `lru_head` holds the
    /// oldest `(last_use, touch_seq)` key, `lru_tail` the newest. A data
    /// item is linked if and only if it is `Resident`.
    lru_prev: Vec<u32>,
    lru_next: Vec<u32>,
    lru_head: u32,
    lru_tail: u32,
    /// Resident data ids, kept sorted ascending (the iteration order of
    /// [`GpuMemory::resident`] is part of the deterministic tie-break
    /// contract relied on by the golden traces).
    resident_ids: Vec<u32>,
    /// Number of evictions performed on this GPU.
    pub evictions: u64,
    /// Number of load operations completed on this GPU.
    pub loads: u64,
    /// Bytes loaded onto this GPU.
    pub load_bytes: u64,
}

impl GpuMemory {
    /// A memory of `capacity` bytes tracking `num_data` data items.
    pub fn new(capacity: u64, num_data: usize) -> Self {
        Self {
            capacity,
            state: vec![Residency::Absent; num_data],
            pins: vec![0; num_data],
            last_use: vec![0; num_data],
            touch_seq: vec![0; num_data],
            seq: 0,
            used_bytes: 0,
            lru_prev: vec![NIL; num_data],
            lru_next: vec![NIL; num_data],
            lru_head: NIL,
            lru_tail: NIL,
            resident_ids: Vec::new(),
            evictions: 0,
            loads: 0,
            load_bytes: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Change the capacity (fault-induced shrink / later recovery). The
    /// caller must first evict down to the new bound: shrinking below
    /// `used_bytes` would make `free_bytes` underflow.
    pub fn set_capacity(&mut self, new_capacity: u64) {
        debug_assert!(
            new_capacity >= self.used_bytes,
            "set_capacity({new_capacity}) below used_bytes ({})",
            self.used_bytes
        );
        self.capacity = new_capacity;
    }

    /// Bytes resident or reserved by in-flight transfers.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes available for new loads without eviction.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used_bytes
    }

    /// Residency state of a data item.
    pub fn residency(&self, d: DataId) -> Residency {
        self.state[d.index()]
    }

    /// True if the data is usable by a task right now.
    pub fn is_resident(&self, d: DataId) -> bool {
        self.state[d.index()] == Residency::Resident
    }

    /// True if the data is resident or being transferred.
    pub fn is_resident_or_loading(&self, d: DataId) -> bool {
        self.state[d.index()] != Residency::Absent
    }

    /// Pin a data item (input of a running or imminent task).
    pub fn pin(&mut self, d: DataId) {
        self.pins[d.index()] += 1;
    }

    /// Release one pin.
    pub fn unpin(&mut self, d: DataId) {
        let p = &mut self.pins[d.index()];
        debug_assert!(*p > 0, "unpin of unpinned data {d}");
        *p = p.saturating_sub(1);
    }

    /// True if the data may not be evicted (pinned or in flight).
    pub fn is_pinned(&self, d: DataId) -> bool {
        self.pins[d.index()] > 0 || self.state[d.index()] == Residency::Loading
    }

    /// Unlink `i` from the LRU list. Caller guarantees `i` is linked.
    fn lru_unlink(&mut self, i: usize) {
        let (prev, next) = (self.lru_prev[i], self.lru_next[i]);
        if prev == NIL {
            self.lru_head = next;
        } else {
            self.lru_next[prev as usize] = next;
        }
        if next == NIL {
            self.lru_tail = prev;
        } else {
            self.lru_prev[next as usize] = prev;
        }
        self.lru_prev[i] = NIL;
        self.lru_next[i] = NIL;
    }

    /// Append `i` at the list tail (the most-recently-used end). The
    /// caller has just assigned `i` the largest `(last_use, touch_seq)`
    /// key, so tail insertion keeps the list sorted by key.
    fn lru_link_tail(&mut self, i: usize) {
        self.lru_prev[i] = self.lru_tail;
        self.lru_next[i] = NIL;
        if self.lru_tail == NIL {
            self.lru_head = i as u32;
        } else {
            self.lru_next[self.lru_tail as usize] = i as u32;
        }
        self.lru_tail = i as u32;
    }

    /// Record a use of the data (LRU bookkeeping): assigns a fresh key and
    /// moves a resident item to the most-recently-used end in O(1).
    pub fn touch(&mut self, d: DataId, now: Nanos) {
        let i = d.index();
        self.last_use[i] = now;
        self.seq += 1;
        self.touch_seq[i] = self.seq;
        if self.state[i] == Residency::Resident {
            self.lru_unlink(i);
            self.lru_link_tail(i);
        }
    }

    /// Begin a host→GPU transfer: reserves the bytes and marks the data
    /// `Loading`. The caller must have ensured `free_bytes() >= size`.
    pub fn begin_load(&mut self, d: DataId, size: u64) {
        debug_assert_eq!(self.state[d.index()], Residency::Absent);
        debug_assert!(self.free_bytes() >= size, "begin_load without room");
        self.state[d.index()] = Residency::Loading;
        self.used_bytes += size;
    }

    /// Complete a transfer: the data becomes `Resident`.
    pub fn finish_load(&mut self, d: DataId, size: u64, now: Nanos) {
        let i = d.index();
        debug_assert_eq!(self.state[i], Residency::Loading);
        self.state[i] = Residency::Resident;
        let pos = self
            .resident_ids
            .binary_search(&d.0)
            .expect_err("finish_load of already-resident data");
        self.resident_ids.insert(pos, d.0);
        self.lru_link_tail(i);
        self.loads += 1;
        self.load_bytes += size;
        self.touch(d, now);
    }

    /// Evict a resident, unpinned data item, freeing its bytes.
    pub fn evict(&mut self, d: DataId, size: u64) {
        let i = d.index();
        debug_assert_eq!(self.state[i], Residency::Resident);
        debug_assert!(!self.is_pinned(d), "evicting pinned data {d}");
        self.state[i] = Residency::Absent;
        let pos = self
            .resident_ids
            .binary_search(&d.0)
            .expect("evicting data missing from the resident index");
        self.resident_ids.remove(pos);
        self.lru_unlink(i);
        self.used_bytes -= size;
        self.evictions += 1;
    }

    /// The LRU victim among resident, unpinned data items: the one with
    /// the oldest `(last_use, touch_seq)` pair. `None` when everything is
    /// pinned or absent.
    ///
    /// Walks the intrusive list from the oldest end, skipping pinned
    /// items; since keys are assigned monotonically the head-most
    /// unpinned item is exactly the scan argmin.
    pub fn lru_victim(&self) -> Option<DataId> {
        self.lru_victim_where(|_| true)
    }

    /// The LRU victim among resident, unpinned data items also satisfying
    /// `keep` (used by the engine to protect the inputs of queued tasks).
    pub fn lru_victim_where(&self, keep: impl Fn(DataId) -> bool) -> Option<DataId> {
        let mut cur = self.lru_head;
        while cur != NIL {
            let d = DataId(cur);
            if self.pins[cur as usize] == 0 && keep(d) {
                return Some(d);
            }
            cur = self.lru_next[cur as usize];
        }
        None
    }

    /// Reference implementation of [`lru_victim`](Self::lru_victim): full
    /// scan over all data states. Kept for differential tests.
    pub fn lru_victim_scan(&self) -> Option<DataId> {
        let mut best: Option<(usize, (Nanos, u64))> = None;
        for (i, &st) in self.state.iter().enumerate() {
            if st != Residency::Resident || self.pins[i] > 0 {
                continue;
            }
            let key = (self.last_use[i], self.touch_seq[i]);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((i, key));
            }
        }
        best.map(|(i, _)| DataId::from_usize(i))
    }

    /// The LRU ordering key of a data item: evict smaller keys first.
    pub fn lru_key(&self, d: DataId) -> (Nanos, u64) {
        (self.last_use[d.index()], self.touch_seq[d.index()])
    }

    /// Iterate over the resident data ids in ascending id order (part of
    /// the deterministic tie-break contract: schedulers that scan the
    /// resident set break score ties towards the smallest id).
    pub fn resident(&self) -> impl Iterator<Item = DataId> + '_ {
        self.resident_ids.iter().map(|&i| DataId(i))
    }

    /// Reference implementation of [`resident`](Self::resident): full scan
    /// over all data states. Kept for differential tests.
    pub fn resident_scan(&self) -> impl Iterator<Item = DataId> + '_ {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == Residency::Resident)
            .map(|(i, _)| DataId::from_usize(i))
    }

    /// Number of resident data items.
    pub fn resident_count(&self) -> usize {
        self.resident_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DataId {
        DataId(i)
    }

    #[test]
    fn load_lifecycle() {
        let mut m = GpuMemory::new(100, 4);
        assert_eq!(m.residency(d(0)), Residency::Absent);
        m.begin_load(d(0), 40);
        assert_eq!(m.residency(d(0)), Residency::Loading);
        assert!(m.is_pinned(d(0)), "loading data is not evictable");
        assert_eq!(m.free_bytes(), 60);
        m.finish_load(d(0), 40, 5);
        assert!(m.is_resident(d(0)));
        assert_eq!(m.loads, 1);
        assert_eq!(m.load_bytes, 40);
        m.evict(d(0), 40);
        assert_eq!(m.free_bytes(), 100);
        assert_eq!(m.evictions, 1);
    }

    #[test]
    fn pins_block_lru_victim() {
        let mut m = GpuMemory::new(100, 3);
        for i in 0..3 {
            m.begin_load(d(i), 10);
            m.finish_load(d(i), 10, i as Nanos);
        }
        m.pin(d(0));
        assert_eq!(m.lru_victim(), Some(d(1)), "oldest unpinned");
        m.pin(d(1));
        assert_eq!(m.lru_victim(), Some(d(2)));
        m.pin(d(2));
        assert_eq!(m.lru_victim(), None);
        m.unpin(d(1));
        assert_eq!(m.lru_victim(), Some(d(1)));
    }

    #[test]
    fn touch_updates_lru_order() {
        let mut m = GpuMemory::new(100, 2);
        m.begin_load(d(0), 10);
        m.finish_load(d(0), 10, 1);
        m.begin_load(d(1), 10);
        m.finish_load(d(1), 10, 2);
        assert_eq!(m.lru_victim(), Some(d(0)));
        m.touch(d(0), 3);
        assert_eq!(m.lru_victim(), Some(d(1)));
    }

    #[test]
    fn equal_timestamps_break_by_sequence() {
        let mut m = GpuMemory::new(100, 2);
        m.begin_load(d(1), 10);
        m.finish_load(d(1), 10, 7);
        m.begin_load(d(0), 10);
        m.finish_load(d(0), 10, 7);
        // d(1) finished first -> smaller sequence -> evicted first.
        assert_eq!(m.lru_victim(), Some(d(1)));
    }

    #[test]
    fn resident_iterator_and_count() {
        let mut m = GpuMemory::new(100, 4);
        m.begin_load(d(2), 10);
        m.finish_load(d(2), 10, 0);
        m.begin_load(d(0), 10);
        assert_eq!(m.resident_count(), 1);
        let ids: Vec<_> = m.resident().collect();
        assert_eq!(ids, vec![d(2)]);
    }

    #[test]
    fn resident_iterates_in_ascending_id_order() {
        let mut m = GpuMemory::new(100, 5);
        for i in [3u32, 0, 4, 1] {
            m.begin_load(d(i), 10);
            m.finish_load(d(i), 10, i as Nanos);
        }
        let ids: Vec<_> = m.resident().map(|x| x.0).collect();
        assert_eq!(ids, vec![0, 1, 3, 4]);
        let scan: Vec<_> = m.resident_scan().map(|x| x.0).collect();
        assert_eq!(ids, scan);
    }

    #[test]
    fn victim_walk_matches_scan_under_churn() {
        // Deterministic mixed workload: loads, touches, pins and evictions
        // interleaved; the list head must equal the scan argmin throughout.
        let mut m = GpuMemory::new(1000, 16);
        let mut now: Nanos = 0;
        for step in 0u32..200 {
            now += 3;
            let i = (step * 7 + 3) % 16;
            match m.residency(d(i)) {
                Residency::Absent if m.free_bytes() >= 10 => {
                    m.begin_load(d(i), 10);
                    m.finish_load(d(i), 10, now);
                }
                Residency::Resident => {
                    if step % 5 == 0 && !m.is_pinned(d(i)) {
                        m.evict(d(i), 10);
                    } else if step % 3 == 0 {
                        m.touch(d(i), now);
                    } else if step % 7 == 0 {
                        m.pin(d(i));
                    }
                }
                _ => {}
            }
            if step % 11 == 10 {
                // Release one arbitrary pin if any.
                if let Some(j) = (0..16).find(|&j| m.pins[j] > 0) {
                    m.unpin(d(j as u32));
                }
            }
            assert_eq!(m.lru_victim(), m.lru_victim_scan(), "step {step}");
            let fast: Vec<_> = m.resident().collect();
            let slow: Vec<_> = m.resident_scan().collect();
            assert_eq!(fast, slow, "step {step}");
        }
    }

    #[test]
    fn lru_victim_where_respects_filter() {
        let mut m = GpuMemory::new(100, 3);
        for i in 0..3 {
            m.begin_load(d(i), 10);
            m.finish_load(d(i), 10, i as Nanos);
        }
        assert_eq!(m.lru_victim_where(|_| true), Some(d(0)));
        assert_eq!(m.lru_victim_where(|x| x != d(0)), Some(d(1)));
        assert_eq!(m.lru_victim_where(|x| x == d(2)), Some(d(2)));
        assert_eq!(m.lru_victim_where(|_| false), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "begin_load without room")]
    fn over_reserving_panics_in_debug() {
        let mut m = GpuMemory::new(10, 1);
        m.begin_load(d(0), 20);
    }
}
