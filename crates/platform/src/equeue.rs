//! The engine's event queue: an adaptive calendar (bucket-wheel) queue.
//!
//! The discrete-event loop pops the globally minimal `(time, seq)` pair and
//! pushes events at or after the current time. A binary heap does this in
//! O(log n) with a comparison-heavy inner loop; the calendar queue does it
//! in amortized O(1) by hashing each event's timestamp into a power-of-two
//! ring of buckets of width `2^shift` nanoseconds and draining buckets in
//! time order. The implementation here is tuned for determinism first:
//!
//! * **Total order.** Items are `(time, seq, payload)` with a unique,
//!   monotonically increasing `seq`, so `(time, seq)` is a total order and
//!   the payload never participates in comparisons — exactly the order the
//!   pre-refactor `BinaryHeap<Reverse<_>>` produced. The differential
//!   proptests in this module and in `tests/differential_naive.rs` pin the
//!   two implementations to identical pop streams.
//!
//! * **Ordering argument.** Every ring item lives in an absolute bucket
//!   `b = time >> shift` within the cursor window `[cur, cur + nslots)`;
//!   two in-window buckets can never share a slot (they would differ by
//!   `nslots`, which puts one outside the window), so draining slots in
//!   cursor order visits buckets in increasing time order. The cursor slot
//!   itself is lazily sorted descending by `(time, seq)` and popped from
//!   the back; pushes that land in the already-sorted cursor slot are
//!   binary-search inserted. Items at or beyond the window's end go to an
//!   unsorted overflow list whose minimal `(time, seq)` is tracked on
//!   push; the ring minimum is the global minimum as long as the cursor
//!   sits strictly below the overflow minimum's bucket. The cursor only
//!   moves one bucket at a time, and every pop iteration first checks
//!   whether the ring drained or the cursor reached the overflow
//!   minimum's bucket — either triggers `rebuild`, which gathers ring and
//!   overflow alike and redistributes them around a freshly chosen
//!   `(nslots, shift)` sized so the whole time spread fits inside the new
//!   window (leaving the overflow empty). The cursor check is what makes
//!   the overflow safe: a push *after* the cursor has advanced may land in
//!   a ring bucket beyond an overflow item's bucket, so overflow
//!   timestamps do not in general exceed ring timestamps — but the cursor
//!   must pass the overflow minimum's bucket before reaching any such
//!   ring item, and the rebuild fires exactly there.
//!
//! * **Past-due pushes.** A push whose bucket falls below the cursor
//!   (possible when the cursor bucket is partially drained) is clamped
//!   into the cursor slot; its timestamp is below `(cur + 1) << shift`, so
//!   sorted insertion keeps it ahead of every later bucket and correctly
//!   ordered within the cursor slot.
//!
//! Slot vectors are recycled across pushes and pops, so the steady-state
//! engine loop performs no allocation at all — the property the
//! engine-scale bench's counting allocator asserts.

use crate::spec::Nanos;

/// Queue item: `(time, seq, payload)`, ordered by `(time, seq)`.
pub(crate) type Item<T> = (Nanos, u64, T);

const MIN_SLOTS: usize = 256;
const MAX_SLOTS: usize = 1 << 16;

/// The engine's event queue. Runtime-selects the pre-refactor binary heap
/// (compiled in by the `naive` feature) or the calendar queue; both pop
/// the identical `(time, seq)` stream.
pub(crate) struct EventQueue<T> {
    imp: Imp<T>,
    /// Item extracted by [`EventQueue::peek_time`] and not yet consumed.
    /// Both backends only support destructive pops, so a peek pops the
    /// minimum and stashes it here; the next `pop` returns it first. A
    /// `push` that sorts below the held item displaces it into the
    /// backend, preserving the invariant that `held` is the queue's
    /// global `(time, seq)` minimum.
    held: Option<Item<T>>,
}

enum Imp<T> {
    Calendar(Calendar<T>),
    #[cfg(feature = "naive")]
    Heap(std::collections::BinaryHeap<std::cmp::Reverse<Item<T>>>),
}

impl<T: Copy + Ord> EventQueue<T> {
    pub(crate) fn new(naive: bool) -> Self {
        #[cfg(feature = "naive")]
        if naive {
            return Self {
                imp: Imp::Heap(std::collections::BinaryHeap::new()),
                held: None,
            };
        }
        #[cfg(not(feature = "naive"))]
        let _ = naive;
        Self {
            imp: Imp::Calendar(Calendar::new()),
            held: None,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, at: Nanos, seq: u64, payload: T) {
        let mut it = (at, seq, payload);
        if let Some(h) = self.held {
            // Keep `held` the global minimum: a new item that sorts below
            // it takes its place and the old minimum rejoins the backend.
            if (it.0, it.1) < (h.0, h.1) {
                self.held = Some(it);
                it = h;
            }
        }
        match &mut self.imp {
            Imp::Calendar(c) => c.push(it),
            #[cfg(feature = "naive")]
            Imp::Heap(h) => h.push(std::cmp::Reverse(it)),
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Item<T>> {
        if let Some(it) = self.held.take() {
            return Some(it);
        }
        match &mut self.imp {
            Imp::Calendar(c) => c.pop(),
            #[cfg(feature = "naive")]
            Imp::Heap(h) => h.pop().map(|std::cmp::Reverse(it)| it),
        }
    }

    /// Timestamp of the next event without consuming it — the sharded
    /// tier's coordinator uses this to size conservative time windows.
    /// Internally pops the minimum into the held slot (both backends are
    /// pop-only), so `&mut self`; the `(time, seq)` pop stream is
    /// unchanged.
    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<Nanos> {
        if self.held.is_none() {
            self.held = match &mut self.imp {
                Imp::Calendar(c) => c.pop(),
                #[cfg(feature = "naive")]
                Imp::Heap(h) => h.pop().map(|std::cmp::Reverse(it)| it),
            };
        }
        self.held.map(|(t, _, _)| t)
    }
}

struct Calendar<T> {
    /// Power-of-two ring of buckets; slot vectors are recycled, never freed.
    slots: Vec<Vec<Item<T>>>,
    mask: u64,
    /// Bucket width is `2^shift` nanoseconds.
    shift: u32,
    /// Absolute bucket index of the cursor: every ring item's bucket lies
    /// in `[cur, cur + slots.len())`.
    cur: u64,
    /// Whether the cursor's slot has been sorted (descending by
    /// `(time, seq)`, popped from the back).
    cur_sorted: bool,
    /// Items currently in the ring (the rest are in `overflow`).
    ring_len: usize,
    /// Items at or beyond the window's end, redistributed on `rebuild`.
    overflow: Vec<Item<T>>,
    /// Minimal `(time, seq)` in `overflow`; sentinel `MAX` when empty.
    overflow_min: (Nanos, u64),
    len: usize,
}

impl<T: Copy> Calendar<T> {
    fn new() -> Self {
        Self {
            slots: (0..MIN_SLOTS).map(|_| Vec::new()).collect(),
            mask: MIN_SLOTS as u64 - 1,
            // ~4µs buckets until the first adaptive rebuild re-derives the
            // width from the live time spread.
            shift: 12,
            cur: 0,
            cur_sorted: false,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: (Nanos::MAX, u64::MAX),
            len: 0,
        }
    }

    fn push(&mut self, it: Item<T>) {
        self.len += 1;
        let b = (it.0 >> self.shift).max(self.cur);
        if b >= self.cur + self.slots.len() as u64 {
            self.overflow_min = self.overflow_min.min((it.0, it.1));
            self.overflow.push(it);
            return;
        }
        let slot = &mut self.slots[(b & self.mask) as usize];
        if b == self.cur && self.cur_sorted {
            let pos = slot.partition_point(|x| (x.0, x.1) > (it.0, it.1));
            slot.insert(pos, it);
        } else {
            slot.push(it);
        }
        self.ring_len += 1;
    }

    fn pop(&mut self) -> Option<Item<T>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Rebuild when the ring drains, or when the cursor reaches the
            // overflow minimum's bucket — from here on a ring pop could
            // overtake an overflow item (see the module ordering argument).
            if self.ring_len == 0 || self.overflow_min.0 >> self.shift <= self.cur {
                self.rebuild();
            }
            let idx = (self.cur & self.mask) as usize;
            if self.slots[idx].is_empty() {
                self.cur += 1;
                self.cur_sorted = false;
                continue;
            }
            if !self.cur_sorted {
                self.slots[idx].sort_unstable_by_key(|it| std::cmp::Reverse((it.0, it.1)));
                self.cur_sorted = true;
            }
            let it = self.slots[idx].pop().expect("cursor slot is non-empty");
            self.ring_len -= 1;
            self.len -= 1;
            return Some(it);
        }
    }

    /// Gather every live item (ring and overflow) and re-center the wheel
    /// on them, re-deriving the slot count from the item count and
    /// widening buckets until the time spread fits strictly inside the
    /// window — so the overflow is empty afterwards. Rebuilding lazily on
    /// drain or overflow-due (instead of on occupancy thresholds) keeps
    /// the steady state reshuffle-free.
    fn rebuild(&mut self) {
        debug_assert!(self.len > 0 && !self.overflow.is_empty());
        let mut items = std::mem::take(&mut self.overflow);
        self.overflow_min = (Nanos::MAX, u64::MAX);
        if self.ring_len > 0 {
            for slot in &mut self.slots {
                items.append(slot);
            }
        }
        let mut min_t = Nanos::MAX;
        let mut max_t = 0;
        for it in &items {
            min_t = min_t.min(it.0);
            max_t = max_t.max(it.0);
        }
        let want = items.len().next_power_of_two().clamp(MIN_SLOTS, MAX_SLOTS);
        if want > self.slots.len() {
            self.slots.resize_with(want, Vec::new);
        } else {
            self.slots.truncate(want);
        }
        self.mask = want as u64 - 1;
        let n = want as u64;
        let mut shift = 0u32;
        while (max_t >> shift) - (min_t >> shift) >= n - 1 {
            shift += 1;
        }
        self.shift = shift;
        self.cur = min_t >> shift;
        self.cur_sorted = false;
        for it in items {
            let b = it.0 >> shift;
            debug_assert!(b >= self.cur && b < self.cur + n);
            self.slots[(b & self.mask) as usize].push(it);
        }
        self.ring_len = self.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: pop the minimal `(time, seq)` from a flat vector.
    struct Model(Vec<Item<u32>>);

    impl Model {
        fn push(&mut self, it: Item<u32>) {
            self.0.push(it);
        }
        fn pop(&mut self) -> Option<Item<u32>> {
            let i = self
                .0
                .iter()
                .enumerate()
                .min_by_key(|(_, it)| (it.0, it.1))?
                .0;
            Some(self.0.swap_remove(i))
        }
    }

    fn check_stream(ops: &[(bool, Nanos)]) {
        let mut q = Calendar::new();
        let mut model = Model(Vec::new());
        let mut seq = 0u64;
        let mut now = 0u64;
        for &(push, dt) in ops {
            if push {
                seq += 1;
                // The engine never schedules into the past.
                q.push((now + dt, seq, seq as u32));
                model.push((now + dt, seq, seq as u32));
            } else {
                let got = q.pop();
                let want = model.pop();
                assert_eq!(got, want);
                if let Some((t, _, _)) = got {
                    now = t;
                }
            }
        }
        loop {
            let got = q.pop();
            let want = model.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_matches_model() {
        // Near-term, far-future (overflow + rebuild), and same-time ties.
        let ops: Vec<(bool, Nanos)> = vec![
            (true, 5),
            (true, 5),
            (true, 0),
            (false, 0),
            (true, 1 << 30),
            (true, 3),
            (false, 0),
            (false, 0),
            (true, 1 << 40),
            (false, 0),
            (true, 2),
            (true, 2),
            (false, 0),
            (false, 0),
            (false, 0),
        ];
        check_stream(&ops);
    }

    /// `peek_time` must not disturb the pop stream, even when a push
    /// after the peek sorts below the held minimum.
    #[test]
    fn peek_time_is_transparent_to_pops() {
        let mut q: EventQueue<u32> = EventQueue::new(false);
        assert_eq!(q.peek_time(), None);
        q.push(500, 1, 10);
        assert_eq!(q.peek_time(), Some(500));
        assert_eq!(q.peek_time(), Some(500));
        // Displacement: a sweep between peeks may schedule earlier work.
        q.push(300, 2, 20);
        assert_eq!(q.peek_time(), Some(300));
        // Same-time tie resolves by seq even across the held slot.
        q.push(300, 3, 30);
        assert_eq!(q.pop(), Some((300, 2, 20)));
        assert_eq!(q.pop(), Some((300, 3, 30)));
        assert_eq!(q.pop(), Some((500, 1, 10)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn empty_pops_none() {
        let mut q: Calendar<u32> = Calendar::new();
        assert_eq!(q.pop(), None);
        q.push((7, 1, 9));
        assert_eq!(q.pop(), Some((7, 1, 9)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rebuild_recenters_far_future() {
        let mut q: Calendar<u32> = Calendar::new();
        // Spread far beyond the initial 256-slot / 4µs window.
        for i in 0..1000u64 {
            q.push((i * 10_000_000, i + 1, i as u32));
        }
        for i in 0..1000u64 {
            assert_eq!(q.pop(), Some((i * 10_000_000, i + 1, i as u32)));
        }
        assert_eq!(q.pop(), None);
    }

    /// Regression: an overflow item must not be overtaken by ring items
    /// pushed after the cursor advanced past the original window.
    #[test]
    fn overflow_item_not_overtaken_by_later_ring_pushes() {
        let mut q: Calendar<u32> = Calendar::new();
        // Initial wheel: 256 slots × 2^12 ns. Bucket 512 → overflow.
        q.push((512 << 12, 1, 0));
        // Advance the cursor to bucket 300 via a ring item.
        q.push((300 << 12, 2, 1));
        assert_eq!(q.pop(), Some((300 << 12, 2, 1)));
        // Bucket 520 is now inside the window [300, 556) even though it
        // lies beyond the overflow item's bucket.
        q.push((520 << 12, 3, 2));
        assert_eq!(q.pop(), Some((512 << 12, 1, 0)));
        assert_eq!(q.pop(), Some((520 << 12, 3, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn past_due_push_after_partial_drain() {
        let mut q: Calendar<u32> = Calendar::new();
        // Two items in the same bucket; drain one, then push between them.
        q.push((100, 1, 0));
        q.push((300, 2, 1));
        assert_eq!(q.pop(), Some((100, 1, 0)));
        q.push((200, 3, 2));
        assert_eq!(q.pop(), Some((200, 3, 2)));
        assert_eq!(q.pop(), Some((300, 2, 1)));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn calendar_matches_model(
            ops in proptest::collection::vec(
                (proptest::prelude::any::<bool>(), 0u64..1 << 34), 1..400)
        ) {
            check_stream(&ops);
        }
    }
}
