//! The sharded simulation tier: conservative time-window parallel DES
//! over per-bus-group shards.
//!
//! On a multi-bus platform ([`PlatformSpec::with_bus_groups`]) running a
//! scheduler whose dispatch decomposes per bus group
//! ([`Scheduler::decomposes_per_group`]), the simulation itself
//! decomposes: a GPU only ever interacts with its own bus (transfers
//! serialize per group) and with GPUs of its own group (intra-group
//! stealing, group-scoped fault redispatch). [`run_sharded`] exploits
//! this by giving every bus group its own [`ShardSim`] — a full flat
//! engine core restricted to the group's GPUs, with its own calendar
//! event queue and scheduler instance — and advancing the shards in
//! parallel on the deterministic worker pool ([`crate::pool`]) under
//! **conservative time windows**: each barrier round computes the global
//! minimum next-event time and lets every shard advance up to that
//! minimum plus a lookahead equal to the minimum cross-shard interaction
//! latency (the host-staging [`PlatformSpec::transfer_latency`] — any
//! hypothetical cross-group effect is staged through host memory and
//! cannot land earlier). Because a decomposable run has *zero*
//! cross-shard events, the windowed advance provably reproduces each
//! shard's free-running behavior, and each shard's behavior is the
//! serial run's projection onto its group — see DESIGN.md §12 for the
//! full argument.
//!
//! **Determinism contract.** A sharded run returns the serial run's
//! trace in *canonical order* — stably sorted by `(time, gpu)` — and a
//! report identical to the serial one modulo wall-clock fields. The
//! output is byte-identical for any worker-thread count (`--shards
//! 1/2/8`), because results merge by shard index, never by completion
//! order. `tests/sharded_differential.rs` pins both properties.
//!
//! **Serial fallback.** Anything the shard model does not cover falls
//! back to the flat serial core with an explicit
//! [`ShardingStats::fallback_reason`] in the report: fewer than two bus
//! groups, online admission, transfer faults (their fault pattern is a
//! global serial counter), NVLink (cross-group coupling), the naive
//! reference core, and globally-coupled schedulers (EAGER's shared
//! queue, DARTS). Rare end-of-run races that the coordinator cannot
//! attribute to a unique shard — and any shard error — are resolved by
//! *serial replay*: the run is redone on the serial core, so error
//! values and boundary semantics are exact by construction.

use crate::engine::{RunConfig, RunError, ShardSim, ShardStep};
use crate::pool;
use crate::report::{GpuRunStats, RunReport, ShardingStats, TraceEvent};
use crate::scheduler::Scheduler;
use crate::spec::{Nanos, PlatformSpec};
use crate::trace::{trace_checksum, TraceMode};
use memsched_model::TaskSet;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Options of the sharded tier.
#[derive(Clone, Debug, Default)]
pub struct ShardOptions {
    /// Worker threads advancing shards within a window. `0` (default)
    /// uses one worker per bus group. The result is byte-identical for
    /// every value — this only controls parallelism, never semantics.
    pub shards: usize,
}

/// A scheduler factory: the sharded tier builds one independent
/// scheduler instance per shard (plus one for serial fallbacks), so the
/// policy type must be constructible repeatedly and deterministically.
pub type SchedulerFactory<'a> = &'a (dyn Fn() -> Box<dyn Scheduler + Send> + Sync);

/// One shard's mutable half, handed to pool workers behind a mutex.
struct ShardCell {
    sim: ShardSim,
    sched: Box<dyn Scheduler + Send>,
    /// The shard's share of the task set (from
    /// [`Scheduler::group_task_counts`]); the shard stops at exactly
    /// this completion count, like the serial core stops at `m`.
    stop_at: usize,
    done: bool,
    err: Option<RunError>,
}

/// Run `ts` on the sharded tier when the platform and policy decompose
/// per bus group, falling back to the serial flat core (with the reason
/// recorded in [`ShardingStats`]) when they do not.
///
/// See the module docs for the execution model and determinism
/// contract. In [`TraceMode::Full`] the returned trace is in canonical
/// `(time, gpu)` order; in [`TraceMode::Checksum`] the checksum folds
/// over that canonical stream.
pub fn run_sharded(
    ts: &TaskSet,
    spec: &PlatformSpec,
    factory: SchedulerFactory<'_>,
    config: &RunConfig,
    opts: &ShardOptions,
) -> Result<(RunReport, Vec<TraceEvent>), RunError> {
    let k = spec.num_gpus;
    let n = spec.num_buses();
    let fallback = |reason: &str, windows: u64| -> Result<(RunReport, Vec<TraceEvent>), RunError> {
        let mut sched = factory();
        let (mut report, trace) = crate::engine::run_with_config(ts, spec, sched.as_mut(), config)?;
        report.sharding = Some(ShardingStats {
            requested_shards: opts.shards,
            shards_used: 1,
            windows,
            fallback_reason: Some(reason.to_string()),
        });
        Ok((report, trace))
    };

    if n < 2 {
        return fallback("single bus group", 0);
    }
    if config.admission.is_some() {
        return fallback("online admission loop is globally ordered", 0);
    }
    if config.faults.transfer_faults.is_some() {
        return fallback("transfer-fault pattern is a global serial counter", 0);
    }
    if spec.nvlink_bandwidth.is_some() {
        return fallback("nvlink fabric couples GPUs across bus groups", 0);
    }
    if config.use_naive_core() {
        return fallback("naive reference core is serial by definition", 0);
    }

    // Serial-core error-order parity: reject oversized tasks before
    // prepare, validate the fault plan after.
    for t in ts.tasks() {
        if ts.task_footprint(t) > spec.memory_bytes {
            return Err(RunError::TaskTooLarge {
                task: t,
                footprint: ts.task_footprint(t),
                capacity: spec.memory_bytes,
            });
        }
    }

    let groups: Vec<usize> = (0..k).map(|g| spec.bus_of(g)).collect();
    let mut scheds: Vec<Box<dyn Scheduler + Send>> = (0..n).map(|_| factory()).collect();
    if !scheds[0].decomposes_per_group() {
        return fallback("scheduler is globally coupled", 0);
    }

    // One deterministic prepare per shard instance; identical inputs
    // give every instance identical prepare-time state. The report
    // charges the maximum (the prepares could run concurrently).
    let mut prepare_wall: Nanos = 0;
    for sched in &mut scheds {
        let started = Instant::now();
        sched.prepare(ts, spec);
        prepare_wall = prepare_wall.max(started.elapsed().as_nanos() as Nanos);
    }
    let Some(shares) = scheds[0].group_task_counts(&groups, n) else {
        return fallback("scheduler does not report per-group task shares", 0);
    };
    if shares.len() != n || shares.iter().sum::<usize>() != ts.num_tasks() {
        return fallback("scheduler reported inconsistent group shares", 0);
    }

    if !config.faults.is_empty() {
        config
            .faults
            .validate(k)
            .map_err(RunError::InvalidFaultPlan)?;
    }

    // Shards record `Full` internally even in `Checksum` mode: the
    // checksum is only meaningful over the canonically merged stream.
    let shard_trace = match config.trace {
        TraceMode::Off => TraceMode::Off,
        TraceMode::Full | TraceMode::Checksum => TraceMode::Full,
    };
    let cells: Vec<Mutex<ShardCell>> = scheds
        .into_iter()
        .enumerate()
        .map(|(b, sched)| {
            let gpus: Vec<usize> = (0..k).filter(|&g| groups[g] == b).collect();
            Mutex::new(ShardCell {
                sim: ShardSim::new(ts, spec, config, shard_trace, gpus),
                sched,
                stop_at: shares[b],
                done: false,
                err: None,
            })
        })
        .collect();
    let jobs = if opts.shards == 0 { n } else { opts.shards };
    // Lookahead: the earliest a hypothetical cross-shard interaction
    // could take effect (host staging pays at least the bus latency).
    let lookahead = spec.transfer_latency;

    // Conservative window loop on a persistent worker pool
    // ([`pool::run_rounds`] — one barrier round per window, no thread
    // spawn per window): every round advances each unfinished shard to
    // the global minimum next-event time plus the lookahead.
    // Decomposable runs have no cross-shard events, so each shard's
    // windowed trajectory equals its free-running one; the windows
    // bound speculation for everything else (DESIGN.md §12).
    //
    // Once every shard hits its completion share, one final *epilogue*
    // round drains stray events before the global makespan: the serial
    // core processes events up to — but excluding — the makespan
    // instant even after a shard's own tasks finished (e.g. prefetches
    // landing between a shard's last completion and the global one).
    enum Phase {
        Windows,
        Epilogue,
        Done,
    }
    let horizon = AtomicU64::new(0);
    let in_epilogue = AtomicBool::new(false);
    let mut phase = Phase::Windows;
    let mut windows: u64 = 0;
    let mut fail: Option<&'static str> = None;
    let mut t_done: Vec<Nanos> = Vec::new();
    let mut makespan: Nanos = 0;
    pool::run_rounds(
        &cells,
        jobs,
        |_| {
            // Post-round error check (vacuous before the first round).
            // Exact error semantics (value, boundary counts) come from
            // the serial core, so any shard error means replay.
            let mut budget: u64 = 0;
            for cell in &cells {
                let c = cell.lock();
                if c.err.is_some() {
                    fail = Some(if matches!(phase, Phase::Epilogue) {
                        "replay: shard error in epilogue drain"
                    } else {
                        "replay: shard error"
                    });
                    return false;
                }
                budget += c.sim.processed();
            }
            match phase {
                // The epilogue is always the final round.
                Phase::Epilogue | Phase::Done => false,
                Phase::Windows => {
                    if budget > config.max_events {
                        fail = Some("replay: event budget exceeded");
                        return false;
                    }
                    let mut next: Option<Nanos> = None;
                    let mut all_done = true;
                    for cell in &cells {
                        let c = &mut *cell.lock();
                        if c.done {
                            continue;
                        }
                        all_done = false;
                        if let Some(t) = c.sim.next_event_time() {
                            next = Some(next.map_or(t, |m: Nanos| m.min(t)));
                        }
                    }
                    if all_done {
                        // Global makespan: the serial run stops at the
                        // m-th completion — chronologically the latest
                        // of the shards' final completions, where each
                        // shard's clock stopped.
                        t_done = cells.iter().map(|c| c.lock().sim.now()).collect();
                        makespan = t_done.iter().copied().max().unwrap_or(0);
                        if makespan == 0 {
                            phase = Phase::Done;
                            return false;
                        }
                        in_epilogue.store(true, Ordering::Relaxed);
                        horizon.store(makespan - 1, Ordering::Relaxed);
                        windows += 1;
                        phase = Phase::Epilogue;
                        return true;
                    }
                    // No pending events anywhere but shards unfinished:
                    // either the first round (queues seed during the
                    // sweep) or a genuine stall.
                    let first_round = windows == 0;
                    if next.is_none() && !first_round {
                        fail = Some("replay: shard quiesced before its share completed");
                        return false;
                    }
                    horizon.store(
                        next.map_or(0, |t| t.saturating_add(lookahead)),
                        Ordering::Relaxed,
                    );
                    windows += 1;
                    true
                }
            }
        },
        |_, cell| {
            let c = &mut *cell.lock();
            let epilogue = in_epilogue.load(Ordering::Relaxed);
            if c.done && !epilogue {
                return;
            }
            let h = horizon.load(Ordering::Relaxed);
            let stop_at = if epilogue { usize::MAX } else { c.stop_at };
            match c.sim.advance(ts, spec, c.sched.as_mut(), config, h, stop_at) {
                Ok(ShardStep::Done) => c.done = true,
                Ok(ShardStep::Horizon) => {}
                Err(e) => {
                    c.err = Some(e);
                    c.done = true;
                }
            }
        },
    );
    if let Some(reason) = fail {
        return fallback(reason, windows);
    }

    // Events at exactly the makespan instant: the serial core processes
    // or drops them depending on their sequence number relative to the
    // final completion, an ordering only the shard that *owns* the
    // final completion reproduces locally. If any other shard (or a tie
    // of final shards) holds such an event, replay serially rather than
    // guess the tie-break.
    let finals = t_done.iter().filter(|&&t| t == makespan).count();
    for (b, cell) in cells.iter().enumerate() {
        let c = &mut *cell.lock();
        if c.sim.next_event_time() == Some(makespan) && (t_done[b] != makespan || finals > 1) {
            return fallback("replay: ambiguous event tie at the makespan instant", windows);
        }
    }

    // Merge. Stats come from each GPU's owning shard (idle recomputed
    // against the global makespan); traces merge canonically.
    let mut report = RunReport {
        makespan,
        prepare_wall,
        bus_busy_ns: vec![0; n],
        ..RunReport::default()
    };
    let mut per_gpu: Vec<GpuRunStats> = vec![GpuRunStats::default(); k];
    let mut merged: Vec<TraceEvent> = Vec::new();
    for (b, cell) in cells.iter().enumerate() {
        let c = &mut *cell.lock();
        c.sim.finalize(makespan);
        for g in 0..k {
            if groups[g] == b {
                per_gpu[g] = c.sim.gpu_stats(makespan, g);
            }
        }
        let (flops, retries, failures, redispatched) = c.sim.totals();
        report.total_flops += flops;
        report.transfer_retries += retries;
        report.gpu_failures += failures;
        report.tasks_redispatched += redispatched;
        for (bus, &ns) in c.sim.bus_busy().iter().enumerate() {
            report.bus_busy_ns[bus] += ns;
        }
        merged.extend(c.sim.take_trace());
        if b == 0 {
            report.scheduler = c.sched.name();
        }
    }
    merged.sort_by_key(trace_key);
    report.total_load_bytes = per_gpu.iter().map(|g| g.load_bytes).sum();
    report.total_loads = per_gpu.iter().map(|g| g.loads).sum();
    report.total_evictions = per_gpu.iter().map(|g| g.evictions).sum();
    report.sched_wall = per_gpu.iter().map(|g| g.sched_wall).sum();
    report.per_gpu = per_gpu;
    report.sharding = Some(ShardingStats {
        requested_shards: opts.shards,
        shards_used: n,
        windows,
        fallback_reason: None,
    });
    let trace = match config.trace {
        TraceMode::Off => Vec::new(),
        TraceMode::Full => merged,
        TraceMode::Checksum => {
            report.trace_checksum = Some(trace_checksum(&merged));
            Vec::new()
        }
    };
    Ok((report, trace))
}

/// Canonical merge key: `(time, gpu)`. Every batch-mode trace event
/// carries a GPU; the online-only variants (never produced by the
/// sharded tier) sort by time alone.
fn trace_key(ev: &TraceEvent) -> (Nanos, usize) {
    match *ev {
        TraceEvent::LoadIssued { at, gpu, .. }
        | TraceEvent::LoadDone { at, gpu, .. }
        | TraceEvent::Evicted { at, gpu, .. }
        | TraceEvent::TaskStarted { at, gpu, .. }
        | TraceEvent::TaskFinished { at, gpu, .. }
        | TraceEvent::GpuFailed { at, gpu }
        | TraceEvent::TransferRetry { at, gpu, .. }
        | TraceEvent::CapacityShrunk { at, gpu, .. }
        | TraceEvent::GpuSlowed { at, gpu, .. } => (at, gpu),
        TraceEvent::TaskArrived { at, .. }
        | TraceEvent::TaskAdmitted { at, .. }
        | TraceEvent::TaskDeferred { at, .. }
        | TraceEvent::TaskShed { at, .. }
        | TraceEvent::DeadlineExpired { at, .. } => (at, usize::MAX),
    }
}

/// Canonicalize a serial trace for comparison against a sharded run:
/// the stable `(time, gpu)` sort of [`run_sharded`]'s merge. Exposed
/// for the differential tests and the trace linter.
pub fn canonicalize_trace(trace: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut out = trace.to_vec();
    out.sort_by_key(trace_key);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_with_config;
    use crate::fault::{FaultPlan, GpuFailure};
    use crate::scheduler::RuntimeView;
    use memsched_model::{GpuId, TaskId, TaskSetBuilder};

    /// A static split: task `i` is pinned to GPU `i mod k`, each GPU
    /// serves its own FIFO, and fault re-homing stays inside the bus
    /// group — the minimal fully-decomposable policy.
    struct Split {
        queues: Vec<Vec<TaskId>>,
    }

    impl Split {
        fn boxed() -> Box<dyn Scheduler + Send> {
            Box::new(Split { queues: Vec::new() })
        }
    }

    impl Scheduler for Split {
        fn name(&self) -> String {
            "split".into()
        }

        fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
            self.queues = vec![Vec::new(); spec.num_gpus];
            for t in ts.tasks() {
                self.queues[t.index() % spec.num_gpus].push(t);
            }
        }

        fn pop_task(&mut self, gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
            let q = &mut self.queues[gpu.index()];
            if q.is_empty() {
                None
            } else {
                Some(q.remove(0))
            }
        }

        fn on_gpu_failed(&mut self, gpu: GpuId, lost: &[TaskId], view: &RuntimeView<'_>) {
            let g = gpu.index();
            let spec = view.spec();
            let mut orphans: Vec<TaskId> = lost.to_vec();
            orphans.append(&mut self.queues[g]);
            if let Some(h) = (0..self.queues.len()).find(|&h| {
                h != g && spec.bus_of(h) == spec.bus_of(g) && view.is_alive(GpuId(h as u32))
            }) {
                self.queues[h].extend(orphans);
            } else {
                self.queues[g] = orphans;
            }
        }

        fn decomposes_per_group(&self) -> bool {
            true
        }

        fn group_task_counts(&self, groups: &[usize], num_groups: usize) -> Option<Vec<usize>> {
            let mut out = vec![0; num_groups];
            for (g, q) in self.queues.iter().enumerate() {
                out[groups[g]] += q.len();
            }
            Some(out)
        }
    }

    /// Shared-data workload: `m` tasks over 6 items, task `i` reading
    /// items `i mod 6` and `(i + 1) mod 6`.
    fn ring_tasks(m: usize) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let items: Vec<_> = (0..6).map(|_| b.add_data(1_000_000)).collect();
        for i in 0..m {
            b.add_task(&[items[i % 6], items[(i + 1) % 6]], 1.0e9);
        }
        b.build()
    }

    /// Zero the wall-clock fields the two tiers measure differently.
    fn strip_walls(mut r: RunReport) -> RunReport {
        r.prepare_wall = 0;
        r.sched_wall = 0;
        for g in &mut r.per_gpu {
            g.sched_wall = 0;
        }
        r.sharding = None;
        r
    }

    fn serial_canonical(
        ts: &TaskSet,
        spec: &PlatformSpec,
        config: &RunConfig,
    ) -> (RunReport, Vec<TraceEvent>) {
        let mut sched = Split::boxed();
        let (report, trace) = run_with_config(ts, spec, sched.as_mut(), config).unwrap();
        (report, canonicalize_trace(&trace))
    }

    #[test]
    fn sharded_matches_canonicalized_serial() {
        let ts = ring_tasks(24);
        let spec = PlatformSpec::v100_multibus(4, 2).with_memory(2_500_000);
        let config = RunConfig {
            trace: TraceMode::Full,
            ..RunConfig::default()
        };
        let (serial_report, serial_trace) = serial_canonical(&ts, &spec, &config);
        for shards in [0, 1, 2, 8] {
            let (report, trace) =
                run_sharded(&ts, &spec, &Split::boxed, &config, &ShardOptions { shards })
                    .unwrap();
            let stats = report.sharding.clone().expect("sharding stats present");
            assert_eq!(stats.shards_used, 2, "shards={shards}");
            assert_eq!(stats.fallback_reason, None, "shards={shards}");
            assert!(stats.windows >= 1, "shards={shards}");
            assert_eq!(trace, serial_trace, "shards={shards}");
            assert_eq!(
                strip_walls(report),
                strip_walls(serial_report.clone()),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_checksum_folds_over_canonical_stream() {
        let ts = ring_tasks(18);
        let spec = PlatformSpec::v100_multibus(4, 2).with_memory(3_000_000);
        let full = RunConfig {
            trace: TraceMode::Full,
            ..RunConfig::default()
        };
        let (_, serial_trace) = serial_canonical(&ts, &spec, &full);
        let config = RunConfig {
            trace: TraceMode::Checksum,
            ..RunConfig::default()
        };
        let (report, trace) =
            run_sharded(&ts, &spec, &Split::boxed, &config, &ShardOptions::default()).unwrap();
        assert!(trace.is_empty());
        assert_eq!(report.trace_checksum, Some(trace_checksum(&serial_trace)));
    }

    #[test]
    fn sharded_matches_serial_under_in_group_failure() {
        let ts = ring_tasks(24);
        let spec = PlatformSpec::v100_multibus(4, 2).with_memory(4_000_000);
        let config = RunConfig {
            trace: TraceMode::Full,
            faults: FaultPlan {
                gpu_failures: vec![GpuFailure { at: 2_000_000, gpu: 1 }],
                ..FaultPlan::none()
            },
            ..RunConfig::default()
        };
        let (serial_report, serial_trace) = serial_canonical(&ts, &spec, &config);
        let (report, trace) =
            run_sharded(&ts, &spec, &Split::boxed, &config, &ShardOptions::default()).unwrap();
        assert_eq!(trace, serial_trace);
        assert_eq!(strip_walls(report), strip_walls(serial_report));
    }

    #[test]
    fn single_bus_group_falls_back_with_reason() {
        let ts = ring_tasks(8);
        let spec = PlatformSpec::v100(2);
        let config = RunConfig::default();
        let (report, _) =
            run_sharded(&ts, &spec, &Split::boxed, &config, &ShardOptions::default()).unwrap();
        let stats = report.sharding.expect("sharding stats present");
        assert_eq!(stats.shards_used, 1);
        assert_eq!(stats.fallback_reason.as_deref(), Some("single bus group"));
    }

    #[test]
    fn globally_coupled_scheduler_falls_back_with_reason() {
        struct Global(Vec<TaskId>);
        impl Scheduler for Global {
            fn name(&self) -> String {
                "global".into()
            }
            fn prepare(&mut self, ts: &TaskSet, _spec: &PlatformSpec) {
                self.0 = ts.tasks().collect();
            }
            fn pop_task(&mut self, _gpu: GpuId, _view: &RuntimeView<'_>) -> Option<TaskId> {
                if self.0.is_empty() {
                    None
                } else {
                    Some(self.0.remove(0))
                }
            }
        }
        let ts = ring_tasks(8);
        let spec = PlatformSpec::v100_multibus(4, 2);
        let config = RunConfig::default();
        let factory: SchedulerFactory<'_> = &|| Box::new(Global(Vec::new()));
        let (report, _) = run_sharded(&ts, &spec, factory, &config, &ShardOptions::default())
            .unwrap();
        let stats = report.sharding.expect("sharding stats present");
        assert_eq!(stats.shards_used, 1);
        assert_eq!(
            stats.fallback_reason.as_deref(),
            Some("scheduler is globally coupled")
        );
    }

    #[test]
    fn oversized_task_errors_before_any_shard_runs() {
        let mut b = TaskSetBuilder::new();
        let d = b.add_data(10_000_000);
        b.add_task(&[d], 1.0e9);
        let ts = b.build();
        let spec = PlatformSpec::v100_multibus(4, 2).with_memory(1_000_000);
        let err = run_sharded(
            &ts,
            &spec,
            &Split::boxed,
            &RunConfig::default(),
            &ShardOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::TaskTooLarge { .. }));
    }
}
