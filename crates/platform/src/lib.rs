//! # memsched-platform
//!
//! A deterministic discrete-event simulator of a StarPU-like multi-GPU
//! node: the substrate on which the paper's schedulers are evaluated.
//!
//! The simulated machine follows Figure 2 of the paper: host memory
//! holding all input data, `K` GPUs with bounded memory, and one shared
//! PCI bus. Workers pull tasks from a pluggable [`Scheduler`], prefetch
//! their inputs over the bus, evict under memory pressure (LRU by default,
//! scheduler-overridable — how DARTS installs LUF), and execute tasks
//! under a calibrated cost model.
//!
//! ```
//! use memsched_platform::{run, PlatformSpec, RuntimeView, Scheduler};
//! use memsched_model::{GpuId, TaskId, TaskSetBuilder};
//!
//! // A trivial FIFO policy.
//! struct Fifo(u32, u32);
//! impl Scheduler for Fifo {
//!     fn name(&self) -> String { "fifo".into() }
//!     fn pop_task(&mut self, _: GpuId, _: &RuntimeView<'_>) -> Option<TaskId> {
//!         (self.0 < self.1).then(|| { self.0 += 1; TaskId(self.0 - 1) })
//!     }
//! }
//!
//! let mut b = TaskSetBuilder::new();
//! let d = b.add_data(1_000_000);
//! b.add_task(&[d], 1.0e9);
//! let ts = b.build();
//! let report = run(&ts, &PlatformSpec::v100(1), &mut Fifo(0, 1)).unwrap();
//! assert_eq!(report.per_gpu[0].tasks, 1);
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod engine;
mod equeue;
mod fault;
mod memory;
mod pipeline;
pub mod pool;
mod report;
mod scheduler;
pub mod shard;
mod spec;
mod trace;

pub use analysis::{analyze, analyze_checked, render_gantt, to_obs_events, TraceAnalysis};
pub use engine::{
    run, run_observed, run_with_config, AdmissionConfig, RunConfig, RunError, ShedPolicy,
};
pub use shard::{canonicalize_trace, run_sharded, SchedulerFactory, ShardOptions};
pub use trace::{trace_checksum, TraceMode};
/// The observability subsystem (re-exported so downstream crates can
/// build probes and exporters without naming `memsched-obs` directly).
pub use memsched_obs as obs;
pub use memsched_obs::{ObsEvent, Probe};
pub use fault::{CapacityShrink, FaultPlan, GpuFailure, Straggler, TransferFaultSpec};
pub use memory::{GpuMemory, Residency};
pub use report::{GpuRunStats, OnlineStats, RunReport, ShardingStats, TraceEvent};
pub use scheduler::{RuntimeView, Scheduler};
pub use spec::{
    Nanos, PlatformSpec, NVLINK_BANDWIDTH, PAPER_MEMORY_BYTES, PCIE_BANDWIDTH,
    UNLIMITED_MEMORY_BYTES, V100_GFLOPS,
};

// Compile-time audit for the parallel sweep harness: the types a harness
// worker thread holds across a run must be shareable/movable across
// threads. The engine itself remains single-threaded — one `run` call is
// driven entirely by its calling thread — but independent runs execute
// concurrently on different workers.
#[allow(dead_code)]
fn _assert_parallel_harness_bounds() {
    fn is_send_sync<T: Send + Sync>() {}
    fn is_send<T: Send>() {}
    is_send_sync::<PlatformSpec>();
    is_send_sync::<RunConfig>();
    is_send::<RunReport>();
    is_send::<TraceEvent>();
}
