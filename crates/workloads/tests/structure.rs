//! Structural property tests of the workload generators.

use memsched_model::{DataId, TaskId};
use memsched_workloads::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 2D gemm: every row/column datum feeds exactly `n` tasks, every
    /// task has exactly two inputs (one row, one column).
    #[test]
    fn gemm2d_regular_structure(n in 1usize..20) {
        let ts = gemm_2d(n);
        prop_assert_eq!(ts.num_tasks(), n * n);
        prop_assert_eq!(ts.num_data(), 2 * n);
        for d in ts.data() {
            prop_assert_eq!(ts.consumers(d).len(), n);
        }
        for t in ts.tasks() {
            let ins = ts.inputs(t);
            prop_assert_eq!(ins.len(), 2);
            prop_assert!((ins[0] as usize) < n, "first input is a row");
            prop_assert!((ins[1] as usize) >= n, "second input is a column");
        }
    }

    /// Randomized 2D gemm is a permutation of the natural one for any seed.
    #[test]
    fn gemm2d_random_permutes(n in 2usize..12, seed in any::<u64>()) {
        let nat = gemm_2d(n);
        let rnd = gemm_2d_random(n, seed);
        let mut a: Vec<Vec<u32>> = nat.tasks().map(|t| nat.inputs(t).to_vec()).collect();
        let mut b: Vec<Vec<u32>> = rnd.tasks().map(|t| rnd.inputs(t).to_vec()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// 3D gemm: `n³` tasks, each A tile read by `n` tasks and each task
    /// reading one A and one B tile.
    #[test]
    fn gemm3d_regular_structure(n in 1usize..8) {
        let ts = gemm_3d(n);
        prop_assert_eq!(ts.num_tasks(), n * n * n);
        prop_assert_eq!(ts.num_data(), 2 * n * n);
        for d in ts.data() {
            prop_assert_eq!(ts.consumers(d).len(), n);
        }
        for t in ts.tasks() {
            prop_assert_eq!(ts.inputs(t).len(), 2);
        }
    }

    /// Cholesky: task count matches the closed form; every task's inputs
    /// are valid lower-triangle tiles; arity ∈ {1, 2, 3}.
    #[test]
    fn cholesky_structure(n in 1usize..12) {
        let ts = cholesky(n);
        prop_assert_eq!(ts.num_tasks(), cholesky_task_count(n));
        prop_assert_eq!(ts.num_data(), n * (n + 1) / 2);
        for t in ts.tasks() {
            let arity = ts.inputs(t).len();
            prop_assert!((1..=3).contains(&arity));
        }
    }

    /// Sparse 2D: keeps the requested fraction (rounded), never more
    /// tasks than the dense grid, all inputs valid.
    #[test]
    fn sparse_structure(n in 2usize..40, seed in any::<u64>()) {
        let ts = sparse_2d(n, 0.1, seed);
        let expect = ((n * n) as f64 * 0.1).round().max(1.0) as usize;
        prop_assert_eq!(ts.num_tasks(), expect.min(n * n));
        prop_assert_eq!(ts.num_data(), 2 * n);
        for t in ts.tasks() {
            prop_assert_eq!(ts.inputs(t).len(), 2);
        }
    }

    /// Working sets are monotone in the grid dimension for every family.
    #[test]
    fn working_sets_monotone(n in 2usize..12) {
        prop_assert!(gemm_2d(n).working_set_bytes() < gemm_2d(n + 1).working_set_bytes());
        prop_assert!(gemm_3d(n).working_set_bytes() < gemm_3d(n + 1).working_set_bytes());
        prop_assert!(cholesky(n).working_set_bytes() < cholesky(n + 1).working_set_bytes());
    }
}

/// Deterministic check used by the figures: the specific task/data ids of
/// the 2D generator (row-major ids, rows then columns).
#[test]
fn gemm2d_id_layout() {
    let ts = gemm_2d(3);
    // T(i,j) = i*3 + j reads (D_i, D_{3+j}).
    for i in 0..3u32 {
        for j in 0..3u32 {
            let t = TaskId(i * 3 + j);
            assert_eq!(ts.inputs(t), &[i, 3 + j]);
        }
    }
    assert_eq!(ts.consumers(DataId(3)), &[0, 3, 6]);
}
