//! # memsched-workloads
//!
//! Generators for every application scenario of the paper's evaluation
//! (§V-A):
//!
//! * [`gemm_2d`] — 2D blocked matrix multiplication, natural row-major
//!   submission order (Figures 3–8);
//! * [`gemm_2d_random`] — the same tasks in a randomized submission order
//!   (Figure 9);
//! * [`gemm_3d`] — 3D blocked matrix multiplication (Figure 10), plus the
//!   three-input variant [`gemm_3d_with_c`];
//! * [`cholesky`] — tiled Cholesky kernels with dependencies removed
//!   (Figure 11);
//! * [`sparse_2d`] — 2 %-dense 2D multiplication (Figures 12–13).
//!
//! All generators are deterministic (seeded where randomness is involved)
//! and calibrated so that working-set sizes line up with the paper's
//! x-axes (see [`constants`]).

#![warn(missing_docs)]

mod cholesky;
pub mod constants;
mod gemm;
pub mod prefix;
mod sparse;
pub mod traffic;

pub use cholesky::{cholesky, cholesky_task_count, cholesky_with_kinds, CholeskyKernel};
pub use gemm::{gemm_2d, gemm_2d_random, gemm_3d, gemm_3d_with_c};
pub use prefix::{prefix_tree, PrefixConfig};
pub use sparse::{sparse_2d, sparse_2d_paper};
pub use traffic::{
    assign_classes, closed_loop_arrivals, deadline_stamps, open_loop_arrivals, ArrivalPattern,
    TrafficGen,
};

use memsched_model::TaskSet;

/// A named workload, as used by the experiment harness and benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Workload {
    /// 2D blocked matrix multiplication with `n×n` tasks.
    Gemm2d {
        /// Grid dimension `N`.
        n: usize,
    },
    /// Randomized-order 2D multiplication.
    Gemm2dRandom {
        /// Grid dimension `N`.
        n: usize,
        /// Shuffle seed.
        seed: u64,
    },
    /// 3D blocked matrix multiplication with `n³` tasks.
    Gemm3d {
        /// Grid dimension `N`.
        n: usize,
    },
    /// De-dependencied tiled Cholesky over `n×n` tiles.
    Cholesky {
        /// Tile-grid dimension `N`.
        n: usize,
    },
    /// Sparse 2D multiplication.
    Sparse2d {
        /// Grid dimension `N`.
        n: usize,
        /// Fraction of tasks kept.
        density: f64,
        /// Selection seed.
        seed: u64,
    },
    /// Prefix-tree serving workload (shared-prefix requests; see
    /// [`prefix`]).
    Prefix {
        /// Full tree/traffic configuration.
        cfg: PrefixConfig,
    },
}

impl Workload {
    /// Instantiate the workload into a [`TaskSet`].
    pub fn generate(&self) -> TaskSet {
        match *self {
            Workload::Gemm2d { n } => gemm_2d(n),
            Workload::Gemm2dRandom { n, seed } => gemm_2d_random(n, seed),
            Workload::Gemm3d { n } => gemm_3d(n),
            Workload::Cholesky { n } => cholesky(n),
            Workload::Sparse2d { n, density, seed } => sparse_2d(n, density, seed),
            Workload::Prefix { cfg } => prefix_tree(&cfg),
        }
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> String {
        match *self {
            Workload::Gemm2d { n } => format!("gemm2d(n={n})"),
            Workload::Gemm2dRandom { n, seed } => format!("gemm2d-random(n={n},seed={seed})"),
            Workload::Gemm3d { n } => format!("gemm3d(n={n})"),
            Workload::Cholesky { n } => format!("cholesky(n={n})"),
            Workload::Sparse2d { n, density, seed } => {
                format!("sparse2d(n={n},density={density},seed={seed})")
            }
            Workload::Prefix { cfg } => format!(
                "prefix(depth={},fanout={},tasks={},seed={})",
                cfg.depth, cfg.fanout, cfg.tasks, cfg.seed
            ),
        }
    }
}

/// The `scale` benchmark preset: 2D/3D GEMM instances well past the
/// paper's figure sizes, where the per-decision candidate scan dominates
/// a naive scheduler's cost. This is the workload tier the scheduler
/// hot-path bench (`cargo bench --bench sched_hotpath`) records in
/// `results/BENCH_sched_hotpath.json`. Quick mode keeps a full naive-scan
/// run in CI-friendly time.
pub fn scale_preset(quick: bool) -> Vec<Workload> {
    if quick {
        vec![Workload::Gemm2d { n: 20 }, Workload::Gemm3d { n: 6 }]
    } else {
        vec![Workload::Gemm2d { n: 64 }, Workload::Gemm3d { n: 10 }]
    }
}

/// The `scale_xl` tier: engine-bound instances of 10⁵ and 10⁶ tasks
/// (`gemm_3d(47)` ≈ 1.04 × 10⁵, `gemm_3d(100)` = 10⁶) used by the
/// engine-scale bench (`cargo bench --bench engine_scale`) and the
/// checksum-mode trace tests. Where [`scale_preset`] stresses the
/// per-decision scheduler scans, this tier stresses the engine core
/// itself — the event queue, the residency bookkeeping, and the trace
/// sink. 3D GEMM keeps the per-datum consumer fan-out at `n` (≈ m^⅓)
/// instead of 2D's m^½, so residency-cache maintenance stays subordinate
/// to the event loop at a million tasks. Quick mode (10⁴ and 10⁵) keeps
/// a full run in CI-friendly time.
pub fn scale_xl_preset(quick: bool) -> Vec<Workload> {
    if quick {
        vec![Workload::Gemm3d { n: 22 }, Workload::Gemm3d { n: 47 }]
    } else {
        vec![Workload::Gemm3d { n: 47 }, Workload::Gemm3d { n: 100 }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_preset_is_larger_than_figure_sizes() {
        for (quick, floor) in [(true, 200), (false, 1000)] {
            for w in scale_preset(quick) {
                let ts = w.generate();
                assert!(
                    ts.num_tasks() >= floor,
                    "{} too small for the scale tier",
                    w.label()
                );
            }
        }
    }

    #[test]
    fn scale_xl_preset_reaches_task_floors() {
        // Quick: 10⁴ and 10⁵; full: 10⁵ and 10⁶ (the million-task member
        // is checked by n³ arithmetic instead of generating it here).
        let quick = scale_xl_preset(true);
        let tasks: Vec<usize> = quick.iter().map(|w| w.generate().num_tasks()).collect();
        assert!(tasks[0] >= 10_000 && tasks[0] < 100_000, "{tasks:?}");
        assert!(tasks[1] >= 100_000, "{tasks:?}");
        let full = scale_xl_preset(false);
        assert_eq!(full[0], Workload::Gemm3d { n: 47 }); // 103,823 tasks
        assert_eq!(full[1], Workload::Gemm3d { n: 100 }); // 10⁶ tasks
    }

    #[test]
    fn workload_enum_generates_all_scenarios() {
        let cases = [
            Workload::Gemm2d { n: 4 },
            Workload::Gemm2dRandom { n: 4, seed: 1 },
            Workload::Gemm3d { n: 3 },
            Workload::Cholesky { n: 4 },
            Workload::Sparse2d {
                n: 10,
                density: 0.1,
                seed: 2,
            },
        ];
        for w in cases {
            let ts = w.generate();
            assert!(ts.num_tasks() > 0, "{} generated no tasks", w.label());
            assert!(!w.label().is_empty());
        }
    }
}
