//! Tasks from a tiled Cholesky decomposition with the dependencies removed
//! (§V-F / Figure 11).
//!
//! The tiled right-looking Cholesky of an `n×n`-tile symmetric matrix
//! produces, at step `k`:
//!
//! * `POTRF(k)` — factor the diagonal tile `A_kk`;
//! * `TRSM(i,k)` for `i > k` — solve against `A_kk`, reading `A_ik`;
//! * `SYRK(i,k)` for `i > k` — update `A_ii` with `A_ik`;
//! * `GEMM(i,j,k)` for `i > j > k` — update `A_ij` with `A_ik` and `A_jk`.
//!
//! As in the paper we strip the inter-task dependencies and keep only the
//! input-data sharing: tiles are read-only data items and tasks are
//! independent. GEMM tasks have **three** inputs, which is what makes this
//! workload exercise the `3inputs` DARTS variant; the sheer task count
//! (`Θ(n³)`) is what motivates the `OPTI` variant.

use crate::constants::{cholesky_flops, TILE_BYTES};
use memsched_model::{DataId, TaskSet, TaskSetBuilder};

/// Kind of Cholesky kernel, exposed for tests and trace labelling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholeskyKernel {
    /// Diagonal-tile factorization.
    Potrf,
    /// Triangular solve of a sub-diagonal tile.
    Trsm,
    /// Symmetric rank-b update of a diagonal tile.
    Syrk,
    /// General update of a sub-diagonal tile.
    Gemm,
}

/// Tiled-Cholesky task set over an `n×n` tile grid (lower triangle:
/// `n(n+1)/2` tile data items).
pub fn cholesky(n: usize) -> TaskSet {
    cholesky_with_kinds(n).0
}

/// As [`cholesky`], also returning the kernel kind of every task in
/// submission order.
pub fn cholesky_with_kinds(n: usize) -> (TaskSet, Vec<CholeskyKernel>) {
    assert!(n > 0, "need at least a 1x1 tile grid");
    let mut b = TaskSetBuilder::new();
    // Lower-triangle tiles, indexed A(i, j) with i >= j.
    let mut tile = vec![vec![DataId(0); n]; n];
    for (i, row) in tile.iter_mut().enumerate() {
        for cell in row.iter_mut().take(i + 1) {
            *cell = b.add_data(TILE_BYTES);
        }
    }
    let mut kinds = Vec::new();
    for k in 0..n {
        b.add_task(&[tile[k][k]], cholesky_flops::POTRF);
        kinds.push(CholeskyKernel::Potrf);
        for i in (k + 1)..n {
            b.add_task(&[tile[i][k], tile[k][k]], cholesky_flops::TRSM);
            kinds.push(CholeskyKernel::Trsm);
        }
        for i in (k + 1)..n {
            b.add_task(&[tile[i][i], tile[i][k]], cholesky_flops::SYRK);
            kinds.push(CholeskyKernel::Syrk);
            for j in (k + 1)..i {
                b.add_task(
                    &[tile[i][j], tile[i][k], tile[j][k]],
                    cholesky_flops::GEMM,
                );
                kinds.push(CholeskyKernel::Gemm);
            }
        }
    }
    (b.build(), kinds)
}

/// Number of tasks of a tiled Cholesky over `n×n` tiles:
/// `n` POTRF + `n(n−1)/2` TRSM + `n(n−1)/2` SYRK + `n(n−1)(n−2)/6` GEMM.
pub fn cholesky_task_count(n: usize) -> usize {
    let t = n * n.saturating_sub(1) / 2;
    n + 2 * t + n * n.saturating_sub(1) * n.saturating_sub(2) / 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::TaskId;

    #[test]
    fn counts_match_closed_form() {
        for n in 1..=8 {
            let (ts, kinds) = cholesky_with_kinds(n);
            assert_eq!(ts.num_tasks(), cholesky_task_count(n), "n = {n}");
            assert_eq!(kinds.len(), ts.num_tasks());
            assert_eq!(ts.num_data(), n * (n + 1) / 2);
        }
    }

    #[test]
    fn kernel_input_arity() {
        let (ts, kinds) = cholesky_with_kinds(5);
        for (t, kind) in ts.tasks().zip(kinds.iter()) {
            let arity = ts.inputs(t).len();
            match kind {
                CholeskyKernel::Potrf => assert_eq!(arity, 1),
                CholeskyKernel::Trsm | CholeskyKernel::Syrk => assert_eq!(arity, 2),
                CholeskyKernel::Gemm => assert_eq!(arity, 3),
            }
        }
        assert_eq!(ts.max_inputs_per_task(), 3);
    }

    #[test]
    fn first_tasks_of_n3_are_the_k0_step() {
        let (ts, kinds) = cholesky_with_kinds(3);
        // POTRF(0), TRSM(1,0), TRSM(2,0), SYRK(1,0), GEMM handled per i loop:
        assert_eq!(kinds[0], CholeskyKernel::Potrf);
        assert_eq!(kinds[1], CholeskyKernel::Trsm);
        assert_eq!(kinds[2], CholeskyKernel::Trsm);
        assert_eq!(kinds[3], CholeskyKernel::Syrk);
        // POTRF(0) reads the A_00 tile only.
        assert_eq!(ts.inputs(TaskId(0)), &[0]);
    }

    #[test]
    fn gemm_tasks_dominate_for_large_n() {
        let (ts, kinds) = cholesky_with_kinds(20);
        let gemms = kinds
            .iter()
            .filter(|k| **k == CholeskyKernel::Gemm)
            .count();
        assert!(gemms * 2 > ts.num_tasks(), "GEMM should dominate");
    }

    #[test]
    fn flops_are_heterogeneous() {
        let (ts, kinds) = cholesky_with_kinds(4);
        for (t, kind) in ts.tasks().zip(kinds.iter()) {
            let f = ts.flops(t);
            match kind {
                CholeskyKernel::Potrf => assert_eq!(f, cholesky_flops::POTRF),
                CholeskyKernel::Trsm => assert_eq!(f, cholesky_flops::TRSM),
                CholeskyKernel::Syrk => assert_eq!(f, cholesky_flops::SYRK),
                CholeskyKernel::Gemm => assert_eq!(f, cholesky_flops::GEMM),
            }
        }
    }
}
