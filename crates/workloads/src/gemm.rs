//! 2D and 3D blocked matrix-multiplication task sets (§V-A).
//!
//! The paper's main scenario decomposes `C = A × B` into tasks that each
//! multiply one block-row of `A` with one block-column of `B`. The input
//! data are therefore the `N` block-rows of `A` and the `N` block-columns
//! of `B` (2N data items), and there are `N²` independent tasks, submitted
//! row by row. The 3D variant decomposes the product into block×block
//! tasks `A_ik · B_kj` (`N³` tasks over `2N²` tile inputs).

use crate::constants::{GEMM2D_DATA_BYTES, GEMM2D_TASK_FLOPS, TILE_BYTES, TILE_GEMM_FLOPS};
use memsched_model::{TaskSet, TaskSetBuilder};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// 2D blocked matrix multiplication: `n²` tasks over `2n` data items,
/// submitted in natural (row-major) order.
///
/// Task `T(i·n + j)` reads block-row `i` of `A` (data id `i`) and
/// block-column `j` of `B` (data id `n + j`).
pub fn gemm_2d(n: usize) -> TaskSet {
    gemm_2d_ordered(n, None)
}

/// 2D blocked matrix multiplication with the submission order randomly
/// shuffled (Figure 9). Deterministic for a given `seed`.
pub fn gemm_2d_random(n: usize, seed: u64) -> TaskSet {
    gemm_2d_ordered(n, Some(seed))
}

fn gemm_2d_ordered(n: usize, shuffle_seed: Option<u64>) -> TaskSet {
    assert!(n > 0, "need at least a 1x1 task grid");
    let mut b = TaskSetBuilder::new();
    let rows: Vec<_> = (0..n).map(|_| b.add_data(GEMM2D_DATA_BYTES)).collect();
    let cols: Vec<_> = (0..n).map(|_| b.add_data(GEMM2D_DATA_BYTES)).collect();

    let mut cells: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .collect();
    if let Some(seed) = shuffle_seed {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        cells.shuffle(&mut rng);
    }
    for (i, j) in cells {
        b.add_task(&[rows[i], cols[j]], GEMM2D_TASK_FLOPS);
    }
    b.build()
}

/// 3D blocked matrix multiplication: `n³` tasks over `2n²` tile inputs,
/// submitted in `(i, j, k)` lexicographic order (Figure 10).
///
/// Task `(i, j, k)` reads tile `A_ik` (data id `i·n + k`) and tile `B_kj`
/// (data id `n² + k·n + j`). The final summation into `C` is ignored, as
/// in the paper ("we do not consider the final summation to concentrate on
/// the computationally-intensive tasks without dependencies").
pub fn gemm_3d(n: usize) -> TaskSet {
    assert!(n > 0, "need at least a 1x1x1 task grid");
    let mut b = TaskSetBuilder::new();
    let a: Vec<_> = (0..n * n).map(|_| b.add_data(TILE_BYTES)).collect();
    let bt: Vec<_> = (0..n * n).map(|_| b.add_data(TILE_BYTES)).collect();
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                b.add_task(&[a[i * n + k], bt[k * n + j]], TILE_GEMM_FLOPS);
            }
        }
    }
    b.build()
}

/// 3D blocked matrix multiplication where each task additionally reads the
/// output tile `C_ij` it accumulates into — a three-inputs-per-task
/// workload exercising the DARTS `3inputs` variant beyond its fallback
/// role.
pub fn gemm_3d_with_c(n: usize) -> TaskSet {
    assert!(n > 0, "need at least a 1x1x1 task grid");
    let mut b = TaskSetBuilder::new();
    let a: Vec<_> = (0..n * n).map(|_| b.add_data(TILE_BYTES)).collect();
    let bt: Vec<_> = (0..n * n).map(|_| b.add_data(TILE_BYTES)).collect();
    let c: Vec<_> = (0..n * n).map(|_| b.add_data(TILE_BYTES)).collect();
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                b.add_task(
                    &[a[i * n + k], bt[k * n + j], c[i * n + j]],
                    TILE_GEMM_FLOPS,
                );
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::{DataId, TaskId};

    #[test]
    fn gemm_2d_shape() {
        let ts = gemm_2d(4);
        assert_eq!(ts.num_tasks(), 16);
        assert_eq!(ts.num_data(), 8);
        // T(1,2) = task 6 reads row 1 (D1) and col 2 (D6).
        assert_eq!(ts.inputs(TaskId(6)), &[1, 6]);
        // Every row is consumed by n tasks.
        assert_eq!(ts.consumers(DataId(0)).len(), 4);
        assert_eq!(ts.consumers(DataId(4)).len(), 4);
    }

    #[test]
    fn gemm_2d_working_set_matches_paper_axis() {
        // Paper: 5×5 tasks ↔ ~140 MB, 300×300 ↔ ~8 400 MB.
        let ws5 = gemm_2d(5).working_set_bytes() as f64 / 1e6;
        let ws300 = gemm_2d(300).working_set_bytes() as f64 / 1e6;
        assert!((ws5 - 140.0).abs() < 10.0, "ws5 = {ws5}");
        assert!((ws300 - 8400.0).abs() < 500.0, "ws300 = {ws300}");
    }

    #[test]
    fn gemm_2d_random_is_a_permutation() {
        let ts = gemm_2d(6);
        let tsr = gemm_2d_random(6, 42);
        assert_eq!(ts.num_tasks(), tsr.num_tasks());
        assert_eq!(ts.num_data(), tsr.num_data());
        assert_eq!(ts.total_flops(), tsr.total_flops());
        // Same multiset of input pairs, different order.
        let mut pairs: Vec<_> = tsr.tasks().map(|t| tsr.inputs(t).to_vec()).collect();
        let mut dense: Vec<_> = ts.tasks().map(|t| ts.inputs(t).to_vec()).collect();
        assert_ne!(pairs, dense, "seed 42 should actually shuffle");
        pairs.sort();
        dense.sort();
        assert_eq!(pairs, dense);
    }

    #[test]
    fn gemm_2d_random_is_deterministic() {
        let a = gemm_2d_random(8, 7);
        let b = gemm_2d_random(8, 7);
        for t in a.tasks() {
            assert_eq!(a.inputs(t), b.inputs(t));
        }
    }

    #[test]
    fn gemm_3d_shape() {
        let ts = gemm_3d(3);
        assert_eq!(ts.num_tasks(), 27);
        assert_eq!(ts.num_data(), 18);
        // Each A tile is read by n tasks (one per j).
        assert_eq!(ts.consumers(DataId(0)).len(), 3);
        // Task (0,0,1) = id 1 reads A_01 (D1) and B_10 (9 + 3).
        assert_eq!(ts.inputs(TaskId(1)), &[1, 12]);
    }

    #[test]
    fn gemm_3d_with_c_has_three_inputs() {
        let ts = gemm_3d_with_c(2);
        assert_eq!(ts.num_tasks(), 8);
        assert_eq!(ts.num_data(), 12);
        assert_eq!(ts.max_inputs_per_task(), 3);
        for t in ts.tasks() {
            assert_eq!(ts.inputs(t).len(), 3);
        }
    }

    #[test]
    fn flops_scale_with_grid() {
        let t4 = gemm_2d(4).total_flops();
        let t8 = gemm_2d(8).total_flops();
        assert!((t8 / t4 - 4.0).abs() < 1e-9);
    }
}
