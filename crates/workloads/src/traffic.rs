//! Request-traffic generation for the online serving mode: seeded
//! open-loop arrival processes (Poisson and bursty on/off), a closed-loop
//! client model with think times, and multi-tenant job-class assignment.
//!
//! Everything is deterministic from the seed — the serving experiments
//! and the stream-invariant test harness rely on byte-identical arrival
//! vectors across runs and worker counts. Times are nanoseconds, matching
//! [`memsched_model::TaskSet`] arrival stamps.

/// Deterministic 64-bit generator (SplitMix64 stream), dependency-free.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    state: u64,
}

impl TrafficGen {
    /// A generator seeded for one traffic trace.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 − u is in (0, 1], so the log is finite.
        -(1.0 - self.next_f64()).ln() * mean
    }
}

/// The open-loop arrival process shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_sec: f64,
    },
    /// Two-phase Markov-modulated Poisson process: alternating ON bursts
    /// and quiet OFF phases, each with its own Poisson rate.
    Bursty {
        /// Arrival rate inside a burst, requests per second.
        on_rate_per_sec: f64,
        /// Arrival rate between bursts, requests per second.
        off_rate_per_sec: f64,
        /// Mean burst duration in nanoseconds (exponential).
        on_ns: u64,
        /// Mean quiet duration in nanoseconds (exponential).
        off_ns: u64,
    },
}

impl ArrivalPattern {
    /// The long-run average rate in requests per second.
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalPattern::Bursty {
                on_rate_per_sec,
                off_rate_per_sec,
                on_ns,
                off_ns,
            } => {
                let (on, off) = (on_ns as f64, off_ns as f64);
                (on_rate_per_sec * on + off_rate_per_sec * off) / (on + off)
            }
        }
    }
}

const NS_PER_SEC: f64 = 1e9;

/// `n` open-loop arrival times in nanoseconds, non-decreasing, drawn from
/// `pattern` with the given seed. The first arrival is itself one
/// inter-arrival gap after t = 0 (no request at the origin).
pub fn open_loop_arrivals(pattern: &ArrivalPattern, seed: u64, n: usize) -> Vec<u64> {
    let mut rng = TrafficGen::new(seed);
    let mut out = Vec::with_capacity(n);
    let mut now = 0.0f64;
    match *pattern {
        ArrivalPattern::Poisson { rate_per_sec } => {
            assert!(rate_per_sec > 0.0, "arrival rate must be positive");
            let mean_gap = NS_PER_SEC / rate_per_sec;
            for _ in 0..n {
                now += rng.next_exp(mean_gap);
                out.push(now as u64);
            }
        }
        ArrivalPattern::Bursty {
            on_rate_per_sec,
            off_rate_per_sec,
            on_ns,
            off_ns,
        } => {
            assert!(
                on_rate_per_sec > 0.0 && off_rate_per_sec > 0.0,
                "both phase rates must be positive"
            );
            assert!(on_ns > 0 && off_ns > 0, "phase durations must be positive");
            // Phase end-time and current rate evolve together; an
            // inter-arrival draw that crosses the phase boundary is
            // re-drawn from the boundary at the new rate (memorylessness
            // makes that the exact MMPP sampler).
            let mut in_burst = true;
            let mut phase_end = rng.next_exp(on_ns as f64);
            while out.len() < n {
                let rate = if in_burst { on_rate_per_sec } else { off_rate_per_sec };
                let gap = rng.next_exp(NS_PER_SEC / rate);
                if now + gap <= phase_end {
                    now += gap;
                    out.push(now as u64);
                } else {
                    now = phase_end;
                    in_burst = !in_burst;
                    let mean = if in_burst { on_ns } else { off_ns } as f64;
                    phase_end = now + rng.next_exp(mean);
                }
            }
        }
    }
    out
}

/// `n` closed-loop arrival times: `clients` independent clients each keep
/// one request in flight, waiting an exponential think time (mean
/// `think_ns`) after the estimated completion (`service_estimate_ns`)
/// before issuing the next. Returned sorted ascending.
pub fn closed_loop_arrivals(
    n: usize,
    clients: usize,
    think_ns: u64,
    service_estimate_ns: u64,
    seed: u64,
) -> Vec<u64> {
    assert!(clients > 0, "need at least one client");
    let mut rng = TrafficGen::new(seed);
    // Clients start staggered by one think time each so they do not all
    // fire at t = 0.
    let mut next_issue: Vec<f64> = (0..clients)
        .map(|_| rng.next_exp(think_ns.max(1) as f64))
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Earliest client issues next; ties break on the lowest index.
        let c = (0..clients)
            .min_by(|&a, &b| next_issue[a].total_cmp(&next_issue[b]))
            .expect("clients > 0");
        let at = next_issue[c];
        out.push(at as u64);
        next_issue[c] = at + service_estimate_ns as f64 + rng.next_exp(think_ns.max(1) as f64);
    }
    out.sort_unstable();
    out
}

/// Per-task relative completion deadlines for the overload-control
/// policies: deadline `i` is drawn uniformly from
/// `[0.5, 1.5) · base_ns · scale`, so the mean budget is
/// `base_ns · scale`. `base_ns` is typically the workload's estimated
/// service time; `scale` is the serve harness's `--deadline-scale` knob
/// (tighter < 1 < looser). Every stamp is at least 1 ns — a 0 deadline
/// means "none" to the engine and would silently disable shedding.
pub fn deadline_stamps(n: usize, base_ns: u64, scale: f64, seed: u64) -> Vec<u64> {
    assert!(base_ns > 0, "deadline base must be positive");
    assert!(
        scale.is_finite() && scale > 0.0,
        "deadline scale must be a positive finite number"
    );
    let mut rng = TrafficGen::new(seed);
    (0..n)
        .map(|_| {
            let jitter = 0.5 + rng.next_f64();
            ((base_ns as f64 * scale * jitter) as u64).max(1)
        })
        .collect()
}

/// Multi-tenant class assignment: class `i` is drawn with probability
/// `weights[i] / Σ weights`, independently per task. Returns one class
/// index per task.
pub fn assign_classes(n: usize, weights: &[f64], seed: u64) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one class");
    assert!(
        weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
        "weights must be non-negative with a positive sum"
    );
    let total: f64 = weights.iter().sum();
    let mut rng = TrafficGen::new(seed);
    (0..n)
        .map(|_| {
            let mut u = rng.next_f64() * total;
            for (i, &w) in weights.iter().enumerate() {
                if u < w {
                    return i;
                }
                u -= w;
            }
            weights.len() - 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seed_deterministic() {
        let p = ArrivalPattern::Poisson { rate_per_sec: 500.0 };
        let a = open_loop_arrivals(&p, 42, 1000);
        let b = open_loop_arrivals(&p, 42, 1000);
        let c = open_loop_arrivals(&p, 43, 1000);
        assert_eq!(a, b, "same seed must reproduce the trace");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
    }

    #[test]
    fn poisson_empirical_mean_matches_rate() {
        // Rate 1000/s → mean inter-arrival 1 ms = 1e6 ns; over 10k draws
        // the empirical mean must land within 5 %.
        let p = ArrivalPattern::Poisson { rate_per_sec: 1000.0 };
        let a = open_loop_arrivals(&p, 7, 10_000);
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        let expect = 1e6;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "empirical mean {mean} vs {expect}"
        );
    }

    #[test]
    fn bursty_is_deterministic_and_slower_off_phase() {
        let p = ArrivalPattern::Bursty {
            on_rate_per_sec: 2000.0,
            off_rate_per_sec: 100.0,
            on_ns: 5_000_000,
            off_ns: 5_000_000,
        };
        let a = open_loop_arrivals(&p, 11, 2000);
        assert_eq!(a, open_loop_arrivals(&p, 11, 2000));
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // The long-run rate sits between the two phase rates.
        let span_s = *a.last().unwrap() as f64 / 1e9;
        let rate = a.len() as f64 / span_s;
        assert!(rate > 100.0 && rate < 2000.0, "blended rate {rate}");
    }

    #[test]
    fn mean_rate_blends_phases() {
        let p = ArrivalPattern::Bursty {
            on_rate_per_sec: 1000.0,
            off_rate_per_sec: 100.0,
            on_ns: 1_000_000,
            off_ns: 3_000_000,
        };
        let r = p.mean_rate_per_sec();
        assert!((r - 325.0).abs() < 1e-9, "weighted mean, got {r}");
    }

    #[test]
    fn deadline_stamps_are_seeded_and_scaled() {
        let a = deadline_stamps(5000, 1_000_000, 1.0, 17);
        assert_eq!(a, deadline_stamps(5000, 1_000_000, 1.0, 17));
        assert_ne!(a, deadline_stamps(5000, 1_000_000, 1.0, 18));
        assert!(a.iter().all(|&d| (500_000..1_500_000).contains(&d)));
        let mean = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!((mean - 1e6).abs() / 1e6 < 0.05, "mean {mean} vs 1e6");
        // The scale knob moves the whole distribution.
        let tight = deadline_stamps(100, 1_000_000, 0.25, 17);
        assert!(tight.iter().all(|&d| (1..500_000).contains(&d)));
    }

    #[test]
    fn class_mix_follows_weights() {
        let classes = assign_classes(10_000, &[3.0, 1.0], 99);
        assert_eq!(classes, assign_classes(10_000, &[3.0, 1.0], 99));
        let hi = classes.iter().filter(|&&c| c == 0).count() as f64 / 10_000.0;
        assert!((hi - 0.75).abs() < 0.03, "class-0 share {hi} vs 0.75");
        assert!(classes.iter().all(|&c| c < 2));
    }

    #[test]
    fn closed_loop_accounts_for_service_and_think_time() {
        // One client: consecutive arrivals are separated by at least the
        // service estimate, and the mean gap is service + think.
        let (think, service) = (2_000_000u64, 1_000_000u64);
        let a = closed_loop_arrivals(2000, 1, think, service, 5);
        assert_eq!(a, closed_loop_arrivals(2000, 1, think, service, 5));
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().all(|&g| g >= service),
            "a client cannot issue before its request completes"
        );
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let expect = (service + think) as f64;
        assert!(
            (mean - expect).abs() / expect < 0.08,
            "mean gap {mean} vs {expect}"
        );
    }

    #[test]
    fn closed_loop_many_clients_interleave() {
        let a = closed_loop_arrivals(1000, 8, 1_000_000, 500_000, 3);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // Eight clients sustain roughly 8× the single-client throughput.
        let single = closed_loop_arrivals(1000, 1, 1_000_000, 500_000, 3);
        assert!(a.last().unwrap() < single.last().unwrap());
    }
}
