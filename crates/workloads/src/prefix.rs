//! Prefix-tree workload generator: the multi-GPU KV/prefix-cache
//! serving scenario (ROADMAP item 2).
//!
//! Data items form a seeded prefix **tree** — the radix tree of shared
//! prompt prefixes in an LLM serving cluster (Preble), which is exactly
//! this paper's shared-input-data structure wearing an inference hat.
//! Each task (request) reads the full root-to-leaf path of one leaf:
//! two requests whose leaves share an ancestor share that ancestor's
//! data items, so placing them on the same GPU saves the re-transfer
//! (the serving analogue of recomputing a shared prefix's KV cache).
//!
//! The tree root is **virtual** (it carries no data): a `depth = 1`
//! tree therefore degenerates to independent single-input tasks — the
//! shape the existing generators already cover — which the differential
//! test in `tests/prefix_workload.rs` pins.
//!
//! Leaves are drawn with Zipf-weighted popularity (leaf 0 is the
//! hottest), so traffic concentrates on the leftmost subtrees and a
//! residency-aware router can exploit the skew. All randomness (node
//! sizes, leaf draws) comes from the seeded [`TrafficGen`] stream;
//! generation is a pure function of the config.

use crate::traffic::TrafficGen;
use memsched_model::{DataId, TaskId, TaskSet, TaskSetBuilder};

/// Arithmetic intensity of a request: flops per byte of its path. Sized
/// so a typical path's compute time is commensurate with re-fetching a
/// few missing nodes over PCI — the regime where routing decisions
/// matter (pure compute-bound or pure transfer-bound would make every
/// policy look alike).
pub const PREFIX_FLOPS_PER_BYTE: f64 = 300.0;

/// Configuration of a prefix-tree workload. All fields are plain values
/// so the config can ride inside the `Copy` [`crate::Workload`] enum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrefixConfig {
    /// Levels of data-carrying nodes on every root-to-leaf path
    /// (`depth = 1`: independent single-item tasks).
    pub depth: usize,
    /// Children per interior node (and number of level-0 subtrees).
    pub fanout: usize,
    /// Number of requests (tasks) to generate.
    pub tasks: usize,
    /// Mean bytes per tree node; actual sizes jitter deterministically
    /// in `[0.75, 1.25) × item_bytes`.
    pub item_bytes: u64,
    /// Zipf exponent of the leaf-popularity distribution (`0.0` =
    /// uniform; larger = hotter head).
    pub zipf_s: f64,
    /// Seed of the generation stream (node sizes + leaf draws).
    pub seed: u64,
}

impl PrefixConfig {
    /// The serving-tier default: depth 6 × fanout 3 (1092 nodes, 729
    /// leaves) of 1 MiB items under a hot Zipf head — a tree a single
    /// V100 cannot hold once pressure exceeds 1×.
    pub fn serving_default(tasks: usize, seed: u64) -> Self {
        PrefixConfig {
            depth: 6,
            fanout: 3,
            tasks,
            item_bytes: 1 << 20,
            zipf_s: 1.1,
            seed,
        }
    }
}

/// Number of data-carrying nodes in a `depth × fanout` tree:
/// `fanout + fanout² + … + fanout^depth` (the root is virtual).
pub fn node_count(depth: usize, fanout: usize) -> usize {
    let mut total = 0usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= fanout;
        total += level;
    }
    total
}

/// Number of leaves: `fanout^depth`.
pub fn leaf_count(depth: usize, fanout: usize) -> usize {
    fanout.pow(depth as u32)
}

/// BFS parent of node `id` in a `fanout`-ary forest (level-0 nodes have
/// no parent — the root is virtual). Node ids are breadth-first: level
/// `l` occupies `[start(l), start(l) + fanout^(l+1))`.
pub fn parent_of(id: usize, depth: usize, fanout: usize) -> Option<usize> {
    let mut start = 0usize;
    let mut width = fanout;
    for _ in 0..depth {
        let end = start + width;
        if id < end {
            if start == 0 {
                return None;
            }
            let prev_width = width / fanout;
            let prev_start = start - prev_width;
            return Some(prev_start + (id - start) / fanout);
        }
        start = end;
        width *= fanout;
    }
    panic!("node {id} outside a depth-{depth} fanout-{fanout} tree");
}

/// The root-to-leaf path of leaf index `i` (`0 ≤ i < fanout^depth`), as
/// ascending BFS node ids — level 0 first. Every task's input set is
/// exactly one of these chains.
pub fn leaf_path(leaf: usize, depth: usize, fanout: usize) -> Vec<usize> {
    assert!(leaf < leaf_count(depth, fanout), "leaf index out of range");
    let mut path = Vec::with_capacity(depth);
    let mut start = 0usize;
    let mut width = fanout;
    // Ancestor of the leaf at level l is leaf / fanout^(depth-1-l).
    for l in 0..depth {
        let idx = leaf / fanout.pow((depth - 1 - l) as u32);
        path.push(start + idx);
        start += width;
        width *= fanout;
    }
    path
}

/// Zipf cumulative weights over `n` ranks with exponent `s`:
/// `w_i ∝ 1/(i+1)^s`. Returned as a running sum for binary-search
/// sampling.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 0..n {
        acc += 1.0 / ((i + 1) as f64).powf(s);
        cdf.push(acc);
    }
    cdf
}

/// Draw a leaf rank from the Zipf CDF with one uniform variate.
fn draw_leaf(cdf: &[f64], u: f64) -> usize {
    let target = u * cdf[cdf.len() - 1];
    // First rank whose cumulative weight covers the target.
    match cdf.binary_search_by(|w| w.partial_cmp(&target).expect("finite weights")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

/// Generate the prefix-tree task set: `cfg.tasks` requests, each
/// reading the full path of one Zipf-drawn leaf. Deterministic in
/// `cfg`; arrivals/deadlines/classes are stamped by the caller through
/// the usual [`TaskSet::with_arrivals`] composition so the serving
/// stack applies unchanged.
pub fn prefix_tree(cfg: &PrefixConfig) -> TaskSet {
    assert!(cfg.depth >= 1, "prefix tree needs depth >= 1");
    assert!(cfg.fanout >= 1, "prefix tree needs fanout >= 1");
    assert!(cfg.tasks >= 1, "prefix tree needs at least one task");
    assert!(cfg.item_bytes >= 4, "item_bytes too small to jitter");
    let mut gen = TrafficGen::new(cfg.seed);
    let mut b = TaskSetBuilder::new();

    // Node sizes first, in BFS id order, so the size stream is
    // independent of the task count.
    let nodes = node_count(cfg.depth, cfg.fanout);
    let mut sizes = Vec::with_capacity(nodes);
    let ids: Vec<DataId> = (0..nodes)
        .map(|_| {
            let scale = 0.75 + 0.5 * gen.next_f64();
            let size = ((cfg.item_bytes as f64 * scale) as u64).max(1);
            sizes.push(size);
            b.add_data(size)
        })
        .collect();

    let cdf = zipf_cdf(leaf_count(cfg.depth, cfg.fanout), cfg.zipf_s);
    for _ in 0..cfg.tasks {
        let leaf = draw_leaf(&cdf, gen.next_f64());
        let nodes = leaf_path(leaf, cfg.depth, cfg.fanout);
        let path: Vec<DataId> = nodes.iter().map(|&n| ids[n]).collect();
        let path_bytes: u64 = nodes.iter().map(|&n| sizes[n]).sum();
        b.add_task(&path, path_bytes as f64 * PREFIX_FLOPS_PER_BYTE);
    }
    b.build()
}

/// Total bytes of the data tree (the numerator of the cache-pressure
/// ratio `tree bytes / aggregate GPU memory`).
pub fn tree_bytes(ts: &TaskSet) -> u64 {
    ts.data().map(|d| ts.data_size(d)).sum()
}

/// The leaf index a task reads (its deepest input), for popularity
/// accounting in tests and experiments.
pub fn task_leaf(ts: &TaskSet, t: TaskId, depth: usize, fanout: usize) -> usize {
    let last = *ts.inputs(t).last().expect("prefix task has inputs") as usize;
    let leaves = leaf_count(depth, fanout);
    let leaf_start = node_count(depth, fanout) - leaves;
    last - leaf_start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_leaf_counts_agree() {
        assert_eq!(node_count(1, 5), 5);
        assert_eq!(node_count(3, 2), 2 + 4 + 8);
        assert_eq!(leaf_count(3, 2), 8);
        assert_eq!(node_count(6, 3), 3 + 9 + 27 + 81 + 243 + 729);
    }

    #[test]
    fn paths_are_parent_chains() {
        let (depth, fanout) = (4, 3);
        for leaf in 0..leaf_count(depth, fanout) {
            let path = leaf_path(leaf, depth, fanout);
            assert_eq!(path.len(), depth);
            assert_eq!(parent_of(path[0], depth, fanout), None);
            for w in path.windows(2) {
                assert_eq!(parent_of(w[1], depth, fanout), Some(w[0]));
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = PrefixConfig {
            depth: 3,
            fanout: 3,
            tasks: 50,
            item_bytes: 1 << 16,
            zipf_s: 1.0,
            seed: 7,
        };
        let a = prefix_tree(&cfg);
        let b = prefix_tree(&cfg);
        assert_eq!(a.num_tasks(), 50);
        assert_eq!(a.num_data(), node_count(3, 3));
        for t in a.tasks() {
            assert_eq!(a.inputs(t), b.inputs(t));
            assert_eq!(a.flops(t), b.flops(t));
        }
        for d in a.data() {
            assert_eq!(a.data_size(d), b.data_size(d));
        }
        let other = prefix_tree(&PrefixConfig { seed: 8, ..cfg });
        let same = a
            .tasks()
            .all(|t| other.inputs(t) == a.inputs(t));
        assert!(!same, "different seeds must draw different leaves");
    }

    #[test]
    fn zipf_head_is_hotter_than_tail() {
        let cfg = PrefixConfig {
            depth: 2,
            fanout: 4,
            tasks: 4000,
            item_bytes: 1 << 16,
            zipf_s: 1.2,
            seed: 42,
        };
        let ts = prefix_tree(&cfg);
        let leaves = leaf_count(cfg.depth, cfg.fanout);
        let mut counts = vec![0usize; leaves];
        for t in ts.tasks() {
            counts[task_leaf(&ts, t, cfg.depth, cfg.fanout)] += 1;
        }
        assert!(
            counts[0] > counts[leaves - 1],
            "rank-0 leaf ({}) must outdraw the coldest ({})",
            counts[0],
            counts[leaves - 1]
        );
    }

    #[test]
    fn depth_one_tasks_are_single_input() {
        let cfg = PrefixConfig {
            depth: 1,
            fanout: 8,
            tasks: 30,
            item_bytes: 1 << 16,
            zipf_s: 0.8,
            seed: 3,
        };
        let ts = prefix_tree(&cfg);
        for t in ts.tasks() {
            assert_eq!(ts.inputs(t).len(), 1, "virtual root carries no data");
        }
    }
}
