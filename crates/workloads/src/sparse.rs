//! Sparse 2D blocked matrix multiplication (§V-G / Figures 12–13).
//!
//! The paper removes 98 % of the tasks from the 2D scenario, producing a
//! workload with a much larger communication-to-computation ratio. Data
//! items are kept even when sparsity leaves them unconsumed, so the
//! working-set axis matches the dense scenario.

use crate::constants::{GEMM2D_DATA_BYTES, GEMM2D_TASK_FLOPS};
use memsched_model::{TaskSet, TaskSetBuilder};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sparse 2D multiplication: keep `density` of the `n²` tasks of
/// [`crate::gemm_2d`], chosen uniformly at random (deterministic per
/// `seed`), submitted in row-major order.
///
/// The paper uses `density = 0.02` (98 % removed); see [`sparse_2d_paper`].
pub fn sparse_2d(n: usize, density: f64, seed: u64) -> TaskSet {
    assert!(n > 0, "need at least a 1x1 task grid");
    assert!(
        (0.0..=1.0).contains(&density),
        "density must be within [0, 1]"
    );
    let mut b = TaskSetBuilder::new();
    let rows: Vec<_> = (0..n).map(|_| b.add_data(GEMM2D_DATA_BYTES)).collect();
    let cols: Vec<_> = (0..n).map(|_| b.add_data(GEMM2D_DATA_BYTES)).collect();

    let mut cells: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    cells.shuffle(&mut rng);
    // Keep at least one task so that the task set is non-empty.
    let keep = ((n * n) as f64 * density).round().max(1.0) as usize;
    let mut kept = cells[..keep.min(cells.len())].to_vec();
    // Row-major submission order, like the dense scenario.
    kept.sort_unstable();
    for (i, j) in kept {
        b.add_task(&[rows[i], cols[j]], GEMM2D_TASK_FLOPS);
    }
    b.build()
}

/// The paper's sparse scenario: 2 % density.
pub fn sparse_2d_paper(n: usize, seed: u64) -> TaskSet {
    sparse_2d(n, 0.02, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_requested_fraction() {
        let ts = sparse_2d(50, 0.02, 1);
        assert_eq!(ts.num_tasks(), 50); // 2% of 2500
        assert_eq!(ts.num_data(), 100); // all data kept
    }

    #[test]
    fn density_one_is_dense() {
        let ts = sparse_2d(10, 1.0, 3);
        assert_eq!(ts.num_tasks(), 100);
    }

    #[test]
    fn at_least_one_task_survives() {
        let ts = sparse_2d(5, 0.0, 9);
        assert_eq!(ts.num_tasks(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sparse_2d(30, 0.1, 11);
        let b = sparse_2d(30, 0.1, 11);
        assert_eq!(a.num_tasks(), b.num_tasks());
        for t in a.tasks() {
            assert_eq!(a.inputs(t), b.inputs(t));
        }
        let c = sparse_2d(30, 0.1, 12);
        let same = a
            .tasks()
            .zip(c.tasks())
            .all(|(x, y)| a.inputs(x) == c.inputs(y));
        assert!(!same, "different seeds should select different tasks");
    }

    #[test]
    fn working_set_matches_dense_axis() {
        let dense = crate::gemm_2d(40);
        let sparse = sparse_2d_paper(40, 5);
        assert_eq!(dense.working_set_bytes(), sparse.working_set_bytes());
    }

    #[test]
    fn submission_order_is_row_major() {
        let ts = sparse_2d(20, 0.1, 2);
        let mut last = None;
        for t in ts.tasks() {
            let ins = ts.inputs(t);
            let (row, col) = (ins[0], ins[1] - 20);
            let key = (row, col);
            if let Some(prev) = last {
                assert!(key > prev, "tasks must be sorted row-major");
            }
            last = Some(key);
        }
    }
}
