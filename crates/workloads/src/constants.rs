//! Calibration constants shared by all workload generators.
//!
//! The paper runs cuBLAS SGEMM on 960×960 single-precision tiles
//! (§V-A). Its working-set axis for the 2D multiplication maps `5×5`
//! tasks to ~140 MB and `300×300` to ~8 400 MB, i.e. ~28 MB per grid
//! dimension — which corresponds to data items of four 960×960 fp32
//! tiles (a 960×3840 block-row / block-column slice): `960·3840·4 B =
//! 14.0625 MiB`. The per-task flop count follows the same geometry.

/// Bytes of one 960×960 single-precision tile.
pub const TILE_BYTES: u64 = 960 * 960 * 4;

/// Flops of one 960×960×960 tile GEMM (`2·b³`).
pub const TILE_GEMM_FLOPS: f64 = 2.0 * 960.0 * 960.0 * 960.0;

/// Bytes of one 2D-gemm data item: a 960×3840 fp32 block-row of `A` (or
/// block-column of `B`) — four tiles. Matches the paper's working-set
/// axis (140 MB ↔ N = 5 … 8 400 MB ↔ N = 300).
pub const GEMM2D_DATA_BYTES: u64 = 4 * TILE_BYTES;

/// Flops of one 2D-gemm task: block-row × block-column = `2·960·960·3840`.
pub const GEMM2D_TASK_FLOPS: f64 = 2.0 * 960.0 * 960.0 * 3840.0;

/// Cholesky per-kernel flop counts for a `b×b` tile (`b = 960`),
/// rounded to the classic leading terms.
pub mod cholesky_flops {
    /// `b³/3` — Cholesky factorization of a diagonal tile.
    pub const POTRF: f64 = 960.0 * 960.0 * 960.0 / 3.0;
    /// `b³` — triangular solve.
    pub const TRSM: f64 = 960.0 * 960.0 * 960.0;
    /// `b³` — symmetric rank-b update.
    pub const SYRK: f64 = 960.0 * 960.0 * 960.0;
    /// `2·b³` — general update.
    pub const GEMM: f64 = 2.0 * 960.0 * 960.0 * 960.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_item_is_14_mib() {
        assert_eq!(TILE_BYTES, 3_686_400);
        assert_eq!(GEMM2D_DATA_BYTES, 14_745_600);
        let mib = GEMM2D_DATA_BYTES as f64 / (1024.0 * 1024.0);
        assert!((mib - 14.0625).abs() < 1e-9);
    }

    #[test]
    fn gemm2d_flops_match_geometry() {
        assert_eq!(GEMM2D_TASK_FLOPS, 4.0 * TILE_GEMM_FLOPS);
    }
}
