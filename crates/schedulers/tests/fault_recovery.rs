//! Every scheduler family must survive a mid-run GPU fail-stop: the dead
//! GPU's pipeline and unserved queue reroute to the survivors, every task
//! still completes exactly once, and a same-seed replay is byte-identical.

use memsched_platform::{
    run, run_with_config, FaultPlan, PlatformSpec, RunConfig, TraceEvent, TraceMode,
};
use memsched_schedulers::NamedScheduler;
use memsched_workloads::gemm_2d;

const FAMILIES: &[NamedScheduler] = &[
    NamedScheduler::Eager,
    NamedScheduler::Dmdar,
    NamedScheduler::HmetisR,
    NamedScheduler::Mhfp,
    NamedScheduler::Darts,
    NamedScheduler::DartsLuf,
];

/// A failure time early enough that plenty of work remains on the dead
/// GPU, late enough that its pipeline is primed (gemm tasks run ~ms).
const FAIL_AT: u64 = 2_000_000;

fn faulted(plan: FaultPlan) -> RunConfig {
    RunConfig {
        trace: TraceMode::Full,
        faults: plan,
        ..Default::default()
    }
}

#[test]
fn every_family_survives_a_gpu_failure() {
    let ts = gemm_2d(6);
    let spec = PlatformSpec::v100(3);
    let plan = FaultPlan::none().with_gpu_failure(1, FAIL_AT);
    for family in FAMILIES {
        let mut sched = family.build();
        let (report, trace) =
            run_with_config(&ts, &spec, sched.as_mut(), &faulted(plan.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 36, "{}: tasks lost or duplicated", family.label());
        assert_eq!(report.gpu_failures, 1, "{}", family.label());
        // Finished-task trace must cover every task exactly once.
        let mut seen = vec![0u32; ts.num_tasks()];
        for e in &trace {
            if let TraceEvent::TaskFinished { task, .. } = e {
                seen[*task] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "{}: completion counts {seen:?}",
            family.label()
        );
        // Nothing may finish on the dead GPU after the failure instant.
        for e in &trace {
            if let TraceEvent::TaskFinished { at, gpu, .. } = e {
                assert!(
                    *gpu != 1 || *at <= FAIL_AT,
                    "{}: task finished on dead GPU at {at}",
                    family.label()
                );
            }
        }
    }
}

#[test]
fn failure_runs_replay_identically() {
    let ts = gemm_2d(5);
    let spec = PlatformSpec::v100(2);
    let plan = FaultPlan::none().with_gpu_failure(0, FAIL_AT);
    for family in FAMILIES {
        let (ra, ta) = run_with_config(
            &ts,
            &spec,
            family.build().as_mut(),
            &faulted(plan.clone()),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
        let (rb, tb) = run_with_config(
            &ts,
            &spec,
            family.build().as_mut(),
            &faulted(plan.clone()),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
        assert_eq!(ta, tb, "{}: same plan must replay identically", family.label());
        assert_eq!(ra.makespan, rb.makespan, "{}", family.label());
    }
}

#[test]
fn degradation_is_graceful_not_fatal() {
    // Losing one of three GPUs stretches the makespan but the run still
    // completes; the degradation factor stays within the work lost.
    let ts = gemm_2d(6);
    let spec = PlatformSpec::v100(3);
    let plan = FaultPlan::none().with_gpu_failure(2, FAIL_AT);
    for family in FAMILIES {
        let healthy = run(&ts, &spec, family.build().as_mut())
            .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
        let (faulty, _) = run_with_config(
            &ts,
            &spec,
            family.build().as_mut(),
            &faulted(plan.clone()),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", family.label()));
        let d = faulty.degradation_vs(&healthy);
        // Rerouting occasionally lands on a slightly better schedule than
        // the healthy allocation (it is a different decision sequence), so
        // only gross speedups are suspicious.
        assert!(
            d > 0.9,
            "{}: faulty run much faster than healthy ({d:.3})",
            family.label()
        );
        assert!(
            d < 4.0,
            "{}: degradation {d:.3} way beyond the lost third",
            family.label()
        );
    }
}
