//! HFP and mHFP — Hierarchical Fair Packing and its multi-GPU extension
//! (Algorithm 4, §IV-C).
//!
//! HFP gathers tasks that share many inputs into *packages* whose combined
//! input footprint fits in GPU memory, so that once a package's inputs are
//! loaded all its tasks run without further transfers. Packages are then
//! merged again by affinity (ignoring the memory bound) until one list per
//! GPU remains; `L_avg` rebalancing moves tail tasks from the heaviest to
//! the lightest package; Ready + stealing run at runtime.
//!
//! The packing is intentionally the quadratic greedy procedure of the
//! original paper — its large scheduling time on big working sets is
//! itself one of the published findings (Figures 3 and 5), which the
//! harness reproduces by measuring `prepare` wall time.

use crate::ready::DEFAULT_READY_WINDOW;
use crate::stealing::StealingQueues;
use memsched_model::{DataId, GpuId, TaskId, TaskSet};
use memsched_platform::{PlatformSpec, RuntimeView, Scheduler};

/// One package: an ordered task list plus its input footprint.
#[derive(Clone, Debug)]
struct Package {
    tasks: Vec<TaskId>,
    /// Sorted union of input data ids.
    inputs: Vec<u32>,
    /// Total input bytes.
    input_bytes: u64,
    /// Total flops (the "load" of Algorithm 4).
    load: f64,
    /// Phase-1 freeze flag: no memory-respecting merge exists.
    frozen: bool,
}

impl Package {
    fn of_task(ts: &TaskSet, t: TaskId) -> Self {
        Self {
            tasks: vec![t],
            inputs: ts.inputs(t).to_vec(),
            input_bytes: ts.task_footprint(t),
            load: ts.flops(t),
            frozen: false,
        }
    }
}

/// Bytes of shared inputs between two sorted input lists.
fn shared_bytes(ts: &TaskSet, a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut s) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                s += ts.data_size(DataId(a[i]));
                i += 1;
                j += 1;
            }
        }
    }
    s
}

/// Sorted union of two sorted id lists.
fn union_inputs(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge package `q` into `p` (append task list, union inputs) and remove
/// `q` from the vector.
fn merge(ts: &TaskSet, packages: &mut Vec<Package>, p: usize, q: usize) {
    debug_assert_ne!(p, q);
    let qpkg = packages.swap_remove(q);
    // swap_remove may have moved the former last package into slot q.
    let p = if p == packages.len() { q } else { p };
    let ppkg = &mut packages[p];
    ppkg.tasks.extend_from_slice(&qpkg.tasks);
    ppkg.load += qpkg.load;
    ppkg.inputs = union_inputs(&ppkg.inputs, &qpkg.inputs);
    ppkg.input_bytes = ppkg
        .inputs
        .iter()
        .map(|&d| ts.data_size(DataId(d)))
        .sum();
    ppkg.frozen = false;
}

/// Run the two HFP packing phases plus the `L_avg` balancing, returning
/// `k` ordered task lists.
pub fn pack(ts: &TaskSet, memory: u64, k: usize) -> Vec<Vec<TaskId>> {
    let k = k.max(1);
    let mut packages: Vec<Package> = ts.tasks().map(|t| Package::of_task(ts, t)).collect();

    // Phase 1: memory-bounded affinity merging. Repeatedly take the
    // smallest unfrozen package and merge it with the package sharing the
    // most input bytes, provided the union still fits in memory.
    while packages.len() > k {
        let Some(p_idx) = packages
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.frozen)
            .min_by_key(|(i, p)| (p.tasks.len(), *i))
            .map(|(i, _)| i)
        else {
            break; // everything frozen
        };
        let mut best: Option<(usize, u64)> = None;
        for (q_idx, q) in packages.iter().enumerate() {
            if q_idx == p_idx {
                continue;
            }
            let shared = shared_bytes(ts, &packages[p_idx].inputs, &q.inputs);
            let union_bytes = packages[p_idx].input_bytes + q.input_bytes - shared;
            if union_bytes > memory {
                continue;
            }
            if best.is_none_or(|(_, bs)| shared > bs) {
                best = Some((q_idx, shared));
            }
        }
        match best {
            Some((q_idx, _)) => merge(ts, &mut packages, p_idx, q_idx),
            None => packages[p_idx].frozen = true,
        }
    }

    // Phase 2: affinity merging without the memory bound, down to k
    // packages, binding packages with high data affinity so they are
    // scheduled consecutively.
    while packages.len() > k {
        let p_idx = packages
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.tasks.len(), *i))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut best: Option<(usize, u64)> = None;
        for (q_idx, q) in packages.iter().enumerate() {
            if q_idx == p_idx {
                continue;
            }
            let shared = shared_bytes(ts, &packages[p_idx].inputs, &q.inputs);
            if best.is_none_or(|(_, bs)| shared > bs) {
                best = Some((q_idx, shared));
            }
        }
        let (q_idx, _) = best.expect("at least two packages");
        merge(ts, &mut packages, p_idx, q_idx);
    }

    // Load balancing (Algorithm 4): move tail tasks of the heaviest
    // package to the lightest until no package exceeds L_avg (within one
    // task's worth of load — exact equality is impossible with discrete
    // tasks).
    if k > 1 && packages.len() == k {
        let total: f64 = packages.iter().map(|p| p.load).sum();
        let avg = total / k as f64;
        let max_task_load = ts.tasks().map(|t| ts.flops(t)).fold(0.0f64, f64::max);
        for _ in 0..ts.num_tasks() {
            let mx = packages
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.load.total_cmp(&b.1.load))
                .map(|(i, _)| i)
                .expect("non-empty");
            let mn = packages
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.load.total_cmp(&b.1.load))
                .map(|(i, _)| i)
                .expect("non-empty");
            if mx == mn || packages[mx].load <= avg + max_task_load {
                break;
            }
            let Some(t) = packages[mx].tasks.pop() else { break };
            packages[mx].load -= ts.flops(t);
            packages[mn].tasks.push(t);
            packages[mn].load += ts.flops(t);
        }
    }

    let mut lists: Vec<Vec<TaskId>> = packages.into_iter().map(|p| p.tasks).collect();
    lists.resize(k, Vec::new());
    lists
}

/// The HFP / mHFP scheduler. `K = 1` gives the single-GPU HFP of the
/// earlier COLOC paper; `K > 1` adds the balancing and stealing of
/// Algorithm 4.
#[derive(Debug)]
pub struct HfpScheduler {
    window: usize,
    steal: bool,
    queues: Option<StealingQueues>,
}

impl Default for HfpScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl HfpScheduler {
    /// Paper-default mHFP (Ready window, stealing enabled).
    pub fn new() -> Self {
        Self {
            window: DEFAULT_READY_WINDOW,
            steal: true,
            queues: None,
        }
    }

    /// Disable stealing (ablation).
    pub fn without_stealing(mut self) -> Self {
        self.steal = false;
        self
    }
}

impl Scheduler for HfpScheduler {
    fn name(&self) -> String {
        "mHFP".into()
    }

    fn prepare(&mut self, ts: &TaskSet, spec: &PlatformSpec) {
        let queues = pack(ts, spec.memory_bytes, spec.num_gpus);
        self.queues = Some(StealingQueues::new(queues, self.window, self.steal));
    }

    fn pop_task(&mut self, gpu: GpuId, view: &RuntimeView<'_>) -> Option<TaskId> {
        self.queues
            .as_mut()
            .expect("prepare() must run first")
            .pop(gpu, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsched_model::figure1_example;
    use memsched_platform::run;
    use memsched_workloads::gemm_2d;

    #[test]
    fn union_and_shared_are_consistent() {
        let ts = gemm_2d(3);
        let a = vec![0u32, 2, 4];
        let b = vec![1u32, 2, 5];
        assert_eq!(union_inputs(&a, &b), vec![0, 1, 2, 4, 5]);
        let item = ts.data_size(DataId(0));
        assert_eq!(shared_bytes(&ts, &a, &b), item);
    }

    #[test]
    fn pack_single_gpu_groups_by_affinity() {
        let ts = figure1_example();
        // Memory of 3 unit data items: packages of one grid row fit.
        let lists = pack(&ts, 3, 1);
        assert_eq!(lists.len(), 1);
        assert_eq!(lists[0].len(), 9);
        // Consecutive tasks should mostly share data: count adjacent pairs
        // with at least one shared input.
        let adjacent_shared = lists[0]
            .windows(2)
            .filter(|w| ts.shared_inputs(w[0], w[1]) > 0)
            .count();
        assert!(adjacent_shared >= 5, "affinity order: {adjacent_shared}/8");
    }

    #[test]
    fn pack_balances_two_gpus() {
        let ts = gemm_2d(6);
        let item = ts.data_size(DataId(0));
        let lists = pack(&ts, 6 * item, 2);
        assert_eq!(lists.len(), 2);
        let (a, b) = (lists[0].len(), lists[1].len());
        assert_eq!(a + b, 36);
        assert!(a.abs_diff(b) <= 2, "balance {a} vs {b}");
    }

    #[test]
    fn packages_respect_memory_in_phase_one() {
        // With memory for 2 unit items and 2-input tasks, phase-1 packages
        // have at most 2 distinct inputs; final k-merge may exceed it.
        let ts = figure1_example();
        let lists = pack(&ts, 2, 9); // k = task count: phase 1 only
        let total: usize = lists.iter().map(Vec::len).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn runs_everything_end_to_end() {
        let ts = gemm_2d(6);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(2).with_memory(6 * item);
        let mut sched = HfpScheduler::new();
        let report = run(&ts, &spec, &mut sched).unwrap();
        let total: usize = report.per_gpu.iter().map(|g| g.tasks).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn beats_eager_loads_under_pressure() {
        let ts = gemm_2d(10);
        let item = ts.data_size(DataId(0));
        let spec = PlatformSpec::v100(1).with_memory(6 * item);
        let mut hfp = HfpScheduler::new();
        let mut eager = crate::eager::EagerScheduler::new();
        let hfp_loads = run(&ts, &spec, &mut hfp).unwrap().total_loads;
        let eager_loads = run(&ts, &spec, &mut eager).unwrap().total_loads;
        assert!(
            hfp_loads < eager_loads,
            "HFP {hfp_loads} vs EAGER {eager_loads}"
        );
    }

    #[test]
    fn empty_padding_when_fewer_tasks_than_gpus() {
        let mut b = memsched_model::TaskSetBuilder::new();
        let d = b.add_data(1);
        b.add_task(&[d], 1.0);
        let ts = b.build();
        let lists = pack(&ts, 10, 4);
        assert_eq!(lists.len(), 4);
        assert_eq!(lists.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
